/**
 * @file
 * ABL-MEE — Ablation: MEE metadata cache capacity vs context-transfer
 * latency. The paper notes the MEE carries an internal cache "to
 * alleviate performance overheads" of the authentication-tree walk;
 * this sweep quantifies how much cache the 200 KB context path needs.
 */

#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "sim/random.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    std::cout << "ABLATION: MEE metadata cache size vs context transfer\n\n";

    stats::Table table("cache sweep (200 KB context, DDR3L-1600)");
    table.setHeader({"cache nodes", "cache KB", "save", "restore",
                     "hit rate", "metadata read"});

    // Each cache size runs a full entry/exit cycle on its own
    // Platform/EventQueue; the points shard across the pool.
    const std::vector<std::size_t> node_sizes = {8,   16,  32,  64,
                                                 128, 256, 512, 1024};
    const auto rows = exec::parallelSweep(
        "mee-cache-sweep", node_sizes.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const std::size_t nodes = node_sizes[point.index];
            PlatformConfig cfg = skylakeConfig();
            cfg.meeCacheNodes = nodes;
            cfg.meeCacheAssociativity = std::min<std::size_t>(8, nodes);

            Platform platform(cfg);
            StandbyFlows flows(platform, TechniqueSet::odrips());
            flows.enterIdle();
            platform.eq.run(platform.now() + oneMs);
            flows.exitIdle();

            const CycleRecord &rec = flows.lastCycle();
            const MeeStats &mee = platform.mee->statistics();
            const double hits = static_cast<double>(mee.cacheHits);
            const double total =
                hits + static_cast<double>(mee.cacheMisses);

            return {std::to_string(nodes),
                    stats::fmt(static_cast<double>(
                                   nodes * MetadataNode::storageBytes) /
                                   1024.0,
                               1),
                    stats::fmtTime(
                        ticksToSeconds(rec.contextSave->latency)),
                    stats::fmtTime(
                        ticksToSeconds(rec.contextRestore->latency)),
                    stats::fmtPercent(hits / total),
                    std::to_string(mee.metadataBytesRead >> 10) + " KB"};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout
        << "\nFinding: the context path is a pure stream — compulsory "
           "misses dominate and\neven a tiny cache sustains ~97% hits "
           "(each node serves 8 consecutive lines).\nCache capacity "
           "mainly trades eviction writebacks during the save against "
           "a\nlonger pre-self-refresh flush.\n";

    // Part 2: random protected accesses (an SGX-enclave-like pattern)
    // where capacity genuinely matters.
    std::cout << "\nRandom 64 B protected reads over the 200 KB region "
                 "(16k accesses):\n\n";
    stats::Table random_table("random-access sweep");
    random_table.setHeader({"cache nodes", "hit rate",
                            "metadata read/access"});
    const std::vector<std::size_t> random_sizes = {8, 32, 128, 512,
                                                   2048};
    const auto random_rows = exec::parallelSweep(
        "mee-random-sweep", random_sizes.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const std::size_t nodes = random_sizes[point.index];
            Dram dram("d", DramConfig{});
            MeeConfig mee_cfg;
            mee_cfg.dataBase = 1 << 20;
            mee_cfg.dataSize = 200 << 10;
            mee_cfg.metaBase = 32 << 20;
            mee_cfg.cacheNodes = nodes;
            mee_cfg.cacheAssociativity =
                std::min<std::size_t>(8, nodes);
            Mee mee("mee", dram, mee_cfg);

            // Populate, then read randomly. Every point uses the same
            // fixed-seed access pattern (not the per-point fork): the
            // sweep compares cache sizes on identical traffic.
            std::vector<std::uint8_t> data(200 << 10, 0x3C);
            mee.secureWrite(mee_cfg.dataBase, data.data(), data.size(),
                            0);
            mee.resetStatistics();

            Rng rng(99);
            std::uint8_t line[64];
            bool authentic = true;
            const std::uint64_t accesses = 16384;
            for (std::uint64_t i = 0; i < accesses; ++i) {
                const std::uint64_t line_index = rng.uniformInt(3200);
                mee.secureRead(mee_cfg.dataBase + line_index * 64, line,
                               64, 0, authentic);
            }
            const MeeStats &s = mee.statistics();
            return {std::to_string(nodes),
                    stats::fmtPercent(static_cast<double>(s.cacheHits) /
                                      static_cast<double>(s.cacheHits +
                                                          s.cacheMisses)),
                    stats::fmt(static_cast<double>(s.metadataBytesRead) /
                                   static_cast<double>(accesses),
                               1) + " B"};
        });
    for (const auto &row : random_rows)
        random_table.addRow(row);
    random_table.print(std::cout);
    std::cout << "\nShape: random accesses need capacity — the hit rate "
                 "climbs until all 858\nmetadata nodes fit, which is "
                 "the regime the real MEE cache is built for.\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
