/**
 * @file
 * FIG1B — Reproduces Fig. 1(b): breakdown of platform power consumption
 * in DRIPS (~60 mW total at 30 C with 8 GB DDR3L-1600).
 *
 * Paper anchors: processor = 18% of platform power; wake-up/timer plus
 * the 24 MHz crystal = 5%; AON IOs = 7%; S/R SRAMs = 9%; power-delivery
 * loss = 26% (74% efficiency).
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::baseline());
    flows.enterIdle();

    const PowerBreakdown bd =
        snapshotBreakdown(platform.pm, platform.pd);

    std::cout << "FIG 1(b): platform power breakdown in DRIPS\n";
    std::cout << "(baseline DRIPS, idle platform, DDR3L-1600 8GB)\n\n";
    bd.toTable("DRIPS power breakdown").print(std::cout);

    const std::string proc = platform.processor.name();
    const std::string board = platform.board.name();

    stats::Table anchors("paper anchors vs model");
    anchors.setHeader({"quantity", "paper", "model"});
    anchors.addRow({"total platform power", "~60 mW",
                    stats::fmtPower(bd.totalBattery)});
    anchors.addRow({"processor share", "18%",
                    stats::fmtPercent(bd.groupShare("processor"))});
    anchors.addRow(
        {"wake-up/timer + 24MHz XTAL", "5%",
         stats::fmtPercent(bd.componentShare(proc + ".wake_timer") +
                           bd.componentShare(board + ".xtal24"))});
    anchors.addRow({"AON IOs", "7%",
                    stats::fmtPercent(
                        bd.componentShare(proc + ".aon_io"))});
    anchors.addRow(
        {"S/R SRAMs", "9%",
         stats::fmtPercent(bd.componentShare(proc + ".sr_sram_sa") +
                           bd.componentShare(proc + ".sr_sram_cores"))});
    anchors.addRow({"power delivery loss", "26% (74% eff.)",
                    stats::fmtPercent(bd.deliveryLoss / bd.totalBattery)});
    std::cout << '\n';
    anchors.print(std::cout);
    return 0;
}
