/**
 * @file
 * ABL-COAL — Ablation: interrupt coalescing vs average power.
 *
 * Observation 1 of the paper rests on SoCs buffering peripheral events
 * and handling them together with the next scheduled wake ("a modern
 * SoC aggregates multiple interrupts and handles them together at the
 * same time to reduce the number of wake-ups"). This sweep quantifies
 * that: a chatty network (push every ~15 s) with a growing coalescing
 * window trades notification latency for fewer full wake cycles.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    std::cout << "ABLATION: interrupt-coalescing window vs average "
                 "power\n(kernel wake ~30 s, network pushes ~15 s, "
                 "ODRIPS)\n\n";

    stats::Table table("coalescing sweep (40 cycles)");
    table.setHeader({"window", "wake cycles/hour", "coalesced",
                     "avg power", "savings vs none"});

    double no_coalescing = 0.0;
    for (double window_s : {0.0, 1.0, 5.0, 10.0, 20.0, 30.0}) {
        PlatformConfig cfg = skylakeConfig();
        cfg.workload.networkWakeMeanSeconds = 15.0;
        cfg.workload.coalescingWindowSeconds = window_s;
        cfg.workload.seed = 5;

        StandbyWorkloadGenerator gen(cfg.workload);
        const StandbyTrace trace = gen.generate(40);

        Platform platform(cfg);
        StandbySimulator sim(platform, TechniqueSet::odrips());
        const StandbyResult r = sim.run(trace);
        if (window_s == 0.0)
            no_coalescing = r.averageBatteryPower;

        const double hours =
            ticksToSeconds(r.simulatedTime) / 3600.0;
        table.addRow(
            {window_s == 0.0 ? "off" : stats::fmtTime(window_s),
             stats::fmt(static_cast<double>(r.cycles) / hours, 1),
             std::to_string(trace.totalCoalesced()),
             stats::fmtPower(r.averageBatteryPower),
             window_s == 0.0
                 ? "-"
                 : stats::fmtPercent(1.0 - r.averageBatteryPower /
                                               no_coalescing)});
    }
    table.print(std::cout);

    std::cout << "\nShape: each absorbed wake saves a full entry/exit "
                 "plus most of an active\nwindow; the cost is up to one "
                 "window of notification latency — the buffering\n"
                 "trade-off that lets DRIPS afford millisecond-scale "
                 "exit latencies (Sec. 3).\n";
    return 0;
}
