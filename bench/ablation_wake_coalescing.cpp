/**
 * @file
 * ABL-COAL — Ablation: interrupt coalescing vs average power.
 *
 * Observation 1 of the paper rests on SoCs buffering peripheral events
 * and handling them together with the next scheduled wake ("a modern
 * SoC aggregates multiple interrupts and handles them together at the
 * same time to reduce the number of wake-ups"). This sweep quantifies
 * that: a chatty network (push every ~15 s) with a growing coalescing
 * window trades notification latency for fewer full wake cycles.
 */

#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    std::cout << "ABLATION: interrupt-coalescing window vs average "
                 "power\n(kernel wake ~30 s, network pushes ~15 s, "
                 "ODRIPS)\n\n";

    stats::Table table("coalescing sweep (40 cycles)");
    table.setHeader({"window", "wake cycles/hour", "coalesced",
                     "avg power", "savings vs none"});

    struct PointResult
    {
        double averagePower = 0.0;
        double cyclesPerHour = 0.0;
        std::size_t coalesced = 0;
    };

    // Every window simulates 40 full standby cycles on its own
    // Platform/EventQueue (the workload seed is fixed per point, so
    // results do not depend on the worker count).
    const std::vector<double> windows = {0.0,  1.0,  5.0,
                                         10.0, 20.0, 30.0};
    const auto results = exec::parallelSweep(
        "coalescing-sweep", windows.size(),
        [&](const exec::SweepPoint &point) {
            PlatformConfig cfg = skylakeConfig();
            cfg.workload.networkWakeMeanSeconds = 15.0;
            cfg.workload.coalescingWindowSeconds = windows[point.index];
            cfg.workload.seed = 5;

            StandbyWorkloadGenerator gen(cfg.workload);
            const StandbyTrace trace = gen.generate(40);

            Platform platform(cfg);
            StandbySimulator sim(platform, TechniqueSet::odrips());
            const StandbyResult r = sim.run(trace);

            PointResult res;
            res.averagePower = r.averageBatteryPower;
            res.cyclesPerHour = static_cast<double>(r.cycles) /
                                (ticksToSeconds(r.simulatedTime) /
                                 3600.0);
            res.coalesced = trace.totalCoalesced();
            return res;
        });

    // The "savings vs none" column compares against the window=0
    // point, so the table is built in a second, ordered pass.
    const double no_coalescing = results.front().averagePower;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const double window_s = windows[i];
        const PointResult &r = results[i];
        table.addRow(
            {window_s == 0.0 ? "off" : stats::fmtTime(window_s),
             stats::fmt(r.cyclesPerHour, 1),
             std::to_string(r.coalesced),
             stats::fmtPower(r.averagePower),
             window_s == 0.0
                 ? "-"
                 : stats::fmtPercent(1.0 - r.averagePower /
                                               no_coalescing)});
    }
    table.print(std::cout);

    std::cout << "\nShape: each absorbed wake saves a full entry/exit "
                 "plus most of an active\nwindow; the cost is up to one "
                 "window of notification latency — the buffering\n"
                 "trade-off that lets DRIPS afford millisecond-scale "
                 "exit latencies (Sec. 3).\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
