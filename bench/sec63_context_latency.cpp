/**
 * @file
 * SEC63 — Reproduces the context save/restore latency analysis of
 * Sec. 6.3: transferring the ~200 KB processor context through the MEE
 * into the SGX-protected DDR3L-1600 region takes ~18 us to write and
 * ~13 us to read.
 *
 * Also exercises the latency decomposition (raw stream, metadata
 * traffic, crypto pipeline) and the MEE traffic statistics.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());

    // One full cycle to collect the transfer records.
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    const CycleRecord &rec = flows.lastCycle();

    std::cout << "SEC 6.3: processor-context transfer latency "
              << "(DDR3L-1600, dual channel)\n\n";

    stats::Table table("context transfer");
    table.setHeader({"quantity", "paper", "model"});
    table.addRow({"context size", "~200 KB",
                  std::to_string(rec.contextSave->bytes >> 10) + " KB"});
    table.addRow({"save (write to DRAM)", "~18 us",
                  stats::fmtTime(
                      ticksToSeconds(rec.contextSave->latency))});
    table.addRow({"restore (read from DRAM)", "~13 us",
                  stats::fmtTime(
                      ticksToSeconds(rec.contextRestore->latency))});
    table.addRow({"authenticated", "yes (SGX/MEE)",
                  rec.contextRestore->authentic ? "yes" : "NO"});
    table.addRow({"content intact", "-",
                  rec.contextIntact ? "yes" : "NO"});
    table.print(std::cout);

    const MeeStats &mee = platform.mee->statistics();
    const double data_bytes =
        static_cast<double>(platform.contextRegionSize());
    const double raw_stream_us =
        data_bytes / platform.cfg.dram.peakBandwidth() * 1e6;

    std::cout << "\nLatency decomposition (one-way):\n"
              << "  raw 200 KB stream at 25.6 GB/s : "
              << stats::fmt(raw_stream_us, 2) << " us\n"
              << "  + MEE metadata traffic and crypto pipeline\n";

    std::cout << "\nMEE statistics over the cycle:\n"
              << "  protected lines written : " << mee.linesWritten
              << "\n  protected lines read    : " << mee.linesRead
              << "\n  metadata bytes R/W      : " << mee.metadataBytesRead
              << " / " << mee.metadataBytesWritten
              << "\n  metadata cache hit rate : "
              << stats::fmtPercent(
                     static_cast<double>(mee.cacheHits) /
                     static_cast<double>(mee.cacheHits + mee.cacheMisses))
              << "\n  metadata footprint      : "
              << (platform.mee->metadataBytes() >> 10) << " KB ("
              << stats::fmtPercent(
                     static_cast<double>(platform.mee->metadataBytes()) /
                     static_cast<double>(platform.cfg.sgxRegionSize))
              << " of the SGX region)\n";

    std::cout << "\nBoot subset kept on-chip: "
              << platform.cfg.bootContextBytes << " B in the Boot SRAM ("
              << stats::fmtPercent(
                     static_cast<double>(platform.cfg.bootContextBytes) /
                     static_cast<double>(
                         platform.contextRegionSize()))
              << " of the context, paper: ~0.5%)\n";
    return 0;
}
