/**
 * @file
 * ABL-GOV — Ablation: LTR/TNTE idle-state governance vs always-DRIPS.
 *
 * The paper's PMU selects the idle state from LTR and TNTE (Sec. 2.2)
 * instead of always diving to the deepest state. This sweep shows why:
 * below DRIPS's break-even, short idle periods are cheaper in shallower
 * C-states, and a naive always-DRIPS policy *loses* energy on bursty
 * wake patterns.
 */

#include <iostream>
#include <vector>

#include "core/governor.hh"
#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile drips =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CStateTable table = CStateTable::skylake();
    const IdleGovernor governor(table, drips, /*LTR*/ 3 * oneMs);

    std::cout << "ABLATION: idle-state governance (LTR/TNTE) vs "
                 "always-DRIPS\n\nDerived per-state models:\n";
    stats::Table states("C-state models (from the DRIPS profile)");
    states.setHeader({"state", "idle power", "entry+exit", "transition E",
                      "break-even vs C1"});
    for (const DerivedStateModel &m : governor.states()) {
        states.addRow(
            {m.name, stats::fmtPower(m.idlePower),
             stats::fmtTime(
                 ticksToSeconds(m.entryLatency + m.exitLatency)),
             stats::fmt(m.transitionEnergy * 1e6, 1) + " uJ",
             m.breakEvenVsShallowest == 0
                 ? "-"
                 : stats::fmtTime(
                       ticksToSeconds(m.breakEvenVsShallowest))});
    }
    states.print(std::cout);

    std::cout << "\nUniform idle-dwell sweep (active window 20 ms):\n";
    stats::Table sweep("policy comparison");
    sweep.setHeader({"idle dwell", "always-DRIPS", "TNTE governor",
                     "oracle", "governor picks"});
    const Tick active = 20 * oneMs;
    const std::vector<double> dwell_points = {0.0005, 0.001, 0.002,
                                              0.005,  0.02,  0.1,
                                              1.0,    30.0};
    // IdleGovernor::evaluate is const, so the points shard over the
    // shared governor without copies.
    const auto rows = exec::parallelSweep(
        "governor-dwell-sweep", dwell_points.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const double dwell_s = dwell_points[point.index];
            const std::vector<Tick> dwells(16, secondsToTicks(dwell_s));
            const GovernedResult always =
                governor.evaluate(dwells, active, false, 10);
            const GovernedResult governed =
                governor.evaluate(dwells, active, false);
            const GovernedResult oracle =
                governor.evaluate(dwells, active, true);
            return {stats::fmtTime(dwell_s),
                    stats::fmtPower(always.averagePower),
                    stats::fmtPower(governed.averagePower),
                    stats::fmtPower(oracle.averagePower),
                    governed.decisions.front().state->name};
        });
    for (const auto &row : rows)
        sweep.addRow(row);
    sweep.print(std::cout);

    // A bursty trace: mostly 30 s dwells with short wake storms.
    std::cout << "\nBursty trace (80% 30 s dwells, 20% 2 ms storms):\n";
    std::vector<Tick> bursty;
    for (int i = 0; i < 8; ++i) {
        bursty.push_back(30 * oneSec);
        bursty.push_back(2 * oneMs);
        bursty.push_back(2 * oneMs);
    }
    for (int i = 0; i < 16; ++i)
        bursty.push_back(30 * oneSec);

    const GovernedResult always =
        governor.evaluate(bursty, active, false, 10);
    const GovernedResult governed = governor.evaluate(bursty, active);
    std::cout << "  always-DRIPS : "
              << stats::fmtPower(always.averagePower) << '\n'
              << "  governed     : "
              << stats::fmtPower(governed.averagePower) << "  (";
    for (const auto &[name, share] : governed.stateResidency)
        std::cout << name << " " << stats::fmtPercent(share) << " ";
    std::cout << "of idle time)\n";

    std::cout << "\nShape: governance matters below DRIPS's ~6 ms "
                 "break-even; at the 30 s\nconnected-standby dwell all "
                 "policies converge on DRIPS — which is why the\npaper "
                 "can optimize DRIPS itself.\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
