/**
 * @file
 * FIG6B — Reproduces Fig. 6(b): the effect of core frequency on the
 * connected-standby average power under ODRIPS ("race-to-sleep").
 *
 * Paper: raising the core clock from 0.8 GHz to 1.0 GHz saves ~1.4%
 * (the Vmin floor makes extra frequency nearly free and the active
 * window shrinks); 1.5 GHz costs ~1% because voltage must rise.
 */

#include <iostream>

#include "core/odrips.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig base_cfg = skylakeConfig();
    const double frequencies[] = {0.8e9, 1.0e9, 1.5e9};
    const char *paper[] = {"baseline", "-1.4%", "+1%"};

    // The active window is defined at 0.8 GHz: 200 ms with 70% of it
    // CPU-bound work that scales with frequency.
    const double active_s = 0.5 * (base_cfg.workload.activeMinSeconds +
                                   base_cfg.workload.activeMaxSeconds);
    const Tick dwell = secondsToTicks(base_cfg.workload.idleDwellSeconds);

    std::cout << "FIG 6(b): ODRIPS average power vs core frequency\n\n";

    stats::Table table("core frequency sweep (ODRIPS)");
    table.setHeader({"core clock", "voltage", "C0 power", "active window",
                     "avg power", "delta", "paper"});

    double baseline_avg = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        PlatformConfig cfg = base_cfg;
        cfg.coreFrequencyHz = frequencies[i];
        const CyclePowerProfile p =
            measureCycleProfile(cfg, TechniqueSet::odrips());

        const Tick cpu = secondsToTicks(active_s *
                                        cfg.workload.scalableFraction *
                                        0.8e9 / frequencies[i]);
        const Tick stall = secondsToTicks(
            active_s * (1.0 - cfg.workload.scalableFraction));
        const double avg = averagePowerEq1(p, dwell, cpu, stall);
        if (i == 0)
            baseline_avg = avg;

        table.addRow(
            {stats::fmt(frequencies[i] / 1e9, 1) + " GHz",
             stats::fmt(cfg.vfCurve.voltageAt(frequencies[i]), 2) + " V",
             stats::fmtPower(p.activePower),
             stats::fmtTime(ticksToSeconds(cpu + stall)),
             stats::fmtPower(avg),
             i == 0 ? "baseline"
                    : stats::fmtPercent(avg / baseline_avg - 1.0),
             paper[i]});
    }
    table.print(std::cout);

    std::cout << "\nShape check: the best operating point lies between "
                 "0.8 and 1.5 GHz\n(race-to-sleep pays off only while "
                 "the core stays at the Vmin floor).\n";
    // Cache/store/sweep counters go to stderr so the tables above
    // stay byte-identical for any --jobs value or attached store.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
