/**
 * @file
 * SEC4 — Reproduces the Step calibration analysis of Sec. 4.1.3:
 * the fixed-point representation (m = 10 integer bits, f = 21 fraction
 * bits for 1 ppb), the calibration window, and the resulting counting
 * drift across crystal tolerance corners.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    std::cout << "SEC 4.1.3: slow-timer Step calibration\n\n";

    // Eq. 2 / Eq. 4 for the paper's clock pair.
    const unsigned m =
        StepCalibrator::requiredIntegerBits(Hertz(24.0e6),
                                            Hertz(32768.0));
    const unsigned f = StepCalibrator::requiredFractionBits(
        Hertz(24.0e6), Hertz(32768.0), 1000000000ULL);

    stats::Table repr("Step representation (24 MHz / 32.768 kHz, 1 ppb)");
    repr.setHeader({"quantity", "paper", "model"});
    repr.addRow({"integer bits m (Eq. 2)", "10", std::to_string(m)});
    repr.addRow({"fraction bits f (Eq. 4)", "21", std::to_string(f)});
    repr.addRow({"nominal Step", "732.42...",
                 stats::fmt(FixedUint::fromRatio(24000000, 32768, f)
                                .toDouble(),
                            6)});
    repr.print(std::cout);

    // Calibration against deviated crystals, then drift evaluation.
    std::cout << "\nCalibration and drift across crystal tolerance "
                 "corners (1 hour in ODRIPS):\n";
    stats::Table drift("drift after calibration");
    drift.setHeader({"fast XTAL", "slow XTAL", "calibrated Step",
                     "window", "drift (1h)", "budget"});
    for (const auto &[fp, sp] : {std::pair{0.0, 0.0}, {18.0, -35.0},
                                 {-18.0, 35.0}, {50.0, 50.0},
                                 {100.0, -100.0}}) {
        Crystal fast("f", 24.0e6, fp, Milliwatts::zero());
        Crystal slow("s", 32768.0, sp, Milliwatts::zero());
        StepCalibrator cal(fast, slow);
        const CalibrationResult r = cal.calibrateForPpb();
        const std::uint64_t hour_cycles = 32768ULL * 3600ULL;
        const double ppb = cal.evaluateDriftPpb(r, hour_cycles);
        drift.addRow({stats::fmt(fp, 0) + " ppm",
                      stats::fmt(sp, 0) + " ppm",
                      stats::fmt(r.step.toDouble(), 6),
                      stats::fmtTime(r.duration),
                      stats::fmt(ppb, 3) + " ppb", "< 1 ppb"});
    }
    drift.print(std::cout);

    // Contrast: using the nominal ratio without calibration.
    std::cout << "\nWithout calibration (nominal Step, crystals at "
                 "+18/-35 ppm):\n";
    Crystal fast("f", 24.0e6, 18.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, -35.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    CalibrationResult nominal;
    nominal.fractionBits = f;
    nominal.step = FixedUint::fromRatio(24000000, 32768, f);
    const double raw_ppb =
        cal.evaluateDriftPpb(nominal, 32768ULL * 3600ULL);
    std::cout << "  drift = " << stats::fmt(raw_ppb, 0)
              << " ppb  (fails the 1 ppb precision target by ~"
              << stats::fmt(std::abs(raw_ppb), 0) << "x)\n";
    return 0;
}
