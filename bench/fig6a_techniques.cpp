/**
 * @file
 * FIG6A — Reproduces Fig. 6(a): platform average power of the baseline
 * and of each technique (WAKE-UP-OFF, AON-IO-GATE, CTX-SGX-DRAM,
 * ODRIPS), plus each configuration's energy break-even point from the
 * 0.6 ms - 1 s residency sweep.
 *
 * Paper: savings of 6% / 13% / 8% / 22%; break-even points of
 * 6.6 / 6.3 / 7.4 / 6.5 ms.
 */

#include <iostream>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig cfg = skylakeConfig();
    const auto evals = evaluateFig6aSet(cfg);

    const char *paper_savings[] = {"-", "6%", "13%", "8%", "22%"};
    const char *paper_breakeven[] = {"-", "6.6 ms", "6.3 ms", "7.4 ms",
                                     "6.5 ms"};

    std::cout << "FIG 6(a): technique average power and break-even "
              << "points\n"
              << "(standard workload: ~30 s dwell, ~200 ms active)\n\n";

    stats::Table table("technique comparison");
    table.setHeader({"configuration", "avg power", "savings",
                     "paper savings", "break-even", "paper BE",
                     "idle power"});
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const TechniqueEvaluation &e = evals[i];
        table.addRow(
            {e.label, stats::fmtPower(e.averagePower),
             i == 0 ? "-" : stats::fmtPercent(e.savingsVsBaseline),
             paper_savings[i],
             i == 0 ? "-"
                    : stats::fmtTime(ticksToSeconds(e.breakEven)),
             paper_breakeven[i], stats::fmtPower(e.profile.idlePower)});
    }
    table.print(std::cout);

    // The break-even sweep curve for ODRIPS vs the baseline, as in the
    // right axis of Fig. 6(a). A zoomed sweep around the crossover for
    // display; the break-even itself comes from the full paper sweep.
    const BreakevenResult be =
        findBreakeven(evals[4].profile, evals[0].profile);
    BreakevenSweep zoom;
    zoom.end = 20 * oneMs;
    zoom.step = secondsToTicks(0.1e-3);
    const BreakevenResult zoomed =
        findBreakeven(evals[4].profile, evals[0].profile, zoom, 16);

    std::cout << "\nODRIPS vs baseline residency sweep "
              << "(zoom on 0.6 - 20 ms of the 0.6 ms - 1 s sweep):\n";
    stats::Table curve("average power vs DRIPS residency");
    curve.setHeader({"dwell", "ODRIPS avg", "baseline avg", "winner"});
    for (const auto &[dwell, p_tech, p_base] : zoomed.curve) {
        curve.addRow({stats::fmtTime(ticksToSeconds(dwell)),
                      stats::fmtPower(p_tech), stats::fmtPower(p_base),
                      p_tech < p_base ? "ODRIPS" : "baseline"});
    }
    curve.print(std::cout);
    std::cout << "break-even (sweep)   : "
              << stats::fmtTime(ticksToSeconds(be.breakEvenDwell)) << '\n'
              << "break-even (analytic): "
              << stats::fmtTime(ticksToSeconds(be.analyticBreakEven))
              << '\n';

    // Savings decomposition at the idle state, mirroring the paper's
    // 1% + 5% + 4% + 7% + 5% = 22% account.
    std::cout << "\nIdle-power reduction by source (battery level):\n";
    const double base_idle = evals[0].profile.idlePower;
    const char *labels[] = {"", "wake-up & timer (+chipset fast clock)",
                            "AON IO gating", "S/R SRAM elimination"};
    for (std::size_t i = 1; i < evals.size() - 1; ++i) {
        const double prev = i == 3 ? base_idle : evals[i - 1].profile.idlePower;
        const double cur = evals[i].profile.idlePower;
        std::cout << "  " << labels[i] << ": "
                  << stats::fmtPower(prev - cur) << '\n';
    }
    std::cout << "  total ODRIPS idle reduction: "
              << stats::fmtPower(base_idle - evals[4].profile.idlePower)
              << " ("
              << stats::fmtPercent(1.0 - evals[4].profile.idlePower /
                                             base_idle)
              << " of DRIPS power)\n";

    // Throughput counters go to stderr so the result tables above stay
    // byte-identical for any --jobs value.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
