/**
 * @file
 * ABL-RES — Ablation: wake interval (idle dwell) vs average power for
 * the baseline and ODRIPS. Generalizes the paper's residency argument:
 * savings approach the idle-power gap as the dwell grows, vanish near
 * the break-even, and invert below it.
 */

#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    std::cout << "ABLATION: wake interval vs connected-standby average "
                 "power\n(active window fixed at 150 ms)\n\n";

    stats::Table table("dwell sweep");
    table.setHeader({"idle dwell", "baseline avg", "ODRIPS avg",
                     "savings"});

    const Tick active = 150 * oneMs;
    const std::vector<double> dwells = {0.002, 0.005, 0.01, 0.05,
                                        0.1,   0.5,   1.0,  5.0,
                                        10.0,  30.0,  60.0, 120.0};
    const auto rows = exec::parallelSweep(
        "wake-interval-sweep", dwells.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const double dwell_s = dwells[point.index];
            const Tick dwell = secondsToTicks(dwell_s);
            const double p_base =
                averagePowerEq1(base, dwell, active, 0.7);
            const double p_odrips =
                averagePowerEq1(odrips, dwell, active, 0.7);
            return {stats::fmtTime(dwell_s), stats::fmtPower(p_base),
                    stats::fmtPower(p_odrips),
                    stats::fmtPercent(1.0 - p_odrips / p_base)};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "\nAsymptotes: avg power -> idle power as the dwell "
                 "grows\n(baseline "
              << stats::fmtPower(base.idlePower) << ", ODRIPS "
              << stats::fmtPower(odrips.idlePower)
              << "); ODRIPS savings -> "
              << stats::fmtPercent(1.0 -
                                   odrips.idlePower / base.idlePower)
              << " of DRIPS power.\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
