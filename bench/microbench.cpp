/**
 * @file
 * Google-benchmark microbenchmarks for the simulator's hot paths: the
 * event queue, the crypto primitives, the MEE context path, and a full
 * standby cycle. These guard the simulator's own performance (a full
 * connected-standby cycle must stay cheap enough for the sweeps).
 */

#include <benchmark/benchmark.h>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int counter = 0;
        Event tick("tick", [&] {
            if (++counter < 1000)
                eq.scheduleAfter(tick, 100);
        });
        eq.schedule(tick, 100);
        eq.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                   0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data.data(), data.size()));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void
BM_SpeckEncrypt(benchmark::State &state)
{
    Speck128::Key key{};
    key[0] = 1;
    Speck128 cipher(key);
    Block128 block{1, 2};
    for (auto _ : state) {
        block = cipher.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeckEncrypt);

void
BM_MeeContextWrite(benchmark::State &state)
{
    Dram dram("d", DramConfig{});
    MeeConfig cfg;
    cfg.dataBase = 1 << 20;
    cfg.dataSize = 200 << 10;
    cfg.metaBase = 8 << 20;
    Mee mee("mee", dram, cfg);
    std::vector<std::uint8_t> context(200 << 10, 0x5A);

    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mee.secureWrite(cfg.dataBase, context.data(), context.size(),
                            0));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(context.size()));
}
BENCHMARK(BM_MeeContextWrite);

void
BM_FullStandbyCycle(benchmark::State &state)
{
    Logger::quiet(true);
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());
    for (auto _ : state) {
        flows.enterIdle();
        platform.eq.run(platform.now() + oneMs);
        flows.exitIdle();
        platform.eq.run(platform.now() + oneMs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullStandbyCycle);

void
BM_StepCalibration(benchmark::State &state)
{
    Crystal fast("f", 24.0e6, 18.0, Milliwatts::fromWatts(0.0));
    Crystal slow("s", 32768.0, -35.0, Milliwatts::fromWatts(0.0));
    StepCalibrator cal(fast, slow);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cal.calibrateForPpb());
    }
}
BENCHMARK(BM_StepCalibration);

} // namespace

BENCHMARK_MAIN();
