/**
 * @file
 * Google-benchmark microbenchmarks for the simulator's hot paths: the
 * event queue, the crypto primitives, the MEE context path, and a full
 * standby cycle. These guard the simulator's own performance (a full
 * connected-standby cycle must stay cheap enough for the sweeps).
 */

#include <benchmark/benchmark.h>

#include <dirent.h>
#include <unistd.h>

#include "arch/dispatch.hh"
#include "core/odrips.hh"
#include "core/profile_cache.hh"
#include "flows/context_fsm.hh"
#include "security/ctr_mode.hh"
#include "store/result_store.hh"

using namespace odrips;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int counter = 0;
        Event tick("tick", [&] {
            if (++counter < 1000)
                eq.scheduleAfter(tick, 100);
        });
        eq.schedule(tick, 100);
        eq.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                   0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data.data(), data.size()));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void
BM_SpeckEncrypt(benchmark::State &state)
{
    Speck128::Key key{};
    key[0] = 1;
    Speck128 cipher(key);
    Block128 block{1, 2};
    for (auto _ : state) {
        block = cipher.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeckEncrypt);

/** RAII pin of the crypto dispatch level for a benchmark run. */
class ScopedDispatch
{
  public:
    explicit ScopedDispatch(arch::DispatchLevel level)
        : previous(arch::setDispatchLevel(level))
    {
    }
    ~ScopedDispatch() { arch::setDispatchLevel(previous); }

  private:
    arch::DispatchLevel previous;
};

void
BM_Sha256AtLevel(benchmark::State &state, arch::DispatchLevel level)
{
    ScopedDispatch pin(level);
    std::vector<std::uint8_t> data(4096, 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data.data(), data.size()));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}

void
BM_SpeckCtrAtLevel(benchmark::State &state, arch::DispatchLevel level)
{
    ScopedDispatch pin(level);
    Speck128::Key key{};
    key[0] = 7;
    CtrCipher ctr(key);
    std::vector<std::uint8_t> buf(4096, 0x3C);
    for (auto _ : state) {
        ctr.apply(0x1000, 42, buf.data(), buf.size());
        benchmark::DoNotOptimize(buf.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}

/** One BM_Sha256 / BM_SpeckCtr variant per dispatch level this CPU can
 * actually run, e.g. BM_Sha256/4096/avx2 — so the tracked trajectory
 * shows the win of each kernel tier, not just the native best. */
[[maybe_unused]] const int dispatchBenchRegistrar = [] {
    for (const arch::DispatchLevel level :
         {arch::DispatchLevel::Scalar, arch::DispatchLevel::Sse4,
          arch::DispatchLevel::Avx2, arch::DispatchLevel::Native}) {
        if (!arch::levelSupported(level))
            continue;
        const std::string name = arch::kernelsFor(level).levelName;
        benchmark::RegisterBenchmark(
            ("BM_Sha256/4096/" + name).c_str(), BM_Sha256AtLevel, level);
        benchmark::RegisterBenchmark(
            ("BM_SpeckCtr/4096/" + name).c_str(), BM_SpeckCtrAtLevel,
            level);
    }
    return 0;
}();

void
BM_MeeContextWrite(benchmark::State &state)
{
    Dram dram("d", DramConfig{});
    MeeConfig cfg;
    cfg.dataBase = 1 << 20;
    cfg.dataSize = 200 << 10;
    cfg.metaBase = 8 << 20;
    Mee mee("mee", dram, cfg);
    std::vector<std::uint8_t> context(200 << 10, 0x5A);

    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mee.secureWrite(cfg.dataBase, context.data(), context.size(),
                            0));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(context.size()));
}
BENCHMARK(BM_MeeContextWrite);

void
BM_CtrModeBatched(benchmark::State &state)
{
    Speck128::Key key{};
    key[0] = 7;
    CtrCipher ctr(key);
    std::vector<std::uint8_t> buf(4096, 0x3C);
    for (auto _ : state) {
        ctr.apply(0x1000, 42, buf.data(), buf.size());
        benchmark::DoNotOptimize(buf.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_CtrModeBatched);

void
BM_MeeContextTransfer(benchmark::State &state)
{
    // Full context round trip: secure save (write) plus authenticated
    // restore (read) of the ~200 KB processor context.
    Dram dram("d", DramConfig{});
    MeeConfig cfg;
    cfg.dataBase = 1 << 20;
    cfg.dataSize = 200 << 10;
    cfg.metaBase = 8 << 20;
    Mee mee("mee", dram, cfg);
    std::vector<std::uint8_t> context(200 << 10, 0x5A);
    std::vector<std::uint8_t> restored(context.size());

    for (auto _ : state) {
        mee.secureWrite(cfg.dataBase, context.data(), context.size(), 0);
        bool authentic = false;
        mee.secureRead(cfg.dataBase, restored.data(), restored.size(), 0,
                       authentic);
        if (!authentic)
            state.SkipWithError("context failed authentication");
        benchmark::DoNotOptimize(restored.data());
    }
    state.SetBytesProcessed(state.iterations() * 2 *
                            static_cast<std::int64_t>(context.size()));
}
BENCHMARK(BM_MeeContextTransfer);

/**
 * Context-save cost through the real FSM datapath (SRAM -> MEE ->
 * DRAM), with the given mutation model driving the dirty maps.
 * BM_MeeContextSaveFull regenerates the whole context every cycle
 * (every save is a full save — the historical behaviour);
 * BM_MeeContextSaveIncremental dirties <= 10 % of the lines per cycle,
 * so steady-state saves stream only the dirty runs.
 */
void
contextSaveBench(benchmark::State &state, ContextMutationKind kind)
{
    Logger::quiet(true);
    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = kind;
    cfg.contextMutation.dirtyFraction = 0.10;
    Platform p(cfg);
    ContextRegion &sa = p.processor.context.sa();
    ContextRegion &cores = p.processor.context.cores();
    ContextTransferFsm saFsm("sa_fsm", p.processor.saSram,
                             *p.memoryController, 0);
    ContextTransferFsm llcFsm("llc_fsm", p.processor.coresSram,
                              *p.memoryController, cfg.saContextBytes);
    saFsm.setIncremental(true);
    llcFsm.setIncremental(true);

    // Prime the DRAM copies: the first save is always a full one.
    saFsm.saveToSram(sa, 0);
    saFsm.save(sa, 0);
    llcFsm.saveToSram(cores, 0);
    llcFsm.save(cores, 0);

    std::uint64_t bytes = 0;
    for (auto _ : state) {
        p.processor.context.touch();
        saFsm.saveToSram(sa, 0);
        const TransferResult r_sa = saFsm.save(sa, 0);
        llcFsm.saveToSram(cores, 0);
        const TransferResult r_cores = llcFsm.save(cores, 0);
        bytes += r_sa.bytes + r_cores.bytes;
        benchmark::DoNotOptimize(r_sa.latency + r_cores.latency);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

void
BM_MeeContextSaveFull(benchmark::State &state)
{
    contextSaveBench(state, ContextMutationKind::FullRegenerate);
}
BENCHMARK(BM_MeeContextSaveFull);

void
BM_MeeContextSaveIncremental(benchmark::State &state)
{
    contextSaveBench(state, ContextMutationKind::CsrSubset);
}
BENCHMARK(BM_MeeContextSaveIncremental);

void
BM_CycleProfileCold(benchmark::State &state)
{
    Logger::quiet(true);
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            measureCycleProfileUncached(cfg, techniques));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleProfileCold);

/**
 * Per-point cost of a sweep whose points share a warmed simulator
 * (8 standby cycles of warm-up, then a one-cycle probe).
 * BM_SweepPointCold builds and warms privately per point — the
 * historical sweep shape; BM_SweepPointWarmFork warms once outside the
 * timed region and forks a checkpoint per point, so each point pays
 * O(state copy) instead of O(warm-up). The tracked ratio between the
 * two is the step function the checkpoint subsystem buys.
 */
void
sweepPointBench(benchmark::State &state, bool warm_forked)
{
    Logger::quiet(true);
    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
    const TechniqueSet techniques = TechniqueSet::odrips();
    const StandbyTrace warm_trace = StandbyWorkloadGenerator::fixed(
        8, 20 * oneMs, 150 * oneMs, 0.7, 0.8e9);
    const StandbyTrace probe = StandbyWorkloadGenerator::fixed(
        1, 20 * oneMs, 150 * oneMs, 0.7, 0.8e9);

    if (warm_forked) {
        Platform platform(cfg);
        StandbySimulator sim(platform, techniques);
        sim.run(warm_trace);
        const Snapshot snapshot = Snapshot::capture(sim);
        for (auto _ : state) {
            ForkedSimulator child = snapshot.fork();
            benchmark::DoNotOptimize(child.simulator->run(probe));
        }
    } else {
        for (auto _ : state) {
            Platform platform(cfg);
            StandbySimulator sim(platform, techniques);
            sim.run(warm_trace);
            benchmark::DoNotOptimize(sim.run(probe));
        }
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_SweepPointCold(benchmark::State &state)
{
    sweepPointBench(state, false);
}
BENCHMARK(BM_SweepPointCold);

void
BM_SweepPointWarmFork(benchmark::State &state)
{
    sweepPointBench(state, true);
}
BENCHMARK(BM_SweepPointWarmFork);

void
BM_SnapshotCaptureRestore(benchmark::State &state)
{
    // The raw checkpoint primitives: capture the full simulator state
    // and restore it into a second, live simulator.
    Logger::quiet(true);
    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
    Platform platform(cfg);
    StandbySimulator sim(platform, TechniqueSet::odrips());
    sim.run(StandbyWorkloadGenerator::fixed(2, 20 * oneMs, 150 * oneMs,
                                            0.7, 0.8e9));
    Platform target_platform(cfg);
    StandbySimulator target(target_platform, TechniqueSet::odrips());

    for (auto _ : state) {
        const Snapshot snapshot = Snapshot::capture(sim);
        snapshot.restoreInto(target);
        benchmark::DoNotOptimize(snapshot.image().sections().size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotCaptureRestore);

void
BM_CycleProfileCached(benchmark::State &state)
{
    Logger::quiet(true);
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();
    CycleProfileCache cache;
    cache.getOrMeasure(cfg, techniques); // warm the entry
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.getOrMeasure(cfg, techniques));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleProfileCached);

/**
 * Persistent result store primitives (src/store/). LookupHot is the
 * latency a batched what-if query pays when its key is already on
 * disk: one map probe + one payload decode out of the mapped segment.
 * Insert is the buffered write-back cost, including the amortised
 * segment seal every ResultStore::flushThreshold inserts.
 */
struct ScratchStoreDir
{
    std::string path;

    ScratchStoreDir()
    {
        path = "/tmp/odrips-microbench-store-" +
               std::to_string(static_cast<unsigned long>(::getpid()));
        remove();
    }

    ~ScratchStoreDir() { remove(); }

    void
    remove() const
    {
        if (DIR *dir = ::opendir(path.c_str())) {
            while (const dirent *entry = ::readdir(dir)) {
                const std::string name = entry->d_name;
                if (name != "." && name != "..")
                    ::unlink((path + "/" + name).c_str());
            }
            ::closedir(dir);
            ::rmdir(path.c_str());
        }
    }
};

void
BM_StoreLookupHot(benchmark::State &state)
{
    Logger::quiet(true);
    const ScratchStoreDir scratch;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();
    const CyclePowerProfile profile =
        measureCycleProfile(cfg, techniques);
    const store::StoredResult result =
        store::makeStoredResult(profile, cfg);

    constexpr std::uint64_t keys = 256;
    {
        store::ResultStore writer(scratch.path,
                                  store::ResultStore::Mode::ReadWrite);
        for (std::uint64_t i = 0; i < keys; ++i)
            writer.insert(ProfileKey{i, ~i}, result);
        writer.flush();
    }

    // Reopen so every lookup decodes out of the mmapped segments, not
    // the in-memory pending batch.
    store::ResultStore db(scratch.path,
                          store::ResultStore::Mode::ReadOnly);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const ProfileKey key{i % keys, ~(i % keys)};
        ++i;
        benchmark::DoNotOptimize(db.lookup(key));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLookupHot);

void
BM_StoreInsert(benchmark::State &state)
{
    Logger::quiet(true);
    const ScratchStoreDir scratch;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();
    const CyclePowerProfile profile =
        measureCycleProfile(cfg, techniques);
    const store::StoredResult result =
        store::makeStoredResult(profile, cfg);

    store::ResultStore db(scratch.path,
                          store::ResultStore::Mode::ReadWrite);
    std::uint64_t i = 0;
    for (auto _ : state) {
        db.insert(ProfileKey{i, i * 2654435761u}, result);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInsert);

void
BM_FullStandbyCycle(benchmark::State &state)
{
    Logger::quiet(true);
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());
    for (auto _ : state) {
        // The simulator touches the context after every active window;
        // with the default FullRegenerate model every save stays a
        // full save, as before incremental saves existed.
        platform.processor.context.touch();
        flows.enterIdle();
        platform.eq.run(platform.now() + oneMs);
        flows.exitIdle();
        platform.eq.run(platform.now() + oneMs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullStandbyCycle);

void
BM_FullStandbyCycleIncremental(benchmark::State &state)
{
    // Same cycle, but under the CsrSubset mutation model: steady-state
    // entries save only the dirtied context lines.
    Logger::quiet(true);
    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
    Platform platform(cfg);
    StandbyFlows flows(platform, TechniqueSet::odrips());
    for (auto _ : state) {
        platform.processor.context.touch();
        flows.enterIdle();
        platform.eq.run(platform.now() + oneMs);
        flows.exitIdle();
        platform.eq.run(platform.now() + oneMs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullStandbyCycleIncremental);

void
BM_StepCalibration(benchmark::State &state)
{
    Crystal fast("f", 24.0e6, 18.0, Milliwatts::fromWatts(0.0));
    Crystal slow("s", 32768.0, -35.0, Milliwatts::fromWatts(0.0));
    StepCalibrator cal(fast, slow);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cal.calibrateForPpb());
    }
}
BENCHMARK(BM_StepCalibration);

} // namespace

#ifdef ODRIPS_BENCH_OPTIMIZED
BENCHMARK_MAIN();
#else
#include <cstdio>
int
main()
{
    // Guard (see bench/CMakeLists.txt): perf numbers from an
    // unoptimised build would poison the tracked BENCH_kernel.json
    // trajectory. Refuse to report any.
    std::fprintf(stderr,
                 "microbench: this build is not optimised; refusing to "
                 "report perf numbers.\nConfigure with "
                 "-DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo) and "
                 "rebuild.\n");
    return 1;
}
#endif
