/**
 * @file
 * ABL-DVFS — Ablation: memory DVFS, the paper's own future-work
 * suggestion (end of Sec. 8.2): "it might be more efficient to apply
 * dynamic voltage and frequency scaling to main memory".
 *
 * Compares the static DRAM frequency points of Fig. 6(c) against a
 * per-phase oracle that keeps transfers at full speed and drops the
 * rate only where it pays (the active window), including the re-lock
 * switch cost.
 */

#include <iostream>
#include <vector>

#include "core/memory_dvfs.hh"
#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    std::cout << "ABLATION: memory DVFS (the paper's Sec. 8.2 "
                 "suggestion) under ODRIPS\n\n";

    // Each scenario explores every DVFS operating point on fresh
    // platforms; the three shard across the pool, tables print in
    // order afterwards.
    const std::vector<double> mem_bounds = {0.0, 0.3, 0.8};
    const auto scenario_points = exec::parallelSweep(
        "memory-dvfs-sweep", mem_bounds.size(),
        [&](const exec::SweepPoint &point) {
            MemoryDvfsConfig dvfs;
            dvfs.memBoundFraction = mem_bounds[point.index];
            return exploreMemoryDvfs(skylakeConfig(),
                                     TechniqueSet::odrips(), dvfs);
        });

    for (std::size_t scenario = 0; scenario < mem_bounds.size();
         ++scenario) {
        const double mem_bound = mem_bounds[scenario];
        const auto &points = scenario_points[scenario];

        stats::Table table("memory-bound stall share = " +
                           stats::fmtPercent(mem_bound));
        table.setHeader({"policy", "active rate", "transfer rate",
                         "avg power", "transition"});
        double best_static = -1.0;
        for (const MemoryDvfsPoint &p : points) {
            if (!p.dynamic &&
                (best_static < 0 || p.averagePower < best_static)) {
                best_static = p.averagePower;
            }
            table.addRow(
                {p.label, stats::fmt(p.activeRate / 1e9, 3) + " GT/s",
                 stats::fmt(p.transferRate / 1e9, 3) + " GT/s",
                 stats::fmtPower(p.averagePower),
                 stats::fmtTime(ticksToSeconds(p.transitionLatency))});
        }
        table.print(std::cout);

        const MemoryDvfsPoint &dynamic = points.back();
        std::cout << "dynamic vs full-speed static: "
                  << stats::fmtPercent(1.0 - dynamic.averagePower /
                                                 points.front()
                                                     .averagePower)
                  << ";  vs best static: "
                  << stats::fmtPercent(1.0 - dynamic.averagePower /
                                                 best_static)
                  << "\n\n";
    }

    std::cout << "Shape: with purely latency-bound maintenance work "
                 "(top table, the Fig. 6(c)\nregime) the oracle "
                 "under-clocks the active window and matches the best "
                 "static\npoint while keeping transfers fast; once "
                 "stalls are bandwidth-bound, dilation\nat ~1.3 W "
                 "platform power swamps the interface savings and the "
                 "oracle holds\nfull speed. The dynamic policy is never "
                 "worse than the best static choice —\nwithout "
                 "committing globally, which is exactly why the paper "
                 "rejects static\ndown-clocking but endorses DVFS "
                 "(Sec. 8.2).\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
