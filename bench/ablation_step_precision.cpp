/**
 * @file
 * ABL-STEP — Ablation: Step fraction width f vs timer counting drift.
 * The paper fixes f = 21 for 1 ppb; this sweep shows the drift halving
 * per extra fraction bit and the calibration window doubling with it
 * (N_slow = 2^f), i.e. the precision/boot-cost trade-off.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    Crystal fast("f", 24.0e6, 18.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, -35.0, Milliwatts::zero());
    const StepCalibrator cal(fast, slow);

    std::cout << "ABLATION: Step fraction bits vs counting drift\n"
              << "(crystals at +18 / -35 ppm; drift over 1 hour in "
                 "ODRIPS)\n\n";

    stats::Table table("fraction-width sweep");
    table.setHeader({"f bits", "calibration window", "drift", "meets"
                     " 1 ppb", "meets 1 ppm"});

    const std::uint64_t hour = 32768ULL * 3600ULL;
    std::vector<unsigned> widths;
    for (unsigned f = 6; f <= 26; f += 2)
        widths.push_back(f);
    const auto rows = exec::parallelSweep(
        "step-precision-sweep", widths.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const unsigned f = widths[point.index];
            const CalibrationResult r = cal.calibrate(f);
            const double ppb = std::abs(cal.evaluateDriftPpb(r, hour));
            return {std::to_string(f),
                    stats::fmtTime(r.duration),
                    stats::fmt(ppb, 3) + " ppb",
                    ppb < 1.0 ? "yes" : "no",
                    ppb < 1000.0 ? "yes" : "no"};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    const unsigned f_req = StepCalibrator::requiredFractionBits(
        Hertz(24.0e6), Hertz(32768.0), 1000000000ULL);
    std::cout << "\nEq. 4 requirement for 1 ppb: f = " << f_req
              << " (paper: 21). Each extra bit halves the residual "
                 "quantization\nbut doubles the one-time calibration "
                 "window.\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
