/**
 * @file
 * QUERY ENGINE — batched what-if queries against the persistent
 * memoized result store (simulation-as-a-service).
 *
 * Reads one JSON query per line from stdin (see store/query.hh for the
 * schema), answers every query, and writes one JSON result per line to
 * stdout *in input order*. Repeated keys inside a batch are evaluated
 * once; with --store=DIR, keys already persisted by an earlier batch
 * are served straight from the mapped segments without simulating, and
 * freshly simulated keys are written back for the next batch.
 *
 * Determinism contract: stdout depends only on the queries. Whether a
 * result came from the store, the in-process memo, or a fresh
 * simulation is reported on stderr only, so scripts/check.sh can
 * demand bit-identical stdout between cold and hot runs, across
 * ODRIPS_PROFILE_CACHE={0,1} and any --jobs value.
 *
 *     query_engine --gen=1000 --gen-repeat=0.9 --emit-queries > batch
 *     query_engine --store=/tmp/odst --jobs=8 < batch > cold.jsonl
 *     query_engine --store=/tmp/odst --jobs=8 < batch > hot.jsonl
 *     cmp cold.jsonl hot.jsonl
 *
 * Batch-phase wall-clock timings (parse / hot serve / cold simulate)
 * are operator telemetry on stderr; simulation results never depend on
 * host time.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "sim/random.hh"
#include "store/profile_store.hh"
#include "store/query.hh"

using namespace odrips;

namespace
{

struct Options
{
    std::string storeDir;
    std::size_t gen = 0;
    double genRepeat = 0.9;
    std::uint64_t genSeed = 1;
    bool emitQueries = false;
};

// Host wall-clock for operator telemetry only (SweepMeter precedent);
// nothing on stdout depends on it.
double
secondsSince(std::chrono::steady_clock::time_point t0) // odrips-lint: allow(wall-clock)
{
    // odrips-lint: allow(wall-clock)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - t0).count();
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--store=", 0) == 0) {
            opt.storeDir = arg.substr(std::strlen("--store="));
        } else if (arg.rfind("--gen=", 0) == 0) {
            opt.gen = static_cast<std::size_t>(
                std::stoull(arg.substr(std::strlen("--gen="))));
        } else if (arg.rfind("--gen-repeat=", 0) == 0) {
            opt.genRepeat =
                std::stod(arg.substr(std::strlen("--gen-repeat=")));
        } else if (arg.rfind("--gen-seed=", 0) == 0) {
            opt.genSeed = std::stoull(
                arg.substr(std::strlen("--gen-seed=")));
        } else if (arg == "--emit-queries") {
            opt.emitQueries = true;
        } else if (arg.rfind("--jobs", 0) == 0) {
            // consumed by resolveJobs()
        } else {
            fatal("query_engine: unknown argument ", arg,
                  " (expected --store=DIR, --gen=N, --gen-repeat=F, "
                  "--gen-seed=S, --emit-queries, --jobs=N)");
        }
    }
    return opt;
}

/** Render @p spec as the JSON query line parseQuery() accepts. */
std::string
specLine(const store::QuerySpec &spec)
{
    store::JsonObjectWriter w;
    w.field("id", spec.id);
    w.field("technique", spec.technique);
    const auto knob = [&w](const char *name,
                           const store::QuerySpec::Knob &k) {
        if (k.set)
            w.field(name, k.value);
    };
    knob("core_freq_ghz", spec.coreFreqGhz);
    knob("idle_dwell_s", spec.idleDwellS);
    knob("active_min_ms", spec.activeMinMs);
    knob("active_max_ms", spec.activeMaxMs);
    knob("scalable_fraction", spec.scalableFraction);
    knob("network_wake_s", spec.networkWakeS);
    knob("coalescing_ms", spec.coalescingMs);
    knob("emram_pessimism", spec.emramPessimism);
    knob("llc_dirty_fraction", spec.llcDirtyFraction);
    knob("seed", spec.seed);
    if (spec.memorySet)
        w.field("memory",
                spec.memory == MainMemoryKind::Pcm ? "pcm" : "ddr3l");
    if (spec.contextStorageSet) {
        const char *name =
            spec.contextStorage == ContextStorage::SrSram ? "sr-sram"
            : spec.contextStorage == ContextStorage::Dram ? "dram"
                                                          : "emram";
        w.field("context_storage", name);
    }
    return w.done();
}

/**
 * Deterministic synthetic batch: @p n queries, each with probability
 * @p repeat a knob-for-knob copy (fresh id) of an earlier one, so the
 * unique-key count shrinks as repeat -> 1 (the ISSUE.md acceptance
 * batch is --gen=1000 --gen-repeat=0.9).
 */
std::vector<store::QuerySpec>
generateBatch(std::size_t n, double repeat, std::uint64_t seed)
{
    Rng rng(seed);
    const std::vector<std::string> techniques = store::techniqueNames();
    std::vector<store::QuerySpec> specs;
    specs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        store::QuerySpec spec;
        if (!specs.empty() && rng.chance(repeat)) {
            spec = specs[static_cast<std::size_t>(
                rng.uniformInt(specs.size()))];
        } else {
            spec.technique = techniques[static_cast<std::size_t>(
                rng.uniformInt(techniques.size()))];
            if (rng.chance(0.5)) {
                spec.coreFreqGhz.set = true;
                spec.coreFreqGhz.value = rng.uniform(0.4, 1.2);
            }
            if (rng.chance(0.5)) {
                spec.idleDwellS.set = true;
                spec.idleDwellS.value = rng.uniform(5.0, 60.0);
            }
            if (rng.chance(0.3)) {
                spec.scalableFraction.set = true;
                spec.scalableFraction.value = rng.uniform(0.2, 0.9);
            }
            if (rng.chance(0.2)) {
                spec.coalescingMs.set = true;
                spec.coalescingMs.value = rng.uniform(10.0, 200.0);
            }
        }
        // Built char-wise: GCC 12's restrict checker false-positives
        // on the char_traits::copy paths ("g" + rvalue, operator=)
        // under -O2/-O3.
        std::string id = std::to_string(i);
        id.insert(id.begin(), 'g');
        spec.id = std::move(id);
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    const Options opt = parseArgs(argc, argv);

    // odrips-lint: allow(wall-clock)
    const auto t_start = std::chrono::steady_clock::now();

    // ---- Assemble the batch: generated or one JSON query per line.
    std::vector<store::QuerySpec> specs;
    if (opt.gen > 0) {
        specs = generateBatch(opt.gen, opt.genRepeat, opt.genSeed);
    } else {
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(std::cin, line)) {
            ++lineno;
            if (line.empty() || line[0] == '#')
                continue;
            std::string id = std::to_string(lineno);
            id.insert(id.begin(), 'q');
            try {
                specs.push_back(store::parseQuery(line, id));
            } catch (const store::JsonError &e) {
                std::cerr << "query_engine: stdin line " << lineno
                          << ": " << e.what() << '\n';
                return 1;
            }
        }
    }

    if (opt.emitQueries) {
        for (const store::QuerySpec &spec : specs)
            std::cout << specLine(spec) << '\n';
        return 0;
    }

    std::vector<store::ResolvedQuery> queries;
    queries.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        try {
            queries.push_back(store::resolveQuery(specs[i]));
        } catch (const std::exception &e) {
            std::cerr << "query_engine: query " << specs[i].id << ": "
                      << e.what() << '\n';
            return 1;
        }
    }
    const double parse_s = secondsSince(t_start);

    // ---- Partition unique keys into store hits (hot) and misses.
    std::unique_ptr<store::ResultStore> db;
    if (!opt.storeDir.empty()) {
        try {
            db = std::make_unique<store::ResultStore>(
                opt.storeDir, store::ResultStore::Mode::ReadWrite);
        } catch (const std::exception &e) {
            std::cerr << "query_engine: cannot open store "
                      << opt.storeDir << ": " << e.what() << '\n';
            return 1;
        }
    }

    // odrips-lint: allow(wall-clock)
    const auto t_hot = std::chrono::steady_clock::now();
    std::map<ProfileKey, CyclePowerProfile> resolved;
    std::vector<std::size_t> cold; // indices of first query per cold key
    std::size_t hot_keys = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const ProfileKey key = queries[i].key;
        if (resolved.count(key) != 0)
            continue;
        if (db != nullptr) {
            if (const auto hit = db->lookup(key)) {
                resolved.emplace(key, hit->profile);
                ++hot_keys;
                continue;
            }
        }
        if (resolved.emplace(key, CyclePowerProfile{}).second)
            cold.push_back(i);
    }
    const double hot_s = secondsSince(t_hot);

    // ---- Simulate the cold keys, sharded across the pool. Each point
    // builds its own platform (and forks from the warmed checkpoint
    // when checkpoint sweeps are enabled), so points are independent.
    // odrips-lint: allow(wall-clock)
    const auto t_cold = std::chrono::steady_clock::now();
    if (!cold.empty()) {
        const std::vector<CyclePowerProfile> measured =
            exec::parallelSweep(
                "query-batch-cold", cold.size(),
                [&](const exec::SweepPoint &point) {
                    const store::ResolvedQuery &q =
                        queries[cold[point.index]];
                    return measureCycleProfile(q.cfg, q.techniques);
                });
        for (std::size_t i = 0; i < cold.size(); ++i) {
            const store::ResolvedQuery &q = queries[cold[i]];
            resolved[q.key] = measured[i];
            if (db != nullptr)
                db->insert(q.key,
                           store::makeStoredResult(measured[i], q.cfg));
        }
    }
    const double cold_s = secondsSince(t_cold);

    // ---- Emit results in input order; seal the write-back segment.
    for (const store::ResolvedQuery &q : queries)
        std::cout << store::resultLine(q, resolved.at(q.key)) << '\n';
    if (db != nullptr)
        db->flush();

    // ---- Operator telemetry (stderr only; see determinism contract).
    store::JsonObjectWriter telemetry;
    telemetry.field("batch", static_cast<std::uint64_t>(queries.size()));
    telemetry.field("unique_keys",
                    static_cast<std::uint64_t>(resolved.size()));
    telemetry.field("hot_keys", static_cast<std::uint64_t>(hot_keys));
    telemetry.field("cold_keys", static_cast<std::uint64_t>(cold.size()));
    telemetry.field("jobs",
                    static_cast<std::uint64_t>(exec::defaultJobs()));
    telemetry.field("parse_s", parse_s);
    telemetry.field("hot_serve_s", hot_s);
    telemetry.field("cold_sim_s", cold_s);
    telemetry.field("total_s", secondsSince(t_start));
    if (db != nullptr) {
        telemetry.field("store_hit_rate", db->counters().hitRate());
        telemetry.field("store_entries",
                        static_cast<std::uint64_t>(db->entryCount()));
        telemetry.field("store_segments",
                        static_cast<std::uint64_t>(db->segmentCount()));
        telemetry.field("store_writable", db->writable());
    }
    std::cerr << "query-engine-telemetry: " << telemetry.done() << '\n';
    stats::printRunTelemetry(std::cerr);
    return 0;
}
