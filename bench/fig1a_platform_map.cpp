/**
 * @file
 * FIG1A — Reproduces Fig. 1(a): the platform architecture map, with the
 * components that stay powered in DRIPS (the paper highlights them in
 * green) marked per configuration. Shows how ODRIPS shrinks the
 * always-on set down to the chipset hub, the RTC crystal, the Boot
 * SRAM, and the self-refreshing DRAM.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

void
mapFor(const TechniqueSet &tech)
{
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, tech);
    flows.enterIdle();

    std::cout << "\n--- " << tech.label() << " ---\n";
    stats::Table table("components powered in the idle state");
    table.setHeader({"component", "group", "state", "power"});
    for (const PowerComponent *c : platform.pm.components()) {
        const bool on = c->power() > Milliwatts::zero();
        table.addRow({c->name(), c->group(), on ? "AON" : "off",
                      on ? stats::fmtPower(c->power()) : "-"});
    }
    table.print(std::cout);

    std::cout << "rails: ";
    for (const auto &rail : platform.rails.all()) {
        std::cout << rail->name() << "="
                  << stats::fmtPower(rail->power()) << "  ";
    }
    std::cout << "\nAON set size: ";
    std::size_t on_count = 0;
    for (const PowerComponent *c : platform.pm.components())
        on_count += c->power() > Milliwatts::zero();
    std::cout << on_count << " of " << platform.pm.components().size()
              << " components\n";
}

} // namespace

int
main()
{
    Logger::quiet(true);

    std::cout << "FIG 1(a): platform architecture and the always-on "
                 "set in the idle state\n"
              << "(the paper highlights the DRIPS-powered blocks in "
                 "green; here they read 'AON')\n";

    mapFor(TechniqueSet::baseline());
    mapFor(TechniqueSet::odrips());

    std::cout << "\nShape check: ODRIPS hands every processor-side AON "
                 "duty to the chipset hub —\nwhat remains on is the "
                 "chipset AON domain, the 32 kHz crystal, the Boot "
                 "SRAM,\nthe FET leakage, DRAM self-refresh + CKE, and "
                 "the board's fixed loads.\n";
    return 0;
}
