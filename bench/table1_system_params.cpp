/**
 * @file
 * TAB1 — Reproduces Table 1: baseline and target system parameters,
 * as encoded in the platform configuration presets.
 */

#include <iostream>

#include "core/odrips.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig sky = skylakeConfig();
    const PlatformConfig has = haswellUltConfig();

    std::cout << "TABLE 1: baseline and target system parameters\n\n";

    stats::Table table("system parameters");
    table.setHeader({"parameter", "baseline (Haswell-ULT)",
                     "target (Skylake)"});
    table.addRow({"processor", has.name, sky.name});
    table.addRow({"process node", to_string(has.processorNode),
                  to_string(sky.processorNode)});
    table.addRow({"chipset node", to_string(has.chipsetNode),
                  to_string(sky.chipsetNode)});
    table.addRow({"core frequency range", "0.8 - 2.4 GHz",
                  "0.8 - 2.4 GHz"});
    table.addRow({"LLC",
                  std::to_string(has.llcBytes >> 20) + " MB",
                  std::to_string(sky.llcBytes >> 20) + " MB"});
    table.addRow({"memory", "DDR3L-1.6GHz dual channel",
                  "DDR3L-1.6GHz dual channel"});
    table.addRow({"memory capacity",
                  std::to_string(has.dram.capacityBytes >> 30) + " GB",
                  std::to_string(sky.dram.capacityBytes >> 30) + " GB"});
    table.addRow({"DRIPS exit latency",
                  stats::fmtTime(ticksToSeconds(has.timings.baselineExit)),
                  stats::fmtTime(
                      ticksToSeconds(sky.timings.baselineExit))});
    table.print(std::cout);

    // The power-model methodology (Sec. 7): measured 22 nm numbers are
    // scaled to 14 nm using the process characteristics.
    std::cout << "\nProcess-scaling factors (the paper's step 2):\n";
    stats::Table scaling("22nm -> 14nm scaling");
    scaling.setHeader({"power type", "scale factor"});
    scaling.addRow({"dynamic",
                    stats::fmt(dynamicScale(ProcessNode::Nm22,
                                            ProcessNode::Nm14),
                               3)});
    scaling.addRow({"leakage",
                    stats::fmt(leakageScale(ProcessNode::Nm22,
                                            ProcessNode::Nm14),
                               3)});
    scaling.print(std::cout);

    const CyclePowerProfile sky_p =
        measureCycleProfile(sky, TechniqueSet::baseline());
    const CyclePowerProfile has_p =
        measureCycleProfile(has, TechniqueSet::baseline());
    std::cout << "\nResulting DRIPS platform power: Haswell-ULT "
              << stats::fmtPower(has_p.idlePower) << "  ->  Skylake "
              << stats::fmtPower(sky_p.idlePower) << '\n';
    // Cache/store/sweep counters go to stderr so the tables above
    // stay byte-identical for any --jobs value or attached store.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
