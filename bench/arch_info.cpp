/**
 * @file
 * Prints the resolved crypto dispatch configuration as one JSON object:
 * active level, kernel names, and the probed CPU feature flags.
 * scripts/bench.sh embeds this (plus the git SHA) in
 * BENCH_kernel.json so every tracked number records the hardware and
 * kernel tier that produced it. Honors ODRIPS_DISPATCH.
 */

#include <cstdio>

#include "arch/cpu_features.hh"
#include "arch/dispatch.hh"

int
main()
{
    const odrips::arch::CryptoKernels &k = odrips::arch::activeKernels();
    std::printf("{\"dispatch\": \"%s\", \"sha256_kernel\": \"%s\", "
                "\"speck_kernel\": \"%s\", \"cpu_features\": \"%s\"}\n",
                k.levelName, k.sha256Name, k.speckName,
                odrips::arch::cpuFeatureString().c_str());
    return 0;
}
