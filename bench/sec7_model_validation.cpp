/**
 * @file
 * SEC7 — Reproduces the power-model validation methodology of Sec. 7:
 * the paper first *predicts* technique savings with its in-house power
 * model, then validates the predictions post-silicon and reports ~95%
 * accuracy.
 *
 * Here the analytic Eq. 1 evaluation of a measured cycle profile plays
 * the power model, and the full event-driven simulation plays the
 * "silicon". The bench sweeps configurations and dwells and reports the
 * model's accuracy distribution.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    std::cout << "SEC 7: power-model validation — analytic Eq. 1 vs "
                 "event-driven simulation\n\n";

    stats::Table table("validation grid");
    table.setHeader({"configuration", "dwell", "model", "\"silicon\"",
                     "accuracy"});

    std::vector<double> accuracies;
    for (const TechniqueSet &tech :
         {TechniqueSet::baseline(), TechniqueSet::aonIoGated(),
          TechniqueSet::odrips()}) {
        const PlatformConfig cfg = skylakeConfig();
        const CyclePowerProfile profile =
            measureCycleProfile(cfg, tech);

        for (Tick dwell : {20 * oneMs, 200 * oneMs, 2 * oneSec,
                           30 * oneSec}) {
            const double predicted =
                averagePowerEq1(profile, dwell, 150 * oneMs, 0.7);

            Platform platform(cfg);
            StandbySimulator sim(platform, tech);
            const StandbyResult measured =
                sim.run(StandbyWorkloadGenerator::fixed(
                    2, dwell, 150 * oneMs, 0.7, 0.8e9));

            const double accuracy =
                1.0 - std::abs(predicted -
                               measured.averageBatteryPower) /
                          measured.averageBatteryPower;
            accuracies.push_back(accuracy);
            table.addRow({tech.label(),
                          stats::fmtTime(ticksToSeconds(dwell)),
                          stats::fmtPower(predicted),
                          stats::fmtPower(measured.averageBatteryPower),
                          stats::fmtPercent(accuracy)});
        }
    }
    table.print(std::cout);

    const double worst =
        *std::min_element(accuracies.begin(), accuracies.end());
    double sum = 0.0;
    for (double a : accuracies)
        sum += a;

    std::cout << "\nmodel accuracy: mean "
              << stats::fmtPercent(sum / static_cast<double>(accuracies.size())) << ", worst "
              << stats::fmtPercent(worst)
              << "  (paper reports ~95% for its power model vs "
                 "post-silicon)\n";
    // Cache/store/sweep counters go to stderr so the tables above
    // stay byte-identical for any --jobs value or attached store.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
