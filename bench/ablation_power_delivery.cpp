/**
 * @file
 * ABL-PD — Ablation: power-delivery efficiency vs ODRIPS savings.
 * The paper credits 5% of the 22% savings to the delivery "tax" at its
 * measured 74% DRIPS efficiency; this sweep shows how the technique's
 * value grows on platforms with worse light-load regulators.
 */

#include <iostream>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    std::cout << "ABLATION: light-load delivery efficiency vs ODRIPS "
                 "savings\n\n";

    stats::Table table("delivery-efficiency sweep");
    table.setHeader({"DRIPS efficiency", "baseline idle", "ODRIPS idle",
                     "avg savings", "break-even"});

    // Each point measures two full platform cycles on its own
    // Platform/EventQueue, so the points shard across the pool.
    const std::vector<double> effs = {0.55, 0.65, 0.74, 0.85, 0.95};
    const auto rows = exec::parallelSweep(
        "power-delivery-sweep", effs.size(),
        [&](const exec::SweepPoint &point) -> std::vector<std::string> {
            const double eff = effs[point.index];
            PlatformConfig cfg = skylakeConfig();
            cfg.pdLowEfficiency = eff;

            const CyclePowerProfile base =
                measureCycleProfile(cfg, TechniqueSet::baseline());
            const CyclePowerProfile odrips =
                measureCycleProfile(cfg, TechniqueSet::odrips());
            const double saving =
                1.0 - standardWorkloadAverage(odrips, cfg) /
                          standardWorkloadAverage(base, cfg);
            const BreakevenResult be = findBreakeven(odrips, base);

            return {stats::fmtPercent(eff),
                    stats::fmtPower(base.idlePower),
                    stats::fmtPower(odrips.idlePower),
                    stats::fmtPercent(saving),
                    stats::fmtTime(ticksToSeconds(be.breakEvenDwell))};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "\nShape: at the paper's 74% the battery saves "
                 "1/0.74 = 1.35 W per watt of\neliminated load; worse "
                 "regulators amplify every technique's value.\n";
    stats::printRunTelemetry(std::cerr);
    return 0;
}
