/**
 * @file
 * ABL-PD — Ablation: power-delivery efficiency vs ODRIPS savings.
 * The paper credits 5% of the 22% savings to the delivery "tax" at its
 * measured 74% DRIPS efficiency; this sweep shows how the technique's
 * value grows on platforms with worse light-load regulators.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    std::cout << "ABLATION: light-load delivery efficiency vs ODRIPS "
                 "savings\n\n";

    stats::Table table("delivery-efficiency sweep");
    table.setHeader({"DRIPS efficiency", "baseline idle", "ODRIPS idle",
                     "avg savings", "break-even"});

    for (double eff : {0.55, 0.65, 0.74, 0.85, 0.95}) {
        PlatformConfig cfg = skylakeConfig();
        cfg.pdLowEfficiency = eff;

        const CyclePowerProfile base =
            measureCycleProfile(cfg, TechniqueSet::baseline());
        const CyclePowerProfile odrips =
            measureCycleProfile(cfg, TechniqueSet::odrips());
        const double saving =
            1.0 - standardWorkloadAverage(odrips, cfg) /
                      standardWorkloadAverage(base, cfg);
        const BreakevenResult be = findBreakeven(odrips, base);

        table.addRow({stats::fmtPercent(eff),
                      stats::fmtPower(base.idlePower),
                      stats::fmtPower(odrips.idlePower),
                      stats::fmtPercent(saving),
                      stats::fmtTime(ticksToSeconds(be.breakEvenDwell))});
    }
    table.print(std::cout);

    std::cout << "\nShape: at the paper's 74% the battery saves "
                 "1/0.74 = 1.35 W per watt of\neliminated load; worse "
                 "regulators amplify every technique's value.\n";
    return 0;
}
