/**
 * @file
 * FIG6C — Reproduces Fig. 6(c): the effect of DRAM frequency on the
 * connected-standby average power under ODRIPS.
 *
 * Paper: lowering the DRAM data rate from 1.6 GHz to 1.067 / 0.8 GHz
 * saves ~0.3% / ~0.7% on this workload (mostly in Active&Transitions),
 * while the reduced bandwidth lengthens the context save/restore.
 */

#include <iostream>

#include "core/odrips.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig base_cfg = skylakeConfig();
    const double rates[] = {1.6e9, 1.067e9, 0.8e9};
    const char *paper[] = {"baseline", "-0.3%", "-0.7%"};

    std::cout << "FIG 6(c): ODRIPS average power vs DRAM frequency\n\n";

    stats::Table table("DRAM frequency sweep (ODRIPS)");
    table.setHeader({"DRAM rate", "bandwidth", "ctx save", "ctx restore",
                     "avg power", "delta", "paper"});

    double baseline_avg = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        PlatformConfig cfg = base_cfg;
        cfg.dram = cfg.dram.withDataRate(rates[i]);
        const CyclePowerProfile p =
            measureCycleProfile(cfg, TechniqueSet::odrips());
        const double avg = standardWorkloadAverage(p, cfg);
        if (i == 0)
            baseline_avg = avg;

        table.addRow(
            {stats::fmt(rates[i] / 1e9, 3) + " GT/s",
             stats::fmt(cfg.dram.peakBandwidth() / 1e9, 1) + " GB/s",
             stats::fmtTime(ticksToSeconds(p.contextSaveLatency)),
             stats::fmtTime(ticksToSeconds(p.contextRestoreLatency)),
             stats::fmtPower(avg),
             i == 0 ? "baseline"
                    : stats::fmtPercent(avg / baseline_avg - 1.0),
             paper[i]});
    }
    table.print(std::cout);

    std::cout
        << "\nShape check: small average-power savings at lower DRAM\n"
           "frequency; entry/exit latencies grow with the longer\n"
           "context transfer — negligible against the 30 s residency.\n";
    // Cache/store/sweep counters go to stderr so the tables above
    // stay byte-identical for any --jobs value or attached store.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
