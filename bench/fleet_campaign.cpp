/**
 * @file
 * FLEET CAMPAIGN — population-scale connected-standby evaluation.
 *
 * Simulates N device-days of a mixed user population (see
 * workload/user_profile.hh) and reports the population distribution
 * of standby power and days-of-standby: p1/p10/p50/p90/p99, streamed
 * through O(stats) mergeable accumulators (src/fleet/, src/stats/).
 *
 * Determinism contract: stdout depends only on the campaign
 * configuration — bit-identical across --jobs, ODRIPS_CHECKPOINT and
 * ODRIPS_PROFILE_CACHE (enforced by the scripts/check.sh fleet gate).
 * Throughput telemetry (pool restores, cache hits, worker balance) is
 * stderr only.
 *
 *     fleet_campaign --devices=10000 --jobs=8           # warm engine
 *     fleet_campaign --devices=100 --cold               # naive foil
 *     fleet_campaign --emit-odwl=pop.odwl               # save population
 *     fleet_campaign --odwl=pop.odwl --devices=1000     # replay it
 *
 * scripts/bench.sh times the binary externally with `date` and records
 * device_days_per_second (cold vs warm vs store-hot) in
 * BENCH_kernel.json.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "fleet/campaign.hh"
#include "sim/logging.hh"
#include "store/profile_store.hh"
#include "workload/odwl.hh"

using namespace odrips;

namespace
{

struct Options
{
    fleet::CampaignConfig campaign;
    std::string emitOdwl;
    std::string loadOdwl;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.campaign.base = skylakeConfig();
    opt.campaign.population = FleetPopulation::mixedReference();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--devices=", 0) == 0) {
            opt.campaign.deviceDays =
                std::stoull(arg.substr(std::strlen("--devices=")));
        } else if (arg == "--cold") {
            opt.campaign.naiveCold = true;
        } else if (arg.rfind("--sim-sample=", 0) == 0) {
            opt.campaign.simSampleEvery =
                std::stoull(arg.substr(std::strlen("--sim-sample=")));
        } else if (arg.rfind("--battery-wh=", 0) == 0) {
            opt.campaign.batteryWattHours =
                std::stod(arg.substr(std::strlen("--battery-wh=")));
        } else if (arg.rfind("--seed=", 0) == 0) {
            opt.campaign.seed =
                std::stoull(arg.substr(std::strlen("--seed=")));
        } else if (arg.rfind("--batch=", 0) == 0) {
            opt.campaign.batchSize =
                std::stoull(arg.substr(std::strlen("--batch=")));
        } else if (arg.rfind("--emit-odwl=", 0) == 0) {
            opt.emitOdwl = arg.substr(std::strlen("--emit-odwl="));
        } else if (arg.rfind("--odwl=", 0) == 0) {
            opt.loadOdwl = arg.substr(std::strlen("--odwl="));
        } else if (arg.rfind("--jobs", 0) == 0) {
            // consumed by resolveJobs()
        } else {
            fatal("fleet_campaign: unknown argument ", arg,
                  " (expected --devices=N, --cold, --sim-sample=N, "
                  "--battery-wh=F, --seed=N, --batch=N, "
                  "--emit-odwl=PATH, --odwl=PATH, --jobs=N)");
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    exec::setDefaultJobs(resolveJobs(argc, argv));
    Options opt = parseArgs(argc, argv);

    // ODRIPS_STORE=dir routes repeat profiles through the persistent
    // result store behind the cycle-profile cache.
    const auto attached = store::attachGlobalStoreFromEnv();

    if (!opt.loadOdwl.empty()) {
        try {
            const OdwlDocument doc = readOdwlFile(opt.loadOdwl);
            opt.campaign.population = doc.population;
        } catch (const OdwlError &e) {
            std::cerr << "fleet_campaign: " << e.what() << '\n';
            return 1;
        }
    }

    if (!opt.emitOdwl.empty()) {
        OdwlDocument doc;
        doc.population = opt.campaign.population;
        try {
            writeOdwlFile(opt.emitOdwl, doc);
        } catch (const OdwlError &e) {
            std::cerr << "fleet_campaign: " << e.what() << '\n';
            return 1;
        }
        std::cerr << "fleet_campaign: wrote population to "
                  << opt.emitOdwl << '\n';
        return 0;
    }

    const fleet::CampaignResult result = runCampaign(opt.campaign);
    fleet::printCampaignReport(std::cout, opt.campaign, result);

    fleet::printCampaignTelemetry(std::cerr, result);
    stats::printRunTelemetry(std::cerr);
    return 0;
}
