/**
 * @file
 * FIG6D — Reproduces Fig. 6(d): storing the processor context in
 * emerging memory technologies.
 *
 *  - ODRIPS-MRAM: optimistic embedded MRAM replaces the S/R SRAMs;
 *    slightly lower average power than ODRIPS and the lowest
 *    break-even point (no off-chip transfer).
 *  - ODRIPS-PCM: PCM replaces DRAM as main memory; no self-refresh and
 *    no CKE drive, lifting total savings to ~37% vs the baseline
 *    (~15% below ODRIPS).
 */

#include <iostream>

#include "core/odrips.hh"
#include "store/profile_store.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);
    // ODRIPS_STORE=dir attaches the persistent result store behind
    // the profile cache; the backend reports into the stderr
    // telemetry, so result tables stay byte-identical either way.
    const auto attached_store = store::attachGlobalStoreFromEnv();

    const PlatformConfig dram_cfg = skylakeConfig();
    PlatformConfig pcm_cfg = dram_cfg;
    pcm_cfg.memoryKind = MainMemoryKind::Pcm;

    const CyclePowerProfile base =
        measureCycleProfile(dram_cfg, TechniqueSet::baseline());
    const double base_avg = standardWorkloadAverage(base, dram_cfg);

    struct Row
    {
        const char *label;
        const char *paper;
        CyclePowerProfile profile;
    };
    Row rows[] = {
        {"DRIPS (baseline)", "-", base},
        {"ODRIPS", "22%",
         measureCycleProfile(dram_cfg, TechniqueSet::odrips())},
        {"ODRIPS-MRAM", "slightly > ODRIPS",
         measureCycleProfile(dram_cfg, TechniqueSet::odripsMram())},
        {"ODRIPS-PCM", "37%",
         measureCycleProfile(pcm_cfg, TechniqueSet::odripsPcm())},
    };

    std::cout << "FIG 6(d): emerging-NVM context/main-memory variants\n\n";

    stats::Table table("NVM variants");
    table.setHeader({"configuration", "idle power", "avg power",
                     "savings", "paper", "break-even"});
    for (const Row &row : rows) {
        const double avg = standardWorkloadAverage(row.profile, dram_cfg);
        const BreakevenResult be = findBreakeven(row.profile, base);
        table.addRow(
            {row.label, stats::fmtPower(row.profile.idlePower),
             stats::fmtPower(avg),
             &row == rows ? "-"
                          : stats::fmtPercent(1.0 - avg / base_avg),
             row.paper,
             &row == rows || !be.found()
                 ? "-"
                 : stats::fmtTime(ticksToSeconds(be.breakEvenDwell))});
    }
    table.print(std::cout);

    std::cout << "\nShape checks:\n"
              << "  ODRIPS-MRAM < ODRIPS in average power (slightly), "
                 "with the lowest break-even;\n"
              << "  ODRIPS-PCM removes DRAM self-refresh + CKE drive "
                 "entirely (~37% total savings).\n"
              << "  ODRIPS-PCM's long break-even is dominated by PCM's "
                 "costlier active-window\n  accesses, not by its "
                 "transitions — it needs dwell to amortize the C0 "
                 "penalty.\n";
    // Cache/store/sweep counters go to stderr so the tables above
    // stay byte-identical for any --jobs value or attached store.
    stats::printRunTelemetry(std::cerr);
    return 0;
}
