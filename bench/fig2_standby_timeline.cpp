/**
 * @file
 * FIG2 — Reproduces Fig. 2: the connected-standby timeline and its
 * average power. The platform alternates between ~30 s of DRIPS (tens
 * of milliwatts) and 100-300 ms of kernel maintenance in C0 (~3 W,
 * display off), with ~200 us entry and ~300 us exit transitions.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    const PlatformConfig cfg = skylakeConfig();
    Platform platform(cfg);
    StandbySimulator sim(platform, TechniqueSet::baseline());

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(8);
    const StandbyResult r = sim.run(trace);

    std::cout << "FIG 2: connected-standby operation "
              << "(baseline DRIPS, " << trace.cycles.size()
              << " cycles)\n\n";

    stats::Table table("connected-standby timeline summary");
    table.setHeader({"quantity", "paper", "model"});
    table.addRow({"idle (DRIPS) power", "~60 mW",
                  stats::fmtPower(r.idleBatteryPower)});
    table.addRow({"active (C0, display off) power", "~3 W",
                  stats::fmtPower(r.activeBatteryPower)});
    table.addRow({"DRIPS residency", "99.5%",
                  stats::fmtPercent(r.idleResidency)});
    table.addRow({"C0 + transition residency", "0.5%",
                  stats::fmtPercent(r.activeResidency +
                                    r.transitionResidency)});
    table.addRow({"idle dwell", "~30 s",
                  stats::fmtTime(trace.meanIdleSeconds())});
    table.addRow({"active window", "100-300 ms",
                  stats::fmtTime(trace.meanActiveSeconds(
                      cfg.coreFrequencyHz))});
    table.addRow({"entry latency", "~200 us",
                  stats::fmtTime(ticksToSeconds(r.meanEntryLatency))});
    table.addRow({"exit latency", "~300 us",
                  stats::fmtTime(ticksToSeconds(r.meanExitLatency))});
    table.addRow({"average platform power", "tens of mW",
                  stats::fmtPower(r.averageBatteryPower)});
    table.print(std::cout);

    // The Eq. 1 decomposition of the average.
    const double total_s = ticksToSeconds(r.simulatedTime);
    std::cout << "\nEq. 1 decomposition of the average power:\n"
              << "  DRIPS   : " << stats::fmtPercent(r.idleResidency)
              << " of time at " << stats::fmtPower(r.idleBatteryPower)
              << '\n'
              << "  C0      : " << stats::fmtPercent(r.activeResidency)
              << " of time at ~" << stats::fmtPower(r.activeBatteryPower)
              << '\n'
              << "  entry+exit: "
              << stats::fmtPercent(r.transitionResidency) << " of time\n"
              << "  simulated " << stats::fmt(total_s, 1) << " s, "
              << r.cycles << " wake cycles\n";
    return 0;
}
