/**
 * @file
 * LONGTRACE — end-to-end simulator throughput over a long standby
 * trace (default 1000 cycles, ~8 hours of simulated time) under the
 * CsrSubset context-mutation model, so the steady-state context saves
 * run the incremental dirty-line path.
 *
 * Prints the simulated cycle count and summary figures. The host wall
 * clock is deliberately NOT read here (simulator sources must not
 * depend on host time — the wall-clock lint rule): scripts/bench.sh
 * times this binary from the shell and derives the cycles/second
 * throughput entry of BENCH_kernel.json.
 *
 * Usage: longtrace_throughput [cycles]
 */

#include <cstdlib>
#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);

    std::size_t count = 1000;
    if (argc > 1) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0' || v == 0) {
            std::cerr << "longtrace_throughput: bad cycle count '"
                      << argv[1] << "'\n";
            return 1;
        }
        count = static_cast<std::size_t>(v);
    }

    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = ContextMutationKind::CsrSubset;

    Platform platform(cfg);
    StandbySimulator sim(platform, TechniqueSet::odrips());

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(count);
    const StandbyResult result = sim.run(trace);

    if (!result.contextIntact) {
        std::cerr << "longtrace_throughput: context integrity FAILED\n";
        return 1;
    }

    std::cout << "longtrace: " << result.cycles << " cycles, "
              << stats::fmt(ticksToSeconds(result.simulatedTime), 1)
              << " s simulated, avg battery power "
              << stats::fmt(result.averageBatteryPower * 1e3, 3)
              << " mW\n";
    return 0;
}
