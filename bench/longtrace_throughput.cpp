/**
 * @file
 * LONGTRACE — end-to-end simulator throughput over a long standby
 * trace (default 1000 cycles, ~8 hours of simulated time) under the
 * CsrSubset context-mutation model, so the steady-state context saves
 * run the incremental dirty-line path.
 *
 * Prints the simulated cycle count and summary figures. The host wall
 * clock is deliberately NOT read here (simulator sources must not
 * depend on host time — the wall-clock lint rule): scripts/bench.sh
 * times this binary from the shell and derives the cycles/second
 * throughput entry of BENCH_kernel.json.
 *
 * With a non-zero checkpoint interval the run exercises periodic
 * checkpoint/resume: every N cycles the full simulator state plus run
 * progress is written to disk, read back, and restored into a freshly
 * constructed simulator that continues the run. The summary figures
 * are bit-identical to an uninterrupted run (the checkpoint gate in
 * scripts/check.sh pins this).
 *
 * Usage: longtrace_throughput [cycles] [checkpoint-every]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

std::size_t
parseCount(const char *arg, const char *what, bool allow_zero)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0' || (v == 0 && !allow_zero)) {
        std::cerr << "longtrace_throughput: bad " << what << " '" << arg
                  << "'\n";
        std::exit(1);
    }
    return static_cast<std::size_t>(v);
}

/** Run the trace, checkpointing to disk and resuming on a fresh
 * simulator every @p every cycles. */
StandbyResult
runWithCheckpoints(const PlatformConfig &cfg, const TechniqueSet &tech,
                   const StandbyTrace &trace, std::size_t every)
{
    const std::string path = "odrips_longtrace.ckpt";

    auto platform = std::make_unique<Platform>(cfg);
    auto sim = std::make_unique<StandbySimulator>(*platform, tech);
    RunProgress progress = sim->beginRun();

    std::size_t done = 0;
    for (const StandbyCycle &cycle : trace.cycles) {
        sim->stepCycle(progress, cycle);
        ++done;
        if (done % every != 0 || done == trace.cycles.size())
            continue;

        // Full round trip: state -> disk -> fresh simulator.
        Snapshot::capture(*sim, progress).writeFile(path);
        const Snapshot loaded = Snapshot::readFile(path, cfg, tech);
        auto next_platform = std::make_unique<Platform>(cfg);
        auto next_sim =
            std::make_unique<StandbySimulator>(*next_platform, tech);
        loaded.restoreInto(*next_sim, progress);
        sim = std::move(next_sim);
        platform = std::move(next_platform);
    }
    std::remove(path.c_str());
    return sim->finishRun(progress);
}

} // namespace

int
main(int argc, char **argv)
{
    Logger::quiet(true);

    std::size_t count = 1000;
    std::size_t checkpoint_every = 0;
    if (argc > 1)
        count = parseCount(argv[1], "cycle count", false);
    if (argc > 2)
        checkpoint_every =
            parseCount(argv[2], "checkpoint interval", true);

    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
    const TechniqueSet tech = TechniqueSet::odrips();

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(count);

    StandbyResult result;
    if (checkpoint_every == 0) {
        Platform platform(cfg);
        StandbySimulator sim(platform, tech);
        result = sim.run(trace);
    } else {
        result = runWithCheckpoints(cfg, tech, trace, checkpoint_every);
    }

    if (!result.contextIntact) {
        std::cerr << "longtrace_throughput: context integrity FAILED\n";
        return 1;
    }

    std::cout << "longtrace: " << result.cycles << " cycles, "
              << stats::fmt(ticksToSeconds(result.simulatedTime), 1)
              << " s simulated, avg battery power "
              << stats::fmt(result.averageBatteryPower * 1e3, 3)
              << " mW\n";
    return 0;
}
