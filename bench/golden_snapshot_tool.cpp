/**
 * @file
 * Regenerates the checked-in golden snapshot fixture
 * (tests/data/golden_v1.ckpt): the schema-v1 compatibility pin used by
 * tests/core/checkpoint_corruption_test.cc.
 *
 * The fixture is the default skylake configuration with the full
 * ODRIPS technique set, settled for 10 us of simulated time and
 * captured without run progress — a deterministic function of the
 * simulator sources, so regeneration is only ever needed after an
 * intentional snapshot-format change (which also bumps
 * SnapshotImage::schemaVersion).
 *
 * Usage: golden_snapshot_tool <output-path>
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: golden_snapshot_tool <output-path>\n";
        return 1;
    }

    Logger::quiet(true);
    const PlatformConfig cfg = skylakeConfig();
    Platform platform(cfg);
    StandbySimulator sim(platform, TechniqueSet::odrips());
    platform.eq.run(platform.eq.now() + 10 * oneUs);

    Snapshot::capture(sim).writeFile(argv[1]);
    std::cout << "wrote schema-v" << ckpt::SnapshotImage::schemaVersion
              << " snapshot to " << argv[1] << "\n";
    return 0;
}
