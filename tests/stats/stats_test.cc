/**
 * @file
 * Unit tests for the statistics framework and report rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/report.hh"
#include "stats/stat.hh"

using namespace odrips;
using namespace odrips::stats;

namespace
{

TEST(ScalarTest, AccumulatesAndResets)
{
    StatGroup g("g");
    Scalar s(g, "count", "a counter");
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s -= 1;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(ScalarTest, SetOverwrites)
{
    StatGroup g("g");
    Scalar s(g, "gauge", "a gauge");
    s.set(12.5);
    EXPECT_DOUBLE_EQ(s.value(), 12.5);
}

TEST(AverageTest, MeanOfSamples)
{
    StatGroup g("g");
    Average a(g, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(DistributionTest, MinMaxMeanStddev)
{
    StatGroup g("g");
    Distribution d(g, "dist", "a distribution");
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.sum(), 15.0);
    EXPECT_NEAR(d.stddev(), 1.5811, 1e-3);
}

TEST(DistributionTest, SingleSampleStddevZero)
{
    StatGroup g("g");
    Distribution d(g, "dist", "");
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 7.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(StatGroupTest, HierarchicalNames)
{
    StatGroup root("platform");
    StatGroup child("pmu", &root);
    EXPECT_EQ(child.fullName(), "platform.pmu");
    EXPECT_EQ(root.children().size(), 1u);
}

TEST(StatGroupTest, ResetAllCascades)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 5;
    b += 7;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(StatGroupTest, DumpContainsNamesAndUnits)
{
    StatGroup root("sys");
    Scalar s(root, "energy", "total energy", "J");
    s.set(1.5);
    std::ostringstream os;
    dumpStats(os, root);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.energy = 1.5 J"), std::string::npos);
    EXPECT_NE(text.find("total energy"), std::string::npos);
}

TEST(TableTest, RendersAlignedColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"bb", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, MismatchedRowWidthFails)
{
    Logger::throwOnError(true);
    Table t("demo");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), SimError);
    Logger::throwOnError(false);
}

TEST(TableTest, SeparatorRows)
{
    Table t;
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_FALSE(t.toString().empty());
}

TEST(FormatTest, PowerUnits)
{
    EXPECT_EQ(fmtPower(2.5), "2.500 W");
    EXPECT_EQ(fmtPower(0.060), "60.000 mW");
    EXPECT_EQ(fmtPower(42e-6), "42.000 uW");
}

TEST(FormatTest, TimeUnits)
{
    EXPECT_EQ(fmtTime(30.0), "30.000 s");
    EXPECT_EQ(fmtTime(1.5e-3), "1.500 ms");
    EXPECT_EQ(fmtTime(18e-6), "18.000 us");
    EXPECT_EQ(fmtTime(300e-9), "300.000 ns");
}

TEST(FormatTest, Percent)
{
    EXPECT_EQ(fmtPercent(0.22), "22.0%");
    EXPECT_EQ(fmtPercent(-0.05), "-5.0%");
    EXPECT_EQ(fmtPercent(0.2235, 2), "22.35%");
}

TEST(FormatTest, FixedDigits)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(HistogramTest, BucketsAndEdges)
{
    StatGroup g("g");
    Histogram h(g, "h", "latency", 0.0, 10.0, 10, "s");
    h.sample(0.5);
    h.sample(0.9);
    h.sample(5.5);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(10), 10.0);
}

TEST(HistogramTest, UnderAndOverflow)
{
    StatGroup g("g");
    Histogram h(g, "h", "", 0.0, 1.0, 4);
    h.sample(-0.1);
    h.sample(1.0); // hi is exclusive
    h.sample(0.5);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
}

TEST(HistogramTest, MeanIncludesOutOfRange)
{
    StatGroup g("g");
    Histogram h(g, "h", "", 0.0, 1.0, 4);
    h.sample(-1.0);
    h.sample(3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 1.0);
    EXPECT_DOUBLE_EQ(h.value(), 1.0);
}

TEST(HistogramTest, PercentileInterpolates)
{
    StatGroup g("g");
    Histogram h(g, "h", "", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
    EXPECT_NEAR(h.percentile(1.0), 100.0, 1.5);
}

TEST(HistogramTest, RenderProducesSparkline)
{
    StatGroup g("g");
    Histogram h(g, "h", "", 0.0, 10.0, 20);
    for (int i = 0; i < 50; ++i)
        h.sample(5.0);
    const std::string line = h.render(20);
    EXPECT_EQ(line.size(), 20u);
    EXPECT_NE(line.find('@'), std::string::npos);
}

TEST(HistogramTest, ResetClearsEverything)
{
    StatGroup g("g");
    Histogram h(g, "h", "", 0.0, 1.0, 2);
    h.sample(0.2);
    h.sample(2.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(HistogramTest, InvalidConfigFails)
{
    Logger::throwOnError(true);
    StatGroup g("g");
    EXPECT_THROW(Histogram(g, "h", "", 1.0, 1.0, 4), SimError);
    EXPECT_THROW(Histogram(g, "h", "", 0.0, 1.0, 0), SimError);
    Logger::throwOnError(false);
}

} // namespace
