/**
 * @file
 * QuantileSketch accuracy and algebra tests.
 *
 * The fleet determinism gate leans on two properties proved here:
 * merges are bit-exact regardless of association/order (so per-worker
 * sketches merged in slot order equal the serial sketch), and the
 * reported quantile is within the geometric bucket error (~1/128
 * relative half-width) of the exact sorted quantile on distributions
 * shaped like real campaign output (uniform, lognormal, bimodal).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/random.hh"
#include "stats/quantile_sketch.hh"

using namespace odrips;
using namespace odrips::stats;

namespace
{

/** Exact nearest-rank quantile, the rule quantile() implements. */
double
exactQuantile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    const auto n = static_cast<double>(values.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), values.size());
    return values[rank - 1];
}

/** Sketch vs exact at the campaign's five quantiles. */
void
expectQuantilesClose(const std::vector<double> &values, double rel_tol)
{
    QuantileSketch sketch;
    for (double v : values)
        sketch.add(v);
    ASSERT_EQ(sketch.count(), values.size());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99}) {
        const double exact = exactQuantile(values, q);
        const double approx = sketch.quantile(q);
        EXPECT_NEAR(approx, exact, rel_tol * exact)
            << "q=" << q << " exact=" << exact;
    }
}

TEST(QuantileSketchTest, RankErrorUniform)
{
    Rng rng(11);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(rng.uniform(0.02, 0.25)); // watt-ish range
    expectQuantilesClose(values, 0.02);
}

TEST(QuantileSketchTest, RankErrorLognormal)
{
    Rng rng(12);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(std::exp(rng.normal(-2.5, 0.8)));
    expectQuantilesClose(values, 0.02);
}

TEST(QuantileSketchTest, RankErrorBimodal)
{
    // Two well-separated modes, like a fleet split between an
    // aggressive-techniques class and a baseline class.
    Rng rng(13);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.7))
            values.push_back(rng.uniform(0.05, 0.07));
        else
            values.push_back(rng.uniform(1.8, 2.2));
    }
    expectQuantilesClose(values, 0.02);
}

TEST(QuantileSketchTest, MergeAssociativityBitExact)
{
    Rng rng(14);
    QuantileSketch a, b, c, serial;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.exponential(0.1);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
        serial.add(v);
    }

    // (a + b) + c
    QuantileSketch left;
    left.merge(a);
    left.merge(b);
    left.merge(c);
    // a + (b + c), built in the opposite association and order
    QuantileSketch bc;
    bc.merge(c);
    bc.merge(b);
    QuantileSketch right;
    right.merge(bc);
    right.merge(a);

    EXPECT_TRUE(left == right);
    EXPECT_TRUE(left == serial);
    EXPECT_EQ(left.count(), serial.count());
}

TEST(QuantileSketchTest, InsertionOrderIndependent)
{
    Rng rng(15);
    std::vector<double> values;
    for (int i = 0; i < 500; ++i)
        values.push_back(rng.uniform(0.0, 10.0));

    QuantileSketch forward, backward;
    for (double v : values)
        forward.add(v);
    for (auto it = values.rbegin(); it != values.rend(); ++it)
        backward.add(*it);
    EXPECT_TRUE(forward == backward);
}

TEST(QuantileSketchTest, EmptySketch)
{
    const QuantileSketch sketch;
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.quantile(0.5), 0.0);
    EXPECT_EQ(sketch.quantile(0.0), 0.0);
    EXPECT_EQ(sketch.quantile(1.0), 0.0);
}

TEST(QuantileSketchTest, ZeroAndNegativeOrderBelowPositives)
{
    QuantileSketch sketch;
    sketch.add(-1.0);
    sketch.add(0.0);
    sketch.add(4.0);
    sketch.add(8.0);
    EXPECT_EQ(sketch.negativeValues(), 1u);
    EXPECT_EQ(sketch.zeroValues(), 1u);
    EXPECT_EQ(sketch.count(), 4u);
    // Ranks 1 and 2 are the negative and the zero (both report 0.0);
    // ranks 3 and 4 resolve to the positive buckets.
    EXPECT_EQ(sketch.quantile(0.25), 0.0);
    EXPECT_EQ(sketch.quantile(0.50), 0.0);
    EXPECT_NEAR(sketch.quantile(0.75), 4.0, 0.02 * 4.0);
    EXPECT_NEAR(sketch.quantile(1.00), 8.0, 0.02 * 8.0);
}

TEST(QuantileSketchTest, ExtremeMagnitudesLandInOverflowBins)
{
    QuantileSketch sketch;
    sketch.add(std::ldexp(1.0, QuantileSketch::kMinExp - 8)); // underflow
    sketch.add(1.0);
    sketch.add(std::ldexp(1.0, QuantileSketch::kMaxExp + 8)); // overflow
    EXPECT_EQ(sketch.count(), 3u);
    // Underflow sorts below every bucketed value, overflow above; the
    // representatives stay finite and ordered.
    const double lo = sketch.quantile(0.01);
    const double mid = sketch.quantile(0.5);
    const double hi = sketch.quantile(0.99);
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
    EXPECT_TRUE(std::isfinite(lo));
    EXPECT_TRUE(std::isfinite(hi));
}

TEST(QuantileSketchTest, StateSizeIndependentOfSampleCount)
{
    // O(stats): the counter array is fixed-geometry, so state size is
    // a compile-time constant, not a function of adds.
    const std::size_t bytes = QuantileSketch::stateBytes();
    EXPECT_GT(bytes, 0u);
    QuantileSketch sketch;
    Rng rng(16);
    for (int i = 0; i < 100000; ++i)
        sketch.add(rng.uniform(0.0, 1.0));
    EXPECT_EQ(QuantileSketch::stateBytes(), bytes);
    EXPECT_EQ(sketch.count(), 100000u);
}

TEST(QuantileSketchTest, QuantileArgumentClamped)
{
    QuantileSketch sketch;
    sketch.add(2.0);
    sketch.add(4.0);
    EXPECT_EQ(sketch.quantile(-0.5), sketch.quantile(0.0));
    EXPECT_EQ(sketch.quantile(1.5), sketch.quantile(1.0));
}

} // namespace
