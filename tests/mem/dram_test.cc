/**
 * @file
 * Tests for the DDR3L DRAM model: timing, self-refresh + CKE, power
 * accounting, and frequency scaling (the substrate of Fig. 6(c)).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "power/power_model.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

class DramTest : public ::testing::Test
{
  protected:
    DramTest()
        : array(pm, "dram", "memory"), cke(pm, "cke", "memory"),
          dram("ddr3l", DramConfig{}, &array, &cke)
    {
    }

    PowerModel pm;
    PowerComponent array;
    PowerComponent cke;
    Dram dram;
};

TEST_F(DramTest, ConfigDefaultsMatchTable1)
{
    // Table 1: DDR3L-1.6GHz, dual channel, 8 GB.
    EXPECT_DOUBLE_EQ(dram.config().dataRateHz, 1.6e9);
    EXPECT_EQ(dram.config().channels, 2u);
    EXPECT_EQ(dram.capacityBytes(), 8ULL << 30);
    // 1.6 GT/s * 8 B * 2 channels = 25.6 GB/s.
    EXPECT_DOUBLE_EQ(dram.peakBandwidth(), 25.6e9);
}

TEST_F(DramTest, FunctionalReadWrite)
{
    const std::vector<std::uint8_t> data{10, 20, 30};
    dram.write(0x100, data.data(), data.size(), 0);
    std::vector<std::uint8_t> out(3);
    dram.read(0x100, out.data(), out.size(), 0);
    EXPECT_EQ(out, data);
}

TEST_F(DramTest, AccessLatencyIncludesStreaming)
{
    std::vector<std::uint8_t> buf(256 << 10, 0xCD); // 256 KB
    const MemAccessResult r = dram.write(0, buf.data(), buf.size(), 0);
    const double stream_s = (256.0 * 1024.0) / 25.6e9; // ~10.24 us
    EXPECT_NEAR(ticksToSeconds(r.latency), 50e-9 + stream_s, 10e-9);
    EXPECT_EQ(r.bytes, buf.size());
}

TEST_F(DramTest, IdlePowerWhenActive)
{
    EXPECT_DOUBLE_EQ(array.power().watts(), dram.config().idlePower.watts());
    EXPECT_DOUBLE_EQ(cke.power().watts(), 0.0);
}

TEST_F(DramTest, SelfRefreshSwitchesPowerAndCke)
{
    const Tick latency = dram.enterRetention(0);
    EXPECT_GT(latency, 0);
    EXPECT_TRUE(dram.inRetention());
    EXPECT_DOUBLE_EQ(array.power().watts(),
                     dram.config().selfRefreshPower.watts());
    // The processor drives CKE while self-refresh is held.
    EXPECT_DOUBLE_EQ(cke.power().watts(),
                     dram.config().ckeDrivePower.watts());

    dram.exitRetention(oneMs);
    EXPECT_FALSE(dram.inRetention());
    EXPECT_DOUBLE_EQ(array.power().watts(), dram.config().idlePower.watts());
    EXPECT_DOUBLE_EQ(cke.power().watts(), 0.0);
}

TEST_F(DramTest, DataSurvivesSelfRefresh)
{
    const std::vector<std::uint8_t> data{1, 2, 3};
    dram.write(64, data.data(), data.size(), 0);
    dram.enterRetention(0);
    dram.exitRetention(oneMs);
    std::vector<std::uint8_t> out(3);
    dram.read(64, out.data(), out.size(), 2 * oneMs);
    EXPECT_EQ(out, data);
}

TEST_F(DramTest, AccessDuringSelfRefreshPanics)
{
    Logger::throwOnError(true);
    dram.enterRetention(0);
    std::uint8_t b = 0;
    EXPECT_THROW(dram.read(0, &b, 1, oneMs), SimError);
    EXPECT_THROW(dram.write(0, &b, 1, oneMs), SimError);
    Logger::throwOnError(false);
}

TEST_F(DramTest, DoubleSelfRefreshPanics)
{
    Logger::throwOnError(true);
    dram.enterRetention(0);
    EXPECT_THROW(dram.enterRetention(oneMs), SimError);
    Logger::throwOnError(false);
}

TEST_F(DramTest, AccessEnergyAccumulates)
{
    std::vector<std::uint8_t> buf(1024, 0);
    dram.write(0, buf.data(), buf.size(), 0);
    EXPECT_NEAR(dram.accessEnergy().joules(),
                1024 * dram.config().energyPerByte, 1e-15);
    EXPECT_EQ(dram.bytesTransferred(), 1024u);
}

TEST(DramConfigTest, WithDataRateScalesBandwidthAndPower)
{
    const DramConfig base;
    const DramConfig slow = base.withDataRate(0.8e9);
    EXPECT_DOUBLE_EQ(slow.peakBandwidth(), base.peakBandwidth() / 2.0);
    EXPECT_LT(slow.idlePower.watts(), base.idlePower.watts());
    EXPECT_LT(slow.activePower.watts(), base.activePower.watts());
    // Self-refresh power is temperature-driven, not clock-driven.
    EXPECT_DOUBLE_EQ(slow.selfRefreshPower.watts(),
                     base.selfRefreshPower.watts());
}

TEST(DramConfigTest, Fig6cFrequencyPoints)
{
    const DramConfig base;
    for (double rate : {1.6e9, 1.067e9, 0.8e9}) {
        const DramConfig c = base.withDataRate(rate);
        EXPECT_DOUBLE_EQ(c.dataRateHz, rate);
        EXPECT_GT(c.peakBandwidth(), 0.0);
    }
}

TEST(DramConfigTest, LowerRateMeansSlowerTransfers)
{
    PowerModel pm;
    const DramConfig slow_cfg = DramConfig{}.withDataRate(0.8e9);
    Dram fast("fast", DramConfig{});
    Dram slow("slow", slow_cfg);

    std::vector<std::uint8_t> buf(200 << 10, 0);
    const Tick t_fast = fast.write(0, buf.data(), buf.size(), 0).latency;
    const Tick t_slow = slow.write(0, buf.data(), buf.size(), 0).latency;
    EXPECT_GT(t_slow, t_fast);
    // Streaming part doubles when bandwidth halves.
    EXPECT_NEAR(static_cast<double>(t_slow - 50000) /
                    static_cast<double>(t_fast - 50000),
                2.0, 0.01);
}

} // namespace
