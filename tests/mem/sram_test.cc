/**
 * @file
 * Tests for the retention-voltage SRAM model, including the 5x
 * processor-vs-chipset leakage ratio the paper measures (Obs. 3).
 */

#include <gtest/gtest.h>

#include "mem/sram.hh"
#include "power/power_model.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

SramConfig
makeConfig(std::uint64_t capacity, SramProcess process)
{
    SramConfig c;
    c.capacityBytes = capacity;
    c.process = process;
    return c;
}

TEST(SramTest, StartsActiveWithLeakage)
{
    PowerModel pm;
    PowerComponent comp(pm, "sram", "processor");
    Sram sram("s", makeConfig(4096, SramProcess::HighPerformance), &comp);
    EXPECT_EQ(sram.state(), SramState::Active);
    EXPECT_GT(comp.power().watts(), 0.0);
}

TEST(SramTest, RetentionLeaksLessThanActive)
{
    Sram sram("s", makeConfig(4096, SramProcess::HighPerformance));
    EXPECT_LT(sram.leakagePower(SramState::Retention).watts(),
              sram.leakagePower(SramState::Active).watts());
    EXPECT_DOUBLE_EQ(sram.leakagePower(SramState::Off).watts(), 0.0);
}

TEST(SramTest, ProcessorLeaksFiveTimesChipset)
{
    // Paper Obs. 3: processor SRAM leakage ~= 5x chipset SRAM at the
    // same capacity and Vmin.
    Sram hp("hp", makeConfig(64 << 10, SramProcess::HighPerformance));
    Sram lp("lp", makeConfig(64 << 10, SramProcess::LowPower));
    EXPECT_NEAR(hp.leakagePower(SramState::Retention) /
                    lp.leakagePower(SramState::Retention),
                5.0, 1e-9);
}

TEST(SramTest, PaperCalibration200KbLeaksFiveMilliwatts)
{
    // 200 KB of processor S/R SRAM at retention should leak ~5.4 mW
    // nominal (9% of the 60 mW platform at the battery).
    Sram sram("s", makeConfig(200 << 10, SramProcess::HighPerformance));
    EXPECT_NEAR(sram.leakagePower(SramState::Retention).watts(),
                5.4e-3, 0.1e-3);
}

TEST(SramTest, WriteReadRoundTrip)
{
    Sram sram("s", makeConfig(1024, SramProcess::HighPerformance));
    const std::vector<std::uint8_t> data{5, 6, 7, 8};
    sram.write(10, data.data(), data.size());
    std::vector<std::uint8_t> out(4);
    sram.read(10, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(SramTest, PowerOffLosesContents)
{
    Sram sram("s", makeConfig(1024, SramProcess::HighPerformance));
    const std::vector<std::uint8_t> data{0xAB};
    sram.write(0, data.data(), 1);
    sram.setState(SramState::Off, 0);
    sram.setState(SramState::Active, oneMs);
    std::vector<std::uint8_t> out(1);
    sram.read(0, out.data(), 1);
    EXPECT_EQ(out[0], 0);
}

TEST(SramTest, RetentionKeepsContents)
{
    Sram sram("s", makeConfig(1024, SramProcess::HighPerformance));
    const std::vector<std::uint8_t> data{0xCD};
    sram.write(0, data.data(), 1);
    sram.setState(SramState::Retention, 0);
    sram.setState(SramState::Active, oneMs);
    std::vector<std::uint8_t> out(1);
    sram.read(0, out.data(), 1);
    EXPECT_EQ(out[0], 0xCD);
}

TEST(SramTest, AccessWhileNotActivePanics)
{
    Logger::throwOnError(true);
    Sram sram("s", makeConfig(1024, SramProcess::HighPerformance));
    sram.setState(SramState::Retention, 0);
    std::uint8_t b = 0;
    EXPECT_THROW(sram.read(0, &b, 1), SimError);
    EXPECT_THROW(sram.write(0, &b, 1), SimError);
    Logger::throwOnError(false);
}

TEST(SramTest, OutOfRangeAccessPanics)
{
    Logger::throwOnError(true);
    Sram sram("s", makeConfig(64, SramProcess::HighPerformance));
    std::uint8_t b = 0;
    EXPECT_THROW(sram.read(60, &b, 8), SimError);
    Logger::throwOnError(false);
}

TEST(SramTest, StateChangeUpdatesPowerComponent)
{
    PowerModel pm;
    PowerComponent comp(pm, "sram", "processor");
    Sram sram("s", makeConfig(200 << 10, SramProcess::HighPerformance),
              &comp);
    sram.setState(SramState::Retention, 0);
    EXPECT_NEAR(comp.power().watts(), 5.4e-3, 0.1e-3);
    sram.setState(SramState::Off, oneMs);
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
}

TEST(SramTest, StreamLatencyScalesWithSize)
{
    Sram sram("s", makeConfig(128 << 10, SramProcess::HighPerformance));
    std::vector<std::uint8_t> small(64), large(64 << 10);
    const Tick t_small = sram.write(0, small.data(), small.size());
    const Tick t_large = sram.write(0, large.data(), large.size());
    EXPECT_GT(t_large, t_small);
}

TEST(SramTest, AccessEnergyAccumulates)
{
    Sram sram("s", makeConfig(4096, SramProcess::HighPerformance));
    std::vector<std::uint8_t> buf(1000, 0);
    sram.write(0, buf.data(), buf.size());
    sram.read(0, buf.data(), buf.size());
    EXPECT_NEAR(sram.accessEnergy().joules(),
                2000 * sram.config().energyPerByte, 1e-15);
}

} // namespace
