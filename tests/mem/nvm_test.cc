/**
 * @file
 * Tests for the PCM and eMRAM models (Sec. 8.3 substrates).
 */

#include <gtest/gtest.h>

#include "mem/nvm.hh"
#include "power/power_model.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(PcmTest, NonVolatileRetention)
{
    Pcm pcm("pcm", PcmConfig{});
    EXPECT_EQ(pcm.retentionKind(), RetentionKind::NonVolatile);

    const std::vector<std::uint8_t> data{1, 2, 3};
    pcm.write(0, data.data(), data.size(), 0);
    pcm.enterRetention(0);
    pcm.exitRetention(oneMs);
    std::vector<std::uint8_t> out(3);
    pcm.read(0, out.data(), out.size(), 2 * oneMs);
    EXPECT_EQ(out, data);
}

TEST(PcmTest, StandbyPowerIsZero)
{
    PowerModel pm;
    PowerComponent comp(pm, "pcm", "memory");
    Pcm pcm("pcm", PcmConfig{}, &comp);
    EXPECT_DOUBLE_EQ(comp.power().watts(), pcm.config().idlePower.watts());
    pcm.enterRetention(0);
    // No self-refresh: standby power is (configurably) zero.
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
}

TEST(PcmTest, WritesSlowerAndCostlierThanReads)
{
    Pcm pcm("pcm", PcmConfig{});
    std::vector<std::uint8_t> buf(64 << 10, 0);
    const Tick t_write = pcm.write(0, buf.data(), buf.size(), 0).latency;
    const double e_write = pcm.accessEnergy().joules();
    const Tick t_read = pcm.read(0, buf.data(), buf.size(), 0).latency;
    const double e_read = pcm.accessEnergy().joules() - e_write;
    EXPECT_GT(t_write, t_read);
    EXPECT_GT(e_write, e_read);
}

TEST(PcmTest, EnduranceTracksHottestLine)
{
    PcmConfig cfg;
    cfg.enduranceWrites = 1000;
    Pcm pcm("pcm", cfg);
    std::uint8_t b = 0xFF;
    for (int i = 0; i < 10; ++i)
        pcm.write(0, &b, 1, 0);
    pcm.write(4096, &b, 1, 0);
    EXPECT_EQ(pcm.maxLineWrites(), 10u);
    EXPECT_NEAR(pcm.enduranceConsumed(), 0.01, 1e-12);
}

TEST(PcmTest, AccessInStandbyPanics)
{
    Logger::throwOnError(true);
    Pcm pcm("pcm", PcmConfig{});
    pcm.enterRetention(0);
    std::uint8_t b = 0;
    EXPECT_THROW(pcm.read(0, &b, 1, oneMs), SimError);
    Logger::throwOnError(false);
}

TEST(PcmTest, SlowerThanDramBandwidth)
{
    const PcmConfig cfg;
    // PCM read bandwidth is below DDR3L-1600 dual channel (25.6 GB/s).
    EXPECT_LT(cfg.readBandwidth, 25.6e9);
    EXPECT_LT(cfg.writeBandwidth, cfg.readBandwidth);
}

TEST(EmramTest, ContentsSurvivePowerOff)
{
    EmramConfig cfg;
    cfg.capacityBytes = 4096;
    Emram m("m", cfg);
    m.setPowered(true, 0);
    const std::vector<std::uint8_t> data{7, 8, 9};
    m.write(0, data.data(), data.size());
    m.setPowered(false, oneUs);
    m.setPowered(true, oneMs);
    std::vector<std::uint8_t> out(3);
    m.read(0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(EmramTest, ZeroPowerWhenOff)
{
    PowerModel pm;
    PowerComponent comp(pm, "emram", "processor");
    EmramConfig cfg;
    cfg.capacityBytes = 1024;
    Emram m("m", cfg, &comp);
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
    m.setPowered(true, 0);
    EXPECT_DOUBLE_EQ(comp.power().watts(), cfg.activePower.watts());
    m.setPowered(false, oneUs);
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
}

TEST(EmramTest, AccessWhileOffPanics)
{
    Logger::throwOnError(true);
    EmramConfig cfg;
    cfg.capacityBytes = 64;
    Emram m("m", cfg);
    std::uint8_t b = 0;
    EXPECT_THROW(m.read(0, &b, 1), SimError);
    Logger::throwOnError(false);
}

TEST(EmramTest, PessimismSlowsWrites)
{
    EmramConfig optimistic;
    optimistic.capacityBytes = 64 << 10;
    EmramConfig pessimistic = optimistic;
    pessimistic.pessimism = 4.0;

    Emram a("a", optimistic), b("b", pessimistic);
    a.setPowered(true, 0);
    b.setPowered(true, 0);
    std::vector<std::uint8_t> buf(32 << 10, 0);
    const Tick ta = a.write(0, buf.data(), buf.size());
    const Tick tb = b.write(0, buf.data(), buf.size());
    EXPECT_NEAR(static_cast<double>(tb) / static_cast<double>(ta), 4.0,
                0.01);
    // Reads are unaffected by write pessimism.
    EXPECT_EQ(a.read(0, buf.data(), buf.size()),
              b.read(0, buf.data(), buf.size()));
}

TEST(EmramTest, WriteCounterTracksWrites)
{
    EmramConfig cfg;
    cfg.capacityBytes = 64;
    Emram m("m", cfg);
    m.setPowered(true, 0);
    std::uint8_t b = 1;
    m.write(0, &b, 1);
    m.write(1, &b, 1);
    EXPECT_EQ(m.totalWrites(), 2u);
}

} // namespace
