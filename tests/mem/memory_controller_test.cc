/**
 * @file
 * Tests for memory-controller routing with the Context/SGX range
 * register (Sec. 6.2).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/memory_controller.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

/** A fake MEE recording the accesses routed to it. */
class FakeSecurePath : public SecureMemoryPath
{
  public:
    MemAccessResult
    secureWrite(std::uint64_t addr, const std::uint8_t *, std::uint64_t len,
                Tick) override
    {
        lastAddr = addr;
        ++writes;
        return {oneUs, len};
    }

    MemAccessResult
    secureRead(std::uint64_t addr, std::uint8_t *, std::uint64_t len, Tick,
               bool &authentic) override
    {
        lastAddr = addr;
        ++reads;
        authentic = authenticResult;
        return {oneUs, len};
    }

    std::uint64_t lastAddr = 0;
    int writes = 0;
    int reads = 0;
    bool authenticResult = true;
};

class MemoryControllerTest : public ::testing::Test
{
  protected:
    MemoryControllerTest()
        : dram("d", DramConfig{}), mc("mc", dram, &mee)
    {
        mc.setProtectedRange({4096, 4096});
        Logger::throwOnError(true);
    }

    ~MemoryControllerTest() override { Logger::throwOnError(false); }

    Dram dram;
    FakeSecurePath mee;
    MemoryController mc;
};

TEST_F(MemoryControllerTest, UnprotectedAccessGoesDirect)
{
    std::uint8_t buf[64] = {};
    const RoutedAccess w = mc.write(0, buf, 64, 0);
    EXPECT_FALSE(w.secure);
    EXPECT_EQ(mee.writes, 0);
    EXPECT_EQ(mc.directAccesses(), 1u);
}

TEST_F(MemoryControllerTest, ProtectedAccessRoutesThroughMee)
{
    std::uint8_t buf[64] = {};
    const RoutedAccess w = mc.write(4096, buf, 64, 0);
    EXPECT_TRUE(w.secure);
    EXPECT_EQ(mee.writes, 1);
    EXPECT_EQ(mc.secureAccesses(), 1u);

    const RoutedAccess r = mc.read(4096 + 64, buf, 64, 0);
    EXPECT_TRUE(r.secure);
    EXPECT_TRUE(r.authentic);
    EXPECT_EQ(mee.reads, 1);
}

TEST_F(MemoryControllerTest, AuthenticationFailurePropagates)
{
    mee.authenticResult = false;
    std::uint8_t buf[64] = {};
    const RoutedAccess r = mc.read(4096, buf, 64, 0);
    EXPECT_FALSE(r.authentic);
}

TEST_F(MemoryControllerTest, StraddlingAccessPanics)
{
    std::uint8_t buf[128] = {};
    EXPECT_THROW(mc.write(4096 - 64, buf, 128, 0), SimError);
    EXPECT_THROW(mc.read(8192 - 64, buf, 128, 0), SimError);
}

TEST_F(MemoryControllerTest, AccessWhilePowerGatedPanics)
{
    mc.setPowered(false);
    std::uint8_t buf[64] = {};
    EXPECT_THROW(mc.read(0, buf, 64, 0), SimError);
    mc.setPowered(true);
    EXPECT_NO_THROW(mc.read(0, buf, 64, 0));
}

TEST_F(MemoryControllerTest, ProtectedRangeBeyondCapacityFails)
{
    EXPECT_THROW(
        mc.setProtectedRange({dram.capacityBytes() - 100, 4096}),
        SimError);
}

TEST_F(MemoryControllerTest, ProtectedAccessWithoutMeePanics)
{
    MemoryController bare("bare", dram, nullptr);
    bare.setProtectedRange({0, 4096});
    std::uint8_t buf[64] = {};
    EXPECT_THROW(bare.write(0, buf, 64, 0), SimError);
}

TEST_F(MemoryControllerTest, RangeRegisterContainment)
{
    const RangeRegister rr{100, 50};
    EXPECT_TRUE(rr.contains(100, 50));
    EXPECT_TRUE(rr.contains(120, 10));
    EXPECT_FALSE(rr.contains(99, 2));
    EXPECT_FALSE(rr.contains(140, 20));
    EXPECT_TRUE(rr.overlaps(140, 20));
    EXPECT_FALSE(rr.overlaps(150, 10));
}

TEST_F(MemoryControllerTest, ZeroLengthAccessPanics)
{
    std::uint8_t buf[1] = {};
    EXPECT_THROW(mc.read(0, buf, 0, 0), SimError);
}

} // namespace
