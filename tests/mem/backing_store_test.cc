/**
 * @file
 * Tests for the sparse backing store.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(BackingStoreTest, ReadsZeroWhenUntouched)
{
    BackingStore s(1 << 20);
    const auto data = s.read(0x1000, 16);
    for (std::uint8_t b : data)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(s.touchedPages(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip)
{
    BackingStore s(1 << 20);
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    s.write(0x200, data);
    EXPECT_EQ(s.read(0x200, 5), data);
}

TEST(BackingStoreTest, CrossPageAccess)
{
    BackingStore s(1 << 20);
    std::vector<std::uint8_t> data(BackingStore::pageBytes + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const std::uint64_t addr = BackingStore::pageBytes - 50;
    s.write(addr, data);
    EXPECT_EQ(s.read(addr, data.size()), data);
    EXPECT_GE(s.touchedPages(), 2u);
}

TEST(BackingStoreTest, SparseAllocationOnlyTouchedPages)
{
    BackingStore s(8ULL << 30); // 8 GB capacity
    const std::vector<std::uint8_t> d{0xff};
    s.write(0, d);
    s.write(4ULL << 30, d);
    EXPECT_EQ(s.touchedPages(), 2u);
}

TEST(BackingStoreTest, OutOfRangePanics)
{
    Logger::throwOnError(true);
    BackingStore s(1024);
    std::uint8_t b = 0;
    EXPECT_THROW(s.write(1020, &b, 8), SimError);
    EXPECT_THROW(s.read(2048, &b, 1), SimError);
    Logger::throwOnError(false);
}

TEST(BackingStoreTest, FlipBitCorruptsExactlyOneBit)
{
    BackingStore s(4096);
    const std::vector<std::uint8_t> data{0b10101010};
    s.write(100, data);
    s.flipBit(100, 0);
    EXPECT_EQ(s.read(100, 1)[0], 0b10101011);
    s.flipBit(100, 7);
    EXPECT_EQ(s.read(100, 1)[0], 0b00101011);
}

TEST(BackingStoreTest, ClearDropsEverything)
{
    BackingStore s(4096);
    const std::vector<std::uint8_t> data{9, 9};
    s.write(0, data);
    s.clear();
    EXPECT_EQ(s.touchedPages(), 0u);
    EXPECT_EQ(s.read(0, 1)[0], 0);
}

TEST(BackingStoreTest, PartialPageOverwrite)
{
    BackingStore s(4096);
    s.write(0, std::vector<std::uint8_t>(16, 0xAA));
    s.write(4, std::vector<std::uint8_t>(4, 0xBB));
    const auto out = s.read(0, 16);
    EXPECT_EQ(out[3], 0xAA);
    EXPECT_EQ(out[4], 0xBB);
    EXPECT_EQ(out[7], 0xBB);
    EXPECT_EQ(out[8], 0xAA);
}

} // namespace
