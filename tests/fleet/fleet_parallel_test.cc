/**
 * @file
 * Jobs-sweep determinism of the fleet campaign engine: the report and
 * every deterministic result field must be bit-identical whether the
 * device sweep runs inline, on a 2-worker pool, or on a 5-worker pool
 * — the campaign-level face of the parallelSweep ordered-slot and
 * per-batch-partial reduction contracts. Runs under the odrips_tsan
 * label, so check.sh also hammers it with ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>

#include "exec/thread_pool.hh"
#include "fleet/campaign.hh"
#include "sim/logging.hh"

using namespace odrips;
using namespace odrips::fleet;

namespace
{

CampaignConfig
testConfig(std::uint64_t devices)
{
    CampaignConfig cfg;
    cfg.base = skylakeConfig();
    cfg.population = FleetPopulation::mixedReference();
    cfg.deviceDays = devices;
    cfg.batchSize = 8;
    cfg.simSampleEvery = 32;
    return cfg;
}

std::string
report(const CampaignConfig &cfg, const CampaignResult &result)
{
    std::ostringstream os;
    printCampaignReport(os, cfg, result);
    return os.str();
}

TEST(FleetParallelTest, ReportIsBitIdenticalAcrossWorkerCounts)
{
    Logger::quiet(true);
    const CampaignConfig cfg = testConfig(96);

    exec::ExecPolicy serial;
    serial.jobs = 1;
    const CampaignResult base = runCampaign(cfg, serial);
    const std::string expected = report(cfg, base);

    for (unsigned workers : {2u, 5u}) {
        exec::ThreadPool pool(workers);
        exec::ExecPolicy policy;
        policy.pool = &pool;
        const CampaignResult r = runCampaign(cfg, policy);
        EXPECT_EQ(report(cfg, r), expected) << workers << " workers";
        EXPECT_EQ(r.meanPowerWatts, base.meanPowerWatts) << workers;
        EXPECT_EQ(r.powerWatts.p50, base.powerWatts.p50) << workers;
        EXPECT_EQ(r.powerWatts.p99, base.powerWatts.p99) << workers;
        EXPECT_TRUE(r.powerSketch == base.powerSketch) << workers;

        // Work really was spread across workers, and none was lost.
        const std::uint64_t total =
            std::accumulate(r.telemetry.devicesPerWorker.begin(),
                            r.telemetry.devicesPerWorker.end(),
                            std::uint64_t{0});
        EXPECT_EQ(total, cfg.deviceDays) << workers;
    }
}

TEST(FleetParallelTest, RepeatedParallelRunsAreStable)
{
    Logger::quiet(true);
    const CampaignConfig cfg = testConfig(64);
    exec::ThreadPool pool(4);
    exec::ExecPolicy policy;
    policy.pool = &pool;

    const std::string first = report(cfg, runCampaign(cfg, policy));
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(report(cfg, runCampaign(cfg, policy)), first)
            << "iteration " << i;
}

} // namespace
