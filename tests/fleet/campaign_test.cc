/**
 * @file
 * Fleet campaign engine tests (serial policies; the jobs sweep lives
 * in fleet_parallel_test.cc): the warm engine is bit-identical to the
 * naive cold foil, reruns reproduce byte-identical reports,
 * aggregation state is O(stats) regardless of population size, and the
 * percentile/days math is internally consistent.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>
#include <string>

#include "fleet/campaign.hh"
#include "sim/logging.hh"

using namespace odrips;
using namespace odrips::fleet;

namespace
{

/** Small campaign the cold foil can afford to run too. */
CampaignConfig
smallConfig(std::uint64_t devices)
{
    CampaignConfig cfg;
    cfg.base = skylakeConfig();
    cfg.population = FleetPopulation::mixedReference();
    cfg.deviceDays = devices;
    cfg.batchSize = 8;
    cfg.simSampleEvery = 16;
    return cfg;
}

std::string
report(const CampaignConfig &cfg, const CampaignResult &result)
{
    std::ostringstream os;
    printCampaignReport(os, cfg, result);
    return os.str();
}

exec::ExecPolicy
serialPolicy()
{
    exec::ExecPolicy policy;
    policy.jobs = 1;
    return policy;
}

TEST(CampaignTest, WarmEngineMatchesNaiveColdBitExactly)
{
    Logger::quiet(true);
    CampaignConfig warm = smallConfig(12);
    CampaignConfig cold = warm;
    cold.naiveCold = true;

    const CampaignResult a = runCampaign(warm, serialPolicy());
    const CampaignResult b = runCampaign(cold, serialPolicy());

    // The whole optimisation contract in one assertion set: skipping
    // rebuild/re-measure/re-calibrate must not move a single bit.
    EXPECT_EQ(a.meanPowerWatts, b.meanPowerWatts);
    EXPECT_EQ(a.minPowerWatts, b.minPowerWatts);
    EXPECT_EQ(a.maxPowerWatts, b.maxPowerWatts);
    EXPECT_EQ(a.powerWatts.p50, b.powerWatts.p50);
    EXPECT_EQ(a.powerWatts.p99, b.powerWatts.p99);
    EXPECT_EQ(a.daysOfStandby.p1, b.daysOfStandby.p1);
    EXPECT_TRUE(a.powerSketch == b.powerSketch);
    EXPECT_EQ(report(warm, a), report(cold, b));

    // And the foil really did pay the per-device costs the warm
    // engine skips.
    EXPECT_EQ(a.telemetry.profileMeasurements, 0u);
    EXPECT_GE(b.telemetry.profileMeasurements, b.devices);
    EXPECT_EQ(b.telemetry.pool.restores, 0u);
}

TEST(CampaignTest, RerunsAreByteIdentical)
{
    Logger::quiet(true);
    const CampaignConfig cfg = smallConfig(40);
    const CampaignResult a = runCampaign(cfg, serialPolicy());
    const CampaignResult b = runCampaign(cfg, serialPolicy());
    EXPECT_EQ(report(cfg, a), report(cfg, b));
    EXPECT_TRUE(a.powerSketch == b.powerSketch);
}

TEST(CampaignTest, SeedChangesTheOutput)
{
    Logger::quiet(true);
    CampaignConfig cfg = smallConfig(40);
    const CampaignResult a = runCampaign(cfg, serialPolicy());
    cfg.seed ^= 0x9e3779b97f4a7c15ULL;
    const CampaignResult b = runCampaign(cfg, serialPolicy());
    EXPECT_NE(report(cfg, a), report(cfg, b));
}

TEST(CampaignTest, AggregationStateIsIndependentOfFleetSize)
{
    Logger::quiet(true);
    // batchSize 1 drives both runs to the 1024-partial cap, so every
    // aggregation structure is at its size ceiling: doubling the fleet
    // may not add a byte of resident stats state.
    CampaignConfig small = smallConfig(1024);
    small.batchSize = 1;
    small.simSampleEvery = 0;
    CampaignConfig large = smallConfig(2048);
    large.batchSize = 1;
    large.simSampleEvery = 0;

    const CampaignResult a = runCampaign(small, serialPolicy());
    const CampaignResult b = runCampaign(large, serialPolicy());
    EXPECT_GT(a.telemetry.aggregationBytes, 0u);
    EXPECT_EQ(a.telemetry.aggregationBytes, b.telemetry.aggregationBytes);
    EXPECT_EQ(a.devices, 1024u);
    EXPECT_EQ(b.devices, 2048u);
}

TEST(CampaignTest, PercentilesAreOrderedAndBracketed)
{
    Logger::quiet(true);
    const CampaignConfig cfg = smallConfig(200);
    const CampaignResult r = runCampaign(cfg, serialPolicy());

    EXPECT_LE(r.powerWatts.p1, r.powerWatts.p10);
    EXPECT_LE(r.powerWatts.p10, r.powerWatts.p50);
    EXPECT_LE(r.powerWatts.p50, r.powerWatts.p90);
    EXPECT_LE(r.powerWatts.p90, r.powerWatts.p99);
    EXPECT_LE(r.daysOfStandby.p1, r.daysOfStandby.p10);
    EXPECT_LE(r.daysOfStandby.p10, r.daysOfStandby.p50);
    EXPECT_LE(r.daysOfStandby.p50, r.daysOfStandby.p90);
    EXPECT_LE(r.daysOfStandby.p90, r.daysOfStandby.p99);

    // Sketch representatives carry ~1/128 bucket half-width, so the
    // percentile band sits within a hair of the exact min/max.
    const double slack = 0.02;
    EXPECT_GE(r.powerWatts.p1, r.minPowerWatts * (1.0 - slack));
    EXPECT_LE(r.powerWatts.p99, r.maxPowerWatts * (1.0 + slack));
    EXPECT_GT(r.meanPowerWatts, 0.0);
    EXPECT_GE(r.meanPowerWatts, r.minPowerWatts);
    EXPECT_LE(r.meanPowerWatts, r.maxPowerWatts);
}

TEST(CampaignTest, DaysOfStandbyIsTheBatteryTransform)
{
    Logger::quiet(true);
    CampaignConfig cfg = smallConfig(100);
    cfg.batteryWattHours = 36.0;
    const CampaignResult r = runCampaign(cfg, serialPolicy());

    // days pN mirrors power p(100-N): the best 1% of devices (p1
    // power) last the longest (p99 days).
    EXPECT_DOUBLE_EQ(r.daysOfStandby.p99,
                     cfg.batteryWattHours / (r.powerWatts.p1 * 24.0));
    EXPECT_DOUBLE_EQ(r.daysOfStandby.p50,
                     cfg.batteryWattHours / (r.powerWatts.p50 * 24.0));
    EXPECT_DOUBLE_EQ(r.daysOfStandby.p1,
                     cfg.batteryWattHours / (r.powerWatts.p99 * 24.0));
}

TEST(CampaignTest, TelemetryAccountsForEveryDevice)
{
    Logger::quiet(true);
    const CampaignConfig cfg = smallConfig(150);
    const CampaignResult r = runCampaign(cfg, serialPolicy());

    EXPECT_EQ(r.devices, cfg.deviceDays);
    EXPECT_EQ(r.powerSketch.count(), cfg.deviceDays);
    EXPECT_EQ(r.telemetry.devices, cfg.deviceDays);
    EXPECT_GT(r.telemetry.cycles, cfg.deviceDays);
    EXPECT_GT(r.telemetry.batches, 0u);
    const std::uint64_t perWorker =
        std::accumulate(r.telemetry.devicesPerWorker.begin(),
                        r.telemetry.devicesPerWorker.end(),
                        std::uint64_t{0});
    EXPECT_EQ(perWorker, cfg.deviceDays);
    // simSampleEvery=16: devices 0, 16, 32, ... replay on the sim.
    EXPECT_EQ(r.telemetry.simSampledDevices, (cfg.deviceDays + 15) / 16);
}

TEST(CampaignTest, EmptyCampaignIsWellDefined)
{
    Logger::quiet(true);
    CampaignConfig cfg = smallConfig(0);
    const CampaignResult r = runCampaign(cfg, serialPolicy());
    EXPECT_EQ(r.devices, 0u);
    EXPECT_EQ(r.meanPowerWatts, 0.0);
    EXPECT_EQ(r.powerSketch.count(), 0u);
}

} // namespace
