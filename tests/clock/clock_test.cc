/**
 * @file
 * Unit tests for crystals and clock domains.
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/crystal.hh"

using namespace odrips;
using namespace odrips::unit_literals;

namespace
{

TEST(CrystalTest, NominalAndActualFrequency)
{
    Crystal x("x24", 24.0e6, 20.0, 1.8_mW);
    EXPECT_DOUBLE_EQ(x.nominalHz(), 24.0e6);
    EXPECT_DOUBLE_EQ(x.actualHz(), 24.0e6 * (1.0 + 20e-6));
}

TEST(CrystalTest, NegativePpmRunsSlow)
{
    Crystal x("x32", 32768.0, -35.0, 0.3_mW);
    EXPECT_LT(x.actualHz(), 32768.0);
    EXPECT_NEAR(x.actualHz(), 32768.0 * (1.0 - 35e-6), 1e-6);
}

TEST(CrystalTest, EnableDisableControlsPower)
{
    Crystal x("x", 24.0e6, 0.0, 1.8_mW);
    EXPECT_TRUE(x.enabled());
    EXPECT_DOUBLE_EQ(x.power().watts(), 1.8e-3);
    x.disable();
    EXPECT_FALSE(x.enabled());
    EXPECT_DOUBLE_EQ(x.power().watts(), 0.0);
    EXPECT_DOUBLE_EQ(x.ratedPower().watts(), 1.8e-3);
    x.enable();
    EXPECT_DOUBLE_EQ(x.power().watts(), 1.8e-3);
}

TEST(CrystalTest, PeriodMatchesFrequency)
{
    Crystal x("x", 24.0e6, 0.0, Milliwatts::zero());
    // 24 MHz -> 41666.67 ps, rounds to nearest ps.
    EXPECT_EQ(x.period(), 41667);
}

TEST(ClockDomainTest, FrequencyFollowsSourceAndRatio)
{
    Crystal x("x", 24.0e6, 0.0, Milliwatts::zero());
    ClockDomain d("d", x, 2.0);
    EXPECT_DOUBLE_EQ(d.frequency(), 48.0e6);
    EXPECT_DOUBLE_EQ(d.ungatedFrequency(), 48.0e6);
}

TEST(ClockDomainTest, GatingStopsEdges)
{
    Crystal x("x", 24.0e6, 0.0, Milliwatts::zero());
    ClockDomain d("d", x);
    EXPECT_TRUE(d.running());
    d.gate();
    EXPECT_FALSE(d.running());
    EXPECT_DOUBLE_EQ(d.frequency(), 0.0);
    EXPECT_GT(d.ungatedFrequency(), 0.0);
    d.ungate();
    EXPECT_TRUE(d.running());
}

TEST(ClockDomainTest, SourceDisableStopsDomain)
{
    Crystal x("x", 24.0e6, 0.0, Milliwatts::zero());
    ClockDomain d("d", x);
    x.disable();
    EXPECT_FALSE(d.running());
    EXPECT_DOUBLE_EQ(d.frequency(), 0.0);
}

TEST(ClockDomainTest, CyclesInInterval)
{
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero()); // 1 GHz -> 1 ns period
    ClockDomain d("d", x);
    EXPECT_EQ(d.cyclesIn(0, 1000 * oneNs), 1000u);
    EXPECT_EQ(d.cyclesIn(0, 0), 0u);
    EXPECT_EQ(d.cyclesIn(100, 100), 0u);
    EXPECT_EQ(d.cyclesIn(500, 400), 0u); // backwards -> 0
}

TEST(ClockDomainTest, NextEdgeAlignment)
{
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero()); // period 1000 ps
    ClockDomain d("d", x);
    EXPECT_EQ(d.nextEdge(0), 0);
    EXPECT_EQ(d.nextEdge(1), 1000);
    EXPECT_EQ(d.nextEdge(1000), 1000);
    EXPECT_EQ(d.nextEdge(1001), 2000);
}

TEST(ClockDomainTest, SlowClockEdgeSpacing)
{
    Crystal x32("x32", 32768.0, 0.0, Milliwatts::zero());
    ClockDomain d("rtc", x32);
    const Tick p = d.period();
    // One RTC period is ~30.5 us.
    EXPECT_NEAR(ticksToSeconds(p), 30.5e-6, 0.1e-6);
    EXPECT_EQ(d.nextEdge(p + 1), 2 * p);
}

TEST(ClockDomainTest, CyclesInLongIntervalMatchesFrequency)
{
    Crystal x("x", 24.0e6, 0.0, Milliwatts::zero());
    ClockDomain d("d", x);
    // Over 1 s we should count ~24M cycles (quantized by ps rounding).
    const std::uint64_t cycles = d.cyclesIn(0, oneSec);
    EXPECT_NEAR(static_cast<double>(cycles), 24.0e6, 200.0);
}

} // namespace
