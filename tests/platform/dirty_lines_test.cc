/**
 * @file
 * Tests for the MEE-line-granular dirty tracking (DirtyLineMap) and the
 * context mutation models that feed it. The delta save path in the
 * context FSMs relies on exactly the invariants pinned here: fresh maps
 * start fully dirty, runs coalesce, an all-dirty map is one full-region
 * run, and the CsrSubset model leaves clean lines byte-identical.
 */

#include <gtest/gtest.h>

#include "platform/context.hh"
#include "platform/dirty_lines.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

TEST(DirtyLineMapTest, ResizeStartsFullyDirty)
{
    DirtyLineMap map;
    map.resize(10 * DirtyLineMap::lineBytes + 1); // partial last line
    EXPECT_EQ(map.lines(), 11u);
    EXPECT_TRUE(map.allDirty());
    EXPECT_EQ(map.dirtyLines(), 11u);
}

TEST(DirtyLineMapTest, ClearAndMarkLine)
{
    DirtyLineMap map;
    map.resize(8 * DirtyLineMap::lineBytes);
    map.clear();
    EXPECT_FALSE(map.anyDirty());
    map.markLine(3);
    EXPECT_TRUE(map.test(3));
    EXPECT_FALSE(map.test(2));
    EXPECT_EQ(map.dirtyLines(), 1u);
}

TEST(DirtyLineMapTest, MarkBytesCoversOverlappingLines)
{
    DirtyLineMap map;
    map.resize(8 * DirtyLineMap::lineBytes);
    map.clear();
    // [100, 200) straddles lines 1..3.
    map.markBytes(100, 100);
    EXPECT_FALSE(map.test(0));
    EXPECT_TRUE(map.test(1));
    EXPECT_TRUE(map.test(2));
    EXPECT_TRUE(map.test(3));
    EXPECT_FALSE(map.test(4));
    map.markBytes(0, 0); // empty range marks nothing
    EXPECT_FALSE(map.test(0));
}

TEST(DirtyLineMapTest, RunsCoalesceConsecutiveLines)
{
    DirtyLineMap map;
    map.resize(16 * DirtyLineMap::lineBytes);
    map.clear();
    for (std::uint64_t line : {1u, 2u, 3u, 7u, 12u, 13u})
        map.markLine(line);

    const std::vector<DirtyLineMap::Run> runs = map.runs();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].firstLine, 1u);
    EXPECT_EQ(runs[0].lineCount, 3u);
    EXPECT_EQ(runs[1].firstLine, 7u);
    EXPECT_EQ(runs[1].lineCount, 1u);
    EXPECT_EQ(runs[2].firstLine, 12u);
    EXPECT_EQ(runs[2].lineCount, 2u);
}

TEST(DirtyLineMapTest, AllDirtyIsOneFullRegionRun)
{
    // The delta save path degenerates to the full path through this:
    // a fully dirty map must coalesce into exactly one region-wide run.
    DirtyLineMap map;
    map.resize(100 * DirtyLineMap::lineBytes);
    const std::vector<DirtyLineMap::Run> runs = map.runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].firstLine, 0u);
    EXPECT_EQ(runs[0].lineCount, 100u);
}

TEST(DirtyLineMapTest, TailPaddingBitsNeverCount)
{
    // 65 lines leaves 63 padding bits in the second word; markAll must
    // not set them or dirtyLines()/allDirty() would lie.
    DirtyLineMap map;
    map.resize(65 * DirtyLineMap::lineBytes);
    EXPECT_EQ(map.dirtyLines(), 65u);
    EXPECT_TRUE(map.allDirty());
}

TEST(ContextMutationTest, FullRegenerateDirtiesEverything)
{
    ProcessorContext ctx(4 << 10, 8 << 10, 512, /*seed=*/3);
    ctx.sa().dirty.clear();
    ctx.cores().dirty.clear();
    ctx.touch(); // default model: FullRegenerate
    EXPECT_TRUE(ctx.sa().dirty.allDirty());
    EXPECT_TRUE(ctx.cores().dirty.allDirty());
}

TEST(ContextMutationTest, CsrSubsetDirtiesBoundedSubset)
{
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    mut.dirtyFraction = 0.06;
    ProcessorContext ctx(64 << 10, 136 << 10, 1 << 10, /*seed=*/3, mut);
    ctx.sa().dirty.clear();
    ctx.cores().dirty.clear();
    ctx.touch();

    // Duplicates are allowed, so the dirtied set is at most the
    // requested subset — and far from the whole region.
    const std::uint64_t sa_lines = ctx.sa().dirty.lines();
    const auto bound = static_cast<std::uint64_t>(
        mut.dirtyFraction * static_cast<double>(sa_lines));
    EXPECT_GE(ctx.sa().dirty.dirtyLines(), 1u);
    EXPECT_LE(ctx.sa().dirty.dirtyLines(), bound);
    EXPECT_FALSE(ctx.sa().dirty.allDirty());
    EXPECT_FALSE(ctx.cores().dirty.allDirty());
}

TEST(ContextMutationTest, CsrSubsetLeavesCleanLinesByteIdentical)
{
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    ProcessorContext ctx(16 << 10, 16 << 10, 512, /*seed=*/9, mut);
    ctx.sa().dirty.clear();
    const std::vector<std::uint8_t> before = ctx.sa().bytes;
    ctx.touch();

    const DirtyLineMap &dirty = ctx.sa().dirty;
    for (std::uint64_t line = 0; line < dirty.lines(); ++line) {
        if (dirty.test(line))
            continue;
        const std::size_t off =
            static_cast<std::size_t>(line * DirtyLineMap::lineBytes);
        for (std::size_t i = off; i < off + DirtyLineMap::lineBytes; ++i)
            ASSERT_EQ(ctx.sa().bytes[i], before[i])
                << "clean line " << line << " changed at byte " << i;
    }
    EXPECT_NE(ctx.sa().bytes, before); // but something did change
}

TEST(ContextMutationTest, MinDirtyLinesFloorApplies)
{
    // Even a zero dirty fraction dirties at least minDirtyLines draws:
    // every wake updates a handful of CSRs.
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    mut.dirtyFraction = 0.0;
    mut.minDirtyLines = 4;
    ProcessorContext ctx(32 << 10, 32 << 10, 512, /*seed=*/5, mut);
    ctx.sa().dirty.clear();
    ctx.touch();
    EXPECT_GE(ctx.sa().dirty.dirtyLines(), 1u);
    EXPECT_LE(ctx.sa().dirty.dirtyLines(), 4u);
}

TEST(ContextMutationTest, SameSeedMutatesIdentically)
{
    // The incremental-vs-full differential tests depend on two contexts
    // with the same seed staying byte-identical through touch().
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    ProcessorContext a(16 << 10, 16 << 10, 512, /*seed=*/7, mut);
    ProcessorContext b(16 << 10, 16 << 10, 512, /*seed=*/7, mut);
    for (int i = 0; i < 5; ++i) {
        a.touch();
        b.touch();
        ASSERT_EQ(a.checksum(), b.checksum());
    }
}

} // namespace
