/**
 * @file
 * Tests for the platform aggregates: configuration presets (Table 1),
 * C-state selection, the processor context, and the wired platform's
 * power calibration against the paper's anchors.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "platform/techniques.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(ConfigTest, SkylakeDefaultsMatchTable1)
{
    const PlatformConfig cfg = skylakeConfig();
    EXPECT_EQ(cfg.processorNode, ProcessNode::Nm14);
    EXPECT_DOUBLE_EQ(cfg.coreFrequencyHz, 0.8e9);
    EXPECT_EQ(cfg.llcBytes, 3ULL << 20);
    EXPECT_DOUBLE_EQ(cfg.dram.dataRateHz, 1.6e9);
    EXPECT_EQ(cfg.dram.capacityBytes, 8ULL << 30);
    EXPECT_EQ(cfg.dram.channels, 2u);
}

TEST(ConfigTest, ContextSizesMatchPaper)
{
    const PlatformConfig cfg = skylakeConfig();
    // ~200 KB transferable context; ~1 KB boot subset (0.5%).
    EXPECT_EQ(cfg.saContextBytes + cfg.coresContextBytes, 200ULL << 10);
    EXPECT_EQ(cfg.bootContextBytes, 1ULL << 10);
    EXPECT_NEAR(static_cast<double>(cfg.bootContextBytes) /
                    static_cast<double>(cfg.saContextBytes +
                                        cfg.coresContextBytes),
                0.005, 0.0002);
}

TEST(ConfigTest, DripsBudgetSumsToPaperAnchor)
{
    // Nominal DRIPS power must be ~44.4 mW so the battery sees ~60 mW
    // at 74% delivery efficiency (Fig. 1(b) caption).
    const PlatformConfig cfg = skylakeConfig();
    const DripsPowerBudget &dp = cfg.dripsPower;
    const Milliwatts nominal =
        dp.procWakeTimer + dp.procAonIo + dp.srSramSa + dp.srSramCores +
        dp.bootSram + dp.chipsetAon + dp.chipsetFastClock + dp.xtal24 +
        dp.xtal32 + dp.boardOther + cfg.dram.selfRefreshPower +
        cfg.dram.ckeDrivePower;
    EXPECT_NEAR(nominal.watts() / cfg.pdLowEfficiency, 60e-3, 0.5e-3);
}

TEST(ConfigTest, HaswellUnscalesSiliconPower)
{
    const PlatformConfig sky = skylakeConfig();
    const PlatformConfig has = haswellUltConfig();
    // 22 nm silicon burns more than the same design at 14 nm.
    EXPECT_GT(has.dripsPower.srSramSa.watts(),
              sky.dripsPower.srSramSa.watts());
    EXPECT_GT(has.activePower.coresGfxBase.watts(),
              sky.activePower.coresGfxBase.watts());
    // Board components do not scale.
    EXPECT_DOUBLE_EQ(has.dripsPower.xtal24.watts(),
                     sky.dripsPower.xtal24.watts());
    // Haswell-ULT C10 exit latency was ~3 ms (Sec. 3).
    EXPECT_EQ(has.timings.baselineExit, 3000 * oneUs);
}

TEST(ConfigTest, CoreVfCurveHasVminFloor)
{
    const PlatformConfig cfg = skylakeConfig();
    EXPECT_DOUBLE_EQ(cfg.vfCurve.voltageAt(0.8e9),
                     cfg.vfCurve.voltageAt(1.0e9));
    EXPECT_GT(cfg.vfCurve.voltageAt(1.5e9), cfg.vfCurve.voltageAt(1.0e9));
}

TEST(ConfigTest, CorePowerScalesSuperlinearlyAboveVmin)
{
    const PlatformConfig cfg = skylakeConfig();
    const double p08 = cfg.coresGfxPowerAt(0.8e9).watts();
    const double p10 = cfg.coresGfxPowerAt(1.0e9).watts();
    const double p15 = cfg.coresGfxPowerAt(1.5e9).watts();
    // Linear below the Vmin ceiling...
    EXPECT_NEAR(p10 / p08, 1.25, 1e-9);
    // ... superlinear above it.
    EXPECT_GT(p15 / p10, 1.5);
}

TEST(CStateTest, SkylakeTableOrdering)
{
    const CStateTable table = CStateTable::skylake();
    EXPECT_EQ(table.active().name, "C0");
    EXPECT_EQ(table.deepest().name, "C10");
    EXPECT_TRUE(table.deepest().isDrips);
    EXPECT_EQ(table.deepest().exitLatency, 300 * oneUs);
}

TEST(CStateTest, SelectionHonoursLtrAndTnte)
{
    const CStateTable table = CStateTable::skylake();
    // Plenty of latency budget and dwell -> DRIPS.
    EXPECT_EQ(table.select(oneSec, oneSec).name, "C10");
    // LTR limits the exit latency to 100 us -> C6 (85 us exit).
    EXPECT_EQ(table.select(100 * oneUs, oneSec).name, "C6");
    // An imminent timer event fails the residency heuristic for the
    // deep states: 300 us of dwell only amortizes C3 (3x 80 us).
    EXPECT_EQ(table.select(oneSec, 300 * oneUs).name, "C3");
    // DRIPS needs ~1.5 ms of expected dwell (3x its 500 us round trip).
    EXPECT_EQ(table.select(oneSec, 2 * oneMs).name, "C10");
    // No budget at all: still picks the shallowest idle state.
    EXPECT_EQ(table.select(0, 0).name, "C1");
}

TEST(CStateTest, ByIndexLookup)
{
    const CStateTable table = CStateTable::skylake();
    EXPECT_EQ(table.byIndex(10).name, "C10");
    Logger::throwOnError(true);
    EXPECT_THROW(table.byIndex(5), SimError);
    Logger::throwOnError(false);
}

TEST(ContextTest, ChecksumDetectsChange)
{
    ProcessorContext ctx(1024, 2048, 128);
    const std::uint64_t before = ctx.checksum();
    ctx.touch();
    EXPECT_NE(ctx.checksum(), before);
}

TEST(ContextTest, RegionSizes)
{
    ProcessorContext ctx(64 << 10, 136 << 10, 1 << 10);
    EXPECT_EQ(ctx.sa().bytes.size(), 64u << 10);
    EXPECT_EQ(ctx.cores().bytes.size(), 136u << 10);
    EXPECT_EQ(ctx.boot().bytes.size(), 1u << 10);
    EXPECT_EQ(ctx.transferableBytes(), 200u << 10);
}

TEST(ContextTest, RegionChecksumIsContentBased)
{
    ProcessorContext a(512, 512, 64, 1);
    ProcessorContext b(512, 512, 64, 1);
    EXPECT_EQ(a.checksum(), b.checksum()); // same seed, same content
    ProcessorContext c(512, 512, 64, 2);
    EXPECT_NE(a.checksum(), c.checksum());
}

TEST(TechniqueSetTest, LabelsMatchFig6)
{
    EXPECT_EQ(TechniqueSet::baseline().label(), "DRIPS (baseline)");
    EXPECT_EQ(TechniqueSet::wakeupOffOnly().label(), "WAKE-UP-OFF");
    EXPECT_EQ(TechniqueSet::aonIoGated().label(), "AON-IO-GATE");
    EXPECT_EQ(TechniqueSet::ctxSgxDram().label(), "CTX-SGX-DRAM");
    EXPECT_EQ(TechniqueSet::odrips().label(), "ODRIPS");
    EXPECT_EQ(TechniqueSet::odripsMram().label(), "ODRIPS-MRAM");
}

TEST(TechniqueSetTest, AonGatingRequiresWakeupMigration)
{
    // Paper footnote 4: technique 2 depends on technique 1.
    Logger::throwOnError(true);
    TechniqueSet t;
    t.aonIoGate = true;
    EXPECT_THROW(t.validate(), SimError);
    t.wakeupOff = true;
    EXPECT_NO_THROW(t.validate());
    Logger::throwOnError(false);
}

class PlatformFixture : public ::testing::Test
{
  protected:
    PlatformFixture() : platform(skylakeConfig()) {}
    Platform platform;
};

TEST_F(PlatformFixture, StartsActiveNearThreeWatts)
{
    // C0 with display off is ~3 W at the battery (Fig. 2).
    EXPECT_NEAR(platform.batteryPower().watts(), 3.0, 0.15);
}

TEST_F(PlatformFixture, GroupPowersArePositive)
{
    EXPECT_GT(platform.groupBatteryPower("processor").watts(), 0.0);
    EXPECT_GT(platform.groupBatteryPower("chipset").watts(), 0.0);
    EXPECT_GT(platform.groupBatteryPower("memory").watts(), 0.0);
    EXPECT_GT(platform.groupBatteryPower("board").watts(), 0.0);
}

TEST_F(PlatformFixture, AnalyzerHasFourChannels)
{
    // The paper's measurement setup uses four analog channels.
    EXPECT_EQ(platform.analyzer.channelCount(), 4u);
    EXPECT_EQ(platform.analyzer.sampleInterval(), 50 * oneUs);
}

TEST_F(PlatformFixture, ProtectedRegionCoversContext)
{
    EXPECT_EQ(platform.contextRegionSize(), 200ULL << 10);
    EXPECT_EQ(platform.memoryController->protectedRange().base,
              platform.contextRegionBase());
    // Context region is a negligible slice of the SGX region and DRAM
    // (paper Sec. 6.3: < 0.3% of the SGX region).
    EXPECT_LT(static_cast<double>(platform.contextRegionSize()) /
                  static_cast<double>(platform.cfg.sgxRegionSize),
              0.005);
}

TEST_F(PlatformFixture, DramAccessorWorksForDdr3l)
{
    EXPECT_NO_THROW(platform.dram());
    EXPECT_EQ(platform.memory->retentionKind(),
              RetentionKind::SelfRefresh);
}

TEST(PlatformPcmTest, PcmPlatformHasNonVolatileMemory)
{
    PlatformConfig cfg = skylakeConfig();
    cfg.memoryKind = MainMemoryKind::Pcm;
    Platform platform(cfg);
    EXPECT_EQ(platform.memory->retentionKind(),
              RetentionKind::NonVolatile);
    Logger::throwOnError(true);
    EXPECT_THROW(platform.dram(), SimError);
    Logger::throwOnError(false);
}

TEST_F(PlatformFixture, ProcessorStallPowerBelowActive)
{
    const double active =
        platform.cfg.coresGfxPowerAt(platform.processor.coreFrequencyHz)
            .watts();
    EXPECT_LT(platform.processor.stallPower().watts(), active * 0.2);
    EXPECT_GT(platform.processor.stallPower().watts(), 0.0);
}

TEST_F(PlatformFixture, ChipsetClaimsTwoSparePins)
{
    const unsigned before = platform.chipset.gpios.sparePins();
    platform.chipset.claimOdripsPins();
    EXPECT_EQ(platform.chipset.gpios.sparePins(), before - 2);
    // Idempotent.
    platform.chipset.claimOdripsPins();
    EXPECT_EQ(platform.chipset.gpios.sparePins(), before - 2);
}

TEST_F(PlatformFixture, RailsCoverTheAonSupply)
{
    // The AON rail must carry exactly the Fig. 1(a) always-on blocks.
    Rail &aon = platform.rails.find("vcc_aon");
    EXPECT_GT(aon.power().watts(), 0.0);
    EXPECT_GT(aon.componentCount(), 5u);
    // The compute rail carries the cores (active at construction).
    EXPECT_GT(platform.rails.find("vcc_compute").power().watts(),
              1.0);
}

TEST_F(PlatformFixture, ChipsetIdlePowerDependsOnClockMode)
{
    platform.chipset.applyIdlePower(0, /*slow_mode=*/false);
    const Milliwatts fast_mode = platform.chipset.fastClockTree.power();
    EXPECT_DOUBLE_EQ(fast_mode.watts(),
                     platform.cfg.dripsPower.chipsetFastClock.watts());
    platform.chipset.applyIdlePower(oneUs, /*slow_mode=*/true);
    EXPECT_DOUBLE_EQ(platform.chipset.fastClockTree.power().watts(), 0.0);
    // The AON domain itself stays on either way.
    EXPECT_DOUBLE_EQ(platform.chipset.aonDomain.power().watts(),
                     platform.cfg.dripsPower.chipsetAon.watts());
}

TEST_F(PlatformFixture, BoardSyncFollowsCrystalState)
{
    platform.board.xtal24.disable();
    platform.board.syncXtalPower(oneUs);
    EXPECT_DOUBLE_EQ(platform.board.xtal24Comp.power().watts(), 0.0);
    EXPECT_GT(platform.board.xtal32Comp.power().watts(), 0.0);
    platform.board.xtal24.enable();
    platform.board.syncXtalPower(2 * oneUs);
    EXPECT_DOUBLE_EQ(platform.board.xtal24Comp.power().watts(),
                     platform.cfg.dripsPower.xtal24.watts());
}

TEST_F(PlatformFixture, ProcessorComputeIdleZeroesCores)
{
    EXPECT_GT(platform.processor.coresGfx.power().watts(), 1.0);
    platform.processor.applyComputeIdle(oneUs);
    EXPECT_DOUBLE_EQ(platform.processor.coresGfx.power().watts(),
                     0.0);
    // LLC stays powered (still holds data until flushed).
    EXPECT_GT(platform.processor.llc.power().watts(), 0.0);
    platform.processor.applyActivePower(2 * oneUs);
    EXPECT_GT(platform.processor.coresGfx.power().watts(), 1.0);
}

TEST_F(PlatformFixture, ProcessorCoreFrequencyChangesActivePower)
{
    const double p_low = platform.processor.coresGfx.power().watts();
    platform.processor.coreFrequencyHz = 1.5e9;
    platform.processor.applyActivePower(oneUs);
    EXPECT_GT(platform.processor.coresGfx.power().watts(),
              p_low * 1.5);
}

TEST_F(PlatformFixture, TscCountsFromConstruction)
{
    // The TSC runs on the 24 MHz clock from t = 0.
    const std::uint64_t v = platform.processor.tsc.valueAt(oneMs);
    EXPECT_NEAR(static_cast<double>(v), 24000.0, 2.0);
}

} // namespace
