/**
 * @file
 * Tests for the work-stealing thread pool: task execution, stealing
 * across worker deques, nested submission, exception propagation
 * through TaskGroup, and clean shutdown with queued work. These run
 * under TSan in scripts/check.sh (ctest -L tsan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.hh"

using namespace odrips::exec;

namespace
{

TEST(ThreadPoolTest, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 1000; ++i)
        group.run([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SingleWorkerPoolWorks)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i)
        group.run([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReportsRequestedSize)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, TasksSpreadAcrossWorkers)
{
    // With more blocking tasks than workers and a barrier that forces
    // them to be concurrent, every worker thread must participate —
    // i.e. round-robin posting plus stealing actually distributes.
    constexpr unsigned kWorkers = 4;
    ThreadPool pool(kWorkers);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::atomic<unsigned> arrived{0};

    TaskGroup group(pool);
    for (unsigned i = 0; i < kWorkers; ++i) {
        group.run([&] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                seen.insert(std::this_thread::get_id());
            }
            ++arrived;
            // Hold the worker until all four tasks are in flight.
            while (arrived.load() < kWorkers)
                std::this_thread::yield();
        });
    }
    group.wait();
    EXPECT_EQ(seen.size(), kWorkers);
}

TEST(ThreadPoolTest, NestedSubmissionFromWorkers)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
        group.run([&] {
            // Workers push onto their own deque (depth-first).
            group.run([&count] { ++count; });
        });
    }
    group.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, CurrentIsSetInsideWorkersOnly)
{
    ThreadPool pool(2);
    EXPECT_EQ(ThreadPool::current(), nullptr);
    std::atomic<ThreadPool *> inside{nullptr};
    TaskGroup group(pool);
    group.run([&inside] { inside = ThreadPool::current(); });
    group.wait();
    EXPECT_EQ(inside.load(), &pool);
    EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPoolTest, WaitRethrowsFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
        group.run([&completed, i] {
            if (i == 13)
                throw std::runtime_error("point 13 failed");
            ++completed;
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // Every non-throwing task still ran to completion.
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, GroupReusableAfterException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(group.wait(), std::runtime_error);

    // The error is consumed; the group can run a second batch.
    std::atomic<int> count{0};
    group.run([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        TaskGroup group(pool);
        for (int i = 0; i < 200; ++i) {
            group.run([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                ++count;
            });
        }
        group.wait();
        // Pool destructor joins here with nothing queued.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ImmediateShutdownIsClean)
{
    // Construct and destroy without ever posting.
    for (int i = 0; i < 10; ++i)
        ThreadPool pool(4);
    SUCCEED();
}

TEST(ThreadPoolTest, DefaultJobsOverride)
{
    const unsigned before = defaultJobs();
    setDefaultJobs(5);
    EXPECT_EQ(defaultJobs(), 5u);
    setDefaultJobs(0); // restore the hardware default
    EXPECT_GE(defaultJobs(), 1u);
    EXPECT_EQ(defaultJobs(), before);
}

} // namespace
