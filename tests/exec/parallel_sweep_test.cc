/**
 * @file
 * Tests for the ParallelSweep runner. The key property: a sweep's
 * results are **bit-identical** to the serial path for any worker
 * count — verified for the Fig. 6(a) technique set, the break-even
 * residency sweep, and two ablation sweeps at 1, 2 and 8 threads.
 * These run under TSan in scripts/check.sh (ctest -L tsan).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/odrips.hh"
#include "exec/parallel_sweep.hh"

using namespace odrips;

namespace
{

class ParallelSweepFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }

    /** Run @p fn under serial, 2-thread and 8-thread policies and
     * require exactly equal results (operator== must be bitwise for
     * the payload). */
    template <typename Fn>
    static void
    expectIdenticalAcrossJobs(Fn fn)
    {
        const auto serial = fn(exec::ExecPolicy{.jobs = 1});

        exec::ThreadPool two(2);
        const auto with2 = fn(exec::ExecPolicy{.pool = &two});
        EXPECT_TRUE(serial == with2) << "2 threads diverged";

        exec::ThreadPool eight(8);
        const auto with8 = fn(exec::ExecPolicy{.pool = &eight});
        EXPECT_TRUE(serial == with8) << "8 threads diverged";
    }
};

TEST_F(ParallelSweepFixture, OrderedCollection)
{
    exec::ThreadPool pool(8);
    const auto out = exec::parallelSweep(
        "test-ordered", 1000,
        [](const exec::SweepPoint &point) {
            return static_cast<std::uint64_t>(point.index) * 3 + 1;
        },
        exec::ExecPolicy{.pool = &pool});
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * 3 + 1);
}

TEST_F(ParallelSweepFixture, PerPointRngStreamsIdenticalAcrossJobs)
{
    const auto draw = [](const exec::ExecPolicy &policy) {
        return exec::parallelSweep(
            "test-rng", 500,
            [](const exec::SweepPoint &point) {
                // Copy: the sweep hands each point a private stream.
                Rng rng = point.rng;
                double sum = 0.0;
                for (int i = 0; i < 16; ++i)
                    sum += rng.uniform();
                return sum;
            },
            policy);
    };
    expectIdenticalAcrossJobs(draw);
}

TEST_F(ParallelSweepFixture, PointExceptionPropagates)
{
    exec::ThreadPool pool(4);
    EXPECT_THROW(
        exec::parallelSweep(
            "test-throw", 100,
            [](const exec::SweepPoint &point) -> int {
                if (point.index == 57)
                    throw std::runtime_error("bad point");
                return 0;
            },
            exec::ExecPolicy{.pool = &pool}),
        std::runtime_error);
}

TEST_F(ParallelSweepFixture, SerialPolicyRunsInline)
{
    // jobs=1 must not touch any pool: points run on the calling thread.
    const auto out = exec::parallelSweep(
        "test-inline", 10,
        [](const exec::SweepPoint &) {
            return exec::ThreadPool::current() != nullptr ? 1 : 0;
        },
        exec::ExecPolicy{.jobs = 1});
    for (int on_worker : out)
        EXPECT_EQ(on_worker, 0);
}

// --- The headline property: experiment results are bit-identical ---

TEST_F(ParallelSweepFixture, BreakevenSweepBitIdentical)
{
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    const auto run = [&](const exec::ExecPolicy &policy) {
        const BreakevenResult r =
            findBreakeven(odrips, base, BreakevenSweep{}, 24, policy);
        // Tuple of everything findBreakeven computes; == is bitwise
        // equality on Ticks and exact equality on curve doubles.
        return std::make_tuple(r.breakEvenDwell, r.analyticBreakEven,
                               r.curve);
    };
    expectIdenticalAcrossJobs(run);
}

TEST_F(ParallelSweepFixture, Fig6aSetBitIdentical)
{
    const PlatformConfig cfg = skylakeConfig();
    const auto run = [&](const exec::ExecPolicy &policy) {
        std::vector<std::tuple<std::string, double, double, double,
                               double, Tick>>
            rows;
        for (const TechniqueEvaluation &e :
             evaluateFig6aSet(cfg, policy)) {
            rows.emplace_back(e.label, e.averagePower,
                              e.savingsVsBaseline, e.profile.idlePower,
                              e.profile.entryEnergy, e.breakEven);
        }
        return rows;
    };
    expectIdenticalAcrossJobs(run);
}

TEST_F(ParallelSweepFixture, AblationWakeIntervalBitIdentical)
{
    // The ablation_wake_interval sweep: Eq. 1 over a dwell grid.
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    const std::vector<double> dwells = {0.002, 0.01, 0.1, 1.0, 30.0,
                                        120.0};
    const auto run = [&](const exec::ExecPolicy &policy) {
        return exec::parallelSweep(
            "test-wake-interval", dwells.size(),
            [&](const exec::SweepPoint &point) {
                const Tick dwell = secondsToTicks(dwells[point.index]);
                const double p_base =
                    averagePowerEq1(base, dwell, 150 * oneMs, 0.7);
                const double p_odrips =
                    averagePowerEq1(odrips, dwell, 150 * oneMs, 0.7);
                return std::make_pair(p_base, p_odrips);
            },
            policy);
    };
    expectIdenticalAcrossJobs(run);
}

TEST_F(ParallelSweepFixture, AblationPowerDeliveryBitIdentical)
{
    // The ablation_power_delivery sweep: full platform measurement plus
    // a nested break-even sweep per point (exercises inline nesting on
    // the workers).
    const std::vector<double> effs = {0.55, 0.74, 0.95};
    const auto run = [&](const exec::ExecPolicy &policy) {
        return exec::parallelSweep(
            "test-power-delivery", effs.size(),
            [&](const exec::SweepPoint &point) {
                PlatformConfig cfg = skylakeConfig();
                cfg.pdLowEfficiency = effs[point.index];
                const CyclePowerProfile base =
                    measureCycleProfile(cfg, TechniqueSet::baseline());
                const CyclePowerProfile odrips =
                    measureCycleProfile(cfg, TechniqueSet::odrips());
                const BreakevenResult be = findBreakeven(odrips, base);
                return std::make_tuple(base.idlePower, odrips.idlePower,
                                       odrips.entryEnergy,
                                       be.breakEvenDwell);
            },
            policy);
    };
    expectIdenticalAcrossJobs(run);
}

TEST_F(ParallelSweepFixture, SweepMeterRecordsRuns)
{
    stats::clearSweepRecords();
    exec::ThreadPool pool(2);
    exec::parallelSweep(
        "metered-sweep", 64,
        [](const exec::SweepPoint &point) {
            return static_cast<int>(point.index);
        },
        exec::ExecPolicy{.pool = &pool});

    const auto records = stats::sweepRecords();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].name, "metered-sweep");
    EXPECT_EQ(records[0].points, 64u);
    EXPECT_EQ(records[0].jobs, 2u);
    EXPECT_GE(records[0].wallSeconds, 0.0);
    stats::clearSweepRecords();
}

} // namespace
