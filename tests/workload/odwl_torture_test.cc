/**
 * @file
 * `.odwl` torture suite, mirroring the result-store torture tests: a
 * trace file damaged in ANY way — truncated at every byte boundary,
 * any single byte flipped, bad magic/version, semantic range
 * violations hidden behind a recomputed CRC — must be rejected as a
 * unit with a counted error. A corrupt workload is never partially
 * replayed.
 *
 * File layout under surgery (see workload/odwl.cc):
 *   header    = magic(4) version(4) sectionCount(4)        -> 12 bytes
 *   section i = nameLen(8) name crc(4) payloadLen(8) payload
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "../store/store_test_util.hh"
#include "sim/checkpoint/serializer.hh"
#include "workload/odwl.hh"

using namespace odrips;
using odrips::test::TempDir;

namespace
{

/** A two-section document: mixed population plus a short trace. */
OdwlDocument
fixtureDocument()
{
    OdwlDocument doc;
    doc.population = FleetPopulation::mixedReference();
    RecordedDeviceDay day;
    day.deviceId = 42;
    day.classIndex = 1;
    for (int i = 0; i < 3; ++i) {
        RecordedCycle rec;
        rec.cycle.idleDwell = 1000000 + i;
        rec.cycle.cpuCycles = 5000 + static_cast<std::uint64_t>(i);
        rec.cycle.stallTime = 200 + i;
        rec.cycle.reason = WakeReason::Network;
        rec.cycle.coalesced = static_cast<std::uint32_t>(i);
        rec.phase = static_cast<std::uint32_t>(i % 2);
        day.cycles.push_back(rec);
    }
    doc.traces.push_back(day);
    return doc;
}

std::uint64_t
readLe64(const std::vector<std::uint8_t> &bytes, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[off + std::size_t(i)])
             << (8 * i);
    return v;
}

void
writeLe32(std::vector<std::uint8_t> &bytes, std::size_t off,
          std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[off + std::size_t(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

struct SectionSpan
{
    std::size_t crcOffset = 0;
    std::size_t payloadOffset = 0;
    std::size_t payloadSize = 0;
};

/** Walk the section table to locate @p name (layout in file comment). */
SectionSpan
findSection(const std::vector<std::uint8_t> &bytes,
            const std::string &name)
{
    std::size_t off = 12;
    while (off < bytes.size()) {
        const std::uint64_t nameLen = readLe64(bytes, off);
        off += 8;
        const std::string sectionName(
            reinterpret_cast<const char *>(bytes.data() + off),
            nameLen);
        off += nameLen;
        SectionSpan span;
        span.crcOffset = off;
        off += 4;
        span.payloadSize = readLe64(bytes, off);
        off += 8;
        span.payloadOffset = off;
        off += span.payloadSize;
        if (sectionName == name)
            return span;
    }
    ADD_FAILURE() << "section '" << name << "' not found";
    return {};
}

/** Patch payload bytes and restamp the section CRC so only the
 * semantic validators can reject the edit. */
void
patchPayload(std::vector<std::uint8_t> &bytes, const SectionSpan &span,
             std::size_t offset_in_payload,
             const std::vector<std::uint8_t> &patch)
{
    for (std::size_t i = 0; i < patch.size(); ++i)
        bytes[span.payloadOffset + offset_in_payload + i] = patch[i];
    writeLe32(bytes, span.crcOffset,
              ckpt::crc32(bytes.data() + span.payloadOffset,
                          span.payloadSize));
}

TEST(OdwlTortureTest, RoundTripPreservesEverything)
{
    const OdwlDocument doc = fixtureDocument();
    const OdwlDocument back = readOdwl(writeOdwl(doc));

    EXPECT_EQ(back.population.seed, doc.population.seed);
    ASSERT_EQ(back.population.classes.size(),
              doc.population.classes.size());
    for (std::size_t i = 0; i < doc.population.classes.size(); ++i) {
        const DeviceClass &a = doc.population.classes[i];
        const DeviceClass &b = back.population.classes[i];
        EXPECT_EQ(b.profile.name, a.profile.name);
        EXPECT_EQ(b.weight, a.weight);
        EXPECT_EQ(b.techniques.wakeupOff, a.techniques.wakeupOff);
        EXPECT_EQ(b.techniques.aonIoGate, a.techniques.aonIoGate);
        EXPECT_EQ(b.techniques.contextOffload,
                  a.techniques.contextOffload);
        EXPECT_EQ(b.techniques.contextStorage,
                  a.techniques.contextStorage);
        ASSERT_EQ(b.profile.phases.size(), a.profile.phases.size());
        for (std::size_t p = 0; p < a.profile.phases.size(); ++p) {
            const PhaseSpec &pa = a.profile.phases[p];
            const PhaseSpec &pb = b.profile.phases[p];
            EXPECT_EQ(pb.name, pa.name);
            EXPECT_EQ(pb.hours, pa.hours);
            EXPECT_EQ(pb.heartbeatPeriodSeconds,
                      pa.heartbeatPeriodSeconds);
            EXPECT_EQ(pb.notificationMeanSeconds,
                      pa.notificationMeanSeconds);
            EXPECT_EQ(pb.stormsPerHour, pa.stormsPerHour);
            EXPECT_EQ(pb.stormBurst, pa.stormBurst);
            EXPECT_EQ(pb.sensorWakesPerHour, pa.sensorWakesPerHour);
            EXPECT_EQ(pb.coalescingWindowSeconds,
                      pa.coalescingWindowSeconds);
        }
    }
    ASSERT_EQ(back.traces.size(), doc.traces.size());
    const RecordedDeviceDay &da = doc.traces[0];
    const RecordedDeviceDay &db = back.traces[0];
    EXPECT_EQ(db.deviceId, da.deviceId);
    EXPECT_EQ(db.classIndex, da.classIndex);
    ASSERT_EQ(db.cycles.size(), da.cycles.size());
    for (std::size_t c = 0; c < da.cycles.size(); ++c) {
        EXPECT_EQ(db.cycles[c].cycle.idleDwell,
                  da.cycles[c].cycle.idleDwell);
        EXPECT_EQ(db.cycles[c].cycle.cpuCycles,
                  da.cycles[c].cycle.cpuCycles);
        EXPECT_EQ(db.cycles[c].cycle.stallTime,
                  da.cycles[c].cycle.stallTime);
        EXPECT_EQ(db.cycles[c].cycle.reason, da.cycles[c].cycle.reason);
        EXPECT_EQ(db.cycles[c].cycle.coalesced,
                  da.cycles[c].cycle.coalesced);
        EXPECT_EQ(db.cycles[c].phase, da.cycles[c].phase);
    }
}

TEST(OdwlTortureTest, TruncationAtEveryByteIsRejected)
{
    const std::vector<std::uint8_t> bytes =
        writeOdwl(fixtureDocument());
    resetOdwlRejectedLoads();
    std::uint64_t expected = 0;
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(keep));
        EXPECT_THROW(readOdwl(cut), OdwlError) << "keep=" << keep;
        ++expected;
    }
    EXPECT_EQ(odwlRejectedLoads(), expected);
}

TEST(OdwlTortureTest, EveryFlippedByteIsRejected)
{
    // Any single flipped byte must be caught by one of the layers:
    // magic/version, the section-table framing, the per-section CRC,
    // or end-of-buffer accounting. No flip may load quietly.
    const std::vector<std::uint8_t> bytes =
        writeOdwl(fixtureDocument());
    for (std::size_t off = 0; off < bytes.size(); ++off) {
        std::vector<std::uint8_t> bad = bytes;
        bad[off] ^= 0xff;
        EXPECT_THROW(readOdwl(bad), OdwlError) << "offset " << off;
    }
}

TEST(OdwlTortureTest, TrailingGarbageIsRejected)
{
    std::vector<std::uint8_t> bytes = writeOdwl(fixtureDocument());
    bytes.push_back(0x00);
    EXPECT_THROW(readOdwl(bytes), OdwlError);
}

TEST(OdwlTortureTest, EmptyAndTinyInputsAreRejected)
{
    EXPECT_THROW(readOdwl({}), OdwlError);
    EXPECT_THROW(readOdwl({0x4f, 0x44}), OdwlError);
}

TEST(OdwlTortureTest, SemanticViolationsBehindValidCrcAreRejected)
{
    // CRC restamped after each patch: these exercise the semantic
    // validators, not the checksum.
    const std::vector<std::uint8_t> good =
        writeOdwl(fixtureDocument());

    {
        // traces payload: dayCount(4) deviceId(8) classIndex(4) ...
        std::vector<std::uint8_t> bad = good;
        const SectionSpan traces = findSection(bad, "traces");
        patchPayload(bad, traces, 12, {0xff, 0xff, 0xff, 0xff});
        EXPECT_THROW(readOdwl(bad), OdwlError) << "classIndex range";
    }
    {
        // ... cycleCount(8) then idleDwell(8): set its sign bit.
        std::vector<std::uint8_t> bad = good;
        const SectionSpan traces = findSection(bad, "traces");
        patchPayload(bad, traces, 24 + 7, {0x80});
        EXPECT_THROW(readOdwl(bad), OdwlError) << "negative dwell";
    }
    {
        // ... cpuCycles(8) stallTime(8) then reason(1): out of range.
        std::vector<std::uint8_t> bad = good;
        const SectionSpan traces = findSection(bad, "traces");
        patchPayload(bad, traces, 24 + 24, {0x07});
        EXPECT_THROW(readOdwl(bad), OdwlError) << "wake reason range";
    }
}

TEST(OdwlTortureTest, InvalidTechniqueComboIsRejected)
{
    // The writer does not validate; the reader must (mirroring
    // TechniqueSet::validate): AON IO gating without wake-up
    // migration is not a buildable configuration.
    OdwlDocument doc;
    doc.population = FleetPopulation::mixedReference();
    doc.population.classes[0].techniques.aonIoGate = true;
    doc.population.classes[0].techniques.wakeupOff = false;
    EXPECT_THROW(readOdwl(writeOdwl(doc)), OdwlError);
}

TEST(OdwlTortureTest, DegeneratePopulationsAreRejected)
{
    {
        OdwlDocument doc; // no classes at all
        EXPECT_THROW(readOdwl(writeOdwl(doc)), OdwlError);
    }
    {
        OdwlDocument doc;
        doc.population = FleetPopulation::mixedReference();
        doc.population.classes[0].profile.phases.clear();
        EXPECT_THROW(readOdwl(writeOdwl(doc)), OdwlError);
    }
    {
        OdwlDocument doc;
        doc.population = FleetPopulation::mixedReference();
        doc.population.classes[0].weight = 0.0;
        EXPECT_THROW(readOdwl(writeOdwl(doc)), OdwlError);
    }
    {
        OdwlDocument doc;
        doc.population = FleetPopulation::mixedReference();
        doc.population.classes[0].profile.phases[0].scalableFraction =
            1.5;
        EXPECT_THROW(readOdwl(writeOdwl(doc)), OdwlError);
    }
}

TEST(OdwlTortureTest, RejectionCounterCountsEveryFailure)
{
    const std::vector<std::uint8_t> bytes =
        writeOdwl(fixtureDocument());
    resetOdwlRejectedLoads();

    // A clean load does not count.
    (void)readOdwl(bytes);
    EXPECT_EQ(odwlRejectedLoads(), 0u);

    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    for (int i = 0; i < 3; ++i)
        EXPECT_THROW(readOdwl(bad), OdwlError);
    EXPECT_EQ(odwlRejectedLoads(), 3u);
}

TEST(OdwlTortureTest, FileRoundTripAndOnDiskCorruption)
{
    TempDir dir;
    const std::string path = dir.file("fleet.odwl");
    writeOdwlFile(path, fixtureDocument());

    const OdwlDocument back = readOdwlFile(path);
    EXPECT_EQ(back.population.classes.size(),
              fixtureDocument().population.classes.size());

    odrips::test::flipByteInFile(path, 30);
    EXPECT_THROW(readOdwlFile(path), OdwlError);

    odrips::test::truncateFile(path, 17);
    EXPECT_THROW(readOdwlFile(path), OdwlError);
}

TEST(OdwlTortureTest, MissingFileIsACountedRejection)
{
    resetOdwlRejectedLoads();
    EXPECT_THROW(readOdwlFile("/nonexistent/odrips/fleet.odwl"),
                 OdwlError);
    EXPECT_EQ(odwlRejectedLoads(), 1u);
}

} // namespace
