/**
 * @file
 * Tests for wake sources and standby workload generation.
 */

#include <gtest/gtest.h>

#include "workload/standby_workload.hh"
#include "workload/wake_source.hh"

using namespace odrips;

namespace
{

TEST(WakeSourceTest, KernelTimerIsPeriodic)
{
    Rng rng(1);
    KernelTimerSource src(30 * oneSec);
    const WakeEvent a = src.nextAfter(0, rng);
    EXPECT_EQ(a.time, 30 * oneSec);
    EXPECT_EQ(a.reason, WakeReason::KernelTimer);
    const WakeEvent b = src.nextAfter(a.time, rng);
    EXPECT_EQ(b.time, 60 * oneSec);
}

TEST(WakeSourceTest, JitterStaysBounded)
{
    Rng rng(2);
    KernelTimerSource src(30 * oneSec, 0.1);
    for (int i = 0; i < 200; ++i) {
        const WakeEvent e = src.nextAfter(0, rng);
        EXPECT_GE(e.time, 27 * oneSec);
        EXPECT_LE(e.time, 33 * oneSec);
    }
}

TEST(WakeSourceTest, PoissonMeanInterval)
{
    Rng rng(3);
    PoissonSource src(WakeReason::Network, 10.0);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += ticksToSeconds(src.nextAfter(0, rng).time);
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(WakeSourceTest, CombinedPicksEarliest)
{
    Rng rng(4);
    CombinedWakeSource combined;
    combined.add(std::make_unique<KernelTimerSource>(30 * oneSec));
    combined.add(std::make_unique<KernelTimerSource>(10 * oneSec));
    const WakeEvent e = combined.nextAfter(0, rng);
    EXPECT_EQ(e.time, 10 * oneSec);
}

TEST(WakeSourceTest, ReasonNames)
{
    EXPECT_STREQ(to_string(WakeReason::KernelTimer), "kernel-timer");
    EXPECT_STREQ(to_string(WakeReason::Network), "network");
    EXPECT_STREQ(to_string(WakeReason::User), "user");
}

TEST(StandbyCycleTest, ActiveDurationScalesWithFrequency)
{
    StandbyCycle c;
    c.cpuCycles = 80000000; // 100 ms at 0.8 GHz
    c.stallTime = 50 * oneMs;
    EXPECT_NEAR(ticksToSeconds(c.activeDuration(0.8e9)), 0.150, 1e-6);
    // Doubling the frequency halves only the CPU-bound part.
    EXPECT_NEAR(ticksToSeconds(c.activeDuration(1.6e9)), 0.100, 1e-6);
}

TEST(WorkloadGeneratorTest, MatchesConfiguredShape)
{
    WorkloadConfig cfg;
    cfg.idleDwellSeconds = 30.0;
    cfg.activeMinSeconds = 0.1;
    cfg.activeMaxSeconds = 0.3;
    cfg.scalableFraction = 0.7;
    cfg.seed = 11;
    StandbyWorkloadGenerator gen(cfg);
    const StandbyTrace trace = gen.generate(200);

    ASSERT_EQ(trace.cycles.size(), 200u);
    EXPECT_NEAR(trace.meanIdleSeconds(), 30.0, 1.0);
    const double active = trace.meanActiveSeconds(0.8e9);
    EXPECT_GT(active, 0.15);
    EXPECT_LT(active, 0.25);

    for (const StandbyCycle &c : trace.cycles) {
        const double total = ticksToSeconds(c.activeDuration(0.8e9));
        EXPECT_GE(total, 0.1 - 1e-6);
        EXPECT_LE(total, 0.3 + 1e-6);
        // 70/30 split between CPU-bound and stall time.
        EXPECT_NEAR(ticksToSeconds(c.stallTime) / total, 0.3, 0.01);
    }
}

TEST(WorkloadGeneratorTest, DeterministicForSeed)
{
    WorkloadConfig cfg;
    cfg.seed = 42;
    StandbyWorkloadGenerator a(cfg), b(cfg);
    const StandbyTrace ta = a.generate(20), tb = b.generate(20);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(ta.cycles[i].idleDwell, tb.cycles[i].idleDwell);
        EXPECT_EQ(ta.cycles[i].cpuCycles, tb.cycles[i].cpuCycles);
    }
}

TEST(WorkloadGeneratorTest, NetworkWakesShortenDwell)
{
    WorkloadConfig quiet;
    quiet.seed = 5;
    WorkloadConfig chatty = quiet;
    chatty.networkWakeMeanSeconds = 10.0;

    StandbyWorkloadGenerator a(quiet), b(chatty);
    EXPECT_GT(a.generate(100).meanIdleSeconds(),
              b.generate(100).meanIdleSeconds());
}

TEST(WorkloadGeneratorTest, FixedTraceIsUniform)
{
    const StandbyTrace trace = StandbyWorkloadGenerator::fixed(
        10, 5 * oneMs, 150 * oneMs, 0.7, 0.8e9);
    ASSERT_EQ(trace.cycles.size(), 10u);
    for (const StandbyCycle &c : trace.cycles) {
        EXPECT_EQ(c.idleDwell, 5 * oneMs);
        EXPECT_NEAR(ticksToSeconds(c.activeDuration(0.8e9)), 0.150,
                    1e-6);
    }
}

TEST(StandbyTraceTest, SerializeParseRoundTrip)
{
    WorkloadConfig cfg;
    cfg.seed = 9;
    StandbyWorkloadGenerator gen(cfg);
    const StandbyTrace trace = gen.generate(25);

    const StandbyTrace parsed = StandbyTrace::parse(trace.serialize());
    ASSERT_EQ(parsed.cycles.size(), trace.cycles.size());
    for (std::size_t i = 0; i < trace.cycles.size(); ++i) {
        EXPECT_EQ(parsed.cycles[i].idleDwell, trace.cycles[i].idleDwell);
        EXPECT_EQ(parsed.cycles[i].cpuCycles, trace.cycles[i].cpuCycles);
        EXPECT_EQ(parsed.cycles[i].stallTime, trace.cycles[i].stallTime);
        EXPECT_EQ(parsed.cycles[i].reason, trace.cycles[i].reason);
    }
}

TEST(StandbyTraceTest, ParseRejectsGarbage)
{
    Logger::throwOnError(true);
    EXPECT_THROW(StandbyTrace::parse("not a trace line"), SimError);
    Logger::throwOnError(false);
}

TEST(StandbyTraceTest, ParseSkipsCommentsAndBlanks)
{
    const StandbyTrace t =
        StandbyTrace::parse("# comment\n\n1000 2000 3000 0\n");
    ASSERT_EQ(t.cycles.size(), 1u);
    EXPECT_EQ(t.cycles[0].idleDwell, 1000);
}

TEST(CoalescingTest, ZeroWindowChangesNothing)
{
    WorkloadConfig cfg;
    cfg.networkWakeMeanSeconds = 10.0;
    cfg.seed = 21;
    StandbyWorkloadGenerator gen(cfg);
    const StandbyTrace t = gen.generate(50);
    EXPECT_EQ(t.totalCoalesced(), 0u);
}

TEST(CoalescingTest, WindowAbsorbsNetworkWakes)
{
    WorkloadConfig base;
    base.networkWakeMeanSeconds = 10.0;
    base.seed = 22;
    WorkloadConfig merged = base;
    merged.coalescingWindowSeconds = 20.0;

    StandbyWorkloadGenerator a(base), b(merged);
    const StandbyTrace raw = a.generate(60);
    const StandbyTrace coal = b.generate(60);

    EXPECT_GT(coal.totalCoalesced(), 0u);
    // Coalescing lengthens the mean dwell (fewer early wakes).
    EXPECT_GT(coal.meanIdleSeconds(), raw.meanIdleSeconds());

    // Network-reason cycles become rarer.
    auto network_count = [](const StandbyTrace &t) {
        std::size_t n = 0;
        for (const StandbyCycle &c : t.cycles)
            n += c.reason == WakeReason::Network;
        return n;
    };
    EXPECT_LT(network_count(coal), network_count(raw));
}

TEST(CoalescingTest, CoalescedCyclesCarryExtraWork)
{
    WorkloadConfig cfg;
    cfg.networkWakeMeanSeconds = 10.0;
    cfg.coalescingWindowSeconds = 25.0;
    cfg.seed = 23;
    StandbyWorkloadGenerator gen(cfg);
    const StandbyTrace t = gen.generate(80);

    double merged_mean = 0.0, plain_mean = 0.0;
    std::size_t merged_n = 0, plain_n = 0;
    for (const StandbyCycle &c : t.cycles) {
        const double active = ticksToSeconds(c.activeDuration(0.8e9));
        if (c.coalesced > 0) {
            merged_mean += active;
            ++merged_n;
        } else {
            plain_mean += active;
            ++plain_n;
        }
    }
    ASSERT_GT(merged_n, 0u);
    ASSERT_GT(plain_n, 0u);
    EXPECT_GT(merged_mean / static_cast<double>(merged_n),
              plain_mean / static_cast<double>(plain_n));
}

TEST(CoalescingTest, TraceRoundTripKeepsCoalescedField)
{
    WorkloadConfig cfg;
    cfg.networkWakeMeanSeconds = 8.0;
    cfg.coalescingWindowSeconds = 20.0;
    cfg.seed = 24;
    StandbyWorkloadGenerator gen(cfg);
    const StandbyTrace t = gen.generate(30);
    const StandbyTrace parsed = StandbyTrace::parse(t.serialize());
    EXPECT_EQ(parsed.totalCoalesced(), t.totalCoalesced());
}

TEST(CoalescingTest, OldTraceFormatStillParses)
{
    const StandbyTrace t =
        StandbyTrace::parse("1000 2000 3000 0\n"); // four fields
    ASSERT_EQ(t.cycles.size(), 1u);
    EXPECT_EQ(t.cycles[0].coalesced, 0u);
}

} // namespace
