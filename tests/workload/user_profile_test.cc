/**
 * @file
 * User-profile / day-cycle-generator tests: bit-identical streams for
 * equal seeds, decorrelated streams across device forks, exact day
 * clipping, phase coverage, parameter responsiveness, coalescing, and
 * weight-proportional class assignment. These are the properties the
 * fleet campaign's determinism and population math stand on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/units.hh"
#include "workload/user_profile.hh"

using namespace odrips;

namespace
{

/** Expand one device-day to a vector (tests only; hot path streams). */
std::vector<StandbyCycle>
expand(const UserProfile &profile, Rng rng, double day_seconds = 86400.0)
{
    std::vector<StandbyCycle> cycles;
    DayCycleGenerator gen(profile, rng, day_seconds);
    StandbyCycle cycle;
    std::size_t phase = 0;
    while (gen.next(cycle, phase))
        cycles.push_back(cycle);
    return cycles;
}

TEST(DayCycleGeneratorTest, SameSeedSameStream)
{
    const UserProfile profile = UserProfile::commuter();
    const Rng base(77);
    const auto a = expand(profile, base.fork(3));
    const auto b = expand(profile, base.fork(3));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].idleDwell, b[i].idleDwell) << "cycle " << i;
        EXPECT_EQ(a[i].cpuCycles, b[i].cpuCycles) << "cycle " << i;
        EXPECT_EQ(a[i].stallTime, b[i].stallTime) << "cycle " << i;
        EXPECT_EQ(a[i].reason, b[i].reason) << "cycle " << i;
        EXPECT_EQ(a[i].coalesced, b[i].coalesced) << "cycle " << i;
    }
}

TEST(DayCycleGeneratorTest, DeviceForksDecorrelated)
{
    const UserProfile profile = UserProfile::heavyNotifier();
    const Rng base(77);
    const auto a = expand(profile, base.fork(1));
    const auto b = expand(profile, base.fork(2));
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].idleDwell != b[i].idleDwell ||
                  a[i].cpuCycles != b[i].cpuCycles;
    EXPECT_TRUE(differs);
}

TEST(DayCycleGeneratorTest, DayIsClippedExactly)
{
    // Total wall time of the emitted day (idle dwells + active
    // windows at the reference frequency) lands exactly on the day
    // boundary: the final cycle's dwell absorbs the remainder.
    for (const UserProfile &profile :
         {UserProfile::lightUser(), UserProfile::heavyNotifier(),
          UserProfile::commuter(), UserProfile::nightOwl()}) {
        const auto cycles = expand(profile, Rng(5).fork(9));
        ASSERT_FALSE(cycles.empty()) << profile.name;
        Tick total = 0;
        for (const StandbyCycle &c : cycles)
            total += c.idleDwell +
                     c.activeDuration(DayCycleGenerator::kReferenceHz);
        const Tick day = secondsToTicks(86400.0);
        // Per-cycle quantisation: cpuCycles truncates to a whole core
        // cycle (one reference-clock period) and each seconds->ticks
        // conversion rounds within half a tick. The last active window
        // may also run past the boundary (its wake fired before it).
        const Tick perCycle =
            secondsToTicks(1.0 / DayCycleGenerator::kReferenceHz) + 4;
        const Tick rounding =
            perCycle * static_cast<Tick>(cycles.size()) + 4;
        const StandbyCycle &last = cycles.back();
        const Tick slack =
            last.activeDuration(DayCycleGenerator::kReferenceHz);
        EXPECT_GE(total, day - rounding) << profile.name;
        EXPECT_LE(total, day + slack + rounding) << profile.name;
    }
}

TEST(DayCycleGeneratorTest, CommuterVisitsEveryPhase)
{
    const UserProfile profile = UserProfile::commuter();
    DayCycleGenerator gen(profile, Rng(21).fork(0));
    StandbyCycle cycle;
    std::size_t phase = 0;
    std::set<std::size_t> seen;
    while (gen.next(cycle, phase))
        seen.insert(phase);
    EXPECT_EQ(seen.size(), profile.phases.size());
}

TEST(DayCycleGeneratorTest, NotificationRateDrivesWakeMix)
{
    // Both profiles share the ~30 s heartbeat floor; the notification
    // and storm parameters show up as external (non-heartbeat) wakes.
    const auto light = expand(UserProfile::lightUser(), Rng(8).fork(0));
    const auto heavy =
        expand(UserProfile::heavyNotifier(), Rng(8).fork(0));
    const auto external = [](const std::vector<StandbyCycle> &cycles) {
        std::size_t n = 0;
        for (const StandbyCycle &c : cycles)
            if (c.reason != WakeReason::KernelTimer)
                ++n;
        return n;
    };
    EXPECT_GT(heavy.size(), light.size());
    EXPECT_GT(external(heavy), external(light) * 5);
}

TEST(DayCycleGeneratorTest, CoalescingAbsorbsWakes)
{
    // A wide coalescing window on a notification-dense phase absorbs
    // pushes into the next heartbeat instead of emitting them.
    UserProfile profile = UserProfile::heavyNotifier();
    for (PhaseSpec &phase : profile.phases)
        phase.coalescingWindowSeconds = 10.0;
    DayCycleGenerator gen(profile, Rng(30).fork(0));
    StandbyCycle cycle;
    std::size_t phase = 0;
    std::uint64_t tagged = 0;
    while (gen.next(cycle, phase))
        tagged += cycle.coalesced;
    EXPECT_GT(gen.coalescedWakes(), 0u);
    EXPECT_EQ(tagged, gen.coalescedWakes());
}

TEST(FleetPopulationTest, ClassAssignmentIsDeterministic)
{
    const FleetPopulation pop = FleetPopulation::mixedReference();
    for (std::uint64_t id : {0ull, 1ull, 500ull, 99999ull})
        EXPECT_EQ(pop.classForDevice(id), pop.classForDevice(id));
}

TEST(FleetPopulationTest, ClassAssignmentTracksWeights)
{
    FleetPopulation pop;
    pop.seed = 3;
    DeviceClass a;
    a.profile = UserProfile::lightUser();
    a.weight = 1.0;
    DeviceClass b;
    b.profile = UserProfile::heavyNotifier();
    b.weight = 3.0;
    pop.classes.push_back(a);
    pop.classes.push_back(b);

    const std::uint64_t n = 20000;
    std::uint64_t hits = 0;
    for (std::uint64_t id = 0; id < n; ++id)
        if (pop.classForDevice(id) == 1)
            ++hits;
    const double fraction =
        static_cast<double>(hits) / static_cast<double>(n);
    EXPECT_NEAR(fraction, 0.75, 0.02);
}

TEST(FleetPopulationTest, MixedReferenceIsWellFormed)
{
    const FleetPopulation pop = FleetPopulation::mixedReference();
    ASSERT_FALSE(pop.classes.empty());
    for (const DeviceClass &cls : pop.classes) {
        EXPECT_GT(cls.weight, 0.0);
        EXPECT_FALSE(cls.profile.phases.empty());
        for (const PhaseSpec &phase : cls.profile.phases) {
            EXPECT_GT(phase.hours, 0.0);
            EXPECT_LE(phase.activeMinSeconds, phase.activeMaxSeconds);
            EXPECT_GE(phase.scalableFraction, 0.0);
            EXPECT_LE(phase.scalableFraction, 1.0);
        }
    }
}

} // namespace
