/**
 * @file
 * Differential tests for the runtime-dispatched SIMD crypto kernels:
 * every dispatch level the CPU can run must produce bit-identical
 * results to the portable scalar reference — SHA-256 across message
 * lengths, alignments, and streaming split points; SPECK-128 CTR
 * across batch sizes; mac64x8 against eight mac64 calls; and a full
 * MEE context round trip (ciphertext, MACs, stats).
 *
 * Registered under the `odrips_simd` ctest label; scripts/check.sh
 * additionally runs the whole security suite twice (native and
 * ODRIPS_DISPATCH=scalar) so the fallback path cannot rot.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "arch/cpu_features.hh"
#include "arch/dispatch.hh"
#include "mem/dram.hh"
#include "security/ctr_mode.hh"
#include "security/mee.hh"
#include "security/sha256.hh"
#include "security/speck.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

/** Dispatch levels that resolve to themselves on this machine. */
std::vector<arch::DispatchLevel>
testableLevels()
{
    std::vector<arch::DispatchLevel> levels;
    for (arch::DispatchLevel level :
         {arch::DispatchLevel::Sse4, arch::DispatchLevel::Avx2,
          arch::DispatchLevel::Native}) {
        if (arch::levelSupported(level))
            levels.push_back(level);
    }
    return levels;
}

/** RAII dispatch pin. */
class ScopedDispatch
{
  public:
    explicit ScopedDispatch(arch::DispatchLevel level)
        : previous(arch::setDispatchLevel(level))
    {
    }
    ~ScopedDispatch() { arch::setDispatchLevel(previous); }

  private:
    arch::DispatchLevel previous;
};

std::vector<std::uint8_t>
randomBytes(Rng &rng, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    for (std::uint8_t &b : out)
        b = static_cast<std::uint8_t>(rng.next64());
    return out;
}

TEST(SimdDispatchTest, ProbeIsCoherent)
{
    // Native always resolves; scalar is always its own level.
    EXPECT_TRUE(arch::levelSupported(arch::DispatchLevel::Scalar));
    EXPECT_TRUE(arch::levelSupported(arch::DispatchLevel::Native));
    EXPECT_EQ(arch::kernelsFor(arch::DispatchLevel::Scalar).levelName,
              std::string("scalar"));
    // The feature string never comes back empty.
    EXPECT_FALSE(arch::cpuFeatureString().empty());
}

TEST(SimdDispatchTest, Sha256MatchesScalarAcrossLengths)
{
    Rng rng(0x5e41);
    const std::vector<std::uint8_t> data = randomBytes(rng, 4096);

    for (std::size_t len = 0; len <= data.size();
         len = (len < 300 ? len + 1 : len + 97)) {
        Sha256::Digest reference;
        {
            ScopedDispatch pin(arch::DispatchLevel::Scalar);
            reference = Sha256::hash(data.data(), len);
        }
        for (arch::DispatchLevel level : testableLevels()) {
            ScopedDispatch pin(level);
            const Sha256::Digest simd = Sha256::hash(data.data(), len);
            ASSERT_EQ(std::memcmp(reference.data(), simd.data(),
                                  reference.size()),
                      0)
                << "len=" << len << " level="
                << arch::kernelsFor(level).levelName;
        }
    }
}

TEST(SimdDispatchTest, Sha256MatchesScalarAtUnalignedOffsets)
{
    Rng rng(0xa119);
    const std::vector<std::uint8_t> data = randomBytes(rng, 4096 + 64);

    for (std::size_t offset = 0; offset < 16; ++offset) {
        for (const std::size_t len : {0ul, 1ul, 55ul, 64ul, 65ul, 127ul,
                                      512ul, 1000ul, 4096ul}) {
            Sha256::Digest reference;
            {
                ScopedDispatch pin(arch::DispatchLevel::Scalar);
                reference = Sha256::hash(data.data() + offset, len);
            }
            for (arch::DispatchLevel level : testableLevels()) {
                ScopedDispatch pin(level);
                const Sha256::Digest simd =
                    Sha256::hash(data.data() + offset, len);
                ASSERT_EQ(std::memcmp(reference.data(), simd.data(),
                                      reference.size()),
                          0)
                    << "offset=" << offset << " len=" << len << " level="
                    << arch::kernelsFor(level).levelName;
            }
        }
    }
}

TEST(SimdDispatchTest, Sha256StreamingSplitsMatchOneShot)
{
    Rng rng(0x57e4);
    const std::vector<std::uint8_t> data = randomBytes(rng, 2048);

    Sha256::Digest reference;
    {
        ScopedDispatch pin(arch::DispatchLevel::Scalar);
        reference = Sha256::hash(data.data(), data.size());
    }

    for (arch::DispatchLevel level : testableLevels()) {
        ScopedDispatch pin(level);
        Rng splits(0x5911);
        for (int trial = 0; trial < 64; ++trial) {
            Sha256 h;
            std::size_t pos = 0;
            while (pos < data.size()) {
                const std::size_t chunk = std::min<std::size_t>(
                    1 + splits.uniformInt(511), data.size() - pos);
                h.update(data.data() + pos, chunk);
                pos += chunk;
            }
            const Sha256::Digest simd = h.finish();
            ASSERT_EQ(std::memcmp(reference.data(), simd.data(),
                                  reference.size()),
                      0)
                << "trial=" << trial << " level="
                << arch::kernelsFor(level).levelName;
        }
    }
}

TEST(SimdDispatchTest, SpeckBatchMatchesScalarAcrossCounts)
{
    Rng rng(0x9bec);
    Speck128::Key key;
    for (std::uint8_t &b : key)
        b = static_cast<std::uint8_t>(rng.next64());
    const Speck128 cipher(key);

    for (std::size_t count = 1; count <= 33; ++count) {
        std::vector<Block128> reference(count);
        for (Block128 &blk : reference) {
            blk.x = rng.next64();
            blk.y = rng.next64();
        }
        std::vector<Block128> plain = reference;

        {
            ScopedDispatch pin(arch::DispatchLevel::Scalar);
            cipher.encryptBatch(reference.data(), reference.size());
        }
        // Scalar batch must equal scalar single-block encryption.
        for (std::size_t b = 0; b < count; ++b)
            ASSERT_EQ(cipher.encrypt(plain[b]), reference[b]);

        for (arch::DispatchLevel level : testableLevels()) {
            ScopedDispatch pin(level);
            std::vector<Block128> simd = plain;
            cipher.encryptBatch(simd.data(), simd.size());
            for (std::size_t b = 0; b < count; ++b)
                ASSERT_EQ(reference[b], simd[b])
                    << "count=" << count << " block=" << b << " level="
                    << arch::kernelsFor(level).levelName;
        }
    }
}

TEST(SimdDispatchTest, CtrModeMatchesScalarAcrossLengthsAndOffsets)
{
    Rng rng(0xc7a0);
    Speck128::Key key;
    for (std::uint8_t &b : key)
        b = static_cast<std::uint8_t>(rng.next64());
    const CtrCipher ctr(key);

    const std::vector<std::uint8_t> plain = randomBytes(rng, 4096 + 16);
    for (const std::size_t len :
         {1ul, 15ul, 16ul, 17ul, 64ul, 100ul, 512ul, 4096ul}) {
        for (std::size_t offset = 0; offset < 3; ++offset) {
            std::vector<std::uint8_t> reference(
                plain.begin() + static_cast<long>(offset),
                plain.begin() + static_cast<long>(offset + len));
            {
                ScopedDispatch pin(arch::DispatchLevel::Scalar);
                ctr.apply(0xdead000, 42, reference.data(), len);
            }
            for (arch::DispatchLevel level : testableLevels()) {
                ScopedDispatch pin(level);
                std::vector<std::uint8_t> simd(
                    plain.begin() + static_cast<long>(offset),
                    plain.begin() + static_cast<long>(offset + len));
                ctr.apply(0xdead000, 42, simd.data(), len);
                ASSERT_EQ(reference, simd)
                    << "len=" << len << " offset=" << offset << " level="
                    << arch::kernelsFor(level).levelName;
            }
        }
    }
}

TEST(SimdDispatchTest, Mac64x8MatchesEightMac64Calls)
{
    Rng rng(0x3ac8);
    std::array<std::uint8_t, 16> key;
    for (std::uint8_t &b : key)
        b = static_cast<std::uint8_t>(rng.next64());

    const std::vector<std::uint8_t> payload = randomBytes(rng, 8 * 64);
    std::uint64_t addrs[8], versions[8], domains[8];
    MacSegment segments[8 * 3];
    std::uint64_t reference[8];
    for (std::size_t lane = 0; lane < 8; ++lane) {
        addrs[lane] = rng.next64();
        versions[lane] = rng.next64();
        domains[lane] = rng.next64();
        segments[3 * lane] = {payload.data() + 64 * lane, 64};
        segments[3 * lane + 1] = {&addrs[lane], 8};
        segments[3 * lane + 2] = {&versions[lane], 8};
    }
    {
        ScopedDispatch pin(arch::DispatchLevel::Scalar);
        for (std::size_t lane = 0; lane < 8; ++lane)
            reference[lane] = mac64(key, domains[lane],
                                    {{payload.data() + 64 * lane, 64},
                                     {&addrs[lane], 8},
                                     {&versions[lane], 8}});
    }

    for (arch::DispatchLevel level : testableLevels()) {
        ScopedDispatch pin(level);
        std::uint64_t batched[8];
        mac64x8(key, domains, segments, 3, batched);
        for (std::size_t lane = 0; lane < 8; ++lane)
            ASSERT_EQ(reference[lane], batched[lane])
                << "lane=" << lane << " level="
                << arch::kernelsFor(level).levelName;
    }

    // The scalar fallback of mac64x8 itself must also match.
    {
        ScopedDispatch pin(arch::DispatchLevel::Scalar);
        std::uint64_t batched[8];
        mac64x8(key, domains, segments, 3, batched);
        for (std::size_t lane = 0; lane < 8; ++lane)
            ASSERT_EQ(reference[lane], batched[lane]) << "lane=" << lane;
    }
}

/** Full context transfer per dispatch level: memory image, restored
 * plaintext, and MEE statistics must all be identical to scalar. */
TEST(SimdDispatchTest, MeeContextTransferBitIdenticalAcrossLevels)
{
    Rng rng(0x6ee0);
    // An awkward size: 37 lines, so the batched path sees four full
    // 8-line batches plus a 5-line tail.
    const std::size_t contextBytes = 37 * 64;
    const std::vector<std::uint8_t> context =
        randomBytes(rng, contextBytes);

    struct Snapshot
    {
        std::vector<std::uint8_t> restored;
        std::vector<std::uint8_t> memoryImage;
        MeeStats stats;
        bool authentic = false;
    };

    const auto runTransfer = [&](arch::DispatchLevel level) {
        ScopedDispatch pin(level);
        Dram dram("d", DramConfig{});
        MeeConfig cfg;
        cfg.dataBase = 1 << 20;
        cfg.dataSize = contextBytes;
        cfg.metaBase = 8 << 20;
        Mee mee("mee", dram, cfg);

        Snapshot snap;
        mee.secureWrite(cfg.dataBase, context.data(), contextBytes, 0);
        snap.memoryImage = dram.store().read(cfg.dataBase, contextBytes);
        snap.restored.resize(contextBytes);
        mee.secureRead(cfg.dataBase, snap.restored.data(), contextBytes,
                       0, snap.authentic);
        snap.stats = mee.statistics();
        return snap;
    };

    const Snapshot reference = runTransfer(arch::DispatchLevel::Scalar);
    ASSERT_TRUE(reference.authentic);
    ASSERT_EQ(reference.restored, context);

    for (arch::DispatchLevel level : testableLevels()) {
        const Snapshot simd = runTransfer(level);
        const char *name = arch::kernelsFor(level).levelName;
        EXPECT_TRUE(simd.authentic) << name;
        EXPECT_EQ(reference.restored, simd.restored) << name;
        EXPECT_EQ(reference.memoryImage, simd.memoryImage) << name;
        EXPECT_EQ(reference.stats.cacheHits, simd.stats.cacheHits)
            << name;
        EXPECT_EQ(reference.stats.cacheMisses, simd.stats.cacheMisses)
            << name;
        EXPECT_EQ(reference.stats.metadataBytesRead,
                  simd.stats.metadataBytesRead)
            << name;
        EXPECT_EQ(reference.stats.metadataBytesWritten,
                  simd.stats.metadataBytesWritten)
            << name;
    }
}

} // namespace
