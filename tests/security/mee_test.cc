/**
 * @file
 * End-to-end tests for the memory encryption engine: functional
 * round-trips, confidentiality, integrity under fault injection
 * (bit flips in data, counters, and MACs), freshness under replay,
 * power-cycle persistence via the root record, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "security/mee.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

class MeeTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t dataBase = 1 << 20;
    static constexpr std::uint64_t dataSize = 64 << 10;
    static constexpr std::uint64_t metaBase = 8 << 20;

    MeeTest() : dram("d", DramConfig{}), mee("mee", dram, makeConfig())
    {
    }

    static MeeConfig
    makeConfig()
    {
        MeeConfig cfg;
        for (std::size_t i = 0; i < cfg.key.size(); ++i)
            cfg.key[i] = static_cast<std::uint8_t>(3 * i + 1);
        cfg.dataBase = dataBase;
        cfg.dataSize = dataSize;
        cfg.metaBase = metaBase;
        return cfg;
    }

    std::vector<std::uint8_t>
    pattern(std::uint64_t len, std::uint64_t seed = 5)
    {
        Rng rng(seed);
        std::vector<std::uint8_t> v(len);
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.next64());
        return v;
    }

    Dram dram;
    Mee mee;
};

TEST_F(MeeTest, WriteReadRoundTrip)
{
    const auto data = pattern(4096);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = false;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_TRUE(authentic);
    EXPECT_EQ(out, data);
}

TEST_F(MeeTest, CiphertextInDramDiffersFromPlaintext)
{
    const auto data = pattern(256);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    const auto raw = dram.store().read(dataBase, data.size());
    EXPECT_NE(raw, data);
    // Not a trivial transformation: at least half the bytes differ.
    int diff = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        diff += raw[i] != data[i];
    EXPECT_GT(diff, 200);
}

TEST_F(MeeTest, RewriteChangesCiphertextEvenForSameData)
{
    // Version counters make counter-mode pads unique per write.
    const auto data = pattern(64);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    const auto first = dram.store().read(dataBase, 64);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    const auto second = dram.store().read(dataBase, 64);
    EXPECT_NE(first, second);
}

TEST_F(MeeTest, DataTamperDetected)
{
    const auto data = pattern(4096);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    mee.flush(0);

    dram.store().flipBit(dataBase + 100, 3);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = true;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_FALSE(authentic);
    EXPECT_EQ(mee.statistics().authFailures, 1u);
}

TEST_F(MeeTest, MetadataTamperDetected)
{
    const auto data = pattern(4096);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    mee.flush(0);
    // The cache must not mask the corrupted DRAM copy.
    mee.powerOff();
    mee.importRoot(mee.exportRoot());

    // Flip a bit somewhere in the metadata region (a counter or MAC).
    dram.store().flipBit(metaBase + 8, 0);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = true;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_FALSE(authentic);
}

TEST_F(MeeTest, ReplayAttackDetectedByRootCounter)
{
    // Snapshot DRAM (data + metadata), write newer content, then roll
    // DRAM back to the old snapshot. The on-chip root counter must
    // expose the rollback.
    const auto v1 = pattern(4096, 1);
    mee.secureWrite(dataBase, v1.data(), v1.size(), 0);
    mee.flush(0);

    const auto old_data = dram.store().read(dataBase, v1.size());
    const auto old_meta =
        dram.store().read(metaBase, mee.metadataBytes());

    const auto v2 = pattern(4096, 2);
    mee.secureWrite(dataBase, v2.data(), v2.size(), 0);
    mee.flush(0);
    mee.powerOff();
    mee.importRoot(mee.exportRoot());

    // Adversary rolls DRAM back to the stale-but-consistent snapshot.
    dram.store().write(dataBase, old_data);
    dram.store().write(metaBase, old_meta);

    std::vector<std::uint8_t> out(v1.size());
    bool authentic = true;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_FALSE(authentic);
}

TEST_F(MeeTest, PowerCycleWithRootSurvives)
{
    const auto data = pattern(8192);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    mee.flush(0);

    const MeeRootState root = mee.exportRoot();
    mee.powerOff();
    mee.importRoot(root);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = false;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_TRUE(authentic);
    EXPECT_EQ(out, data);
}

TEST_F(MeeTest, PowerOffWithoutFlushLosesTreeConsistency)
{
    const auto data = pattern(4096);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    // No flush: dirty metadata dies with the cache.
    mee.powerOff();
    mee.importRoot(mee.exportRoot());

    std::vector<std::uint8_t> out(data.size());
    bool authentic = true;
    mee.secureRead(dataBase, out.data(), out.size(), 0, authentic);
    EXPECT_FALSE(authentic);
}

TEST_F(MeeTest, RootStateSerializeRoundTrip)
{
    MeeRootState s;
    s.rootCounter = 0x12345678;
    for (std::size_t i = 0; i < s.key.size(); ++i)
        s.key[i] = static_cast<std::uint8_t>(i);
    std::uint8_t buf[MeeRootState::storageBytes];
    s.serialize(buf);
    const MeeRootState t = MeeRootState::deserialize(buf);
    EXPECT_EQ(t.rootCounter, s.rootCounter);
    EXPECT_EQ(t.key, s.key);
}

TEST_F(MeeTest, StreamingWriteMostlyHitsCache)
{
    const auto data = pattern(dataSize);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    const MeeStats &s = mee.statistics();
    EXPECT_EQ(s.linesWritten, dataSize / 64);
    const double hit_rate =
        static_cast<double>(s.cacheHits) /
        static_cast<double>(s.cacheHits + s.cacheMisses);
    EXPECT_GT(hit_rate, 0.75);
}

TEST_F(MeeTest, MetadataTrafficIsBounded)
{
    const auto data = pattern(dataSize);
    mee.secureWrite(dataBase, data.data(), data.size(), 0);
    mee.flush(0);
    const MeeStats &s = mee.statistics();
    // Cold-cache traffic: reads bounded by ~1.5x node footprint;
    // writebacks bounded by the total node footprint.
    EXPECT_LT(s.metadataBytesRead, mee.metadataBytes() * 3 / 2);
    EXPECT_LE(s.metadataBytesWritten, mee.metadataBytes() * 5 / 4);
    EXPECT_GT(s.metadataBytesWritten, 0u);
}

TEST_F(MeeTest, LatencyScalesWithTransferSize)
{
    const auto small = pattern(4096);
    const auto large = pattern(dataSize);
    const Tick t_small =
        mee.secureWrite(dataBase, small.data(), small.size(), 0).latency;
    mee.resetStatistics();
    const Tick t_large =
        mee.secureWrite(dataBase, large.data(), large.size(), 0).latency;
    EXPECT_GT(t_large, 4 * t_small);
}

TEST_F(MeeTest, UnalignedAccessPanics)
{
    Logger::throwOnError(true);
    std::uint8_t buf[64] = {};
    EXPECT_THROW(mee.secureWrite(dataBase + 1, buf, 64, 0), SimError);
    EXPECT_THROW(mee.secureWrite(dataBase, buf, 63, 0), SimError);
    bool a = true;
    EXPECT_THROW(mee.secureRead(dataBase + 32, buf, 64, 0, a), SimError);
    Logger::throwOnError(false);
}

TEST_F(MeeTest, OutOfRegionAccessPanics)
{
    Logger::throwOnError(true);
    std::uint8_t buf[64] = {};
    EXPECT_THROW(mee.secureWrite(dataBase - 64, buf, 64, 0), SimError);
    EXPECT_THROW(
        mee.secureWrite(dataBase + dataSize, buf, 64, 0), SimError);
    Logger::throwOnError(false);
}

TEST_F(MeeTest, OverlappingMetadataRegionRejected)
{
    Logger::throwOnError(true);
    MeeConfig bad = makeConfig();
    bad.metaBase = bad.dataBase + 64; // inside the data region
    EXPECT_THROW(Mee("bad", dram, bad), SimError);
    Logger::throwOnError(false);
}

} // namespace
