/**
 * @file
 * Tests for the integrity-tree layout math.
 */

#include <gtest/gtest.h>

#include "security/integrity_tree.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(TreeLayoutTest, PaperContextRegionShape)
{
    // 200 KB protected region (the paper's processor context):
    // 3200 lines -> levels of 3200 / 400 / 50 / 7 counters.
    TreeLayout t(200 << 10);
    EXPECT_EQ(t.dataLines(), 3200u);
    ASSERT_EQ(t.counterLevels(), 4u);
    EXPECT_EQ(t.counterCount(0), 3200u);
    EXPECT_EQ(t.counterCount(1), 400u);
    EXPECT_EQ(t.counterCount(2), 50u);
    EXPECT_EQ(t.counterCount(3), 7u);
    EXPECT_EQ(t.counterNodes(0), 400u);
    EXPECT_EQ(t.counterNodes(1), 50u);
    EXPECT_EQ(t.counterNodes(2), 7u);
    EXPECT_EQ(t.counterNodes(3), 1u);
    EXPECT_EQ(t.dataMacNodes(), 400u);
}

TEST(TreeLayoutTest, MetadataFootprintIsModest)
{
    TreeLayout t(200 << 10);
    // (400+50+7+1) + 400 = 858 nodes of 80 B = 68.6 KB, about a third
    // of the protected data — and < 0.2% of a 64 MB SGX region.
    EXPECT_EQ(t.totalNodes(), 858u);
    EXPECT_EQ(t.metadataBytes(), 858u * 80u);
    EXPECT_LT(t.metadataBytes(), (200u << 10) / 2);
}

TEST(TreeLayoutTest, SingleLineRegion)
{
    TreeLayout t(64);
    EXPECT_EQ(t.dataLines(), 1u);
    EXPECT_EQ(t.counterLevels(), 1u);
    EXPECT_EQ(t.counterCount(0), 1u);
    EXPECT_EQ(t.counterNodes(0), 1u);
    EXPECT_EQ(t.dataMacNodes(), 1u);
}

TEST(TreeLayoutTest, ExactArityBoundary)
{
    // 8 lines = exactly one full counter group.
    TreeLayout t(8 * 64);
    EXPECT_EQ(t.counterLevels(), 1u);
    EXPECT_EQ(t.counterNodes(0), 1u);

    // 9 lines needs a second level.
    TreeLayout t2(9 * 64);
    EXPECT_EQ(t2.counterLevels(), 2u);
    EXPECT_EQ(t2.counterNodes(0), 2u);
    EXPECT_EQ(t2.counterCount(1), 2u);
}

TEST(TreeLayoutTest, OffsetsAreUniqueAndInRange)
{
    TreeLayout t(64 << 10);
    std::vector<std::uint64_t> offsets;
    for (unsigned level = 0; level < t.counterLevels(); ++level) {
        for (std::uint64_t g = 0; g < t.counterNodes(level); ++g) {
            offsets.push_back(
                t.nodeOffset(NodeKind::CounterGroup, level, g));
        }
    }
    for (std::uint64_t g = 0; g < t.dataMacNodes(); ++g)
        offsets.push_back(t.nodeOffset(NodeKind::DataMacGroup, 0, g));

    std::sort(offsets.begin(), offsets.end());
    EXPECT_TRUE(std::adjacent_find(offsets.begin(), offsets.end()) ==
                offsets.end());
    EXPECT_EQ(offsets.back() + MetadataNode::storageBytes,
              t.metadataBytes());
}

TEST(TreeLayoutTest, NodeKeysUnique)
{
    const std::uint64_t a = TreeLayout::nodeKey(NodeKind::CounterGroup, 0, 5);
    const std::uint64_t b = TreeLayout::nodeKey(NodeKind::CounterGroup, 1, 5);
    const std::uint64_t c = TreeLayout::nodeKey(NodeKind::DataMacGroup, 0, 5);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
}

TEST(TreeLayoutTest, InvalidRegionPanics)
{
    Logger::throwOnError(true);
    EXPECT_THROW(TreeLayout(0), SimError);
    EXPECT_THROW(TreeLayout(100), SimError); // not a multiple of 64
    Logger::throwOnError(false);
}

TEST(TreeLayoutTest, BadLevelOrGroupPanics)
{
    Logger::throwOnError(true);
    TreeLayout t(64 << 10);
    EXPECT_THROW(t.counterCount(99), SimError);
    EXPECT_THROW(t.nodeOffset(NodeKind::CounterGroup, 0,
                              t.counterNodes(0)),
                 SimError);
    Logger::throwOnError(false);
}

} // namespace
