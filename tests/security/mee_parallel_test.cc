/**
 * @file
 * Determinism of the thread-parallel MEE transfer crypto: a full
 * connected-standby simulation must produce bit-identical results for
 * every worker count — serial, --jobs 1, 2, and 8 — because the
 * transfer sharding is static over fixed 8-line chunks with an ordered
 * merge. The suite carries the odrips_tsan label so scripts/check.sh
 * also runs it under -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include "core/standby_simulator.hh"
#include "exec/thread_pool.hh"
#include "platform/platform.hh"
#include "platform/techniques.hh"
#include "workload/standby_workload.hh"

using namespace odrips;

namespace
{

/** Everything a standby run can observably produce. */
struct RunSnapshot
{
    StandbyResult result;
    MeeStats mee;
    std::uint64_t rootCounter = 0;
    std::uint64_t contextChecksum = 0;
};

RunSnapshot
runStandby(exec::ThreadPool *pool, ContextMutationKind kind)
{
    PlatformConfig cfg = skylakeConfig();
    cfg.contextMutation.kind = kind;
    Platform platform(cfg);
    // nullptr pins the serial reference path; a pool shards the
    // transfer crypto across its workers.
    platform.mee->setTransferPool(pool);

    StandbySimulator sim(platform, TechniqueSet::odrips());
    StandbyWorkloadGenerator gen(cfg.workload);
    RunSnapshot snap;
    snap.result = sim.run(gen.generate(3));
    snap.mee = platform.mee->statistics();
    snap.rootCounter = platform.mee->exportRoot().rootCounter;
    snap.contextChecksum = platform.processor.context.checksum();
    return snap;
}

/** Bit-exact equality, doubles included: determinism, not tolerance. */
void
expectIdentical(const RunSnapshot &a, const RunSnapshot &b)
{
    EXPECT_EQ(a.result.averageBatteryPower, b.result.averageBatteryPower);
    EXPECT_EQ(a.result.idleBatteryPower, b.result.idleBatteryPower);
    EXPECT_EQ(a.result.activeBatteryPower, b.result.activeBatteryPower);
    EXPECT_EQ(a.result.idleResidency, b.result.idleResidency);
    EXPECT_EQ(a.result.activeResidency, b.result.activeResidency);
    EXPECT_EQ(a.result.transitionResidency,
              b.result.transitionResidency);
    EXPECT_EQ(a.result.meanEntryLatency, b.result.meanEntryLatency);
    EXPECT_EQ(a.result.meanExitLatency, b.result.meanExitLatency);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.simulatedTime, b.result.simulatedTime);
    EXPECT_EQ(a.result.contextIntact, b.result.contextIntact);

    EXPECT_EQ(a.mee.linesWritten, b.mee.linesWritten);
    EXPECT_EQ(a.mee.linesRead, b.mee.linesRead);
    EXPECT_EQ(a.mee.metadataBytesRead, b.mee.metadataBytesRead);
    EXPECT_EQ(a.mee.metadataBytesWritten, b.mee.metadataBytesWritten);
    EXPECT_EQ(a.mee.cacheHits, b.mee.cacheHits);
    EXPECT_EQ(a.mee.cacheMisses, b.mee.cacheMisses);
    EXPECT_EQ(a.mee.authFailures, b.mee.authFailures);
    EXPECT_EQ(a.mee.cryptoEnergy, b.mee.cryptoEnergy);

    EXPECT_EQ(a.rootCounter, b.rootCounter);
    EXPECT_EQ(a.contextChecksum, b.contextChecksum);
}

TEST(MeeParallelTest, FullSaveJobsSweepIsBitIdentical)
{
    // FullRegenerate keeps every save a full 200 KB transfer (3200
    // lines), well above the parallel threshold.
    const RunSnapshot serial =
        runStandby(nullptr, ContextMutationKind::FullRegenerate);
    ASSERT_TRUE(serial.result.contextIntact);
    EXPECT_EQ(serial.mee.authFailures, 0u);

    for (const unsigned jobs : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << "jobs=" << jobs);
        exec::ThreadPool pool(jobs);
        const RunSnapshot sharded =
            runStandby(&pool, ContextMutationKind::FullRegenerate);
        expectIdentical(serial, sharded);
    }
}

TEST(MeeParallelTest, IncrementalSaveJobsSweepIsBitIdentical)
{
    // CsrSubset makes the steady-state saves small deltas (below the
    // parallel threshold) while restores stay full-size and parallel:
    // the mixed regime must be just as deterministic.
    const RunSnapshot serial =
        runStandby(nullptr, ContextMutationKind::CsrSubset);
    ASSERT_TRUE(serial.result.contextIntact);

    for (const unsigned jobs : {2u, 8u}) {
        SCOPED_TRACE(testing::Message() << "jobs=" << jobs);
        exec::ThreadPool pool(jobs);
        const RunSnapshot sharded =
            runStandby(&pool, ContextMutationKind::CsrSubset);
        expectIdentical(serial, sharded);
    }
}

} // namespace
