/**
 * @file
 * Differential tests for the incremental (dirty-line delta) context
 * save path against the historical full save.
 *
 *  - Under the default FullRegenerate mutation model every line is
 *    dirty, so an incremental FSM must behave *bit-identically* to a
 *    full-save FSM: same bytes moved, same latencies, same MEE traffic,
 *    same tree root. This is what keeps the golden figures valid.
 *  - Under the CsrSubset model the delta path moves only the dirty
 *    runs; the restored context must still be authentic and
 *    byte-identical to what the full-save engine reproduces, across
 *    randomized seeds.
 *
 * The suite carries the odrips_simd label, so scripts/check.sh runs it
 * both with native SIMD dispatch and pinned to ODRIPS_DISPATCH=scalar.
 */

#include <gtest/gtest.h>

#include "flows/context_fsm.hh"
#include "platform/platform.hh"

using namespace odrips;

namespace
{

/** One platform + context + FSM pair driven in lockstep with another. */
class Rig
{
  public:
    Rig(bool incremental, const ContextMutationConfig &mutation,
        std::uint64_t seed)
        : platform(skylakeConfig()),
          ctx(platform.cfg.saContextBytes, platform.cfg.coresContextBytes,
              platform.cfg.bootContextBytes, seed, mutation),
          saFsm("sa_fsm", platform.processor.saSram,
                *platform.memoryController, 0),
          llcFsm("llc_fsm", platform.processor.coresSram,
                 *platform.memoryController, platform.cfg.saContextBytes)
    {
        saFsm.setIncremental(incremental);
        llcFsm.setIncremental(incremental);
    }

    TransferResult
    saveSa(Tick now)
    {
        saFsm.saveToSram(ctx.sa(), now);
        return saFsm.save(ctx.sa(), now);
    }

    TransferResult
    saveCores(Tick now)
    {
        llcFsm.saveToSram(ctx.cores(), now);
        return llcFsm.save(ctx.cores(), now);
    }

    TransferResult restoreSa(Tick now) { return saFsm.restore(ctx.sa(), now); }
    TransferResult
    restoreCores(Tick now)
    {
        return llcFsm.restore(ctx.cores(), now);
    }

    Platform platform;
    ProcessorContext ctx;
    ContextTransferFsm saFsm;
    ContextTransferFsm llcFsm;
};

TEST(IncrementalContextTest, FullRegenerateModelIsBitIdentical)
{
    // All lines dirty every cycle: the delta path must degenerate to
    // the exact historical full save, cycle after cycle.
    ContextMutationConfig mut; // default FullRegenerate
    Rig inc(/*incremental=*/true, mut, /*seed=*/7);
    Rig full(/*incremental=*/false, mut, /*seed=*/7);

    Tick now = 0;
    for (int cycle = 0; cycle < 4; ++cycle) {
        inc.ctx.touch();
        full.ctx.touch();
        ASSERT_EQ(inc.ctx.checksum(), full.ctx.checksum());

        const TransferResult a = inc.saveSa(now);
        const TransferResult b = full.saveSa(now);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.latency, b.latency);

        const TransferResult c = inc.saveCores(now);
        const TransferResult d = full.saveCores(now);
        EXPECT_EQ(c.bytes, d.bytes);
        EXPECT_EQ(c.latency, d.latency);
        now += oneMs;
    }

    // Identical modeled behaviour all the way down: MEE line counts,
    // metadata traffic, cache behaviour, energy, and the tree root.
    const MeeStats &sa = inc.platform.mee->statistics();
    const MeeStats &sb = full.platform.mee->statistics();
    EXPECT_EQ(sa.linesWritten, sb.linesWritten);
    EXPECT_EQ(sa.linesRead, sb.linesRead);
    EXPECT_EQ(sa.metadataBytesRead, sb.metadataBytesRead);
    EXPECT_EQ(sa.metadataBytesWritten, sb.metadataBytesWritten);
    EXPECT_EQ(sa.cacheHits, sb.cacheHits);
    EXPECT_EQ(sa.cacheMisses, sb.cacheMisses);
    EXPECT_EQ(sa.authFailures, 0u);
    EXPECT_EQ(sa.cryptoEnergy, sb.cryptoEnergy);
    EXPECT_EQ(inc.platform.mee->exportRoot().rootCounter,
              full.platform.mee->exportRoot().rootCounter);
}

TEST(IncrementalContextTest, CsrSubsetDeltaSaveRestoresIdenticalContext)
{
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    mut.dirtyFraction = 0.06;

    for (const std::uint64_t seed : {1ULL, 11ULL, 42ULL}) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        Rig inc(/*incremental=*/true, mut, seed);
        Rig full(/*incremental=*/false, mut, seed);

        Tick now = 0;
        for (int cycle = 0; cycle < 5; ++cycle) {
            SCOPED_TRACE(testing::Message() << "cycle=" << cycle);
            inc.ctx.touch();
            full.ctx.touch();
            // Same seed, same mutation draws: lockstep contexts.
            ASSERT_EQ(inc.ctx.checksum(), full.ctx.checksum());
            const std::uint64_t expect_sa = inc.ctx.sa().checksum();
            const std::uint64_t expect_cores = inc.ctx.cores().checksum();

            const TransferResult isa = inc.saveSa(now);
            const TransferResult fsa = full.saveSa(now);
            const TransferResult icores = inc.saveCores(now);
            const TransferResult fcores = full.saveCores(now);
            if (cycle == 0) {
                // No DRAM copy yet: the first save is always full.
                EXPECT_EQ(isa.bytes, fsa.bytes);
                EXPECT_EQ(isa.latency, fsa.latency);
            } else {
                // Steady state: the delta moves only ~6% of the region
                // and finishes strictly faster.
                EXPECT_LT(isa.bytes, fsa.bytes / 4);
                EXPECT_LT(isa.latency, fsa.latency);
                EXPECT_LT(icores.bytes, fcores.bytes / 4);
                EXPECT_LT(icores.latency, fcores.latency);
            }

            // A restore must reproduce the exact saved context from
            // the partially rewritten protected region, and the MEE
            // must vouch for every line of it.
            const TransferResult ra = inc.restoreSa(now);
            const TransferResult rb = inc.restoreCores(now);
            ASSERT_TRUE(ra.authentic);
            ASSERT_TRUE(ra.intact);
            ASSERT_TRUE(rb.authentic);
            ASSERT_TRUE(rb.intact);
            EXPECT_EQ(inc.ctx.sa().checksum(), expect_sa);
            EXPECT_EQ(inc.ctx.cores().checksum(), expect_cores);

            const TransferResult rc = full.restoreSa(now);
            const TransferResult rd = full.restoreCores(now);
            ASSERT_TRUE(rc.intact);
            ASSERT_TRUE(rd.intact);
            EXPECT_EQ(inc.ctx.checksum(), full.ctx.checksum());
            now += oneMs;
        }

        // The whole point: the incremental engine pushed far fewer
        // lines through the crypto pipeline.
        EXPECT_LT(inc.platform.mee->statistics().linesWritten,
                  full.platform.mee->statistics().linesWritten / 4);
        EXPECT_EQ(inc.platform.mee->statistics().authFailures, 0u);
    }
}

TEST(IncrementalContextTest, FailedRestoreForcesNextSaveFull)
{
    ContextMutationConfig mut;
    mut.kind = ContextMutationKind::CsrSubset;
    Rig inc(/*incremental=*/true, mut, /*seed=*/3);

    Tick now = 0;
    inc.ctx.touch();
    inc.saveSa(now);

    // Corrupt the protected region behind the MEE's back: the restore
    // must flag it and re-arm a full save (the DRAM copy under the
    // clean lines can no longer be trusted as a delta base).
    const std::uint64_t base =
        inc.platform.memoryController->protectedRange().base;
    inc.platform.memory->store().flipBit(base + 100, 3);

    const TransferResult r = inc.restoreSa(now);
    EXPECT_FALSE(r.authentic);
    EXPECT_FALSE(r.intact);
    EXPECT_TRUE(inc.ctx.sa().dirty.allDirty());

    // The forced full save then re-establishes a good DRAM copy.
    const TransferResult again = inc.saveSa(now + oneMs);
    EXPECT_EQ(again.bytes, inc.ctx.sa().bytes.size());
    const TransferResult ok = inc.restoreSa(now + 2 * oneMs);
    EXPECT_TRUE(ok.authentic);
    EXPECT_TRUE(ok.intact);
}

} // namespace
