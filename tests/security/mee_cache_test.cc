/**
 * @file
 * Tests for the MEE metadata cache (set-associative, write-back, LRU).
 */

#include <gtest/gtest.h>

#include "security/mee_cache.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

MetadataNode
nodeWith(std::uint64_t seed)
{
    MetadataNode n;
    for (unsigned i = 0; i < MetadataNode::arity; ++i)
        n.counters[i] = seed + i;
    n.mac = ~seed;
    return n;
}

TEST(MetadataNodeTest, SerializeRoundTrip)
{
    const MetadataNode n = nodeWith(1234);
    std::uint8_t buf[MetadataNode::storageBytes];
    n.serialize(buf);
    const MetadataNode m = MetadataNode::deserialize(buf);
    EXPECT_EQ(m.counters, n.counters);
    EXPECT_EQ(m.mac, n.mac);
}

TEST(MeeCacheTest, MissThenHit)
{
    MeeCache cache(16, 4);
    const auto r1 = cache.access(1, nodeWith(1), false);
    EXPECT_FALSE(r1.hit);
    const auto r2 = cache.access(1, nodeWith(99), false);
    EXPECT_TRUE(r2.hit);
    // The stored node is authoritative; the second fill is ignored.
    EXPECT_EQ(cache.nodeFor(1).counters[0], 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(MeeCacheTest, ContainsDoesNotPerturb)
{
    MeeCache cache(16, 4);
    EXPECT_FALSE(cache.contains(5));
    cache.access(5, nodeWith(5), false);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(MeeCacheTest, DirtyEvictionReportsWriteback)
{
    MeeCache cache(2, 2); // one set, two ways
    cache.access(1, nodeWith(1), true); // dirty
    cache.access(2, nodeWith(2), false);
    const auto r = cache.access(3, nodeWith(3), false); // evicts LRU (1)
    ASSERT_TRUE(r.writeback.has_value());
    EXPECT_EQ(r.writeback->first, 1u);
    EXPECT_EQ(r.writeback->second.counters[0], 1u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(MeeCacheTest, CleanEvictionHasNoWriteback)
{
    MeeCache cache(2, 2);
    cache.access(1, nodeWith(1), false);
    cache.access(2, nodeWith(2), false);
    const auto r = cache.access(3, nodeWith(3), false);
    EXPECT_FALSE(r.writeback.has_value());
}

TEST(MeeCacheTest, LruPrefersRecentlyUsed)
{
    MeeCache cache(2, 2);
    cache.access(1, nodeWith(1), false);
    cache.access(2, nodeWith(2), false);
    cache.access(1, nodeWith(1), false); // touch 1 -> 2 becomes LRU
    cache.access(3, nodeWith(3), false); // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
}

TEST(MeeCacheTest, WriteHitMarksDirty)
{
    MeeCache cache(2, 2);
    cache.access(1, nodeWith(1), false); // clean
    cache.access(1, nodeWith(1), true);  // now dirty
    const auto dirty = cache.flush();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].first, 1u);
}

TEST(MeeCacheTest, FlushReturnsAllDirtyAndEmpties)
{
    MeeCache cache(8, 4);
    cache.access(1, nodeWith(1), true);
    cache.access(2, nodeWith(2), false);
    cache.access(3, nodeWith(3), true);
    const auto dirty = cache.flush();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_FALSE(cache.contains(3));
}

TEST(MeeCacheTest, InvalidateDropsWithoutWriteback)
{
    MeeCache cache(8, 4);
    cache.access(1, nodeWith(1), true);
    const std::uint64_t wb_before = cache.writebacks();
    cache.invalidate();
    EXPECT_EQ(cache.writebacks(), wb_before);
    EXPECT_FALSE(cache.contains(1));
}

TEST(MeeCacheTest, NodeMutationThroughReferencePersists)
{
    MeeCache cache(8, 4);
    cache.access(1, nodeWith(1), true);
    cache.nodeFor(1).counters[0] = 777;
    const auto dirty = cache.flush();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].second.counters[0], 777u);
}

TEST(MeeCacheTest, CapacityGeometryChecks)
{
    Logger::throwOnError(true);
    EXPECT_THROW(MeeCache(7, 4), SimError);  // not a multiple
    EXPECT_THROW(MeeCache(2, 4), SimError);  // smaller than one set
    EXPECT_THROW(MeeCache(8, 0), SimError);  // zero ways
    Logger::throwOnError(false);
    MeeCache ok(8, 4);
    EXPECT_EQ(ok.capacityNodes(), 8u);
}

TEST(MeeCacheTest, StreamingWorkloadMostlyHits)
{
    // Sequential line writes touch each metadata node 8 times
    // (arity 8): expect ~7/8 hit rate.
    MeeCache cache(64, 8);
    for (std::uint64_t line = 0; line < 512; ++line)
        cache.access(line / 8, nodeWith(line / 8), true);
    const double hit_rate =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
    EXPECT_NEAR(hit_rate, 7.0 / 8.0, 0.01);
}

} // namespace
