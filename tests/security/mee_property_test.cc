/**
 * @file
 * Property-style parameterized tests for the MEE: for every cache
 * geometry and region size, the engine must round-trip data bit-exactly,
 * stay consistent across flush/power cycles, and detect arbitrary
 * single-bit corruption — regardless of capacity, associativity, or
 * access order.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "security/mee.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

struct MeeGeometry
{
    std::uint64_t regionBytes;
    std::size_t cacheNodes;
    std::size_t associativity;
};

class MeeGeometryTest : public ::testing::TestWithParam<MeeGeometry>
{
  protected:
    MeeGeometryTest() : dram("d", DramConfig{})
    {
        const MeeGeometry g = GetParam();
        MeeConfig cfg;
        for (std::size_t i = 0; i < cfg.key.size(); ++i)
            cfg.key[i] = static_cast<std::uint8_t>(11 * i + 3);
        cfg.dataBase = 1 << 20;
        cfg.dataSize = g.regionBytes;
        cfg.metaBase = 64 << 20;
        cfg.cacheNodes = g.cacheNodes;
        cfg.cacheAssociativity = g.associativity;
        mee = std::make_unique<Mee>("mee", dram, cfg);
    }

    std::vector<std::uint8_t>
    pattern(std::uint64_t len, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<std::uint8_t> v(len);
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.next64());
        return v;
    }

    Dram dram;
    std::unique_ptr<Mee> mee;
};

TEST_P(MeeGeometryTest, SequentialRoundTrip)
{
    const auto data = pattern(GetParam().regionBytes, 1);
    mee->secureWrite(mee->config().dataBase, data.data(), data.size(), 0);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = false;
    mee->secureRead(mee->config().dataBase, out.data(), out.size(), 0,
                    authentic);
    EXPECT_TRUE(authentic);
    EXPECT_EQ(out, data);
}

TEST_P(MeeGeometryTest, RandomLineOrderRoundTrip)
{
    const std::uint64_t base = mee->config().dataBase;
    const std::uint64_t lines = GetParam().regionBytes / 64;
    Rng rng(7);

    // Write every line in a random order, then verify in another order.
    std::vector<std::uint64_t> order(lines);
    for (std::uint64_t i = 0; i < lines; ++i)
        order[i] = i;
    for (std::uint64_t i = lines - 1; i > 0; --i)
        std::swap(order[i], order[rng.uniformInt(i + 1)]);

    std::vector<std::vector<std::uint8_t>> written(lines);
    for (std::uint64_t line : order) {
        written[line] = pattern(64, 1000 + line);
        mee->secureWrite(base + line * 64, written[line].data(), 64, 0);
    }

    for (std::uint64_t i = 0; i < lines; ++i)
        std::swap(order[i], order[rng.uniformInt(lines)]);
    for (std::uint64_t line : order) {
        std::uint8_t out[64];
        bool authentic = false;
        mee->secureRead(base + line * 64, out, 64, 0, authentic);
        EXPECT_TRUE(authentic) << "line " << line;
        EXPECT_TRUE(std::equal(out, out + 64, written[line].begin()));
    }
}

TEST_P(MeeGeometryTest, FlushPowerCycleRoundTrip)
{
    const auto data = pattern(GetParam().regionBytes, 2);
    mee->secureWrite(mee->config().dataBase, data.data(), data.size(), 0);
    mee->flush(0);
    const MeeRootState root = mee->exportRoot();
    mee->powerOff();
    mee->importRoot(root);

    std::vector<std::uint8_t> out(data.size());
    bool authentic = false;
    mee->secureRead(mee->config().dataBase, out.data(), out.size(), 0,
                    authentic);
    EXPECT_TRUE(authentic);
    EXPECT_EQ(out, data);
}

TEST_P(MeeGeometryTest, AnySingleBitFlipDetected)
{
    const auto data = pattern(GetParam().regionBytes, 3);
    mee->secureWrite(mee->config().dataBase, data.data(), data.size(), 0);
    mee->flush(0);
    mee->powerOff();
    mee->importRoot(mee->exportRoot());

    // Corrupt a handful of random positions across data AND metadata.
    Rng rng(13);
    int detected = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
        const bool in_metadata = rng.chance(0.5);
        std::uint64_t addr;
        if (in_metadata) {
            // Aim at the counter/MAC payload (first 64 B of a node) —
            // the serialized form pads nodes to 80 B and padding is,
            // by construction, not integrity-covered.
            const std::uint64_t node = rng.uniformInt(
                mee->metadataBytes() / MetadataNode::storageBytes);
            addr = mee->config().metaBase +
                   node * MetadataNode::storageBytes +
                   rng.uniformInt(64);
        } else {
            addr = mee->config().dataBase +
                   rng.uniformInt(GetParam().regionBytes);
        }
        const unsigned bit = static_cast<unsigned>(rng.uniformInt(8));

        dram.store().flipBit(addr, bit);
        std::vector<std::uint8_t> out(GetParam().regionBytes);
        bool authentic = true;
        mee->secureRead(mee->config().dataBase, out.data(), out.size(),
                        0, authentic);
        if (!authentic)
            ++detected;
        dram.store().flipBit(addr, bit); // undo
        mee->powerOff();                 // drop possibly-poisoned cache
        mee->importRoot(mee->exportRoot());
    }
    EXPECT_EQ(detected, trials);

    // And a clean read still verifies.
    std::vector<std::uint8_t> out(GetParam().regionBytes);
    bool authentic = false;
    mee->secureRead(mee->config().dataBase, out.data(), out.size(), 0,
                    authentic);
    EXPECT_TRUE(authentic);
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeeGeometryTest,
    ::testing::Values(
        MeeGeometry{4096, 4, 1},          // tiny direct-ish cache
        MeeGeometry{4096, 64, 8},         // cache larger than tree
        MeeGeometry{64 << 10, 16, 2},     // thrashing cache
        MeeGeometry{64 << 10, 128, 8},    // default-ish
        MeeGeometry{200 << 10, 128, 8},   // the paper's context size
        MeeGeometry{200 << 10, 8, 8},     // single-set cache
        MeeGeometry{1 << 20, 256, 4}),    // 1 MB region, 5-level tree
    [](const ::testing::TestParamInfo<MeeGeometry> &param_info) {
        return std::to_string(param_info.param.regionBytes >> 10) +
               "kB_" +
               std::to_string(param_info.param.cacheNodes) + "n_" +
               std::to_string(param_info.param.associativity) + "w";
    });

} // namespace
