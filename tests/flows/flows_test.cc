/**
 * @file
 * Tests for the DRIPS/ODRIPS entry and exit flows, parameterized over
 * the paper's technique configurations. Verifies ordering guarantees,
 * power levels reached in the idle state, latency envelopes, and
 * end-to-end context integrity.
 */

#include <gtest/gtest.h>

#include "flows/flow_sequence.hh"
#include "flows/standby_flows.hh"
#include "platform/platform.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(FlowSequenceTest, ExecutesStepsInOrderWithDurations)
{
    EventQueue eq;
    std::vector<std::string> order;
    FlowSequence flow("f");
    flow.addFixed("a", 10 * oneUs, [&](Tick) { order.push_back("a"); });
    flow.addFixed("b", 5 * oneUs, [&](Tick) { order.push_back("b"); });
    flow.add({"c", [&](Tick) {
        order.push_back("c");
        return Tick{oneUs};
    }});

    const FlowResult r = flow.execute(eq);
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(r.latency(), 16 * oneUs);
    EXPECT_EQ(r.steps.size(), 3u);
    EXPECT_EQ(r.stepDuration("a"), 10 * oneUs);
    EXPECT_EQ(r.stepDuration("missing"), 0);
}

TEST(FlowSequenceTest, StepsSeeMonotonicStartTimes)
{
    EventQueue eq;
    FlowSequence flow("f");
    std::vector<Tick> starts;
    for (int i = 0; i < 3; ++i) {
        // Named lvalue sidesteps a GCC 12 -Wrestrict false positive on
        // operator+(const char *, std::string &&) at -O3.
        std::string name = "s";
        name += std::to_string(i);
        flow.addFixed(name, oneUs, [&](Tick t) { starts.push_back(t); });
    }
    eq.run(5 * oneUs); // start the flow at t = 5 us
    flow.execute(eq);
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], 5 * oneUs);
    EXPECT_EQ(starts[1], 6 * oneUs);
    EXPECT_EQ(starts[2], 7 * oneUs);
}

TEST(FlowSequenceTest, OtherEventsInterleave)
{
    EventQueue eq;
    int samples = 0;
    Event sampler("s", [&] {
        ++samples;
        eq.scheduleAfter(sampler, oneUs);
    });
    eq.scheduleAfter(sampler, oneUs);

    FlowSequence flow("f");
    flow.addFixed("long", 10 * oneUs);
    flow.execute(eq);
    EXPECT_GE(samples, 9);
}

TEST(FlowSequenceTest, EmptyFlowCompletesImmediately)
{
    EventQueue eq;
    FlowSequence flow("f");
    const FlowResult r = flow.execute(eq);
    EXPECT_EQ(r.latency(), 0);
}

/** Parameterized over the Fig. 6(a) technique sets. */
struct FlowCase
{
    const char *name;
    TechniqueSet tech;
};

class StandbyFlowTest : public ::testing::TestWithParam<FlowCase>
{
  protected:
    StandbyFlowTest() : platform(skylakeConfig()) {}

    Platform platform;
};

TEST_P(StandbyFlowTest, EntryReachesExpectedIdlePower)
{
    StandbyFlows flows(platform, GetParam().tech);
    flows.enterIdle();

    const double idle = flows.idleBatteryPower().watts();
    // Baseline lands at ~60 mW; every technique strictly reduces it;
    // full ODRIPS lands near 43-44 mW.
    EXPECT_GT(idle, 0.040);
    EXPECT_LT(idle, 0.0605);
    if (GetParam().tech.any()) {
        EXPECT_LT(idle, 0.0585);
    }
}

TEST_P(StandbyFlowTest, ExitRestoresActivePower)
{
    StandbyFlows flows(platform, GetParam().tech);
    const double before = platform.batteryPower().watts();
    flows.enterIdle();
    platform.eq.run(platform.now() + 10 * oneMs);
    flows.exitIdle();
    EXPECT_NEAR(platform.batteryPower().watts(), before,
                before * 0.01);
}

TEST_P(StandbyFlowTest, ContextSurvivesCycle)
{
    StandbyFlows flows(platform, GetParam().tech);
    const std::uint64_t checksum = platform.processor.context.checksum();
    flows.enterIdle();
    platform.eq.run(platform.now() + 50 * oneMs);
    flows.exitIdle();
    EXPECT_TRUE(flows.lastCycle().contextIntact);
    EXPECT_EQ(platform.processor.context.checksum(), checksum);
}

TEST_P(StandbyFlowTest, LatenciesWithinEnvelope)
{
    StandbyFlows flows(platform, GetParam().tech);
    const FlowResult entry = flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    const FlowResult exit = flows.exitIdle();

    // Paper: entry ~200 us, exit ~300 us, with techniques adding a few
    // tens of microseconds.
    EXPECT_GT(entry.latency(), 150 * oneUs);
    EXPECT_LT(entry.latency(), 320 * oneUs);
    EXPECT_GT(exit.latency(), 250 * oneUs);
    EXPECT_LT(exit.latency(), 450 * oneUs);
}

TEST_P(StandbyFlowTest, RepeatedCyclesAreStable)
{
    StandbyFlows flows(platform, GetParam().tech);
    double first_idle = 0;
    for (int i = 0; i < 3; ++i) {
        flows.enterIdle();
        platform.eq.run(platform.now() + oneMs);
        const double idle = flows.idleBatteryPower().watts();
        if (i == 0)
            first_idle = idle;
        else
            EXPECT_NEAR(idle, first_idle, 1e-9);
        flows.exitIdle();
        platform.eq.run(platform.now() + oneMs);
        platform.processor.context.touch();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig6aConfigs, StandbyFlowTest,
    ::testing::Values(
        FlowCase{"baseline", TechniqueSet::baseline()},
        FlowCase{"wakeup_off", TechniqueSet::wakeupOffOnly()},
        FlowCase{"aon_io_gate", TechniqueSet::aonIoGated()},
        FlowCase{"ctx_sgx_dram", TechniqueSet::ctxSgxDram()},
        FlowCase{"odrips", TechniqueSet::odrips()},
        FlowCase{"odrips_mram", TechniqueSet::odripsMram()}),
    [](const ::testing::TestParamInfo<FlowCase> &param_info) {
        return param_info.param.name;
    });

class OdripsFlowDetails : public ::testing::Test
{
  protected:
    OdripsFlowDetails()
        : platform(skylakeConfig()),
          flows(platform, TechniqueSet::odrips())
    {
    }

    Platform platform;
    StandbyFlows flows;
};

TEST_F(OdripsFlowDetails, CrystalAndClocksOffInIdle)
{
    flows.enterIdle();
    EXPECT_FALSE(platform.board.xtal24.enabled());
    EXPECT_TRUE(platform.board.xtal32.enabled());
    EXPECT_FALSE(platform.chipset.fastClock.running());
    EXPECT_DOUBLE_EQ(platform.board.xtal24Comp.power().watts(), 0.0);

    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_TRUE(platform.board.xtal24.enabled());
    EXPECT_TRUE(platform.chipset.fastClock.running());
}

TEST_F(OdripsFlowDetails, AonIosGatedInIdle)
{
    flows.enterIdle();
    EXPECT_FALSE(platform.processor.aonIos.powered());
    EXPECT_FALSE(flows.fetGate()->conducting());
    EXPECT_GT(platform.board.fetLeakage.power().watts(), 0.0);
    EXPECT_FALSE(platform.pml.up());

    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_TRUE(platform.processor.aonIos.powered());
    EXPECT_TRUE(platform.pml.up());
    EXPECT_DOUBLE_EQ(platform.board.fetLeakage.power().watts(), 0.0);
}

TEST_F(OdripsFlowDetails, SrSramsOffAndResidualCharged)
{
    flows.enterIdle();
    EXPECT_EQ(platform.processor.saSram.state(), SramState::Off);
    EXPECT_EQ(platform.processor.coresSram.state(), SramState::Off);
    EXPECT_GT(platform.processor.srResidual.power().watts(), 0.0);
    // Boot SRAM still retains (it holds the MEE root).
    EXPECT_EQ(platform.processor.bootSram.state(), SramState::Retention);

    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_EQ(platform.processor.saSram.state(), SramState::Active);
    EXPECT_DOUBLE_EQ(platform.processor.srResidual.power().watts(),
                     0.0);
}

TEST_F(OdripsFlowDetails, DramInSelfRefreshDuringIdle)
{
    flows.enterIdle();
    EXPECT_TRUE(platform.memory->inRetention());
    EXPECT_DOUBLE_EQ(platform.memoryComp.power().watts(),
                     platform.cfg.dram.selfRefreshPower.watts());
    EXPECT_GT(platform.ckeComp.power().watts(), 0.0);

    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_FALSE(platform.memory->inRetention());
}

TEST_F(OdripsFlowDetails, ContextTravelsThroughMee)
{
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();

    const CycleRecord &rec = flows.lastCycle();
    ASSERT_TRUE(rec.contextSave.has_value());
    ASSERT_TRUE(rec.contextRestore.has_value());
    EXPECT_TRUE(rec.contextRestore->authentic);
    EXPECT_EQ(rec.contextSave->bytes, 200ULL << 10);

    // Sec. 6.3: save ~18 us, restore ~13 us on DDR3L-1600. Accept the
    // paper's own 95% estimation-accuracy window, generously.
    EXPECT_NEAR(ticksToSeconds(rec.contextSave->latency), 18e-6, 4e-6);
    EXPECT_NEAR(ticksToSeconds(rec.contextRestore->latency), 13e-6,
                4e-6);
    EXPECT_LT(rec.contextRestore->latency, rec.contextSave->latency);
}

TEST_F(OdripsFlowDetails, TimerHandoverRecordsCaptured)
{
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();

    const CycleRecord &rec = flows.lastCycle();
    ASSERT_TRUE(rec.toSlow.has_value());
    ASSERT_TRUE(rec.toFast.has_value());
    // Entry handover waits at most one 32 kHz period.
    EXPECT_LE(rec.toSlow->latency(),
              platform.chipset.slowClock.period() + oneUs);
    // Exit handover includes the crystal restart.
    EXPECT_GE(rec.toFast->latency(),
              platform.cfg.timings.xtalRestart);
}

TEST_F(OdripsFlowDetails, TscStaysAccurateAcrossCycle)
{
    flows.enterIdle();
    platform.eq.run(platform.now() + 100 * oneMs);
    flows.exitIdle();

    const Tick now = platform.now();
    const double expected =
        ticksToSeconds(now) * platform.board.xtal24.actualHz();
    const double counted =
        static_cast<double>(platform.processor.tsc.valueAt(now));
    // The round trip through the slow timer keeps 1 ppb-class accuracy;
    // allow edge quantization of the handovers.
    EXPECT_NEAR(counted, expected, 5.0);
}

TEST_F(OdripsFlowDetails, CalibrationMatchesPaperRepresentation)
{
    ASSERT_TRUE(flows.calibration().has_value());
    EXPECT_EQ(flows.calibration()->integerBits, 10u);
    EXPECT_EQ(flows.calibration()->fractionBits, 21u);
}

TEST(BaselineFlowDetails, BaselineKeepsCrystalAndSrams)
{
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::baseline());
    flows.enterIdle();

    EXPECT_TRUE(platform.board.xtal24.enabled());
    EXPECT_TRUE(platform.processor.aonIos.powered());
    EXPECT_EQ(platform.processor.saSram.state(), SramState::Retention);
    EXPECT_EQ(platform.processor.coresSram.state(),
              SramState::Retention);
    EXPECT_GT(platform.processor.wakeTimer.power().watts(), 0.0);
    EXPECT_EQ(flows.fetGate(), nullptr);
    EXPECT_FALSE(flows.calibration().has_value());
}

TEST(MramFlowDetails, ContextGoesToEmramNotDram)
{
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odripsMram());
    flows.enterIdle();

    // eMRAM holds the context with zero power while idle.
    EXPECT_FALSE(platform.emram->poweredOn());
    EXPECT_DOUBLE_EQ(platform.emramComp.power().watts(), 0.0);
    EXPECT_GT(platform.emram->totalWrites(), 0u);
    // No MEE traffic for the MRAM path.
    EXPECT_EQ(platform.mee->statistics().linesWritten, 0u);

    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_TRUE(flows.lastCycle().contextIntact);
}

TEST(FlowErrorHandling, ExitWithoutEntryPanics)
{
    Logger::throwOnError(true);
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::baseline());
    EXPECT_THROW(flows.exitIdle(), SimError);
    flows.enterIdle();
    EXPECT_THROW(flows.enterIdle(), SimError);
    Logger::throwOnError(false);
}

class WakeDetectionTest : public ::testing::Test
{
  protected:
    WakeDetectionTest() : platform(skylakeConfig()) {}
    Platform platform;
};

TEST_F(WakeDetectionTest, BaselineDetectionIsImmediate)
{
    StandbyFlows flows(platform, TechniqueSet::baseline());
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle(WakeReason::Network);
    EXPECT_EQ(flows.lastCycle().wakeReason, WakeReason::Network);
    EXPECT_EQ(flows.lastCycle().wakeDetectLatency,
              platform.cfg.timings.wakeDetect);
}

TEST_F(WakeDetectionTest, OdripsExternalWakePaysSlowSampling)
{
    StandbyFlows flows(platform, TechniqueSet::odrips());
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle(WakeReason::Network);

    const Tick latency = flows.lastCycle().wakeDetectLatency;
    // Up to one 32 kHz period on top of the fixed detection time.
    EXPECT_GE(latency, platform.cfg.timings.wakeDetect);
    EXPECT_LE(latency, platform.cfg.timings.wakeDetect +
                           platform.chipset.slowClock.period());
}

TEST_F(WakeDetectionTest, OdripsTimerWakeIsEdgeAligned)
{
    // Timer wakes are produced by the slow timer itself, so they do
    // not pay an extra sampling wait.
    StandbyFlows flows(platform, TechniqueSet::odrips());
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle(WakeReason::KernelTimer);
    EXPECT_EQ(flows.lastCycle().wakeDetectLatency,
              platform.cfg.timings.wakeDetect);
}

TEST_F(WakeDetectionTest, ThermalEventThroughChipsetGpio)
{
    StandbyFlows flows(platform, TechniqueSet::odrips());
    ASSERT_NE(flows.thermalMonitor(), nullptr);
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);

    // The EC asserts the thermal line mid-period.
    auto *monitor = const_cast<ThermalMonitor *>(flows.thermalMonitor());
    monitor->driveLine(true, platform.now());
    flows.exitIdle(WakeReason::User);

    const Tick latency = flows.lastCycle().wakeDetectLatency;
    EXPECT_GE(latency, platform.cfg.timings.wakeDetect);
    EXPECT_LE(latency, platform.cfg.timings.wakeDetect +
                           monitor->worstCaseLatency());
    monitor->driveLine(false, platform.now());
}

TEST_F(WakeDetectionTest, BaselineHasNoThermalMonitor)
{
    StandbyFlows flows(platform, TechniqueSet::baseline());
    EXPECT_EQ(flows.thermalMonitor(), nullptr);
}

class FlowOrderingTest : public ::testing::Test
{
  protected:
    FlowOrderingTest()
        : platform(skylakeConfig()),
          flows(platform, TechniqueSet::odrips())
    {
    }

    static std::size_t
    indexOf(const FlowResult &r, const std::string &name)
    {
        for (std::size_t i = 0; i < r.steps.size(); ++i) {
            if (r.steps[i].name == name)
                return i;
        }
        ADD_FAILURE() << "step '" << name << "' not found";
        return 0;
    }

    Platform platform;
    StandbyFlows flows;
};

TEST_F(FlowOrderingTest, EntryFollowsSection22Order)
{
    const FlowResult entry = flows.enterIdle();

    // Sec. 2.2's six ordered actions, extended by the techniques:
    // LLC flush -> compute VR off -> SA save -> context off-chip ->
    // DRAM self-refresh -> timer migration -> IO gating -> PMU gate.
    EXPECT_LT(indexOf(entry, "llc-flush"),
              indexOf(entry, "vr-compute-off"));
    EXPECT_LT(indexOf(entry, "vr-compute-off"),
              indexOf(entry, "sa-context-save"));
    EXPECT_LT(indexOf(entry, "sa-context-save"),
              indexOf(entry, "ctx-flush-sa"));
    EXPECT_LT(indexOf(entry, "ctx-flush-cores"),
              indexOf(entry, "boot-context-save"));
    // The MEE flush + self-refresh must come after the context landed.
    EXPECT_LT(indexOf(entry, "ctx-flush-cores"),
              indexOf(entry, "dram-self-refresh"));
    // Timer migration only after DRAM is safe (the 24 MHz domain dies
    // with it), and IO gating only after the timer moved (footnote 4).
    EXPECT_LT(indexOf(entry, "dram-self-refresh"),
              indexOf(entry, "timer-migrate"));
    EXPECT_LT(indexOf(entry, "timer-migrate"),
              indexOf(entry, "aon-io-gate"));
    EXPECT_LT(indexOf(entry, "aon-io-gate"),
              indexOf(entry, "pmu-gate"));
    EXPECT_EQ(entry.steps.back().name, "idle-entered");
}

TEST_F(FlowOrderingTest, ExitFollowsSection62Order)
{
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    const FlowResult exit = flows.exitIdle();

    // Sec. 6.2: the Boot FSM restores PMU/MC/MEE *before* any
    // protected DRAM access; the timer returns before PML traffic
    // goes out; VR ramp for compute comes after the context is home.
    EXPECT_LT(indexOf(exit, "wake-detect"),
              indexOf(exit, "timer-to-fast"));
    EXPECT_LT(indexOf(exit, "timer-to-fast"),
              indexOf(exit, "aon-io-ungate"));
    EXPECT_LT(indexOf(exit, "aon-io-ungate"),
              indexOf(exit, "timer-to-processor"));
    EXPECT_LT(indexOf(exit, "boot-fsm-restore"),
              indexOf(exit, "dram-exit-self-refresh"));
    EXPECT_LT(indexOf(exit, "dram-exit-self-refresh"),
              indexOf(exit, "ctx-restore-sa"));
    EXPECT_LT(indexOf(exit, "ctx-restore-sa"),
              indexOf(exit, "ctx-restore-cores"));
    EXPECT_LT(indexOf(exit, "ctx-restore-cores"),
              indexOf(exit, "vr-ramp-up"));
    EXPECT_EQ(exit.steps.back().name, "platform-active");
}

TEST_F(FlowOrderingTest, BaselineSkipsTechniqueSteps)
{
    Platform p2(skylakeConfig());
    StandbyFlows base(p2, TechniqueSet::baseline());
    const FlowResult entry = base.enterIdle();
    for (const StepRecord &step : entry.steps) {
        EXPECT_EQ(step.name.find("timer-migrate"), std::string::npos);
        EXPECT_EQ(step.name.find("aon-io-gate"), std::string::npos);
        EXPECT_EQ(step.name.find("ctx-flush"), std::string::npos);
    }
    p2.eq.run(p2.now() + oneMs);
    const FlowResult exit = base.exitIdle();
    for (const StepRecord &step : exit.steps) {
        EXPECT_EQ(step.name.find("boot-fsm-restore"), std::string::npos);
        EXPECT_EQ(step.name.find("timer-to-fast"), std::string::npos);
    }
}

TEST_F(FlowOrderingTest, StepDurationsSumToFlowLatency)
{
    const FlowResult entry = flows.enterIdle();
    Tick sum = 0;
    for (const StepRecord &step : entry.steps)
        sum += step.duration;
    EXPECT_EQ(sum, entry.latency());
}

} // namespace
