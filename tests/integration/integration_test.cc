/**
 * @file
 * Cross-module integration tests: the NVM variants of Sec. 8.3, DRAM
 * and core frequency scaling (Fig. 6(b)/(c) substrates), the Haswell
 * baseline configuration, longer endurance runs, and fault injection
 * through the full stack.
 */

#include <gtest/gtest.h>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

class IntegrationFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }
};

TEST_F(IntegrationFixture, OdripsPcmSavesAboutThirtySevenPercent)
{
    // Sec. 8.3: PCM main memory turns self-refresh and CKE drive off,
    // lifting total savings to ~37% vs the DRAM baseline.
    const PlatformConfig dram_cfg = skylakeConfig();
    PlatformConfig pcm_cfg = dram_cfg;
    pcm_cfg.memoryKind = MainMemoryKind::Pcm;

    const CyclePowerProfile base =
        measureCycleProfile(dram_cfg, TechniqueSet::baseline());
    const CyclePowerProfile pcm =
        measureCycleProfile(pcm_cfg, TechniqueSet::odripsPcm());

    const double saving =
        1.0 - standardWorkloadAverage(pcm, dram_cfg) /
                  standardWorkloadAverage(base, dram_cfg);
    EXPECT_NEAR(saving, 0.37, 0.03);
}

TEST_F(IntegrationFixture, OdripsMramSlightlyBeatsOdrips)
{
    // Sec. 8.3: ODRIPS-MRAM has slightly lower average power than
    // ODRIPS and the lowest break-even point.
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());
    const CyclePowerProfile mram =
        measureCycleProfile(cfg, TechniqueSet::odripsMram());

    const double p_odrips = standardWorkloadAverage(odrips, cfg);
    const double p_mram = standardWorkloadAverage(mram, cfg);
    EXPECT_LT(p_mram, p_odrips);
    EXPECT_GT(p_mram, p_odrips * 0.9); // "slightly"

    const Tick be_odrips =
        findBreakeven(odrips, base).breakEvenDwell;
    const Tick be_mram = findBreakeven(mram, base).breakEvenDwell;
    EXPECT_LT(be_mram, be_odrips);
}

TEST_F(IntegrationFixture, CoreFrequencyRaceToSleepShape)
{
    // Fig. 6(b): 1.0 GHz slightly beats 0.8 GHz; 1.5 GHz loses.
    const PlatformConfig base_cfg = skylakeConfig();
    std::map<double, double> avg;
    for (double hz : {0.8e9, 1.0e9, 1.5e9}) {
        PlatformConfig cfg = base_cfg;
        cfg.coreFrequencyHz = hz;
        const CyclePowerProfile p =
            measureCycleProfile(cfg, TechniqueSet::odrips());
        // The active window shrinks with frequency (scalable part).
        const Tick dwell = secondsToTicks(30.0);
        const double active_s = 0.2;
        const Tick cpu = secondsToTicks(active_s * 0.7 * 0.8e9 / hz);
        const Tick stall = secondsToTicks(active_s * 0.3);
        avg[hz] = averagePowerEq1(p, dwell, cpu, stall);
    }
    EXPECT_LT(avg[1.0e9], avg[0.8e9]);
    EXPECT_GT(avg[1.5e9], avg[1.0e9]);
    // Differences are small (paper: -1.4% / +1%).
    EXPECT_NEAR(avg[1.0e9] / avg[0.8e9], 1.0, 0.03);
    EXPECT_NEAR(avg[1.5e9] / avg[0.8e9], 1.0, 0.05);
}

TEST_F(IntegrationFixture, DramFrequencyScalingShape)
{
    // Fig. 6(c): lower DRAM frequency slightly reduces average power
    // but lengthens the context transfer.
    const PlatformConfig base_cfg = skylakeConfig();
    std::map<double, CyclePowerProfile> profiles;
    for (double rate : {1.6e9, 1.067e9, 0.8e9}) {
        PlatformConfig cfg = base_cfg;
        cfg.dram = cfg.dram.withDataRate(rate);
        profiles[rate] =
            measureCycleProfile(cfg, TechniqueSet::odrips());
    }

    const double p16 =
        standardWorkloadAverage(profiles[1.6e9], base_cfg);
    const double p08 =
        standardWorkloadAverage(profiles[0.8e9], base_cfg);
    EXPECT_LT(p08, p16);
    EXPECT_NEAR(p08 / p16, 1.0, 0.02); // ~sub-1% effect

    // Entry/exit grow as bandwidth shrinks (longer context moves).
    EXPECT_GT(profiles[0.8e9].contextSaveLatency,
              profiles[1.6e9].contextSaveLatency);
    EXPECT_GT(profiles[0.8e9].contextRestoreLatency,
              profiles[1.6e9].contextRestoreLatency);
}

TEST_F(IntegrationFixture, HaswellBaselineDripsMoreExpensive)
{
    // The 22 nm Haswell-ULT predecessor burns more in DRIPS and has a
    // much longer exit latency (3 ms).
    const CyclePowerProfile has = measureCycleProfile(
        haswellUltConfig(), TechniqueSet::baseline());
    const CyclePowerProfile sky =
        measureCycleProfile(skylakeConfig(), TechniqueSet::baseline());
    EXPECT_GT(has.idlePower, sky.idlePower);
    EXPECT_GT(has.exitLatency, 5 * sky.exitLatency);
}

TEST_F(IntegrationFixture, TwentyCycleEnduranceRun)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    WorkloadConfig wl;
    wl.idleDwellSeconds = 0.05; // keep the run fast
    wl.activeMinSeconds = 0.01;
    wl.activeMaxSeconds = 0.02;
    wl.seed = 77;
    StandbyWorkloadGenerator gen(wl);
    const StandbyResult r = sim.run(gen.generate(20));
    EXPECT_EQ(r.cycles, 20u);
    EXPECT_TRUE(r.contextIntact);
    // The MEE root advanced monotonically across all cycles.
    EXPECT_GT(platform.mee->exportRoot().rootCounter, 0u);
}

TEST_F(IntegrationFixture, DramTamperDuringIdleIsDetectedOnExit)
{
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);

    // Rowhammer-style flip inside the protected context while the
    // platform sleeps.
    platform.memory->store().flipBit(platform.contextRegionBase() + 640,
                                     5);

    flows.exitIdle();
    EXPECT_FALSE(flows.lastCycle().contextIntact);
    ASSERT_TRUE(flows.lastCycle().contextRestore.has_value());
    EXPECT_FALSE(flows.lastCycle().contextRestore->authentic);
}

TEST_F(IntegrationFixture, UnprotectedTamperOutsideContextIsSilent)
{
    // Flipping bits outside the protected range must not trip the MEE
    // (nothing protects it — that is the point of the range register).
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());
    flows.enterIdle();
    platform.memory->store().flipBit(0, 0);
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    EXPECT_TRUE(flows.lastCycle().contextIntact);
}

TEST_F(IntegrationFixture, PmlTrafficOnlyWhenMigrating)
{
    Platform p1(skylakeConfig());
    StandbySimulator baseline(p1, TechniqueSet::baseline());
    baseline.run(StandbyWorkloadGenerator::fixed(2, 10 * oneMs,
                                                 20 * oneMs, 0.7, 0.8e9));
    EXPECT_EQ(p1.pml.messagesSent(), 0u);

    Platform p2(skylakeConfig());
    StandbySimulator odrips(p2, TechniqueSet::odrips());
    odrips.run(StandbyWorkloadGenerator::fixed(2, 10 * oneMs, 20 * oneMs,
                                               0.7, 0.8e9));
    // Two messages per cycle (timer out, timer back).
    EXPECT_EQ(p2.pml.messagesSent(), 4u);
}

TEST_F(IntegrationFixture, EnergyConservationAcrossAccounting)
{
    // Total battery energy equals load energy divided by efficiency in
    // each regime — the accountant must never create or lose energy.
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::baseline());
    const StandbyResult r = sim.run(StandbyWorkloadGenerator::fixed(
        2, 100 * oneMs, 50 * oneMs, 0.7, 0.8e9));

    const double battery = platform.accountant.batteryEnergy().joules();
    const double load = platform.accountant.loadEnergy().joules();
    EXPECT_GT(battery, load);              // delivery always loses
    EXPECT_LT(battery, load / 0.74 + 1e-9); // bounded by worst efficiency
    EXPECT_GT(r.averageBatteryPower, 0.0);
}

} // namespace
