/**
 * @file
 * Randomized invariant testing: across random seeds, workloads, and
 * technique combinations, the simulator must uphold its global
 * invariants — energy conservation, context integrity, monotone time,
 * technique-power ordering, and Eq. 1 consistency.
 */

#include <gtest/gtest.h>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

class RandomizedRun : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }
};

TEST_P(RandomizedRun, InvariantsHoldAcrossRandomWorkloads)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    // Random configuration within sane bounds.
    PlatformConfig cfg = skylakeConfig();
    cfg.workload.seed = seed;
    cfg.workload.idleDwellSeconds = rng.uniform(0.05, 2.0);
    cfg.workload.activeMinSeconds = rng.uniform(0.005, 0.02);
    cfg.workload.activeMaxSeconds =
        cfg.workload.activeMinSeconds + rng.uniform(0.005, 0.03);
    if (rng.chance(0.3))
        cfg.workload.networkWakeMeanSeconds = rng.uniform(0.2, 2.0);
    if (rng.chance(0.25))
        cfg.memoryKind = MainMemoryKind::Pcm;
    cfg.coreFrequencyHz = rng.uniform(0.8e9, 1.6e9);

    // Random (valid) technique set.
    TechniqueSet tech;
    tech.wakeupOff = rng.chance(0.6);
    tech.aonIoGate = tech.wakeupOff && rng.chance(0.7);
    tech.contextOffload = rng.chance(0.6);
    tech.contextStorage =
        rng.chance(0.3) ? ContextStorage::Emram : ContextStorage::Dram;

    Platform platform(cfg);
    StandbySimulator sim(platform, tech);
    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(3 + rng.uniformInt(4));
    const StandbyResult r = sim.run(trace);

    // --- Invariants ---
    // Time moved forward and residencies partition it.
    EXPECT_GT(r.simulatedTime, 0);
    EXPECT_NEAR(r.idleResidency + r.activeResidency +
                    r.transitionResidency,
                1.0, 1e-9);

    // Context always survives (no fault injection here).
    EXPECT_TRUE(r.contextIntact);

    // Average power sits between the idle floor and the active peak.
    EXPECT_GT(r.averageBatteryPower, r.idleBatteryPower * 0.99);
    EXPECT_LT(r.averageBatteryPower, r.activeBatteryPower * 1.01);

    // Energy conservation: battery >= load, bounded by the worst
    // efficiency.
    const double battery = platform.accountant.batteryEnergy().joules();
    const double load = platform.accountant.loadEnergy().joules();
    EXPECT_GE(battery, load);
    EXPECT_LE(battery, load / cfg.pdLowEfficiency + 1e-9);

    // Any enabled technique lowers the idle power vs the baseline's
    // 60 mW anchor; none can beat the chipset+board floor.
    if (tech.any()) {
        EXPECT_LT(r.idleBatteryPower, 0.0595);
    }
    EXPECT_GT(r.idleBatteryPower, 0.025);

    // The platform is back at C0 at the end (flows are re-entrant).
    EXPECT_NEAR(platform.batteryPower().watts(), r.activeBatteryPower,
                r.activeBatteryPower * 0.05);
}

TEST_P(RandomizedRun, TechniquePowerOrderingIsStable)
{
    const std::uint64_t seed = GetParam();
    PlatformConfig cfg = skylakeConfig();
    cfg.workload.seed = seed;

    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile t1 =
        measureCycleProfile(cfg, TechniqueSet::wakeupOffOnly());
    const CyclePowerProfile t12 =
        measureCycleProfile(cfg, TechniqueSet::aonIoGated());
    const CyclePowerProfile all =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    // Adding techniques monotonically lowers idle power.
    EXPECT_LT(t1.idlePower, base.idlePower);
    EXPECT_LT(t12.idlePower, t1.idlePower);
    EXPECT_LT(all.idlePower, t12.idlePower);

    // ... and monotonically raises the transition overhead.
    EXPECT_GE(t12.transitionOverheadEnergy(),
              t1.transitionOverheadEnergy());
    EXPECT_GE(all.transitionOverheadEnergy(),
              t12.transitionOverheadEnergy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRun,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull));

} // namespace
