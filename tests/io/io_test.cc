/**
 * @file
 * Tests for the IO substrates: GPIO bank, PML link, AON IO bank, and
 * the board FET power gate.
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/crystal.hh"
#include "io/aon_io.hh"
#include "io/fet_gate.hh"
#include "io/gpio.hh"
#include "io/pml.hh"
#include "io/thermal_monitor.hh"
#include "power/power_model.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(GpioTest, ClaimAssignsSparePins)
{
    GpioBank bank("gpio", 4);
    EXPECT_EQ(bank.sparePins(), 4u);
    const unsigned p0 = bank.claim("thermal", GpioDirection::Input);
    const unsigned p1 = bank.claim("fet", GpioDirection::Output);
    EXPECT_NE(p0, p1);
    EXPECT_EQ(bank.sparePins(), 2u);
    EXPECT_EQ(bank.function(p0), "thermal");
    EXPECT_EQ(bank.direction(p1), GpioDirection::Output);
}

TEST(GpioTest, ExhaustionIsFatal)
{
    Logger::throwOnError(true);
    GpioBank bank("gpio", 1);
    bank.claim("a", GpioDirection::Input);
    EXPECT_THROW(bank.claim("b", GpioDirection::Output), SimError);
    Logger::throwOnError(false);
}

TEST(GpioTest, OutputDriveAndInputSample)
{
    GpioBank bank("gpio", 2);
    const unsigned out = bank.claim("out", GpioDirection::Output);
    const unsigned in = bank.claim("in", GpioDirection::Input);
    bank.setLevel(out, true);
    EXPECT_TRUE(bank.level(out));
    bank.driveInput(in, true);
    EXPECT_TRUE(bank.level(in));
}

TEST(GpioTest, DirectionViolationsPanic)
{
    Logger::throwOnError(true);
    GpioBank bank("gpio", 2);
    const unsigned in = bank.claim("in", GpioDirection::Input);
    const unsigned out = bank.claim("out", GpioDirection::Output);
    EXPECT_THROW(bank.setLevel(in, true), SimError);
    EXPECT_THROW(bank.driveInput(out, true), SimError);
    Logger::throwOnError(false);
}

TEST(GpioTest, ReleaseReturnsPinToPool)
{
    GpioBank bank("gpio", 1);
    const unsigned p = bank.claim("x", GpioDirection::Input);
    bank.release(p);
    EXPECT_EQ(bank.sparePins(), 1u);
    EXPECT_NO_THROW(bank.claim("y", GpioDirection::Output));
}

class PmlTest : public ::testing::Test
{
  protected:
    PmlTest()
        : xtal("x24", 24.0e6, 0.0, Milliwatts::zero()), clk("clk", xtal),
          pml("pml", clk, 4, 8)
    {
    }

    Crystal xtal;
    ClockDomain clk;
    Pml pml;
};

TEST_F(PmlTest, DeterministicTransferLatency)
{
    const PmlTransfer a = pml.transfer(2, 0);
    const PmlTransfer b = pml.transfer(2, oneMs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.latency(), b.latency());
    // 8 protocol + 2 * 4 word cycles at 24 MHz.
    EXPECT_EQ(a.cycles, 16u);
    EXPECT_NEAR(ticksToSeconds(a.latency()), 16.0 / 24.0e6, 1e-9);
}

TEST_F(PmlTest, TimerTransferUsesTwoWords)
{
    EXPECT_EQ(pml.timerTransferCycles(), 16u);
    EXPECT_EQ(pml.messageCycles(4), 24u);
}

TEST_F(PmlTest, DownLinkRefusesTraffic)
{
    Logger::throwOnError(true);
    pml.setUp(false);
    EXPECT_FALSE(pml.up());
    EXPECT_THROW(pml.transfer(1, 0), SimError);
    pml.setUp(true);
    EXPECT_NO_THROW(pml.transfer(1, 0));
    Logger::throwOnError(false);
}

TEST_F(PmlTest, GatedClockBringsLinkDown)
{
    clk.gate();
    EXPECT_FALSE(pml.up());
    clk.ungate();
    EXPECT_TRUE(pml.up());
}

TEST_F(PmlTest, MessageCounter)
{
    pml.transfer(1, 0);
    pml.transfer(2, 0);
    EXPECT_EQ(pml.messagesSent(), 2u);
}

TEST(AonIoTest, PowerFollowsGateState)
{
    PowerModel pm;
    PowerComponent comp(pm, "aon_io", "processor");
    AonIoBank bank("aon", &comp, Milliwatts::fromWatts(4.2e-3));
    EXPECT_DOUBLE_EQ(comp.power().watts(), 4.2e-3);
    bank.setPowered(false, oneUs);
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
    bank.setPowered(true, oneMs);
    EXPECT_DOUBLE_EQ(comp.power().watts(), 4.2e-3);
}

TEST(AonIoTest, FunctionSharesSumToTotal)
{
    AonIoBank bank("aon", nullptr, Milliwatts::fromWatts(4.2e-3));
    Milliwatts sum;
    for (AonIoFunction f :
         {AonIoFunction::Clock24Buffers, AonIoFunction::PmlProcessorSide,
          AonIoFunction::ThermalReport, AonIoFunction::VrSerial,
          AonIoFunction::Debug}) {
        sum += bank.functionPower(f);
    }
    EXPECT_NEAR(sum.watts(), 4.2e-3, 1e-12);
}

TEST(AonIoTest, UsingGatedFunctionPanics)
{
    Logger::throwOnError(true);
    AonIoBank bank("aon", nullptr, Milliwatts::fromWatts(4.2e-3));
    bank.setPowered(false, 0);
    EXPECT_THROW(bank.requireFunction(AonIoFunction::ThermalReport),
                 SimError);
    Logger::throwOnError(false);
}

class FetTest : public ::testing::Test
{
  protected:
    FetTest()
        : comp(pm, "aon_io", "processor"),
          leak(pm, "fet_leak", "board"),
          bank("aon", &comp, Milliwatts::fromWatts(4.2e-3)), gpio("gpio", 4),
          pin(gpio.claim("fet", GpioDirection::Output)),
          fet("fet", bank, gpio, pin, &leak, 0.003, 2 * oneUs)
    {
    }

    PowerModel pm;
    PowerComponent comp;
    PowerComponent leak;
    AonIoBank bank;
    GpioBank gpio;
    unsigned pin;
    FetGate fet;
};

TEST_F(FetTest, StartsConducting)
{
    EXPECT_TRUE(fet.conducting());
    EXPECT_DOUBLE_EQ(comp.power().watts(), 4.2e-3);
}

TEST_F(FetTest, OpenCutsLoadAndLeavesLeakage)
{
    const Tick latency = fet.open(0);
    EXPECT_EQ(latency, 2 * oneUs);
    EXPECT_FALSE(fet.conducting());
    EXPECT_FALSE(bank.powered());
    EXPECT_DOUBLE_EQ(comp.power().watts(), 0.0);
    // Paper Sec. 5.3: off-state leakage < 0.3% of the gated load.
    EXPECT_NEAR(leak.power().watts(), 4.2e-3 * 0.003, 1e-12);
    EXPECT_LT(leak.power().watts(), 4.2e-3 * 0.003 + 1e-12);
}

TEST_F(FetTest, CloseRestoresLoad)
{
    fet.open(0);
    fet.close(oneMs);
    EXPECT_TRUE(fet.conducting());
    EXPECT_TRUE(bank.powered());
    EXPECT_DOUBLE_EQ(comp.power().watts(), 4.2e-3);
    EXPECT_DOUBLE_EQ(leak.power().watts(), 0.0);
}

TEST_F(FetTest, ControlledThroughGpioLevel)
{
    fet.open(0);
    EXPECT_FALSE(gpio.level(pin));
    fet.close(oneMs);
    EXPECT_TRUE(gpio.level(pin));
}

class ThermalMonitorTest : public ::testing::Test
{
  protected:
    ThermalMonitorTest()
        : xtal32("x32", 32768.0, 0.0, Milliwatts::zero()), slowClk("slow", xtal32),
          gpios("gpio", 4),
          pin(gpios.claim("ec-thermal", GpioDirection::Input)),
          monitor("thermal", gpios, pin, slowClk)
    {
    }

    Crystal xtal32;
    ClockDomain slowClk;
    GpioBank gpios;
    unsigned pin;
    ThermalMonitor monitor;
};

TEST_F(ThermalMonitorTest, LineFollowsEcDrive)
{
    EXPECT_FALSE(monitor.lineAsserted());
    monitor.driveLine(true, oneMs);
    EXPECT_TRUE(monitor.lineAsserted());
    monitor.driveLine(false, 2 * oneMs);
    EXPECT_FALSE(monitor.lineAsserted());
}

TEST_F(ThermalMonitorTest, DetectionWaitsForSamplingEdge)
{
    const Tick period = slowClk.period();
    // Asserted right after an edge: detected on the next edge.
    EXPECT_EQ(monitor.detectionTick(period + 1), 2 * period);
    // Asserted exactly on an edge: detected immediately.
    EXPECT_EQ(monitor.detectionTick(3 * period), 3 * period);
}

TEST_F(ThermalMonitorTest, WorstCaseLatencyIsOneSlowPeriod)
{
    EXPECT_EQ(monitor.worstCaseLatency(), slowClk.period());
    EXPECT_NEAR(ticksToSeconds(monitor.worstCaseLatency()), 30.5e-6,
                0.1e-6);
}

TEST_F(ThermalMonitorTest, PendingDetectionTracksAssertion)
{
    EXPECT_EQ(monitor.pendingDetection(), maxTick);
    monitor.driveLine(true, 10 * oneUs);
    EXPECT_EQ(monitor.pendingDetection(),
              slowClk.nextEdge(10 * oneUs));
    monitor.driveLine(false, oneMs);
    EXPECT_EQ(monitor.pendingDetection(), maxTick);
}

TEST_F(ThermalMonitorTest, StoppedClockPanics)
{
    Logger::throwOnError(true);
    xtal32.disable();
    EXPECT_THROW(monitor.detectionTick(0), SimError);
    Logger::throwOnError(false);
}

} // namespace
