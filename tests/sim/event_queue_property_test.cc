/**
 * @file
 * Randomized property test for the event kernel: a seeded op sequence
 * of schedule / deschedule / reschedule / step drives the real
 * EventQueue and a deliberately naive reference model side by side,
 * asserting the identical firing order. This is the safety net for the
 * intrusive indexed-heap rewrite — any divergence from the historical
 * (when, priority, sequence) ordering contract shows up here before it
 * can perturb a golden suite.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

/**
 * Naive reference queue: a flat list scanned in full for every pop.
 * Mirrors the kernel's ordering contract — ascending (when, priority,
 * sequence), where every schedule *and* reschedule consumes a fresh
 * sequence number — with none of the heap machinery under test.
 */
class ReferenceQueue
{
  public:
    explicit ReferenceQueue(std::size_t slots)
        : when(slots), priority(slots), sequence(slots),
          scheduled(slots, false)
    {}

    bool isScheduled(std::size_t id) const { return scheduled[id]; }
    Tick now() const { return _now; }

    void
    setPriority(std::size_t id, Event::Priority prio)
    {
        priority[id] = prio;
    }

    void
    schedule(std::size_t id, Tick at)
    {
        when[id] = at;
        sequence[id] = nextSequence++;
        scheduled[id] = true;
    }

    void deschedule(std::size_t id) { scheduled[id] = false; }

    void
    reschedule(std::size_t id, Tick at)
    {
        // Same contract as the kernel: an in-place move consumes a
        // fresh sequence number, exactly like deschedule + schedule.
        schedule(id, at);
    }

    /** Pop the least (when, priority, sequence) entry; -1 if empty. */
    int
    step()
    {
        int best = -1;
        for (std::size_t id = 0; id < when.size(); ++id) {
            if (!scheduled[id])
                continue;
            if (best < 0 || lessThan(id, static_cast<std::size_t>(best)))
                best = static_cast<int>(id);
        }
        if (best >= 0) {
            _now = when[static_cast<std::size_t>(best)];
            scheduled[static_cast<std::size_t>(best)] = false;
        }
        return best;
    }

  private:
    bool
    lessThan(std::size_t a, std::size_t b) const
    {
        if (when[a] != when[b])
            return when[a] < when[b];
        if (priority[a] != priority[b])
            return priority[a] < priority[b];
        return sequence[a] < sequence[b];
    }

    std::vector<Tick> when;
    std::vector<Event::Priority> priority;
    std::vector<std::uint64_t> sequence;
    std::vector<bool> scheduled;
    std::uint64_t nextSequence = 0;
    Tick _now = 0;
};

TEST(EventQueuePropertyTest, MatchesReferenceModelOverRandomOps)
{
    constexpr std::size_t slots = 32;
    constexpr int operations = 1000;

    EventQueue eq;
    ReferenceQueue ref(slots);

    std::vector<int> firedReal;
    std::vector<int> firedRef;

    // Build the event pool with a mix of priorities.
    constexpr Event::Priority priorities[3] = {
        Event::defaultPriority, 5, Event::statsPriority};
    // deque: Event is neither copyable nor movable, and deque never
    // relocates elements pushed at the back.
    std::deque<Event> pool;
    for (std::size_t id = 0; id < slots; ++id) {
        const Event::Priority prio = priorities[id % 3];
        ref.setPriority(id, prio);
        pool.emplace_back(
            "prop",
            [&firedReal, id] { firedReal.push_back(static_cast<int>(id)); },
            prio);
    }

    Rng rng(0xD215EEDULL);
    for (int op = 0; op < operations; ++op) {
        const std::size_t id = rng.uniformInt(slots);
        const Tick at =
            eq.now() + static_cast<Tick>(rng.uniformInt(10000));
        switch (rng.uniformInt(4)) {
          case 0:
            if (!pool[id].scheduled()) {
                eq.schedule(pool[id], at);
                ref.schedule(id, at);
            }
            break;
          case 1:
            if (pool[id].scheduled()) {
                eq.deschedule(pool[id]);
                ref.deschedule(id);
            }
            break;
          case 2:
            eq.reschedule(pool[id], at);
            ref.reschedule(id, at);
            break;
          default: {
            const int expected = ref.step();
            const bool stepped = eq.step();
            ASSERT_EQ(stepped, expected >= 0) << "op " << op;
            if (stepped) {
                ASSERT_EQ(firedReal.back(), expected) << "op " << op;
                ASSERT_EQ(eq.now(), ref.now()) << "op " << op;
            }
            break;
          }
        }
        ASSERT_EQ(eq.size(), static_cast<std::size_t>([&] {
                      std::size_t n = 0;
                      for (std::size_t i = 0; i < slots; ++i)
                          n += ref.isScheduled(i) ? 1u : 0u;
                      return n;
                  }()))
            << "op " << op;
    }

    // Drain both queues and compare the complete firing order.
    while (true) {
        const int expected = ref.step();
        const bool stepped = eq.step();
        ASSERT_EQ(stepped, expected >= 0);
        if (!stepped)
            break;
        firedRef.push_back(expected);
        ASSERT_EQ(firedReal.back(), expected);
        ASSERT_EQ(eq.now(), ref.now());
    }
    EXPECT_TRUE(eq.empty());
}

} // namespace
