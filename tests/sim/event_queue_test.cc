/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace odrips;

namespace
{

class EventQueueTest : public ::testing::Test
{
  protected:
    void SetUp() override { Logger::throwOnError(true); }
    void TearDown() override { Logger::throwOnError(false); }

    EventQueue eq;
};

TEST_F(EventQueueTest, StartsEmptyAtTimeZero)
{
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.nextEventTick(), maxTick);
}

TEST_F(EventQueueTest, ExecutesEventAtScheduledTime)
{
    Tick fired_at = -1;
    Event ev("e", [&] { fired_at = eq.now(); });
    eq.schedule(ev, 100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100);

    eq.run();
    EXPECT_EQ(fired_at, 100);
    EXPECT_EQ(eq.now(), 100);
    EXPECT_FALSE(ev.scheduled());
}

TEST_F(EventQueueTest, ExecutesInTimeOrder)
{
    std::vector<int> order;
    Event a("a", [&] { order.push_back(1); });
    Event b("b", [&] { order.push_back(2); });
    Event c("c", [&] { order.push_back(3); });
    eq.schedule(c, 300);
    eq.schedule(a, 100);
    eq.schedule(b, 200);

    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, SameTickOrderedByPriorityThenFifo)
{
    std::vector<int> order;
    Event late("late", [&] { order.push_back(3); },
               Event::statsPriority);
    Event first("first", [&] { order.push_back(1); });
    Event second("second", [&] { order.push_back(2); });
    eq.schedule(late, 50);
    eq.schedule(first, 50);
    eq.schedule(second, 50);

    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, SchedulingInThePastPanics)
{
    Event a("a", [] {});
    Event b("b", [] {});
    eq.schedule(a, 100);
    eq.run();
    EXPECT_THROW(eq.schedule(b, 50), SimError);
}

TEST_F(EventQueueTest, DoubleSchedulePanics)
{
    Event a("a", [] {});
    eq.schedule(a, 10);
    EXPECT_THROW(eq.schedule(a, 20), SimError);
}

TEST_F(EventQueueTest, DescheduleRemovesEvent)
{
    bool fired = false;
    Event a("a", [&] { fired = true; });
    eq.schedule(a, 10);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.now(), 0);
}

TEST_F(EventQueueTest, DescheduleUnscheduledPanics)
{
    Event a("a", [] {});
    EXPECT_THROW(eq.deschedule(a), SimError);
}

TEST_F(EventQueueTest, RescheduleMovesEvent)
{
    Tick fired_at = -1;
    Event a("a", [&] { fired_at = eq.now(); });
    eq.schedule(a, 10);
    eq.reschedule(a, 500);
    eq.run();
    EXPECT_EQ(fired_at, 500);
}

TEST_F(EventQueueTest, RescheduleUnscheduledIsSchedule)
{
    Tick fired_at = -1;
    Event a("a", [&] { fired_at = eq.now(); });
    eq.reschedule(a, 42);
    eq.run();
    EXPECT_EQ(fired_at, 42);
}

TEST_F(EventQueueTest, RunWithLimitStopsBeforeLaterEvents)
{
    int count = 0;
    Event a("a", [&] { ++count; });
    Event b("b", [&] { ++count; });
    eq.schedule(a, 100);
    eq.schedule(b, 200);

    const std::uint64_t executed = eq.run(150);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 150);
    EXPECT_EQ(eq.size(), 1u);
}

TEST_F(EventQueueTest, RunWithLimitAdvancesTimeToLimit)
{
    eq.run(1000);
    EXPECT_EQ(eq.now(), 1000);
}

TEST_F(EventQueueTest, EventAtLimitBoundaryExecutes)
{
    bool fired = false;
    Event a("a", [&] { fired = true; });
    eq.schedule(a, 100);
    eq.run(100);
    EXPECT_TRUE(fired);
}

TEST_F(EventQueueTest, SelfReschedulingEvent)
{
    int fires = 0;
    Event tick("tick", [&] {
        if (++fires < 5)
            eq.scheduleAfter(tick, 10);
    });
    eq.schedule(tick, 10);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.now(), 50);
}

TEST_F(EventQueueTest, EventSchedulingAnotherEventAtSameTick)
{
    std::vector<int> order;
    Event b("b", [&] { order.push_back(2); });
    Event a("a", [&] {
        order.push_back(1);
        eq.schedule(b, eq.now());
    });
    eq.schedule(a, 10);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(EventQueueTest, StepExecutesExactlyOne)
{
    int count = 0;
    Event a("a", [&] { ++count; });
    Event b("b", [&] { ++count; });
    eq.schedule(a, 1);
    eq.schedule(b, 2);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST_F(EventQueueTest, AdvanceToMovesTime)
{
    eq.advanceTo(777);
    EXPECT_EQ(eq.now(), 777);
}

TEST_F(EventQueueTest, AdvanceToBackwardsPanics)
{
    eq.advanceTo(100);
    EXPECT_THROW(eq.advanceTo(50), SimError);
}

TEST_F(EventQueueTest, AdvanceToOverPendingEventPanics)
{
    Event a("a", [] {});
    eq.schedule(a, 10);
    EXPECT_THROW(eq.advanceTo(20), SimError);
}

TEST_F(EventQueueTest, ExecutedEventsCounter)
{
    Event a("a", [] {});
    Event b("b", [] {});
    eq.schedule(a, 1);
    eq.schedule(b, 2);
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 2u);
}

TEST_F(EventQueueTest, DestructorOfScheduledEventDeschedules)
{
    {
        Event a("a", [] {});
        eq.schedule(a, 10);
    }
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST_F(EventQueueTest, CancelThenRescheduleUsesNewTime)
{
    Tick fired_at = -1;
    Event a("a", [&] { fired_at = eq.now(); });
    eq.schedule(a, 100);
    eq.deschedule(a);
    eq.schedule(a, 300);
    eq.run();
    EXPECT_EQ(fired_at, 300);
    EXPECT_EQ(eq.executedEvents(), 1u);
}

TEST_F(EventQueueTest, RepeatedRescheduleKeepsInternalSizeBounded)
{
    // Regression: the historical lazy-cancel priority queue left a
    // tombstone behind for every reschedule, so a long-lived periodic
    // event that was frequently rescheduled grew the queue without
    // bound. The indexed heap moves the entry in place.
    Event periodic("periodic", [] {});
    Event bystander("bystander", [] {});
    eq.schedule(periodic, 10);
    eq.schedule(bystander, maxTick - 1);

    for (Tick i = 0; i < 10000; ++i)
        eq.reschedule(periodic, 10 + i);

    EXPECT_EQ(eq.size(), 2u);
    EXPECT_EQ(eq.internalEntries(), 2u);

    // The last reschedule wins and ordering is intact.
    Tick fired_at = -1;
    Event probe("probe", [&] { fired_at = eq.now(); });
    eq.schedule(probe, 10 + 9999);
    eq.step();
    EXPECT_EQ(eq.now(), 10 + 9999);
    eq.step();
    EXPECT_EQ(fired_at, 10 + 9999); // FIFO: probe scheduled after
    eq.deschedule(bystander);
}

TEST_F(EventQueueTest, ScheduleAfterOverflowPanics)
{
    Event a("a", [] {});
    eq.advanceTo(100);
    EXPECT_THROW(eq.scheduleAfter(a, maxTick - 50), SimError);
    EXPECT_FALSE(a.scheduled());
}

TEST_F(EventQueueTest, ScheduleAfterMaxDelayAtTimeZeroParksAtSentinel)
{
    // delay == maxTick at now == 0 is representable: the event parks at
    // the maxTick sentinel and run() never fires it.
    bool fired = false;
    Event a("a", [&] { fired = true; });
    eq.scheduleAfter(a, maxTick);
    EXPECT_EQ(a.when(), maxTick);
    eq.run(1000000);
    EXPECT_FALSE(fired);
    eq.deschedule(a);
}

TEST_F(EventQueueTest, AdvanceToMaxTickPanics)
{
    // advanceTo(maxTick) is the usual symptom of an overflowed
    // `now + delay` in a driver; it must be loud, not silent.
    EXPECT_THROW(eq.advanceTo(maxTick), SimError);
}

TEST(TickConversions, RoundTripSecondsTicks)
{
    EXPECT_EQ(secondsToTicks(1.0), oneSec);
    EXPECT_EQ(secondsToTicks(1e-3), oneMs);
    EXPECT_EQ(secondsToTicks(1e-6), oneUs);
    EXPECT_DOUBLE_EQ(ticksToSeconds(oneSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(oneMs), 1e-3);
}

TEST(TickConversions, FrequencyPeriodInverse)
{
    EXPECT_EQ(frequencyToPeriod(1e9), oneNs);
    // The picosecond grid quantizes a 24 MHz period to ~8 ppm.
    EXPECT_NEAR(periodToFrequency(frequencyToPeriod(24e6)), 24e6, 250.0);
    // 32.768 kHz period is ~30.5 us.
    EXPECT_NEAR(ticksToSeconds(frequencyToPeriod(32768.0)), 30.5e-6,
                0.1e-6);
}

} // namespace
