/**
 * @file
 * Unit tests for the logging/error facility.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace odrips;

namespace
{

TEST(LoggingTest, FatalThrowsInTestMode)
{
    Logger::throwOnError(true);
    EXPECT_THROW(fatal("bad config"), SimError);
    Logger::throwOnError(false);
}

TEST(LoggingTest, PanicThrowsInTestMode)
{
    Logger::throwOnError(true);
    EXPECT_THROW(panic("bug"), SimError);
    Logger::throwOnError(false);
}

TEST(LoggingTest, ErrorCarriesMessageAndLevel)
{
    Logger::throwOnError(true);
    try {
        fatal("value was ", 42);
        FAIL() << "fatal did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.level, LogLevel::Fatal);
        EXPECT_STREQ(e.what(), "value was 42");
    }
    Logger::throwOnError(false);
}

TEST(LoggingTest, AssertMacroPassesAndFails)
{
    Logger::throwOnError(true);
    EXPECT_NO_THROW(ODRIPS_ASSERT(1 + 1 == 2, "math works"));
    EXPECT_THROW(ODRIPS_ASSERT(1 + 1 == 3, "math broke"), SimError);
    Logger::throwOnError(false);
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    Logger::quiet(true);
    EXPECT_NO_THROW(warn("soft issue ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
    Logger::quiet(false);
}

} // namespace
