/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace odrips;

namespace
{

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng r(4);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(10.0, 20.0);
        EXPECT_GE(v, 10.0);
        EXPECT_LT(v, 20.0);
    }
}

TEST(RngTest, UniformIntWithinBound)
{
    Rng r(6);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(RngTest, UniformIntCoversAllValues)
{
    Rng r(8);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[r.uniformInt(8)];
    for (int c : counts)
        EXPECT_GT(c, 800); // each bucket should get ~1000
}

TEST(RngTest, UniformIntZeroBoundPanics)
{
    Logger::throwOnError(true);
    Rng r(9);
    EXPECT_THROW(r.uniformInt(0), SimError);
    Logger::throwOnError(false);
}

TEST(RngTest, ExponentialMean)
{
    Rng r(10);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ExponentialNonNegative)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments)
{
    Rng r(12);
    double sum = 0, sumsq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ChanceProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

} // namespace
