/**
 * @file
 * Tests for Rng::fork — the per-index stream split that gives the
 * parallel sweep runner its determinism guarantee. The golden values
 * pin the streams across platforms and future refactors: xoshiro256**
 * and the splitmix64 fork hash are pure 64-bit integer arithmetic, so
 * the sequences must be identical everywhere.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hh"

using namespace odrips;

namespace
{

TEST(RngForkTest, GoldenStreams)
{
    // Pinned outputs of the first two draws of forks of Rng(42).
    // A change here means every recorded sweep with per-point RNG
    // changes too — bump these only with a deliberate calibration note.
    const Rng parent(42);

    struct Golden
    {
        std::uint64_t index;
        std::uint64_t first;
        std::uint64_t second;
    };
    const Golden golden[] = {
        {0, 0xb612613881e9f1baULL, 0xf212a9ebdedcf644ULL},
        {1, 0x37147a80285f4979ULL, 0xea7ae44303f1e950ULL},
        {2, 0xdd67818fdbdcea06ULL, 0xd6eb36c43c3efdd9ULL},
        {1000, 0xeb516ebce42a8167ULL, 0xae6ef32025ad48e1ULL},
    };
    for (const Golden &g : golden) {
        Rng child = parent.fork(g.index);
        EXPECT_EQ(child.next64(), g.first) << "index " << g.index;
        EXPECT_EQ(child.next64(), g.second) << "index " << g.index;
    }

    // The default-seed fork used by parallelSweep's base RNG.
    Rng sweep_child = Rng(0x0d219500d219ULL).fork(7);
    EXPECT_EQ(sweep_child.next64(), 0x59a18a3eb2be7091ULL);
    EXPECT_DOUBLE_EQ(Rng(0x0d219500d219ULL).fork(7).uniform(),
                     0.35012115507810804);
}

TEST(RngForkTest, ForkIsReproducible)
{
    const Rng parent(123);
    for (std::uint64_t index : {0ULL, 1ULL, 17ULL, 1ULL << 40}) {
        Rng a = parent.fork(index);
        Rng b = parent.fork(index);
        for (int i = 0; i < 100; ++i)
            ASSERT_EQ(a.next64(), b.next64()) << "index " << index;
    }
}

TEST(RngForkTest, ForkDoesNotAdvanceParent)
{
    Rng witness(9);
    const std::uint64_t expected = witness.next64();

    Rng parent(9);
    (void)parent.fork(0);
    (void)parent.fork(12345);
    EXPECT_EQ(parent.next64(), expected);
}

TEST(RngForkTest, StreamsIndependentAcrossIndices)
{
    // No two of the first 256 child streams may collide on their first
    // draws, and adjacent streams must not be shifted copies of each
    // other (the classic sequential-seed failure mode).
    const Rng parent(7);
    std::set<std::uint64_t> firsts;
    std::vector<std::vector<std::uint64_t>> prefixes;
    for (std::uint64_t i = 0; i < 256; ++i) {
        Rng child = parent.fork(i);
        std::vector<std::uint64_t> prefix(8);
        for (std::uint64_t &v : prefix)
            v = child.next64();
        firsts.insert(prefix[0]);
        prefixes.push_back(std::move(prefix));
    }
    EXPECT_EQ(firsts.size(), 256u);

    for (std::size_t i = 1; i < prefixes.size(); ++i) {
        // Compare stream i against stream i-1 at every alignment.
        int matches = 0;
        for (std::size_t a = 0; a < 8; ++a)
            for (std::size_t b = 0; b < 8; ++b)
                if (prefixes[i][a] == prefixes[i - 1][b])
                    ++matches;
        EXPECT_EQ(matches, 0) << "streams " << i - 1 << " and " << i;
    }
}

TEST(RngForkTest, DifferentParentsDifferentChildren)
{
    Rng a(1), b(2);
    Rng ca = a.fork(0), cb = b.fork(0);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (ca.next64() == cb.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngForkTest, ChildStatisticsLookUniform)
{
    // A forked stream must still be a usable generator.
    Rng child = Rng(42).fork(3);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += child.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

} // namespace
