/**
 * @file
 * Tests for the compile-time units library (sim/units.hh).
 *
 * Three concerns: the dimension algebra produces the right types and
 * values, Ticks <-> Picoseconds <-> Seconds round-trips survive extreme
 * magnitudes, and accumulating energy as power * time keeps the same
 * floating-point behavior the golden suites were calibrated against.
 */

#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{
namespace
{

using namespace odrips::unit_literals;

// ---------------------------------------------------------------------
// Dimension algebra: legal operations yield the documented type; the
// illegal ones must not compile (checked via detection idiom below).
// ---------------------------------------------------------------------

TEST(UnitsAlgebraTest, PowerTimesTimeIsEnergy)
{
    const Millijoules e = 60.0_mW * 2.0_sec;
    static_assert(std::is_same_v<decltype(60.0_mW * 2.0_sec),
                                 Millijoules>);
    EXPECT_DOUBLE_EQ(e.joules(), 0.12);
    EXPECT_DOUBLE_EQ(e.millijoules(), 120.0);
}

TEST(UnitsAlgebraTest, EnergyOverTimeIsPower)
{
    const Milliwatts p = 0.12_J / 2.0_sec;
    static_assert(std::is_same_v<decltype(0.12_J / 2.0_sec), Milliwatts>);
    EXPECT_DOUBLE_EQ(p.milliwatts(), 60.0);
}

TEST(UnitsAlgebraTest, EnergyOverPowerIsTime)
{
    const Seconds t = 0.12_J / 60.0_mW;
    static_assert(std::is_same_v<decltype(0.12_J / 60.0_mW), Seconds>);
    EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
}

TEST(UnitsAlgebraTest, SameDimensionRatiosAreDimensionless)
{
    static_assert(std::is_same_v<decltype(1.0_sec / 1.0_sec), double>);
    static_assert(std::is_same_v<decltype(1.0_W / 1.0_W), double>);
    static_assert(std::is_same_v<decltype(1.0_J / 1.0_J), double>);
    static_assert(std::is_same_v<decltype(1.0_Hz / 1.0_Hz), double>);
    EXPECT_DOUBLE_EQ(24.0_MHz / 32.768_kHz, 24.0e6 / 32768.0);
}

TEST(UnitsAlgebraTest, FrequencyTimesTimeIsCycles)
{
    static_assert(std::is_same_v<decltype(1.0_MHz * 1.0_sec), double>);
    EXPECT_DOUBLE_EQ(32.768_kHz * 2.0_sec, 65536.0);
    EXPECT_DOUBLE_EQ(2.0_sec * 32.768_kHz, 65536.0);
}

TEST(UnitsAlgebraTest, PeriodInvertsFrequency)
{
    EXPECT_DOUBLE_EQ(Hertz(24.0e6).period().seconds(), 1.0 / 24.0e6);
    EXPECT_DOUBLE_EQ(Hertz::fromPeriod(Seconds(1.0 / 32768.0)).hertz(),
                     32768.0);
    // The tick-grid period matches the ClockDomain rounding rule.
    EXPECT_EQ(Hertz(24.0e6).periodPicoseconds().ticks(),
              frequencyToPeriod(24.0e6));
}

TEST(UnitsAlgebraTest, ScalarScalingAndAccumulation)
{
    Milliwatts p = 10.0_mW;
    p *= 3.0;
    p += 5.0_mW;
    p -= 1.0_mW;
    EXPECT_DOUBLE_EQ(p.milliwatts(), 34.0);
    EXPECT_DOUBLE_EQ((2.0 * 10.0_mW).milliwatts(), 20.0);
    EXPECT_DOUBLE_EQ((10.0_mW / 4.0).milliwatts(), 2.5);

    Millijoules e = Millijoules::zero();
    e += 3.0_mJ;
    e -= 1.0_mJ;
    EXPECT_DOUBLE_EQ(e.millijoules(), 2.0);
}

TEST(UnitsAlgebraTest, ComparisonsAreOrdered)
{
    EXPECT_LT(1.0_mW, 1.0_W);
    EXPECT_GT(1.0_J, 1.0_mJ);
    EXPECT_LE(Milliwatts::zero(), Milliwatts::zero());
    EXPECT_EQ(1000.0_mW, 1.0_W);
    EXPECT_EQ(1.5_msec, Seconds::fromMicroseconds(1500.0));
}

TEST(UnitsAlgebraTest, FactoriesAndAccessorsNameTheScale)
{
    EXPECT_DOUBLE_EQ(Milliwatts::fromMilliwatts(62.7).watts(), 0.0627);
    EXPECT_DOUBLE_EQ(Milliwatts::fromWatts(0.0627).milliwatts(), 62.7);
    EXPECT_DOUBLE_EQ(Millijoules::fromJoules(0.5).microjoules(), 5.0e5);
    EXPECT_DOUBLE_EQ(Hertz::fromMegahertz(24.0).kilohertz(), 24000.0);
    EXPECT_DOUBLE_EQ(Seconds::fromMilliseconds(2.5).microseconds(),
                     2500.0);
}

// Detection idiom: mixed-dimension expressions must be rejected at
// compile time. Each trait is satisfiable only if the expression is
// well-formed for the given operand types.
template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept Dividable = requires(A a, B b) { a / b; };
template <typename A, typename B>
concept Multipliable = requires(A a, B b) { a * b; };

TEST(UnitsAlgebraTest, IllegalMixesDoNotCompile)
{
    static_assert(!Addable<Milliwatts, Millijoules>);
    static_assert(!Addable<Milliwatts, Seconds>);
    static_assert(!Addable<Millijoules, Seconds>);
    static_assert(!Addable<Milliwatts, double>);
    static_assert(!Addable<Hertz, Seconds>);
    static_assert(!Dividable<Milliwatts, Seconds>);
    static_assert(!Dividable<Seconds, Milliwatts>);
    static_assert(!Dividable<Seconds, Millijoules>);
    static_assert(!Multipliable<Millijoules, Seconds>);
    static_assert(!Multipliable<Milliwatts, Milliwatts>);
    // No implicit construction from bare doubles.
    static_assert(!std::is_convertible_v<double, Milliwatts>);
    static_assert(!std::is_convertible_v<double, Millijoules>);
    static_assert(!std::is_convertible_v<double, Seconds>);
    static_assert(!std::is_convertible_v<double, Hertz>);
    SUCCEED();
}

// ---------------------------------------------------------------------
// Ticks <-> Picoseconds <-> Seconds round trips at extreme magnitudes.
// ---------------------------------------------------------------------

TEST(UnitsTickInteropTest, PicosecondsAreExactlyTicks)
{
    for (const Tick t : {Tick{0}, onePs, oneNs, oneUs, oneMs, oneSec,
                         Tick{123456789012345}, maxTick}) {
        EXPECT_EQ(Picoseconds::fromTicks(t).ticks(), t);
    }
}

TEST(UnitsTickInteropTest, SecondsRoundTripSurvivesExtremes)
{
    // Round-tripping through Seconds costs two roundings whose combined
    // error stays below half a tick while the count is under ~2^51
    // (about 37 simulated minutes — far beyond any standby cycle), so
    // every tick count in that range must come back exactly.
    for (const Tick t :
         {Tick{0}, Tick{1}, Tick{999}, oneUs - 1, oneUs, 30 * oneMs,
          16 * oneSec, Tick{1} << 40, (Tick{1} << 50) - 1}) {
        const Seconds s = Picoseconds::fromTicks(t).seconds();
        EXPECT_EQ(Picoseconds::fromSeconds(s).ticks(), t)
            << "tick count " << t;
    }
}

TEST(UnitsTickInteropTest, SubTickDurationsRoundToNearest)
{
    EXPECT_EQ(Picoseconds::fromSeconds(Seconds(0.4e-12)).ticks(), 0);
    EXPECT_EQ(Picoseconds::fromSeconds(Seconds(0.6e-12)).ticks(), 1);
    EXPECT_EQ(Seconds::fromTicks(oneSec).seconds(), 1.0);
}

TEST(UnitsTickInteropTest, TickArithmeticStaysOnGrid)
{
    const Picoseconds a = Picoseconds::fromTicks(3 * oneUs);
    const Picoseconds b = Picoseconds::fromTicks(oneUs);
    EXPECT_EQ((a + b).ticks(), 4 * oneUs);
    EXPECT_EQ((a - b).ticks(), 2 * oneUs);
    EXPECT_EQ((b * 7).ticks(), 7 * oneUs);
    EXPECT_LT(b, a);
}

TEST(UnitsTickInteropTest, NarrowPassesValuesThatFit)
{
    EXPECT_EQ(narrow<std::uint64_t>(std::uint64_t{0}), 0u);
    EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{0xffffffffULL}),
              0xffffffffu);
    const unsigned __int128 wide =
        (static_cast<unsigned __int128>(1) << 63) + 5;
    EXPECT_EQ(narrow<std::uint64_t>(wide),
              (std::uint64_t{1} << 63) + 5);
}

TEST(UnitsTickInteropDeathTest, NarrowPanicsOnLostBits)
{
    // ODRIPS_ASSERT aborts through fatal(); both overflow and sign
    // change must be caught.
    const unsigned __int128 too_wide = static_cast<unsigned __int128>(1)
                                       << 64;
    EXPECT_DEATH(narrow<std::uint64_t>(too_wide), "narrowing cast");
    EXPECT_DEATH(narrow<std::uint32_t>(std::int64_t{-1}),
                 "narrowing cast");
}

// ---------------------------------------------------------------------
// Energy accumulation: strong-typed power * time sums must behave like
// the raw-double arithmetic the golden values were calibrated on.
// ---------------------------------------------------------------------

TEST(UnitsEnergyAccumulationTest, MatchesRawDoubleArithmeticExactly)
{
    // The internal representation is SI base units, so the strong-typed
    // accumulation is bit-identical to the pre-units code, not merely
    // close. Mimic an EnergyAccountant integrating a power staircase.
    const double power_w[] = {0.0627, 0.0031, 0.155, 0.0009, 1.39};
    const double dt_s[] = {16.0, 0.030, 0.0018, 30.0, 0.25};

    double raw = 0.0;
    Millijoules typed = Millijoules::zero();
    for (int cycle = 0; cycle < 1000; ++cycle) {
        for (std::size_t i = 0; i < std::size(power_w); ++i) {
            raw += power_w[i] * dt_s[i];
            typed += Milliwatts::fromWatts(power_w[i]) *
                     Seconds(dt_s[i]);
        }
    }
    EXPECT_EQ(typed.joules(), raw);
}

TEST(UnitsEnergyAccumulationTest, AssociativityWithinTolerance)
{
    // Summation order may legally differ between the serial and the
    // parallel sweep paths; the drift across 10^4 unequal terms must
    // stay far inside the golden suites' 0.15% savings tolerance.
    constexpr int n = 10000;
    Millijoules forward = Millijoules::zero();
    Millijoules backward = Millijoules::zero();
    for (int i = 0; i < n; ++i) {
        forward += Milliwatts::fromMilliwatts(0.1 + 0.001 * i) *
                   Seconds(1.0 / (1.0 + i));
    }
    for (int i = n - 1; i >= 0; --i) {
        backward += Milliwatts::fromMilliwatts(0.1 + 0.001 * i) *
                    Seconds(1.0 / (1.0 + i));
    }
    ASSERT_GT(forward.joules(), 0.0);
    EXPECT_NEAR(forward.joules() / backward.joules(), 1.0, 1e-12);
}

TEST(UnitsEnergyAccumulationTest, LiteralsMatchFactories)
{
    EXPECT_EQ(62.7_mW, Milliwatts::fromMilliwatts(62.7));
    EXPECT_EQ(0.5_J, Millijoules::fromJoules(0.5));
    EXPECT_EQ(24.0_MHz, Hertz(24.0e6));
    EXPECT_EQ(16.0_sec, Seconds(16.0));
    EXPECT_EQ(30.0_msec, Seconds::fromMilliseconds(30.0));
    EXPECT_EQ(50.0_usec, Seconds::fromMicroseconds(50.0));
}

} // namespace
} // namespace odrips
