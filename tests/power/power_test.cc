/**
 * @file
 * Tests for the power model: components, exact integration, power
 * delivery, the sampling analyzer, process scaling, and breakdown
 * reporting.
 */

#include <gtest/gtest.h>

#include "power/breakdown.hh"
#include "power/energy_accountant.hh"
#include "power/power_analyzer.hh"
#include "power/power_delivery.hh"
#include "power/power_model.hh"
#include "power/process_scaling.hh"
#include "power/rail.hh"
#include "sim/event_queue.hh"

using namespace odrips;
using namespace odrips::unit_literals;

namespace
{

TEST(PowerComponentTest, RegistersAndSumsIntoModel)
{
    PowerModel pm;
    PowerComponent a(pm, "a", "g1");
    PowerComponent b(pm, "b", "g2");
    a.setPower(10.0_mW, 0);
    b.setPower(20.0_mW, 0);
    EXPECT_DOUBLE_EQ(pm.totalPower().watts(), 0.030);
    EXPECT_EQ(pm.components().size(), 2u);
    EXPECT_EQ(pm.find("a"), &a);
    EXPECT_EQ(pm.find("missing"), nullptr);
}

TEST(PowerComponentTest, GroupPower)
{
    PowerModel pm;
    PowerComponent a(pm, "a", "proc");
    PowerComponent b(pm, "b", "proc");
    PowerComponent c(pm, "c", "board");
    a.setPower(1.0_W, 0);
    b.setPower(2.0_W, 0);
    c.setPower(4.0_W, 0);
    EXPECT_DOUBLE_EQ(pm.groupPower("proc").watts(), 3.0);
    EXPECT_DOUBLE_EQ(pm.groupPower("board").watts(), 4.0);
    EXPECT_DOUBLE_EQ(pm.groupPower("none").watts(), 0.0);
}

TEST(PowerComponentTest, EnergyIntegratesPiecewise)
{
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    a.setPower(2.0_W, 0);            // 2 W from t=0
    a.setPower(1.0_W, oneSec);       // 1 W from t=1s
    pm.advanceTo(3 * oneSec);        // until t=3s
    EXPECT_NEAR(a.energy().joules(), 2.0 * 1.0 + 1.0 * 2.0, 1e-9);
    EXPECT_NEAR(pm.totalEnergy().joules(), 4.0, 1e-9);
}

TEST(PowerComponentTest, NegativePowerPanics)
{
    Logger::throwOnError(true);
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    EXPECT_THROW(a.setPower(Milliwatts::fromWatts(-1.0), 0), SimError);
    Logger::throwOnError(false);
}

TEST(PowerComponentTest, ChangeInPastPanics)
{
    Logger::throwOnError(true);
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    a.setPower(1.0_W, 100);
    EXPECT_THROW(a.setPower(2.0_W, 50), SimError);
    Logger::throwOnError(false);
}

TEST(PowerModelTest, ListenerNotifiedOnChange)
{
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    Milliwatts seen_total = Milliwatts::fromWatts(-1.0);
    Tick seen_when = -1;
    pm.addListener([&](Tick when, Milliwatts total) {
        seen_when = when;
        seen_total = total;
    });
    a.setPower(0.5_W, 42);
    EXPECT_DOUBLE_EQ(seen_total.watts(), 0.5);
    EXPECT_EQ(seen_when, 42);
}

TEST(PowerDeliveryTest, FixedEfficiency)
{
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(0.74);
    EXPECT_NEAR(pd.batteryPower(44.4_mW).watts(), 0.06, 1e-4);
    EXPECT_DOUBLE_EQ(pd.efficiency(1.0_W), 0.74);
}

TEST(PowerDeliveryTest, SteppedEfficiencySwitchesAtThreshold)
{
    const PowerDelivery pd = PowerDelivery::stepped(0.2_W, 0.74, 0.87);
    // Paper footnote 5: a 10 mW component costs 10/0.74 = 13.51 mW.
    EXPECT_NEAR(pd.batteryPower(10.0_mW).watts(), 0.01351, 1e-5);
    EXPECT_DOUBLE_EQ(pd.efficiency(0.1_W), 0.74);
    EXPECT_DOUBLE_EQ(pd.efficiency(2.6_W), 0.87);
    EXPECT_NEAR(pd.batteryPower(2.6_W).watts(), 2.6 / 0.87, 1e-9);
}

TEST(PowerDeliveryTest, LoadCurveEfficiencyDropsAtLightLoad)
{
    const PowerDelivery pd = PowerDelivery::loadCurve(9.0_mW, 0.146);
    EXPECT_LT(pd.efficiency(10.0_mW), pd.efficiency(1.0_W));
    // Fixed loss remains at zero load.
    EXPECT_GT(pd.batteryPower(Milliwatts::zero()).watts(), 0.0);
}

TEST(PowerDeliveryTest, BadEfficiencyFails)
{
    Logger::throwOnError(true);
    EXPECT_THROW(PowerDelivery::fixedEfficiency(0.0), SimError);
    EXPECT_THROW(PowerDelivery::fixedEfficiency(1.5), SimError);
    Logger::throwOnError(false);
}

TEST(EnergyAccountantTest, ExactIntegrationAcrossChanges)
{
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(0.5);
    PowerComponent a(pm, "a", "g");
    EnergyAccountant acc(pm, pd);

    a.setPower(1.0_W, 0);
    a.setPower(3.0_W, oneSec);  // battery: 2 W for 1 s, then 6 W
    acc.integrateTo(2 * oneSec);

    EXPECT_NEAR(acc.batteryEnergy().joules(), 2.0 + 6.0, 1e-9);
    EXPECT_NEAR(acc.loadEnergy().joules(), 1.0 + 3.0, 1e-9);
    EXPECT_NEAR(acc.averageBatteryPower().watts(), 4.0, 1e-9);
}

TEST(EnergyAccountantTest, ResetClearsWindow)
{
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(1.0);
    PowerComponent a(pm, "a", "g");
    EnergyAccountant acc(pm, pd);
    a.setPower(5.0_W, 0);
    acc.integrateTo(oneSec);
    acc.reset(oneSec);
    EXPECT_DOUBLE_EQ(acc.batteryEnergy().joules(), 0.0);
    acc.integrateTo(2 * oneSec);
    EXPECT_NEAR(acc.batteryEnergy().joules(), 5.0, 1e-9);
}

TEST(EnergyAccountantTest, InstantaneousPowerTracksLoad)
{
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(0.8);
    PowerComponent a(pm, "a", "g");
    EnergyAccountant acc(pm, pd);
    a.setPower(0.8_W, 0);
    EXPECT_NEAR(acc.instantaneousBatteryPower().watts(), 1.0, 1e-12);
}

TEST(PowerAnalyzerTest, SamplesAtConfiguredInterval)
{
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq, 50 * oneUs);
    Milliwatts level = 1.0_W;
    analyzer.addChannel("ch", [&] { return level; });
    analyzer.arm();
    eq.run(oneMs);
    analyzer.disarm();
    // 1 ms / 50 us = 20 samples.
    EXPECT_EQ(analyzer.channel(0).samples, 20u);
    EXPECT_DOUBLE_EQ(analyzer.channel(0).average().watts(), 1.0);
}

TEST(PowerAnalyzerTest, AverageOfChangingSignal)
{
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq, 50 * oneUs);
    analyzer.addChannel("ch", [&] {
        return eq.now() <= oneMs / 2 ? 1.0_W : 3.0_W;
    });
    analyzer.arm();
    eq.run(oneMs);
    EXPECT_NEAR(analyzer.channel(0).average().watts(), 2.0, 0.11);
    EXPECT_DOUBLE_EQ(analyzer.channel(0).minSample.watts(), 1.0);
    EXPECT_DOUBLE_EQ(analyzer.channel(0).maxSample.watts(), 3.0);
}

TEST(PowerAnalyzerTest, TraceCapturesTimestampedSamples)
{
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq, 100 * oneUs);
    analyzer.addChannel("ch", [] { return 0.5_W; });
    analyzer.enableTrace(true);
    analyzer.arm();
    eq.run(oneMs);
    const auto &trace = analyzer.channel(0).trace;
    ASSERT_EQ(trace.size(), 10u);
    EXPECT_EQ(trace.front().first, 100 * oneUs);
    EXPECT_EQ(trace.back().first, oneMs);
}

TEST(PowerAnalyzerTest, TraceStaysBoundedByDecimation)
{
    // Long captures must not grow the trace without bound: at the
    // sample cap the analyzer halves the stored trace and doubles its
    // recording stride, keeping a uniform subsample of the signal.
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq, 100 * oneUs);
    analyzer.addChannel("ch", [] { return 0.5_W; });
    analyzer.enableTrace(true);
    analyzer.setTraceLimit(8);
    analyzer.arm();
    eq.run(40 * 100 * oneUs); // 40 samples against a cap of 8

    const auto &trace = analyzer.channel(0).trace;
    EXPECT_LE(trace.size(), 8u);
    EXPECT_GE(trace.size(), 4u);
    EXPECT_GT(analyzer.traceDecimationStride(), 1u);
    // The subsample keeps the first sample and stays monotonic.
    EXPECT_EQ(trace.front().first, 100 * oneUs);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_LT(trace[i - 1].first, trace[i].first);
    // Statistics are unaffected: every sample still counts.
    EXPECT_EQ(analyzer.channel(0).samples, 40u);
}

TEST(PowerAnalyzerTest, ClearResetsDecimationState)
{
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq, 100 * oneUs);
    analyzer.addChannel("ch", [] { return 0.5_W; });
    analyzer.enableTrace(true);
    analyzer.setTraceLimit(4);
    analyzer.arm();
    eq.run(20 * 100 * oneUs);
    ASSERT_GT(analyzer.traceDecimationStride(), 1u);
    analyzer.disarm();
    analyzer.clear();
    EXPECT_EQ(analyzer.traceDecimationStride(), 1u);
    EXPECT_TRUE(analyzer.channel(0).trace.empty());
}

TEST(PowerAnalyzerTest, ClearResetsStatistics)
{
    EventQueue eq;
    PowerAnalyzer analyzer("pa", eq);
    analyzer.addChannel("ch", [] { return 1.0_W; });
    analyzer.arm();
    eq.run(oneMs);
    analyzer.disarm();
    analyzer.clear();
    EXPECT_EQ(analyzer.channel(0).samples, 0u);
}

TEST(PowerAnalyzerTest, AgreesWithExactAccountant)
{
    // Sampled average must converge to the exact integral for a
    // piecewise-constant signal.
    EventQueue eq;
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(1.0);
    PowerComponent a(pm, "a", "g");
    EnergyAccountant acc(pm, pd);
    PowerAnalyzer analyzer("pa", eq, 10 * oneUs);
    analyzer.addChannel("p",
                        [&] { return pd.batteryPower(pm.totalPower()); });
    analyzer.arm();

    a.setPower(1.0_W, 0);
    eq.run(10 * oneMs);
    a.setPower(0.25_W, eq.now());
    eq.run(40 * oneMs);

    acc.integrateTo(eq.now());
    const double exact =
        acc.batteryEnergy().joules() / ticksToSeconds(eq.now());
    EXPECT_NEAR(analyzer.channel(0).average().watts(), exact,
                exact * 0.002);
}

TEST(ProcessScalingTest, PowerShrinksWithNode)
{
    EXPECT_LT(dynamicScale(ProcessNode::Nm22, ProcessNode::Nm14), 1.0);
    EXPECT_LT(leakageScale(ProcessNode::Nm22, ProcessNode::Nm14), 1.0);
    EXPECT_GT(dynamicScale(ProcessNode::Nm14, ProcessNode::Nm22), 1.0);
}

TEST(ProcessScalingTest, RoundTripIsIdentity)
{
    const double down = dynamicScale(ProcessNode::Nm22, ProcessNode::Nm14);
    const double up = dynamicScale(ProcessNode::Nm14, ProcessNode::Nm22);
    EXPECT_NEAR(down * up, 1.0, 1e-12);
}

TEST(ProcessScalingTest, MixedPowerKeepsFixedFraction)
{
    // A power that is 100% board-level (fixed) must not scale at all.
    EXPECT_DOUBLE_EQ(
        scaleMixedPower(1.0_W, 0.0, 0.0, ProcessNode::Nm22,
                        ProcessNode::Nm14)
            .watts(),
        1.0);
    // Fully-leakage power scales by the leakage factor.
    EXPECT_DOUBLE_EQ(
        scaleMixedPower(1.0_W, 1.0, 0.0, ProcessNode::Nm22,
                        ProcessNode::Nm14)
            .watts(),
        leakageScale(ProcessNode::Nm22, ProcessNode::Nm14));
}

TEST(ProcessScalingTest, NodeNames)
{
    EXPECT_EQ(to_string(ProcessNode::Nm22), "22nm");
    EXPECT_EQ(to_string(ProcessNode::Nm14), "14nm");
}

TEST(BreakdownTest, SharesSumToOne)
{
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(0.74);
    PowerComponent a(pm, "a", "processor");
    PowerComponent b(pm, "b", "chipset");
    a.setPower(10.0_mW, 0);
    b.setPower(30.0_mW, 0);

    const PowerBreakdown bd = snapshotBreakdown(pm, pd);
    EXPECT_NEAR(bd.totalBattery.watts(), 0.040 / 0.74, 1e-9);
    EXPECT_NEAR(bd.deliveryLoss.watts(), bd.totalBattery.watts() - 0.040,
                1e-9);

    double share_sum = 0;
    for (const auto &e : bd.entries)
        share_sum += e.share;
    // Component shares plus the delivery-loss share cover everything.
    EXPECT_NEAR(share_sum + bd.deliveryLoss / bd.totalBattery, 1.0, 1e-9);
    EXPECT_NEAR(bd.groupShare("processor"), 0.25 * 0.74, 1e-9);
}

TEST(BreakdownTest, ComponentShareLookup)
{
    PowerModel pm;
    const PowerDelivery pd = PowerDelivery::fixedEfficiency(1.0);
    PowerComponent a(pm, "sram", "processor");
    a.setPower(0.5_W, 0);
    const PowerBreakdown bd = snapshotBreakdown(pm, pd);
    EXPECT_DOUBLE_EQ(bd.componentShare("sram"), 1.0);
    EXPECT_DOUBLE_EQ(bd.componentShare("nope"), 0.0);
    EXPECT_FALSE(bd.toTable("t").toString().empty());
}

TEST(RailTest, PowerAndCurrentSumAttachedComponents)
{
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    PowerComponent b(pm, "b", "g");
    a.setPower(1.0_W, 0);
    b.setPower(0.5_W, 0);

    RailSet rails;
    Rail &vcc = rails.add("vcc", 1.5);
    rails.attach("vcc", a);
    rails.attach("vcc", b);
    EXPECT_DOUBLE_EQ(vcc.power().watts(), 1.5);
    EXPECT_DOUBLE_EQ(vcc.current(), 1.0);
    EXPECT_EQ(vcc.componentCount(), 2u);
}

TEST(RailTest, DoubleAttachOrDuplicateRailFails)
{
    Logger::throwOnError(true);
    PowerModel pm;
    PowerComponent a(pm, "a", "g");
    RailSet rails;
    rails.add("vcc", 1.0);
    EXPECT_THROW(rails.add("vcc", 2.0), SimError);
    rails.attach("vcc", a);
    EXPECT_THROW(rails.attach("vcc", a), SimError);
    EXPECT_THROW(rails.find("nope"), SimError);
    Logger::throwOnError(false);
}

TEST(RailTest, TableRendersAllRails)
{
    RailSet rails;
    rails.add("vcc_aon", 1.0);
    rails.add("vcc_compute", 0.7);
    const std::string table = rails.toTable("rails").toString();
    EXPECT_NE(table.find("vcc_aon"), std::string::npos);
    EXPECT_NE(table.find("vcc_compute"), std::string::npos);
}

} // namespace
