/**
 * @file
 * Tests for the memoised cycle-profile cache: key construction is a
 * content hash (any config field change re-keys), cached results are
 * bit-identical to fresh measurements, and the counters track hits and
 * rebuilds.
 */

#include <gtest/gtest.h>

#include "core/profile_cache.hh"
#include "platform/techniques.hh"

using namespace odrips;

namespace
{

TEST(ProfileKeyTest, DeterministicForEqualInputs)
{
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet odrips_set = TechniqueSet::odrips();
    const ProfileKey a = profileKey(cfg, odrips_set);
    const ProfileKey b = profileKey(cfg, odrips_set);
    EXPECT_EQ(a, b);
}

TEST(ProfileKeyTest, AnyConfigFieldChangeRekeys)
{
    const PlatformConfig base = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();
    const ProfileKey ref = profileKey(base, techniques);

    PlatformConfig cfg = base;
    cfg.coreFrequencyHz = 1.0e9;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.workload.seed = 99;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.dram.dataRateHz = 1.067e9;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.timings.vrRampUp += 1;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.name = "other";
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);
}

TEST(ProfileKeyTest, TechniqueChangeRekeys)
{
    const PlatformConfig cfg = skylakeConfig();
    const ProfileKey baseline_key =
        profileKey(cfg, TechniqueSet::baseline());
    EXPECT_FALSE(profileKey(cfg, TechniqueSet::odrips()) == baseline_key);
    EXPECT_FALSE(profileKey(cfg, TechniqueSet::wakeupOffOnly()) ==
                 baseline_key);
}

TEST(CycleProfileCacheTest, HitReturnsIdenticalProfile)
{
    CycleProfileCache cache;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();

    const CyclePowerProfile cold = cache.getOrMeasure(cfg, techniques);
    const CyclePowerProfile warm = cache.getOrMeasure(cfg, techniques);

    const CycleProfileCacheStats stats = cache.statistics();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    // The measurement is deterministic, so cached == fresh, exactly.
    const CyclePowerProfile fresh =
        measureCycleProfileUncached(cfg, techniques);
    for (const CyclePowerProfile &p : {cold, warm}) {
        EXPECT_EQ(p.idlePower, fresh.idlePower);
        EXPECT_EQ(p.activePower, fresh.activePower);
        EXPECT_EQ(p.stallPower, fresh.stallPower);
        EXPECT_EQ(p.entryLatency, fresh.entryLatency);
        EXPECT_EQ(p.exitLatency, fresh.exitLatency);
        EXPECT_EQ(p.entryEnergy, fresh.entryEnergy);
        EXPECT_EQ(p.exitEnergy, fresh.exitEnergy);
        EXPECT_EQ(p.contextSaveLatency, fresh.contextSaveLatency);
        EXPECT_EQ(p.contextRestoreLatency, fresh.contextRestoreLatency);
        EXPECT_EQ(p.contextIntact, fresh.contextIntact);
    }
}

TEST(CycleProfileCacheTest, DistinctConfigsGetDistinctEntries)
{
    CycleProfileCache cache;
    PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();

    cache.getOrMeasure(cfg, techniques);
    cfg.coreFrequencyHz = 1.2e9;
    cache.getOrMeasure(cfg, techniques);

    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.statistics().misses, 2u);
    EXPECT_EQ(cache.statistics().hits, 0u);
}

TEST(CycleProfileCacheTest, ClearDropsEntriesAndCounters)
{
    CycleProfileCache cache;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();

    cache.getOrMeasure(cfg, techniques);
    cache.clear();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.statistics().hits, 0u);
    EXPECT_EQ(cache.statistics().misses, 0u);

    cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(cache.statistics().misses, 1u);
}

TEST(CycleProfileCacheTest, CapacityEvictsOldestInsertedFirst)
{
    CycleProfileCache cache;
    cache.setCapacity(2);
    PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();

    cfg.coreFrequencyHz = 0.4e9;
    cache.getOrMeasure(cfg, techniques); // A (oldest)
    cfg.coreFrequencyHz = 0.6e9;
    cache.getOrMeasure(cfg, techniques); // B
    cfg.coreFrequencyHz = 0.8e9;
    cache.getOrMeasure(cfg, techniques); // C evicts A

    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.statistics().evictions, 1u);
    EXPECT_EQ(cache.statistics().inserts, 3u);

    // B and C are still hits; A was evicted and re-measures.
    cfg.coreFrequencyHz = 0.6e9;
    cache.getOrMeasure(cfg, techniques);
    cfg.coreFrequencyHz = 0.8e9;
    cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(cache.statistics().hits, 2u);
    cfg.coreFrequencyHz = 0.4e9;
    cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(cache.statistics().misses, 4u);
}

TEST(CycleProfileCacheTest, ShrinkingCapacityEvictsImmediately)
{
    CycleProfileCache cache;
    PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();
    for (const double ghz : {0.4, 0.6, 0.8, 1.0}) {
        cfg.coreFrequencyHz = ghz * 1e9;
        cache.getOrMeasure(cfg, techniques);
    }
    EXPECT_EQ(cache.entryCount(), 4u);
    cache.setCapacity(1);
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_EQ(cache.statistics().evictions, 3u);

    // The survivor is the newest insert.
    cfg.coreFrequencyHz = 1.0e9;
    cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(cache.statistics().hits, 1u);
}

/** In-memory fake backend: a map plus call counters (no store layer —
 * core tests exercise the seam, src/store/ tests the real backend). */
class FakeBackend : public ProfileStoreBackend
{
  public:
    bool
    fetch(const ProfileKey &key, CyclePowerProfile &out) override
    {
        ++fetches;
        const auto it = entries.find(key);
        if (it == entries.end())
            return false;
        out = it->second;
        return true;
    }

    void
    persist(const ProfileKey &key, const PlatformConfig &,
            const TechniqueSet &, const CyclePowerProfile &profile)
        override
    {
        ++persists;
        entries.emplace(key, profile);
    }

    std::map<ProfileKey, CyclePowerProfile> entries;
    int fetches = 0;
    int persists = 0;
};

TEST(CycleProfileCacheTest, BackendServesMissesAndReceivesResults)
{
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();

    FakeBackend backend;
    CycleProfileCache first;
    first.setBackend(&backend);
    EXPECT_EQ(first.backend(), &backend);

    // Cold: memo miss -> backend miss -> measure -> persist.
    const CyclePowerProfile measured =
        first.getOrMeasure(cfg, techniques);
    EXPECT_EQ(backend.fetches, 1);
    EXPECT_EQ(backend.persists, 1);
    EXPECT_EQ(first.statistics().misses, 1u);
    EXPECT_EQ(first.statistics().storeHits, 0u);

    // A fresh cache sharing the backend: memo miss -> backend hit, no
    // re-measurement, bit-identical profile.
    CycleProfileCache second;
    second.setBackend(&backend);
    const CyclePowerProfile served = second.getOrMeasure(cfg, techniques);
    EXPECT_EQ(backend.fetches, 2);
    EXPECT_EQ(backend.persists, 1); // nothing new measured
    EXPECT_EQ(second.statistics().storeHits, 1u);
    EXPECT_EQ(second.statistics().misses, 0u);
    EXPECT_EQ(served.idlePower, measured.idlePower);
    EXPECT_EQ(served.entryLatency, measured.entryLatency);

    // The backend hit was promoted into the memo: next call is a pure
    // hit with no backend traffic.
    second.getOrMeasure(cfg, techniques);
    EXPECT_EQ(backend.fetches, 2);
    EXPECT_EQ(second.statistics().hits, 1u);

    // Detach: the cache reverts to self-contained behaviour.
    second.setBackend(nullptr);
    EXPECT_EQ(second.backend(), nullptr);
}

TEST(ProfileCacheStatGroupTest, MirrorsCountersIntoScalars)
{
    CycleProfileCache cache;
    ProfileCacheStatGroup group(cache);

    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();
    cache.getOrMeasure(cfg, techniques);
    cache.getOrMeasure(cfg, techniques);
    group.update();

    double hits = -1, misses = -1, inserts = -1, entries = -1;
    for (const stats::Stat *stat : group.statistics()) {
        if (stat->name() == "hits")
            hits = stat->value();
        else if (stat->name() == "misses")
            misses = stat->value();
        else if (stat->name() == "inserts")
            inserts = stat->value();
        else if (stat->name() == "entries")
            entries = stat->value();
    }
    EXPECT_EQ(hits, 1.0);
    EXPECT_EQ(misses, 1.0);
    EXPECT_EQ(inserts, 1.0);
    EXPECT_EQ(entries, 1.0);
}

TEST(CycleProfileCacheTest, GlobalEntryPointIsMemoised)
{
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::aonIoGated();

    // Warm whatever state other tests left behind, then verify the
    // second identical call is a pure hit.
    measureCycleProfile(cfg, techniques);
    const CycleProfileCacheStats before =
        CycleProfileCache::global().statistics();
    measureCycleProfile(cfg, techniques);
    const CycleProfileCacheStats after =
        CycleProfileCache::global().statistics();

    if (CycleProfileCache::enabled()) {
        EXPECT_EQ(after.hits, before.hits + 1);
        EXPECT_EQ(after.misses, before.misses);
    }
}

} // namespace
