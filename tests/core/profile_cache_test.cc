/**
 * @file
 * Tests for the memoised cycle-profile cache: key construction is a
 * content hash (any config field change re-keys), cached results are
 * bit-identical to fresh measurements, and the counters track hits and
 * rebuilds.
 */

#include <gtest/gtest.h>

#include "core/profile_cache.hh"
#include "platform/techniques.hh"

using namespace odrips;

namespace
{

TEST(ProfileKeyTest, DeterministicForEqualInputs)
{
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet odrips_set = TechniqueSet::odrips();
    const ProfileKey a = profileKey(cfg, odrips_set);
    const ProfileKey b = profileKey(cfg, odrips_set);
    EXPECT_EQ(a, b);
}

TEST(ProfileKeyTest, AnyConfigFieldChangeRekeys)
{
    const PlatformConfig base = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();
    const ProfileKey ref = profileKey(base, techniques);

    PlatformConfig cfg = base;
    cfg.coreFrequencyHz = 1.0e9;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.workload.seed = 99;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.dram.dataRateHz = 1.067e9;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.timings.vrRampUp += 1;
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);

    cfg = base;
    cfg.name = "other";
    EXPECT_FALSE(profileKey(cfg, techniques) == ref);
}

TEST(ProfileKeyTest, TechniqueChangeRekeys)
{
    const PlatformConfig cfg = skylakeConfig();
    const ProfileKey baseline_key =
        profileKey(cfg, TechniqueSet::baseline());
    EXPECT_FALSE(profileKey(cfg, TechniqueSet::odrips()) == baseline_key);
    EXPECT_FALSE(profileKey(cfg, TechniqueSet::wakeupOffOnly()) ==
                 baseline_key);
}

TEST(CycleProfileCacheTest, HitReturnsIdenticalProfile)
{
    CycleProfileCache cache;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();

    const CyclePowerProfile cold = cache.getOrMeasure(cfg, techniques);
    const CyclePowerProfile warm = cache.getOrMeasure(cfg, techniques);

    const CycleProfileCacheStats stats = cache.statistics();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    // The measurement is deterministic, so cached == fresh, exactly.
    const CyclePowerProfile fresh =
        measureCycleProfileUncached(cfg, techniques);
    for (const CyclePowerProfile &p : {cold, warm}) {
        EXPECT_EQ(p.idlePower, fresh.idlePower);
        EXPECT_EQ(p.activePower, fresh.activePower);
        EXPECT_EQ(p.stallPower, fresh.stallPower);
        EXPECT_EQ(p.entryLatency, fresh.entryLatency);
        EXPECT_EQ(p.exitLatency, fresh.exitLatency);
        EXPECT_EQ(p.entryEnergy, fresh.entryEnergy);
        EXPECT_EQ(p.exitEnergy, fresh.exitEnergy);
        EXPECT_EQ(p.contextSaveLatency, fresh.contextSaveLatency);
        EXPECT_EQ(p.contextRestoreLatency, fresh.contextRestoreLatency);
        EXPECT_EQ(p.contextIntact, fresh.contextIntact);
    }
}

TEST(CycleProfileCacheTest, DistinctConfigsGetDistinctEntries)
{
    CycleProfileCache cache;
    PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();

    cache.getOrMeasure(cfg, techniques);
    cfg.coreFrequencyHz = 1.2e9;
    cache.getOrMeasure(cfg, techniques);

    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.statistics().misses, 2u);
    EXPECT_EQ(cache.statistics().hits, 0u);
}

TEST(CycleProfileCacheTest, ClearDropsEntriesAndCounters)
{
    CycleProfileCache cache;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::baseline();

    cache.getOrMeasure(cfg, techniques);
    cache.clear();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.statistics().hits, 0u);
    EXPECT_EQ(cache.statistics().misses, 0u);

    cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(cache.statistics().misses, 1u);
}

TEST(CycleProfileCacheTest, GlobalEntryPointIsMemoised)
{
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::aonIoGated();

    // Warm whatever state other tests left behind, then verify the
    // second identical call is a pure hit.
    measureCycleProfile(cfg, techniques);
    const CycleProfileCacheStats before =
        CycleProfileCache::global().statistics();
    measureCycleProfile(cfg, techniques);
    const CycleProfileCacheStats after =
        CycleProfileCache::global().statistics();

    if (CycleProfileCache::enabled()) {
        EXPECT_EQ(after.hits, before.hits + 1);
        EXPECT_EQ(after.misses, before.misses);
    }
}

} // namespace
