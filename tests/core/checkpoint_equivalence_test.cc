/**
 * @file
 * Differential checkpoint-equivalence suite.
 *
 * The checkpoint subsystem's whole value rests on one claim: a
 * restored (or forked) simulator is indistinguishable from the
 * original, bit for bit. This suite pins that claim differentially:
 *
 *  - snapshot -> continue vs restore-into-fresh -> continue produce
 *    bit-identical final state images and run results;
 *  - N forked children match N independently built-and-warmed fresh
 *    simulators;
 *  - RNG streams continue exactly across a fork;
 *
 * randomized over trace seeds, split points, both context-mutation
 * models, and with the sampling power analyzer armed and disarmed.
 *
 * "Bit-identical state" is checked by serializing both simulators'
 * snapshots and comparing the byte vectors: the image covers the event
 * queue clock/sequence numbers, every power/energy accumulator, timer,
 * IO level, memory and SRAM contents, MEE counters and cache, context
 * bytes with dirty maps, RNG state words, and every statistic — so a
 * single differing bit anywhere fails the comparison.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

/** Full serialized state of a quiescent simulator. */
std::vector<std::uint8_t>
stateBytes(StandbySimulator &sim)
{
    return Snapshot::capture(sim).image().serialize();
}

/** Mid-run state including the run accumulators. */
std::vector<std::uint8_t>
stateBytes(StandbySimulator &sim, const RunProgress &progress)
{
    return Snapshot::capture(sim, progress).image().serialize();
}

/** Raw bit pattern of a double (EXPECT_EQ on doubles would accept
 * -0.0 == 0.0; bit equality is the contract here). */
std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

void
expectResultsBitIdentical(const StandbyResult &a, const StandbyResult &b)
{
    EXPECT_EQ(bitsOf(a.averageBatteryPower), bitsOf(b.averageBatteryPower));
    EXPECT_EQ(bitsOf(a.analyzerAverage), bitsOf(b.analyzerAverage));
    EXPECT_EQ(bitsOf(a.idleBatteryPower), bitsOf(b.idleBatteryPower));
    EXPECT_EQ(bitsOf(a.activeBatteryPower), bitsOf(b.activeBatteryPower));
    EXPECT_EQ(bitsOf(a.idleResidency), bitsOf(b.idleResidency));
    EXPECT_EQ(bitsOf(a.activeResidency), bitsOf(b.activeResidency));
    EXPECT_EQ(bitsOf(a.transitionResidency),
              bitsOf(b.transitionResidency));
    EXPECT_EQ(a.meanEntryLatency, b.meanEntryLatency);
    EXPECT_EQ(a.meanExitLatency, b.meanExitLatency);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.simulatedTime, b.simulatedTime);
    EXPECT_EQ(a.contextIntact, b.contextIntact);
}

struct CkptCase
{
    std::uint64_t seed;
    ContextMutationKind kind;
    bool armAnalyzer;
};

std::string
caseName(const ::testing::TestParamInfo<CkptCase> &info)
{
    const CkptCase &c = info.param;
    std::string name = "seed" + std::to_string(c.seed);
    name += c.kind == ContextMutationKind::FullRegenerate ? "_full"
                                                          : "_csr";
    if (c.armAnalyzer)
        name += "_armed";
    return name;
}

class CheckpointEquivalence : public ::testing::TestWithParam<CkptCase>
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }

    static PlatformConfig
    makeConfig(const CkptCase &c)
    {
        PlatformConfig cfg = skylakeConfig();
        cfg.contextMutation.kind = c.kind;
        cfg.workload.seed = 90 + c.seed;
        return cfg;
    }
};

TEST_P(CheckpointEquivalence, SnapshotContinueEqualsRestoreContinue)
{
    const CkptCase c = GetParam();
    const PlatformConfig cfg = makeConfig(c);
    const TechniqueSet tech = TechniqueSet::odrips();

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(6);
    const std::size_t split = 2 + c.seed % 3;

    // Path A: run straight through, snapshotting at the split point.
    Platform platform_a(cfg);
    StandbySimulator sim_a(platform_a, tech);
    RunProgress prog_a = sim_a.beginRun(c.armAnalyzer);
    for (std::size_t i = 0; i < split; ++i)
        sim_a.stepCycle(prog_a, trace.cycles[i]);
    const Snapshot snap = Snapshot::capture(sim_a, prog_a);
    for (std::size_t i = split; i < trace.cycles.size(); ++i)
        sim_a.stepCycle(prog_a, trace.cycles[i]);
    const auto final_a = stateBytes(sim_a, prog_a);
    const StandbyResult res_a = sim_a.finishRun(prog_a);

    // Path B: round-trip the snapshot through its serialized form,
    // restore into a freshly built simulator, continue identically.
    const Snapshot loaded = Snapshot::fromImage(
        ckpt::SnapshotImage::deserialize(snap.image().serialize()), cfg,
        tech);
    ASSERT_TRUE(loaded.hasRunProgress());
    Platform platform_b(cfg);
    StandbySimulator sim_b(platform_b, tech);
    RunProgress prog_b;
    loaded.restoreInto(sim_b, prog_b);
    for (std::size_t i = split; i < trace.cycles.size(); ++i)
        sim_b.stepCycle(prog_b, trace.cycles[i]);
    const auto final_b = stateBytes(sim_b, prog_b);
    const StandbyResult res_b = sim_b.finishRun(prog_b);

    EXPECT_EQ(final_a, final_b);
    expectResultsBitIdentical(res_a, res_b);
}

TEST_P(CheckpointEquivalence, ForkedChildrenMatchFreshRuns)
{
    const CkptCase c = GetParam();
    if (c.armAnalyzer) // fork() restores between runs; analyzer is off
        GTEST_SKIP();
    const PlatformConfig cfg = makeConfig(c);
    const TechniqueSet tech = TechniqueSet::odrips();

    StandbyWorkloadGenerator warm_gen(cfg.workload);
    const StandbyTrace warm_trace = warm_gen.generate(3);
    const StandbyTrace probe = StandbyWorkloadGenerator::fixed(
        2, 15 * oneMs + static_cast<Tick>(c.seed) * oneMs, 120 * oneMs,
        0.7, 0.8e9);

    // Parent: build, warm, capture once.
    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, tech);
    parent.run(warm_trace);
    const Snapshot snap = Snapshot::capture(parent);

    // Reference: a fresh simulator that is built and warmed privately.
    Platform fresh_platform(cfg);
    StandbySimulator fresh(fresh_platform, tech);
    fresh.run(warm_trace);
    const StandbyResult want = fresh.run(probe);
    const auto want_state = stateBytes(fresh);

    // N forks, each continuing with the same probe trace.
    constexpr int forks = 3;
    for (int i = 0; i < forks; ++i) {
        ForkedSimulator child = snap.fork();
        const StandbyResult got = child.simulator->run(probe);
        expectResultsBitIdentical(want, got);
        EXPECT_EQ(want_state, stateBytes(*child.simulator))
            << "fork " << i;
    }

    // The parent is unperturbed by capture and forking: it continues
    // bit-identically to the fresh reference too.
    expectResultsBitIdentical(want, parent.run(probe));
    EXPECT_EQ(want_state, stateBytes(parent));
}

TEST_P(CheckpointEquivalence, RngStreamContinuesExactlyAcrossFork)
{
    const CkptCase c = GetParam();
    const PlatformConfig cfg = makeConfig(c);
    const TechniqueSet tech = TechniqueSet::odrips();

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(2);

    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, tech);
    parent.run(trace);

    const Snapshot snap = Snapshot::capture(parent);
    ForkedSimulator child = snap.fork();
    EXPECT_EQ(parent_platform.processor.context.mutationRng().stateWords(),
              child.platform->processor.context.mutationRng().stateWords());

    // One more identical cycle draws from both streams; they must
    // stay in lockstep (fork continues the stream, not a reseed).
    const StandbyTrace extra =
        StandbyWorkloadGenerator::fixed(1, 20 * oneMs, 120 * oneMs, 0.7,
                                        0.8e9);
    parent.run(extra);
    child.simulator->run(extra);
    EXPECT_EQ(parent_platform.processor.context.mutationRng().stateWords(),
              child.platform->processor.context.mutationRng().stateWords());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CheckpointEquivalence,
    ::testing::Values(
        CkptCase{1, ContextMutationKind::FullRegenerate, false},
        CkptCase{2, ContextMutationKind::FullRegenerate, true},
        CkptCase{3, ContextMutationKind::CsrSubset, false},
        CkptCase{4, ContextMutationKind::CsrSubset, true},
        CkptCase{5, ContextMutationKind::CsrSubset, false}),
    caseName);

} // namespace
