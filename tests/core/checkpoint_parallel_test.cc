/**
 * @file
 * Jobs-sweep determinism of warm-forked sweeps.
 *
 * warmForkSweep() promises a result vector that is bit-identical for
 * any worker count and to the cold (build-and-warm-per-point) path.
 * This suite runs the same sweep with explicit 1-, 2- and 8-worker
 * pools and against a hand-rolled cold loop, comparing the doubles by
 * bit pattern.
 *
 * Separate test target: it drives real thread pools, so it carries the
 * odrips_tsan label (scripts/check.sh runs `-L odrips_tsan` under
 * -fsanitize=thread and excludes the label from the ASan pass).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/odrips.hh"
#include "exec/thread_pool.hh"

using namespace odrips;

namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

class CheckpointParallel : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }
};

/** Warm with a short trace, then measure a dwell derived from the
 * sweep point index. Ignores point.rng so the cold reference below
 * can replay the exact same evaluation. */
struct SweepUnderTest
{
    PlatformConfig cfg;
    TechniqueSet tech = TechniqueSet::odrips();
    std::size_t points = 8;

    SweepUnderTest()
    {
        cfg = skylakeConfig();
        cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
    }

    static StandbyTrace
    warmTrace()
    {
        return StandbyWorkloadGenerator::fixed(2, 20 * oneMs,
                                               120 * oneMs, 0.7, 0.8e9);
    }

    static StandbyTrace
    probeTrace(std::size_t index)
    {
        return StandbyWorkloadGenerator::fixed(
            1, 10 * oneMs + static_cast<Tick>(index) * 5 * oneMs,
            120 * oneMs, 0.7, 0.8e9);
    }

    static void
    warm(StandbySimulator &sim)
    {
        sim.run(warmTrace());
    }

    static double
    eval(StandbySimulator &sim, const exec::SweepPoint &point)
    {
        return sim.run(probeTrace(point.index)).averageBatteryPower;
    }

    std::vector<double>
    runWithJobs(unsigned jobs)
    {
        exec::ThreadPool pool(jobs);
        exec::ExecPolicy policy;
        policy.pool = &pool;
        return warmForkSweep("ckpt_jobs_test", cfg, tech, points, warm,
                             eval, policy);
    }

    /** The cold path, written out longhand: build + warm per point. */
    std::vector<double>
    runCold()
    {
        std::vector<double> out;
        for (std::size_t i = 0; i < points; ++i) {
            Platform platform(cfg);
            StandbySimulator sim(platform, tech);
            warm(sim);
            out.push_back(sim.run(probeTrace(i)).averageBatteryPower);
        }
        return out;
    }
};

TEST_F(CheckpointParallel, ResultVectorBitIdenticalAcrossJobCounts)
{
    SweepUnderTest sweep;
    const std::vector<double> serial = sweep.runWithJobs(1);
    ASSERT_EQ(serial.size(), sweep.points);

    for (unsigned jobs : {2u, 8u}) {
        const std::vector<double> parallel = sweep.runWithJobs(jobs);
        ASSERT_EQ(parallel.size(), serial.size()) << jobs << " jobs";
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(bitsOf(serial[i]), bitsOf(parallel[i]))
                << jobs << " jobs, point " << i;
        }
    }
}

TEST_F(CheckpointParallel, WarmForkedSweepMatchesColdPath)
{
    SweepUnderTest sweep;
    const std::vector<double> cold = sweep.runCold();
    const std::vector<double> forked = sweep.runWithJobs(2);
    ASSERT_EQ(cold.size(), forked.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(bitsOf(cold[i]), bitsOf(forked[i])) << "point " << i;
}

} // namespace
