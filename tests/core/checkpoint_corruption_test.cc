/**
 * @file
 * Negative tests for the snapshot on-disk format.
 *
 * A corrupt or truncated snapshot must surface as a clean
 * ckpt::SnapshotError — never undefined behaviour and never a
 * partially-restored simulator:
 *
 *  - flipping any byte of any section payload is pinned to that
 *    section by its CRC at deserialize time, before restore begins;
 *  - truncating the serialized image at (and around) every section
 *    boundary is rejected by the bounds-checked reader;
 *  - structural damage that survives the CRC (a payload with trailing
 *    bytes, a missing section, a config-tag mismatch) is rejected by
 *    the restore path with a descriptive error;
 *  - the checked-in schema-v1 golden snapshot keeps loading, pinning
 *    the format against accidental schema drift (regenerate with
 *    bench/golden_snapshot_tool after an intentional schema bump).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

/** Byte extents of one section inside a serialized image. */
struct SectionSpan
{
    std::string name;
    std::size_t begin;        ///< first byte of the section record
    std::size_t payloadBegin; ///< first byte of the payload blob data
    std::size_t end;          ///< one past the last payload byte
};

/** Walk the serialized layout (header documented in
 * sim/checkpoint/snapshot_image.hh) and record section extents. */
std::vector<SectionSpan>
mapSections(const std::vector<std::uint8_t> &buf)
{
    ckpt::Reader r(buf);
    r.u32(); // magic
    r.u32(); // schema
    r.u64(); // config tag lo
    r.u64(); // config tag hi
    const std::uint32_t count = r.u32();

    std::vector<SectionSpan> spans;
    for (std::uint32_t i = 0; i < count; ++i) {
        SectionSpan s;
        s.begin = r.consumed();
        s.name = r.str();
        r.u32(); // crc
        const std::size_t blob_len_at = r.consumed();
        const std::vector<std::uint8_t> payload = r.blob();
        s.payloadBegin = blob_len_at + 8; // past the u64 length prefix
        s.end = r.consumed();
        EXPECT_EQ(s.end - s.payloadBegin, payload.size());
        spans.push_back(std::move(s));
    }
    EXPECT_EQ(r.remaining(), 0u);
    return spans;
}

class CheckpointCorruption : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        Logger::quiet(true);
        cfg_ = new PlatformConfig(skylakeConfig());
        cfg_->contextMutation.kind = ContextMutationKind::CsrSubset;
        Platform platform(*cfg_);
        StandbySimulator sim(platform, TechniqueSet::odrips());
        sim.run(StandbyWorkloadGenerator::fixed(1, 20 * oneMs,
                                                120 * oneMs, 0.7, 0.8e9));
        snap_ = new Snapshot(Snapshot::capture(sim));
        buf_ = new std::vector<std::uint8_t>(snap_->image().serialize());
    }

    static void
    TearDownTestSuite()
    {
        delete buf_;
        delete snap_;
        delete cfg_;
        buf_ = nullptr;
        snap_ = nullptr;
        cfg_ = nullptr;
    }

    static const PlatformConfig &config() { return *cfg_; }
    static const Snapshot &snapshot() { return *snap_; }
    static const std::vector<std::uint8_t> &goodBytes() { return *buf_; }

  private:
    static PlatformConfig *cfg_;
    static Snapshot *snap_;
    static std::vector<std::uint8_t> *buf_;
};

PlatformConfig *CheckpointCorruption::cfg_ = nullptr;
Snapshot *CheckpointCorruption::snap_ = nullptr;
std::vector<std::uint8_t> *CheckpointCorruption::buf_ = nullptr;

TEST_F(CheckpointCorruption, PristineImageDeserializes)
{
    const ckpt::SnapshotImage img =
        ckpt::SnapshotImage::deserialize(goodBytes());
    EXPECT_EQ(img.sections().size(),
              snapshot().image().sections().size());
    // Everything the tentpole promises to capture is present.
    for (const char *name : {"clock", "power", "timing", "io", "memory",
                             "mee", "context", "flows", "stats"}) {
        EXPECT_TRUE(img.hasSection(name)) << name;
    }
}

TEST_F(CheckpointCorruption, ByteFlipInEachSectionPinnedByCrc)
{
    const auto spans = mapSections(goodBytes());
    ASSERT_FALSE(spans.empty());
    for (const SectionSpan &s : spans) {
        ASSERT_GT(s.end, s.payloadBegin) << s.name;
        // First, middle and last payload byte.
        for (std::size_t at :
             {s.payloadBegin, (s.payloadBegin + s.end) / 2, s.end - 1}) {
            std::vector<std::uint8_t> bad = goodBytes();
            bad[at] ^= 0x40;
            try {
                ckpt::SnapshotImage::deserialize(bad);
                FAIL() << "byte flip at " << at << " in section '"
                       << s.name << "' went undetected";
            } catch (const ckpt::SnapshotError &e) {
                EXPECT_NE(std::string(e.what()).find(s.name),
                          std::string::npos)
                    << "error should name section '" << s.name
                    << "', got: " << e.what();
            }
        }
    }
}

TEST_F(CheckpointCorruption, TruncationAtEverySectionBoundaryRejected)
{
    const auto spans = mapSections(goodBytes());
    std::vector<std::size_t> cuts = {0, 1, 4, 27, 28};
    for (const SectionSpan &s : spans) {
        cuts.push_back(s.begin);
        cuts.push_back(s.payloadBegin);
        cuts.push_back(s.end - 1);
    }
    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, goodBytes().size());
        std::vector<std::uint8_t> bad(goodBytes().begin(),
                                      goodBytes().begin() +
                                          static_cast<long>(cut));
        EXPECT_THROW(ckpt::SnapshotImage::deserialize(bad),
                     ckpt::SnapshotError)
            << "truncated to " << cut << " bytes";
    }
}

TEST_F(CheckpointCorruption, TrailingGarbageRejected)
{
    std::vector<std::uint8_t> bad = goodBytes();
    bad.push_back(0x00);
    EXPECT_THROW(ckpt::SnapshotImage::deserialize(bad),
                 ckpt::SnapshotError);
}

TEST_F(CheckpointCorruption, BadMagicAndSchemaRejected)
{
    std::vector<std::uint8_t> bad_magic = goodBytes();
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(ckpt::SnapshotImage::deserialize(bad_magic),
                 ckpt::SnapshotError);

    std::vector<std::uint8_t> bad_schema = goodBytes();
    bad_schema[4] = 0x7f; // schema version 127
    try {
        ckpt::SnapshotImage::deserialize(bad_schema);
        FAIL() << "future schema version accepted";
    } catch (const ckpt::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("schema"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CheckpointCorruption, ConfigTagMismatchRejected)
{
    // Same bytes, different technique set: the embedded ProfileKey
    // hash must refuse the pairing (a snapshot stores state, not
    // configuration).
    const ckpt::SnapshotImage img =
        ckpt::SnapshotImage::deserialize(goodBytes());
    EXPECT_THROW(Snapshot::fromImage(img, config(),
                                     TechniqueSet::baseline()),
                 ckpt::SnapshotError);

    PlatformConfig other = config();
    other.workload.seed += 1;
    EXPECT_THROW(
        Snapshot::fromImage(img, other, TechniqueSet::odrips()),
        ckpt::SnapshotError);
}

TEST_F(CheckpointCorruption, TrailingBytesInsideSectionRejected)
{
    // Rebuild the image with one extra byte appended to the clock
    // payload. The CRC is computed over the padded payload, so the
    // image itself round-trips; the restore path must still reject it
    // (schema drift detection) instead of misparsing.
    ckpt::SnapshotImage padded;
    padded.setConfigTag(snapshot().image().configTag());
    for (const ckpt::SnapshotSection &s : snapshot().image().sections()) {
        std::vector<std::uint8_t> payload = s.payload;
        if (s.name == "clock")
            payload.push_back(0xee);
        padded.addSection(s.name, std::move(payload));
    }
    const Snapshot bad = Snapshot::fromImage(
        ckpt::SnapshotImage::deserialize(padded.serialize()), config(),
        TechniqueSet::odrips());

    Platform platform(config());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    try {
        bad.restoreInto(sim);
        FAIL() << "padded clock section restored";
    } catch (const ckpt::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("trailing"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CheckpointCorruption, MissingSectionRejected)
{
    ckpt::SnapshotImage partial;
    partial.setConfigTag(snapshot().image().configTag());
    for (const ckpt::SnapshotSection &s : snapshot().image().sections()) {
        if (s.name != "stats")
            partial.addSection(s.name, s.payload);
    }
    const Snapshot bad = Snapshot::fromImage(
        std::move(partial), config(), TechniqueSet::odrips());

    Platform platform(config());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    EXPECT_THROW(bad.restoreInto(sim), ckpt::SnapshotError);
}

TEST_F(CheckpointCorruption, RestoreWithoutRunSectionRejected)
{
    EXPECT_FALSE(snapshot().hasRunProgress());
    Platform platform(config());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    RunProgress progress;
    EXPECT_THROW(snapshot().restoreInto(sim, progress),
                 ckpt::SnapshotError);
}

TEST_F(CheckpointCorruption, GoldenV1SnapshotLoads)
{
    // Fixed fixture generated by bench/golden_snapshot_tool — the
    // schema-v1 compatibility pin. If this fails after an intentional
    // format change, bump SnapshotImage::schemaVersion and regenerate;
    // if the change was unintentional, fix the drift instead.
    const std::string path =
        std::string(ODRIPS_TEST_DATA_DIR) + "/golden_v1.ckpt";
    const Snapshot golden = Snapshot::readFile(path, skylakeConfig(),
                                               TechniqueSet::odrips());
    EXPECT_FALSE(golden.hasRunProgress());

    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    golden.restoreInto(sim);
    const StandbyResult r = sim.run(StandbyWorkloadGenerator::fixed(
        1, 20 * oneMs, 120 * oneMs, 0.7, 0.8e9));
    EXPECT_TRUE(r.contextIntact);
}

} // namespace
