/**
 * @file
 * Golden-value regression tests: pin the headline numbers of
 * EXPERIMENTS.md so that performance PRs (parallel runners, caching,
 * refactors) cannot silently shift the physics of the model.
 *
 * Updating these goldens is a *calibration decision*, never a
 * side-effect: if a change intentionally moves a number, update the
 * constant here AND the corresponding EXPERIMENTS.md table in the same
 * commit, and say why in the commit message (see
 * "Updating the golden values" in EXPERIMENTS.md).
 *
 * Tolerances are deliberately asymmetric to the claims:
 *  - savings are pinned to ±0.15 percentage points (they print with
 *    one decimal, so any visible change trips the test);
 *  - break-even points are pinned to ±one sweep step (0.1 ms) — the
 *    sweep quantizes to the step, so a one-step move is the smallest
 *    representable regression;
 *  - context latencies to ±0.5 µs (the paper quotes whole-µs values);
 *  - Step bit widths are exact integers.
 */

#include <gtest/gtest.h>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

class GoldenFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }
};

/** ±0.15 percentage points, as a fraction. */
constexpr double kSavingsTol = 0.15e-2;
/** ±one 0.1 ms sweep step, in seconds. */
constexpr double kBreakevenTol = 0.1e-3;
/** ±0.5 µs on context transfer latencies, in seconds. */
constexpr double kLatencyTol = 0.5e-6;

TEST_F(GoldenFixture, Fig6aSavingsAndBreakevens)
{
    // EXPERIMENTS.md, Fig. 6(a): model savings 6.2 / 13.6 / 8.1 /
    // 21.8 % (paper: 6 / 13 / 8 / 22 %) and model break-evens
    // 6.5 / 5.8 / 7.3 / 6.6 ms (paper: 6.6 / 6.3 / 7.4 / 6.5 ms).
    const auto evals = evaluateFig6aSet(skylakeConfig());
    ASSERT_EQ(evals.size(), 5u);

    struct Golden
    {
        const char *label;
        double savings;
        double breakEvenSeconds;
    };
    const Golden golden[] = {
        {"WAKE-UP-OFF", 6.2e-2, 6.5e-3},
        {"AON-IO-GATE", 13.6e-2, 5.8e-3},
        {"CTX-SGX-DRAM", 8.1e-2, 7.3e-3},
        {"ODRIPS", 21.8e-2, 6.6e-3},
    };
    for (std::size_t i = 0; i < 4; ++i) {
        const TechniqueEvaluation &e = evals[i + 1];
        EXPECT_EQ(e.label, golden[i].label);
        EXPECT_NEAR(e.savingsVsBaseline, golden[i].savings, kSavingsTol)
            << e.label;
        EXPECT_NEAR(ticksToSeconds(e.breakEven),
                    golden[i].breakEvenSeconds, kBreakevenTol)
            << e.label;
    }
}

TEST_F(GoldenFixture, Fig6dPcmSavings)
{
    // EXPERIMENTS.md, Fig. 6(d): ODRIPS-PCM savings vs the DRAM
    // baseline, model 36.3% (paper: 37%).
    const PlatformConfig dram_cfg = skylakeConfig();
    PlatformConfig pcm_cfg = dram_cfg;
    pcm_cfg.memoryKind = MainMemoryKind::Pcm;

    const CyclePowerProfile base =
        measureCycleProfile(dram_cfg, TechniqueSet::baseline());
    const CyclePowerProfile pcm =
        measureCycleProfile(pcm_cfg, TechniqueSet::odripsPcm());
    const double savings = 1.0 - standardWorkloadAverage(pcm, dram_cfg) /
                                     standardWorkloadAverage(base,
                                                             dram_cfg);
    EXPECT_NEAR(savings, 36.3e-2, kSavingsTol);
}

TEST_F(GoldenFixture, Sec63ContextTransferLatencies)
{
    // EXPERIMENTS.md, Sec. 6.3: save to protected DRAM 19.8 µs
    // (paper ~18 µs), restore 14.5 µs (paper ~13 µs). The asymmetry
    // (writes slower than reads) is produced by the integrity tree.
    const CyclePowerProfile odrips =
        measureCycleProfile(skylakeConfig(), TechniqueSet::odrips());
    EXPECT_NEAR(ticksToSeconds(odrips.contextSaveLatency), 19.8e-6,
                kLatencyTol);
    EXPECT_NEAR(ticksToSeconds(odrips.contextRestoreLatency), 14.5e-6,
                kLatencyTol);
    EXPECT_GT(odrips.contextSaveLatency, odrips.contextRestoreLatency);
}

TEST_F(GoldenFixture, Sec4StepBitWidths)
{
    // EXPERIMENTS.md, Sec. 4.1.3: Eq. 2 integer bits m = 10 and Eq. 4
    // fraction bits f = 21 for 1 ppb — both exactly the paper's.
    EXPECT_EQ(StepCalibrator::requiredIntegerBits(Hertz(24.0e6),
                                                  Hertz(32768.0)),
              10u);
    EXPECT_EQ(StepCalibrator::requiredFractionBits(
                  Hertz(24.0e6), Hertz(32768.0), 1000000000ULL),
              21u);
}

TEST_F(GoldenFixture, BreakevenSweepAgreesWithClosedForm)
{
    // The sweep and the analytic break-even must agree to one step —
    // the consistency EXPERIMENTS.md claims for Fig. 6(a).
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());
    const BreakevenResult be = findBreakeven(odrips, base);
    ASSERT_TRUE(be.found());
    EXPECT_NEAR(ticksToSeconds(be.breakEvenDwell),
                ticksToSeconds(be.analyticBreakEven), kBreakevenTol);
}

} // namespace
