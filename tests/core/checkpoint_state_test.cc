/**
 * @file
 * Post-restore invariants of individual subsystems.
 *
 * The differential suite (checkpoint_equivalence_test.cc) pins whole
 * simulators bit-for-bit; these tests zoom into the two subsystems
 * whose restored state is easiest to get subtly wrong:
 *
 *  - MEE version metadata: predictVersionsProbe() must agree with a
 *    serial walk of the counter groups (cache hits and DRAM-resident
 *    nodes alike) after a restore, without perturbing any state;
 *  - DirtyLineMap: dirty runs survive a restore exactly, and
 *    re-coalesce identically when the same mutations are applied to
 *    the original and the restored copy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/odrips.hh"
#include "security/mee.hh"

using namespace odrips;

namespace
{

class CheckpointState : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }

    static PlatformConfig
    makeConfig()
    {
        PlatformConfig cfg = skylakeConfig();
        cfg.contextMutation.kind = ContextMutationKind::CsrSubset;
        return cfg;
    }

    static StandbyTrace
    trace(std::size_t cycles)
    {
        return StandbyWorkloadGenerator::fixed(cycles, 20 * oneMs,
                                               120 * oneMs, 0.7, 0.8e9);
    }
};

TEST_F(CheckpointState, MeePredictionsMatchSerialWalkAfterRestore)
{
    const PlatformConfig cfg = makeConfig();
    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, TechniqueSet::odrips());
    parent.run(trace(3)); // populate counters and the metadata cache

    const Snapshot snap = Snapshot::capture(parent);
    ForkedSimulator child = snap.fork();
    const Mee &parent_mee = *parent_platform.mee;
    const Mee &child_mee = *child.platform->mee;

    constexpr std::uint64_t arity = TreeLayout::arity;
    constexpr std::uint64_t groups = 6;

    for (std::uint64_t g = 0; g < groups; ++g) {
        std::uint64_t want[arity];
        std::uint64_t got[arity];
        parent_mee.peekCounterGroupProbe(g, want);
        child_mee.peekCounterGroupProbe(g, got);
        for (std::uint64_t i = 0; i < arity; ++i)
            EXPECT_EQ(want[i], got[i]) << "group " << g << " slot " << i;
    }

    // Batched prediction == serial walk of the counter groups, on the
    // restored copy, for both the read (bump=false) and write
    // (bump=true) flavours.
    std::vector<std::uint64_t> predicted(groups * arity);
    child_mee.predictVersionsProbe(0, predicted.size(), false,
                                   predicted.data());
    for (std::uint64_t line = 0; line < predicted.size(); ++line) {
        std::uint64_t counters[arity];
        child_mee.peekCounterGroupProbe(line / arity, counters);
        EXPECT_EQ(predicted[line], counters[line % arity])
            << "line " << line;
    }

    std::vector<std::uint64_t> bumped(groups * arity);
    child_mee.predictVersionsProbe(0, bumped.size(), true,
                                   bumped.data());
    for (std::uint64_t line = 0; line < bumped.size(); ++line)
        EXPECT_EQ(bumped[line], predicted[line] + 1) << "line " << line;

    // The probes are pure reads: the child still matches the parent's
    // full state image after all of the probing above.
    EXPECT_EQ(Snapshot::capture(parent).image().serialize(),
              Snapshot::capture(*child.simulator).image().serialize());
}

TEST_F(CheckpointState, MeeCachedNodesSurviveRestore)
{
    const PlatformConfig cfg = makeConfig();
    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, TechniqueSet::odrips());
    parent.run(trace(2));

    ForkedSimulator child = Snapshot::capture(parent).fork();
    const Mee &parent_mee = *parent_platform.mee;
    const Mee &child_mee = *child.platform->mee;

    // Residency and contents of level-0 counter groups agree between
    // the metadata caches (peek() does not touch LRU state).
    for (std::uint64_t g = 0; g < 16; ++g) {
        const std::uint64_t key =
            TreeLayout::nodeKey(NodeKind::CounterGroup, 0, g);
        const MetadataNode *want = parent_mee.metadataCache().peek(key);
        const MetadataNode *got = child_mee.metadataCache().peek(key);
        ASSERT_EQ(want == nullptr, got == nullptr) << "group " << g;
        if (want == nullptr)
            continue;
        EXPECT_EQ(want->counters, got->counters) << "group " << g;
        EXPECT_EQ(want->mac, got->mac) << "group " << g;
    }
}

/** Flattened copy of a region's dirty runs for comparison. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
runsOf(const ContextRegion &region)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (const DirtyLineMap::Run &r : region.dirty.runs())
        out.emplace_back(r.firstLine, r.lineCount);
    return out;
}

TEST_F(CheckpointState, DirtyRunsSurviveRestoreExactly)
{
    const PlatformConfig cfg = makeConfig();
    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, TechniqueSet::odrips());
    parent.run(trace(2));

    ForkedSimulator child = Snapshot::capture(parent).fork();
    ProcessorContext &pc = parent_platform.processor.context;
    ProcessorContext &cc = child.platform->processor.context;

    EXPECT_EQ(runsOf(pc.sa()), runsOf(cc.sa()));
    EXPECT_EQ(runsOf(pc.cores()), runsOf(cc.cores()));
    EXPECT_EQ(runsOf(pc.boot()), runsOf(cc.boot()));

    // The CsrSubset model leaves a sparse map behind: the restore
    // must reproduce the runs, not just the per-line bits.
    EXPECT_FALSE(runsOf(pc.sa()).empty());
}

TEST_F(CheckpointState, DirtyRunsRecoalesceIdenticallyAfterRestore)
{
    const PlatformConfig cfg = makeConfig();
    Platform parent_platform(cfg);
    StandbySimulator parent(parent_platform, TechniqueSet::odrips());
    parent.run(trace(2));

    ForkedSimulator child = Snapshot::capture(parent).fork();

    // Apply the same mutations to both copies. The mutation RNG was
    // part of the snapshot, so the CsrSubset model dirties the same
    // lines and the run-length coalescing must land in the same runs.
    for (int round = 0; round < 3; ++round) {
        parent.run(trace(1));
        child.simulator->run(trace(1));

        ProcessorContext &pc = parent_platform.processor.context;
        ProcessorContext &cc = child.platform->processor.context;
        EXPECT_EQ(runsOf(pc.sa()), runsOf(cc.sa())) << "round " << round;
        EXPECT_EQ(runsOf(pc.cores()), runsOf(cc.cores()))
            << "round " << round;
        EXPECT_EQ(runsOf(pc.boot()), runsOf(cc.boot()))
            << "round " << round;
    }
}

} // namespace
