/**
 * @file
 * Tests for the LTR/TNTE idle-state governor.
 */

#include <gtest/gtest.h>

#include "core/governor.hh"
#include "core/memory_dvfs.hh"
#include "core/odrips.hh"

using namespace odrips;

namespace
{

class GovernorFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        Logger::quiet(true);
        profile_ = new CyclePowerProfile(measureCycleProfile(
            skylakeConfig(), TechniqueSet::baseline()));
    }

    static void TearDownTestSuite()
    {
        delete profile_;
        profile_ = nullptr;
    }

    GovernorFixture()
        : table(CStateTable::skylake()),
          governor(table, *profile_, 3 * oneMs)
    {
    }

    static CyclePowerProfile *profile_;
    CStateTable table;
    IdleGovernor governor;
};

CyclePowerProfile *GovernorFixture::profile_ = nullptr;

TEST_F(GovernorFixture, DerivesOneModelPerIdleState)
{
    // Every state except C0.
    EXPECT_EQ(governor.states().size(), table.states().size() - 1);
    EXPECT_EQ(governor.states().front().name, "C1");
    EXPECT_EQ(governor.states().back().name, "C10");
}

TEST_F(GovernorFixture, DeeperStatesDrawLessAndCostMore)
{
    const auto &models = governor.states();
    for (std::size_t i = 1; i < models.size(); ++i) {
        EXPECT_LT(models[i].idlePower, models[i - 1].idlePower);
        EXPECT_GE(models[i].transitionEnergy,
                  models[i - 1].transitionEnergy);
        EXPECT_GE(models[i].breakEvenVsShallowest,
                  models[i - 1].breakEvenVsShallowest);
    }
}

TEST_F(GovernorFixture, DripsModelMatchesMeasuredProfile)
{
    const DerivedStateModel &drips =
        governor.modelFor(table.deepest());
    EXPECT_DOUBLE_EQ(drips.idlePower, profile_->idlePower);
    EXPECT_EQ(drips.exitLatency, profile_->exitLatency);
    EXPECT_NEAR(drips.transitionEnergy,
                profile_->entryEnergy + profile_->exitEnergy, 1e-12);
}

TEST_F(GovernorFixture, LongTnteSelectsDrips)
{
    EXPECT_EQ(governor.decide(30 * oneSec).state->name, "C10");
}

TEST_F(GovernorFixture, ShortTnteSelectsShallowState)
{
    const GovernorDecision d = governor.decide(300 * oneUs);
    EXPECT_LT(d.state->index, 10);
    EXPECT_GT(d.state->index, 0);
}

TEST_F(GovernorFixture, OracleNeverWorseThanFixedPolicies)
{
    const Tick active = 20 * oneMs;
    for (double dwell_s : {0.0005, 0.002, 0.01, 0.1, 10.0}) {
        const std::vector<Tick> dwells(8, secondsToTicks(dwell_s));
        const double oracle =
            governor.evaluate(dwells, active, true).averagePower;
        for (int state : {1, 3, 6, 7, 8, 10}) {
            const double fixed =
                governor.evaluate(dwells, active, false, state)
                    .averagePower;
            EXPECT_LE(oracle, fixed * 1.0000001)
                << "dwell " << dwell_s << " state C" << state;
        }
    }
}

TEST_F(GovernorFixture, GovernorTracksOracleWithinFewPercent)
{
    const Tick active = 20 * oneMs;
    for (double dwell_s : {0.0005, 0.001, 0.005, 0.05, 1.0}) {
        const std::vector<Tick> dwells(8, secondsToTicks(dwell_s));
        const double governed =
            governor.evaluate(dwells, active).averagePower;
        const double oracle =
            governor.evaluate(dwells, active, true).averagePower;
        EXPECT_LE(governed, oracle * 1.05) << "dwell " << dwell_s;
    }
}

TEST_F(GovernorFixture, AlwaysDripsLosesOnShortDwells)
{
    const std::vector<Tick> storms(16, 800 * oneUs);
    const double always =
        governor.evaluate(storms, 20 * oneMs, false, 10).averagePower;
    const double governed =
        governor.evaluate(storms, 20 * oneMs).averagePower;
    EXPECT_LT(governed, always);
}

TEST_F(GovernorFixture, PoliciesConvergeAtConnectedStandbyDwell)
{
    const std::vector<Tick> dwells(4, 30 * oneSec);
    const double always =
        governor.evaluate(dwells, 20 * oneMs, false, 10).averagePower;
    const double governed =
        governor.evaluate(dwells, 20 * oneMs).averagePower;
    EXPECT_NEAR(governed, always, always * 1e-9);
}

TEST_F(GovernorFixture, LtrCapsTheDepth)
{
    // With a 100 us latency tolerance the governor must never pick a
    // state with a longer exit latency.
    IdleGovernor strict(table, *profile_, 100 * oneUs);
    for (double dwell_s : {0.001, 0.1, 30.0}) {
        const GovernorDecision d =
            strict.decide(secondsToTicks(dwell_s));
        EXPECT_LE(d.state->exitLatency, 100 * oneUs);
    }
}

TEST_F(GovernorFixture, ResidencyAccountingSumsToOne)
{
    std::vector<Tick> mixed;
    for (int i = 0; i < 6; ++i) {
        mixed.push_back(500 * oneUs);
        mixed.push_back(30 * oneSec);
    }
    const GovernedResult r = governor.evaluate(mixed, 20 * oneMs);
    double sum = 0.0;
    for (const auto &[name, share] : r.stateResidency)
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(r.decisions.size(), mixed.size());
    // Long dwells dominate the idle time -> C10 residency ~ 1.
    EXPECT_GT(r.stateResidency.at("C10"), 0.99);
}

TEST_F(GovernorFixture, IdleEnergyMonotoneInDwell)
{
    const DerivedStateModel &drips = governor.modelFor(table.deepest());
    double prev = 0.0;
    for (double dwell_s : {0.001, 0.01, 0.1, 1.0}) {
        const double e =
            governor.idleEnergy(drips, secondsToTicks(dwell_s));
        EXPECT_GT(e, prev);
        prev = e;
    }
}

class MemoryDvfsTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }
};

TEST_F(MemoryDvfsTest, ReturnsStaticPointsPlusDynamic)
{
    const auto points =
        exploreMemoryDvfs(skylakeConfig(), TechniqueSet::odrips());
    ASSERT_EQ(points.size(), 4u);
    EXPECT_FALSE(points[0].dynamic);
    EXPECT_TRUE(points.back().dynamic);
    // Transfers always run at the fastest candidate rate.
    EXPECT_DOUBLE_EQ(points.back().transferRate, 1.6e9);
}

TEST_F(MemoryDvfsTest, DynamicNeverWorseThanBestStatic)
{
    for (double mem_bound : {0.0, 0.25, 0.5, 1.0}) {
        MemoryDvfsConfig dvfs;
        dvfs.memBoundFraction = mem_bound;
        const auto points = exploreMemoryDvfs(
            skylakeConfig(), TechniqueSet::odrips(), dvfs);

        double best_static = points[0].averagePower;
        for (std::size_t i = 1; i + 1 < points.size(); ++i)
            best_static = std::min(best_static, points[i].averagePower);
        // Within a small tolerance for the transfer/switch accounting.
        EXPECT_LE(points.back().averagePower, best_static * 1.001)
            << "mem_bound " << mem_bound;
    }
}

TEST_F(MemoryDvfsTest, OracleAdaptsToBandwidthSensitivity)
{
    MemoryDvfsConfig latency_bound;
    latency_bound.memBoundFraction = 0.0;
    const auto lat = exploreMemoryDvfs(skylakeConfig(),
                                       TechniqueSet::odrips(),
                                       latency_bound);
    // Latency-bound work: under-clock the active window.
    EXPECT_LT(lat.back().activeRate, 1.6e9);

    MemoryDvfsConfig bw_bound;
    bw_bound.memBoundFraction = 0.8;
    const auto bw = exploreMemoryDvfs(skylakeConfig(),
                                      TechniqueSet::odrips(), bw_bound);
    // Bandwidth-bound work: hold full speed (dilation dominates).
    EXPECT_DOUBLE_EQ(bw.back().activeRate, 1.6e9);
}

TEST_F(MemoryDvfsTest, StallDilationRaisesStaticLowRatePower)
{
    MemoryDvfsConfig none, heavy;
    none.memBoundFraction = 0.0;
    heavy.memBoundFraction = 1.0;
    const auto a = exploreMemoryDvfs(skylakeConfig(),
                                     TechniqueSet::odrips(), none);
    const auto b = exploreMemoryDvfs(skylakeConfig(),
                                     TechniqueSet::odrips(), heavy);
    // The 0.8 GT/s static point (index 2) gets worse with dilation;
    // the full-speed point is unaffected.
    EXPECT_GT(b[2].averagePower, a[2].averagePower);
    EXPECT_NEAR(b[0].averagePower, a[0].averagePower, 1e-9);
}

} // namespace
