/**
 * @file
 * Tests for the core API: the standby simulator, Eq. 1 profiles, the
 * break-even analysis, and the headline paper-anchor reproduction
 * checks (Fig. 1(b), Fig. 2, Fig. 6(a)).
 */

#include <gtest/gtest.h>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

class CoreFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { Logger::quiet(true); }

    static StandbyTrace
    shortTrace(std::size_t cycles = 3, Tick dwell = 200 * oneMs)
    {
        return StandbyWorkloadGenerator::fixed(cycles, dwell, 150 * oneMs,
                                               0.7, 0.8e9);
    }
};

TEST_F(CoreFixture, BaselineIdlePowerIsSixtyMilliwatts)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::baseline());
    const StandbyResult r = sim.run(shortTrace());
    // Fig. 1(b): ~60 mW platform power in DRIPS.
    EXPECT_NEAR(r.idleBatteryPower, 0.060, 0.001);
}

TEST_F(CoreFixture, ActivePowerIsAboutThreeWatts)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::baseline());
    const StandbyResult r = sim.run(shortTrace());
    // Fig. 2: ~3 W in C0 with display off.
    EXPECT_NEAR(r.activeBatteryPower, 3.0, 0.15);
}

TEST_F(CoreFixture, StandardWorkloadResidencyMatchesPaper)
{
    // Paper Sec. 7: 99.5% DRIPS residency, 0.5% active+transitions.
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::baseline());
    const StandbyTrace trace = StandbyWorkloadGenerator::fixed(
        2, 30 * oneSec, 150 * oneMs, 0.7, 0.8e9);
    const StandbyResult r = sim.run(trace);
    EXPECT_NEAR(r.idleResidency, 0.995, 0.001);
    EXPECT_NEAR(r.activeResidency + r.transitionResidency, 0.005,
                0.001);
    // Fig. 2: average platform power in the tens of milliwatts. With
    // this trace's 150 ms active window (70% CPU-bound, 30% stalled)
    // the model lands at ~72 mW.
    EXPECT_NEAR(r.averageBatteryPower, 0.072, 0.003);
}

TEST_F(CoreFixture, SampledAnalyzerAgreesWithExactIntegration)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    const StandbyResult r = sim.run(shortTrace(2, 50 * oneMs), true);
    ASSERT_GT(r.analyzerAverage, 0.0);
    EXPECT_NEAR(r.analyzerAverage, r.averageBatteryPower,
                r.averageBatteryPower * 0.01);
}

TEST_F(CoreFixture, ContextIntactAcrossManyCycles)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    const StandbyResult r = sim.run(shortTrace(8, 20 * oneMs));
    EXPECT_TRUE(r.contextIntact);
    EXPECT_EQ(r.cycles, 8u);
}

TEST_F(CoreFixture, MeanLatenciesReported)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::baseline());
    const StandbyResult r = sim.run(shortTrace());
    EXPECT_GT(r.meanEntryLatency, 100 * oneUs);
    EXPECT_GT(r.meanExitLatency, 200 * oneUs);
}

TEST_F(CoreFixture, ProfileMatchesEventDrivenSimulation)
{
    // Eq. 1 on a measured profile must reproduce the event-driven
    // simulator's average power (the paper's power-model methodology).
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile profile =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    for (Tick dwell : {20 * oneMs, 500 * oneMs, 5 * oneSec}) {
        Platform platform(cfg);
        StandbySimulator sim(platform, TechniqueSet::odrips());
        const StandbyResult sim_result =
            sim.run(StandbyWorkloadGenerator::fixed(
                2, dwell, 150 * oneMs, 0.7, 0.8e9));
        const double eq1 =
            averagePowerEq1(profile, dwell, 150 * oneMs, 0.7);
        EXPECT_NEAR(eq1, sim_result.averageBatteryPower,
                    sim_result.averageBatteryPower * 0.02)
            << "dwell " << ticksToSeconds(dwell);
    }
}

TEST_F(CoreFixture, ProfileLatenciesAndEnergiesPositive)
{
    const CyclePowerProfile p =
        measureCycleProfile(skylakeConfig(), TechniqueSet::odrips());
    EXPECT_GT(p.entryEnergy, 0.0);
    EXPECT_GT(p.exitEnergy, 0.0);
    EXPECT_GT(p.entryLatency, 0);
    EXPECT_GT(p.exitLatency, 0);
    EXPECT_GT(p.stallPower, p.idlePower);
    EXPECT_GT(p.activePower, p.stallPower);
    EXPECT_TRUE(p.contextIntact);
    EXPECT_GT(p.transitionOverheadEnergy(), 0.0);
}

TEST_F(CoreFixture, Eq1LimitBehaviour)
{
    CyclePowerProfile p;
    p.idlePower = 0.060;
    p.activePower = 3.0;
    p.stallPower = 1.0;
    p.entryLatency = 200 * oneUs;
    p.exitLatency = 300 * oneUs;
    p.entryEnergy = 200e-6;
    p.exitEnergy = 450e-6;

    // Infinite dwell limit: the idle power.
    EXPECT_NEAR(averagePowerEq1(p, 1000 * oneSec, 150 * oneMs, 0.7),
                0.060, 0.001);
    // Zero dwell: dominated by active + transitions.
    EXPECT_GT(averagePowerEq1(p, 0, 150 * oneMs, 0.7), 1.0);
}

TEST_F(CoreFixture, BreakevenSweepAgreesWithClosedForm)
{
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile tech =
        measureCycleProfile(cfg, TechniqueSet::odrips());

    const BreakevenResult r = findBreakeven(tech, base);
    ASSERT_TRUE(r.found());
    // The swept and analytic break-even agree to one sweep step.
    EXPECT_NEAR(ticksToSeconds(r.breakEvenDwell),
                ticksToSeconds(r.analyticBreakEven), 0.2e-3);
    EXPECT_FALSE(r.curve.empty());
}

TEST_F(CoreFixture, BreakevenCurveCrossesAtBreakeven)
{
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile tech =
        measureCycleProfile(cfg, TechniqueSet::wakeupOffOnly());
    const BreakevenResult r = findBreakeven(tech, base);
    ASSERT_TRUE(r.found());

    for (const auto &[dwell, p_tech, p_base] : r.curve) {
        if (dwell < r.breakEvenDwell) {
            EXPECT_GE(p_tech, p_base) << "below break-even";
        } else if (dwell > r.breakEvenDwell) {
            EXPECT_LE(p_tech, p_base) << "above break-even";
        }
    }
}

TEST_F(CoreFixture, Fig6aSavingsMatchPaperShape)
{
    const auto evals = evaluateFig6aSet(skylakeConfig());
    ASSERT_EQ(evals.size(), 5u);

    // Paper Fig. 6(a): 6% / 13% / 8% / 22% savings.
    EXPECT_EQ(evals[0].label, "DRIPS (baseline)");
    EXPECT_NEAR(evals[1].savingsVsBaseline, 0.06, 0.015);  // WAKE-UP-OFF
    EXPECT_NEAR(evals[2].savingsVsBaseline, 0.13, 0.02);   // AON-IO-GATE
    EXPECT_NEAR(evals[3].savingsVsBaseline, 0.08, 0.015);  // CTX-SGX-DRAM
    EXPECT_NEAR(evals[4].savingsVsBaseline, 0.22, 0.02);   // ODRIPS

    // Ordering: ODRIPS > AON-IO-GATE > CTX > WAKE-UP-OFF > baseline.
    EXPECT_GT(evals[4].savingsVsBaseline, evals[2].savingsVsBaseline);
    EXPECT_GT(evals[2].savingsVsBaseline, evals[3].savingsVsBaseline);
    EXPECT_GT(evals[3].savingsVsBaseline, evals[1].savingsVsBaseline);
}

TEST_F(CoreFixture, Fig6aBreakevensInPaperRange)
{
    const auto evals = evaluateFig6aSet(skylakeConfig());
    // Paper: 6.6 / 6.3 / 7.4 / 6.5 ms — all single-digit milliseconds,
    // far below the 30 s dwell of connected standby.
    for (std::size_t i = 1; i < evals.size(); ++i) {
        EXPECT_GT(evals[i].breakEven, oneMs) << evals[i].label;
        EXPECT_LT(evals[i].breakEven, 12 * oneMs) << evals[i].label;
    }
}

TEST_F(CoreFixture, OdripsSavingsAreTwentyTwoPercent)
{
    // The headline result of the paper.
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile base =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(cfg, TechniqueSet::odrips());
    const double saving =
        1.0 - standardWorkloadAverage(odrips, cfg) /
                  standardWorkloadAverage(base, cfg);
    EXPECT_NEAR(saving, 0.22, 0.02);
}

TEST_F(CoreFixture, ActiveAndTransitionsShareAboveEighteenPercent)
{
    // Paper observation 5 in Sec. 8: Active&Transitions account for
    // > 18% of connected-standby average power.
    const PlatformConfig cfg = skylakeConfig();
    const CyclePowerProfile p =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const double avg = standardWorkloadAverage(p, cfg);
    const double idle_part =
        p.idlePower * cfg.workload.idleDwellSeconds /
        (cfg.workload.idleDwellSeconds + 0.2);
    const double share = 1.0 - idle_part / avg;
    EXPECT_GT(share, 0.18);
    EXPECT_LT(share, 0.30);
}

TEST_F(CoreFixture, DripsBreakdownMatchesFig1b)
{
    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::baseline());
    flows.enterIdle();

    const PowerBreakdown bd = snapshotBreakdown(platform.pm, platform.pd);
    EXPECT_NEAR(bd.totalBattery.watts(), 0.060, 0.001);

    // Fig. 1(b) anchors: processor 18%, AON IO 7%, S/R SRAM 9%,
    // wake/timer + 24 MHz crystal 5%.
    EXPECT_NEAR(bd.groupShare("processor"), 0.18, 0.01);
    const std::string proc = platform.processor.name();
    EXPECT_NEAR(bd.componentShare(proc + ".aon_io"), 0.07, 0.005);
    EXPECT_NEAR(bd.componentShare(proc + ".sr_sram_sa") +
                    bd.componentShare(proc + ".sr_sram_cores"),
                0.09, 0.005);
    EXPECT_NEAR(bd.componentShare(proc + ".wake_timer") +
                    bd.componentShare(platform.board.name() + ".xtal24"),
                0.05, 0.005);
    // Power delivery loss = 26% of battery power (74% efficiency).
    EXPECT_NEAR(bd.deliveryLoss / bd.totalBattery, 0.26, 0.005);
}

TEST_F(CoreFixture, SimulatorStatisticsPopulated)
{
    Platform platform(skylakeConfig());
    StandbySimulator sim(platform, TechniqueSet::odrips());
    sim.run(shortTrace(4, 50 * oneMs));

    const stats::StatGroup &g = sim.statistics();
    ASSERT_FALSE(g.statistics().empty());

    auto find = [&](const std::string &name) -> const stats::Stat * {
        for (const stats::Stat *s : g.statistics()) {
            if (s->name() == name)
                return s;
        }
        return nullptr;
    };
    ASSERT_NE(find("cycles"), nullptr);
    EXPECT_DOUBLE_EQ(find("cycles")->value(), 4.0);
    EXPECT_GT(find("battery_energy")->value(), 0.0);
    // Mean entry latency in the expected range (seconds).
    EXPECT_GT(find("entry_latency")->value(), 150e-6);
    EXPECT_LT(find("entry_latency")->value(), 350e-6);
    // Wake-detect histogram saw one sample per cycle.
    const auto *wd =
        dynamic_cast<const stats::Histogram *>(find("wake_detect"));
    ASSERT_NE(wd, nullptr);
    EXPECT_EQ(wd->samples(), 4u);

    sim.resetStatistics();
    EXPECT_DOUBLE_EQ(find("cycles")->value(), 0.0);
}

TEST_F(CoreFixture, AonRailDrainsUnderOdrips)
{
    Platform platform(skylakeConfig());
    StandbyFlows baseline_flows(platform, TechniqueSet::baseline());
    baseline_flows.enterIdle();
    const double aon_baseline =
        platform.rails.find("vcc_aon").power().watts();
    platform.eq.run(platform.now() + oneMs);
    baseline_flows.exitIdle();

    Platform platform2(skylakeConfig());
    StandbyFlows odrips_flows(platform2, TechniqueSet::odrips());
    odrips_flows.enterIdle();
    const double aon_odrips =
        platform2.rails.find("vcc_aon").power().watts();

    // ODRIPS strips the processor-side loads off the AON rail.
    EXPECT_LT(aon_odrips, aon_baseline - 9e-3);
    // What remains is essentially the chipset AON domain.
    EXPECT_NEAR(aon_odrips,
                (platform2.cfg.dripsPower.chipsetAon +
                 platform2.cfg.dripsPower.bootSram +
                 (platform2.cfg.dripsPower.srSramSa +
                  platform2.cfg.dripsPower.srSramCores) *
                     platform2.cfg.srSramResidualFraction)
                    .watts(),
                1e-3);
}

} // namespace
