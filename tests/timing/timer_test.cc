/**
 * @file
 * Tests for the fast/slow timers and the wake-timer handover protocol
 * (paper Sec. 4.1.2 / Fig. 3).
 */

#include <gtest/gtest.h>

#include "clock/clock_domain.hh"
#include "clock/crystal.hh"
#include "sim/logging.hh"
#include "timing/fast_timer.hh"
#include "timing/slow_timer.hh"
#include "timing/step_calibrator.hh"
#include "timing/wake_timer_unit.hh"

using namespace odrips;

namespace
{

class TimerFixture : public ::testing::Test
{
  protected:
    TimerFixture()
        : xtal24("x24", 24.0e6, 18.0, Milliwatts::fromWatts(1.8e-3)),
          xtal32("x32", 32768.0, -35.0, Milliwatts::fromWatts(0.3e-3)),
          fastClk("fast", xtal24), slowClk("slow", xtal32),
          unit("wtu", fastClk, slowClk, xtal24, 16, 30 * oneUs)
    {
        StepCalibrator cal(xtal24, xtal32);
        unit.applyCalibration(cal.calibrateForPpb());
    }

    Crystal xtal24;
    Crystal xtal32;
    ClockDomain fastClk;
    ClockDomain slowClk;
    WakeTimerUnit unit;
};

TEST(FastTimerTest, CountsAtClockRate)
{
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero()); // 1 ns period
    ClockDomain clk("clk", x);
    FastTimer t(clk);
    t.load(100, 0);
    EXPECT_EQ(t.valueAt(0), 100u);
    EXPECT_EQ(t.valueAt(10 * oneNs), 110u);
}

TEST(FastTimerTest, HaltFreezesValue)
{
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    FastTimer t(clk);
    t.load(0, 0);
    t.halt(5 * oneNs);
    EXPECT_FALSE(t.running());
    EXPECT_EQ(t.valueAt(100 * oneNs), 5u);
}

TEST(FastTimerTest, TickWhenReachesTarget)
{
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    FastTimer t(clk);
    t.load(0, 0);
    EXPECT_EQ(t.tickWhenReaches(10, 0), 10 * oneNs);
    EXPECT_EQ(t.tickWhenReaches(0, 3 * oneNs), 3 * oneNs); // already met
    t.halt(0);
    EXPECT_EQ(t.tickWhenReaches(10, 0), maxTick);
}

TEST(FastTimerTest, ReadInThePastPanics)
{
    Logger::throwOnError(true);
    Crystal x("x", 1.0e9, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    FastTimer t(clk);
    t.load(0, 100);
    EXPECT_THROW(t.valueAt(50), SimError);
    Logger::throwOnError(false);
}

TEST(SlowTimerTest, AdvancesByStepPerSlowCycle)
{
    Crystal x("x", 32768.0, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    SlowTimer t(clk);
    t.setStep(FixedUint::fromRatio(24000000, 32768, 21));
    t.load(1000, 0);

    const Tick one_cycle = clk.period();
    // After one slow cycle the integer part advanced by ~732.
    EXPECT_EQ(t.valueAt(one_cycle), 1000u + 732u);
    // After 64 cycles the fractional parts have accumulated exactly:
    // 64 * 732.421875 = 46875.
    EXPECT_EQ(t.valueAt(64 * one_cycle), 1000u + 46875u);
}

TEST(SlowTimerTest, HaltFreezes)
{
    Crystal x("x", 32768.0, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    SlowTimer t(clk);
    t.setStep(FixedUint::fromRatio(24000000, 32768, 21));
    t.load(0, 0);
    t.halt(10 * clk.period());
    const std::uint64_t frozen = t.valueAt(10 * clk.period());
    EXPECT_EQ(t.valueAt(1000 * clk.period()), frozen);
}

TEST(SlowTimerTest, TickWhenReachesHasSlowGranularity)
{
    Crystal x("x", 32768.0, 0.0, Milliwatts::zero());
    ClockDomain clk("clk", x);
    SlowTimer t(clk);
    t.setStep(FixedUint::fromRatio(24000000, 32768, 21));
    t.load(0, 0);

    // Target 733 fast counts needs 2 slow cycles (732.42 per cycle).
    EXPECT_EQ(t.tickWhenReaches(733, 0), 2 * clk.period());
    // Target 1 needs a single cycle.
    EXPECT_EQ(t.tickWhenReaches(1, 0), clk.period());
    // Already reached -> immediate.
    EXPECT_EQ(t.tickWhenReaches(0, 5), 5);
}

TEST_F(TimerFixture, LoadCompensatesPmlLatency)
{
    unit.loadFromProcessor(5000, 0);
    EXPECT_EQ(unit.mode(), WakeTimerUnit::Mode::Fast);
    // The compensation constant (16 fast cycles) is already added.
    EXPECT_EQ(unit.valueAt(0), 5016u);
}

TEST_F(TimerFixture, SwitchToSlowWaitsForSlowEdge)
{
    unit.loadFromProcessor(0, 0);
    const Tick request = 10 * oneUs;
    const HandoverRecord rec = unit.switchToSlow(request);

    EXPECT_EQ(unit.mode(), WakeTimerUnit::Mode::Slow);
    EXPECT_GE(rec.edge, request);
    // The wait is bounded by one slow period (~30.5 us).
    EXPECT_LE(rec.edge - request, slowClk.period());
    // The 24 MHz crystal is now off and its domain gated.
    EXPECT_FALSE(xtal24.enabled());
    EXPECT_FALSE(fastClk.running());
}

TEST_F(TimerFixture, SwitchToFastRestartsCrystal)
{
    unit.loadFromProcessor(0, 0);
    unit.switchToSlow(oneUs);
    const Tick wake = 500 * oneUs;
    const HandoverRecord rec = unit.switchToFast(wake);

    EXPECT_EQ(unit.mode(), WakeTimerUnit::Mode::Fast);
    EXPECT_TRUE(xtal24.enabled());
    EXPECT_TRUE(fastClk.running());
    // Restart latency (30 us) plus at most one slow period.
    EXPECT_GE(rec.completed - wake, unit.xtalRestartLatency());
    EXPECT_LE(rec.completed - wake,
              unit.xtalRestartLatency() + slowClk.period());
}

TEST_F(TimerFixture, RoundTripKeepsCountingAccurate)
{
    // Load the timer, spend ~2 s in slow mode, switch back, and check
    // the total count against the elapsed wall-clock time.
    unit.loadFromProcessor(0, 0);
    unit.switchToSlow(100 * oneUs);
    const HandoverRecord back = unit.switchToFast(2 * oneSec);

    const Tick read_at = back.completed + oneMs;
    const std::uint64_t counted = unit.valueAt(read_at);
    const double expected =
        ticksToSeconds(read_at) * xtal24.actualHz() + 16.0;

    // Error budget: quantization at both handover edges plus the 1 ppb
    // calibrated drift over 2 s (~0.05 cycles) — a few fast cycles.
    EXPECT_NEAR(static_cast<double>(counted), expected, 3.0);
}

TEST_F(TimerFixture, LongSlowDwellDriftStaysSmall)
{
    unit.loadFromProcessor(0, 0);
    unit.switchToSlow(0);
    // 60 s in slow mode.
    const HandoverRecord back = unit.switchToFast(60 * oneSec);
    const std::uint64_t counted = unit.valueAt(back.completed);
    const double expected =
        ticksToSeconds(back.completed) * xtal24.actualHz() + 16.0;
    // Error budget: 1 ppb calibration drift over 60 s is ~1.4 cycles;
    // the dominant term is the simulator's picosecond grid, which
    // quantizes the 32 kHz period to ~7e-9 relative (~10 cycles of
    // 24 MHz over 60 s). The handover edges add ~1 cycle each.
    EXPECT_NEAR(static_cast<double>(counted), expected, 25.0);
}

TEST_F(TimerFixture, DeliverToProcessorAddsCompensation)
{
    unit.loadFromProcessor(0, 0);
    const std::uint64_t local = unit.valueAt(oneMs);
    EXPECT_EQ(unit.deliverToProcessor(oneMs), local + 16);
}

TEST_F(TimerFixture, WakeTickHonoursMode)
{
    unit.loadFromProcessor(0, 0);
    const std::uint64_t target = 24000; // ~1 ms of fast cycles
    const Tick fast_wake = unit.wakeTickFor(target, 0);
    EXPECT_NEAR(ticksToSeconds(fast_wake), 1e-3, 1e-6);

    unit.switchToSlow(0);
    const Tick slow_wake = unit.wakeTickFor(target, oneUs);
    // Slow-mode wake has ~30.5 us granularity but still lands near
    // the 1 ms mark.
    EXPECT_NEAR(ticksToSeconds(slow_wake), 1e-3, 35e-6);
}

TEST_F(TimerFixture, SwitchToSlowTwicePanics)
{
    Logger::throwOnError(true);
    unit.loadFromProcessor(0, 0);
    unit.switchToSlow(0);
    EXPECT_THROW(unit.switchToSlow(oneMs), SimError);
    Logger::throwOnError(false);
}

TEST_F(TimerFixture, SwitchWithoutCalibrationPanics)
{
    Logger::throwOnError(true);
    Crystal x24("x", 24.0e6, 0.0, Milliwatts::zero());
    Crystal x32("s", 32768.0, 0.0, Milliwatts::zero());
    ClockDomain f("f", x24), s("s", x32);
    WakeTimerUnit fresh("fresh", f, s, x24, 16, 30 * oneUs);
    fresh.loadFromProcessor(0, 0);
    EXPECT_THROW(fresh.switchToSlow(0), SimError);
    Logger::throwOnError(false);
}

} // namespace
