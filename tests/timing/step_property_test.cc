/**
 * @file
 * Property-style parameterized tests for the Step representation math
 * (Eqs. 2-4) across clock pairs used by other architectures the paper
 * cites (24 MHz and 100 MHz fast clocks, various RTC-class slow clocks)
 * and across precision targets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clock/crystal.hh"
#include "timing/step_calibrator.hh"

using namespace odrips;

namespace
{

struct ClockPair
{
    double fastHz;
    double slowHz;
};

class StepRepresentationTest : public ::testing::TestWithParam<ClockPair>
{
};

TEST_P(StepRepresentationTest, IntegerBitsCoverTheRatio)
{
    const ClockPair c = GetParam();
    const unsigned m =
        StepCalibrator::requiredIntegerBits(Hertz(c.fastHz),
                                            Hertz(c.slowHz));
    const double ratio = c.fastHz / c.slowHz;
    // Eq. 2 property: 2^(m-1) <= ratio < 2^m.
    EXPECT_LE(std::ldexp(1.0, static_cast<int>(m) - 1), ratio);
    EXPECT_GT(std::ldexp(1.0, static_cast<int>(m)), ratio);
}

TEST_P(StepRepresentationTest, FractionBitsSatisfyEq4)
{
    const ClockPair c = GetParam();
    for (std::uint64_t precision : {std::uint64_t{1000000},
                                    std::uint64_t{1000000000}}) {
        const unsigned f = StepCalibrator::requiredFractionBits(
            Hertz(c.fastHz), Hertz(c.slowHz), precision);
        const double ratio = c.fastHz / c.slowHz;
        const double bound =
            (static_cast<double>(precision) - 1.0) / ratio;
        // Eq. 4 property: 2^f > bound and f is minimal.
        EXPECT_GT(std::ldexp(1.0, static_cast<int>(f)), bound);
        if (f > 0) {
            EXPECT_LE(std::ldexp(1.0, static_cast<int>(f) - 1), bound);
        }
    }
}

TEST_P(StepRepresentationTest, CalibrationDriftMeetsTarget)
{
    const ClockPair c = GetParam();
    // Worst-case-ish crystal corner.
    Crystal fast("f", c.fastHz, 42.0, Milliwatts::zero());
    Crystal slow("s", c.slowHz, -27.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);

    const unsigned f = StepCalibrator::requiredFractionBits(
        Hertz(c.fastHz), Hertz(c.slowHz), 1000000000ULL);
    const CalibrationResult r = cal.calibrate(f);

    // Drift over one hour of slow-clock cycles stays below 1 ppb.
    const std::uint64_t slow_cycles =
        static_cast<std::uint64_t>(c.slowHz * 3600.0);
    EXPECT_LT(std::abs(cal.evaluateDriftPpb(r, slow_cycles)), 1.0)
        << "fast " << c.fastHz << " slow " << c.slowHz << " f=" << f;
}

TEST_P(StepRepresentationTest, StepTimesCyclesTracksWallClock)
{
    const ClockPair c = GetParam();
    Crystal fast("f", c.fastHz, 0.0, Milliwatts::zero());
    Crystal slow("s", c.slowHz, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrateForPpb();

    // After k slow cycles, Step * k approximates k * ratio to within
    // k quantization steps.
    for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{1000},
                            std::uint64_t{1000000}}) {
        const double estimated = r.step.times(k).toDouble();
        const double exact =
            static_cast<double>(k) * (c.fastHz / c.slowHz);
        const double quantum =
            static_cast<double>(k) /
            std::ldexp(1.0, static_cast<int>(r.fractionBits));
        EXPECT_NEAR(estimated, exact, quantum + 1.0) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ClockPairs, StepRepresentationTest,
    ::testing::Values(ClockPair{24.0e6, 32768.0},   // the paper's pair
                      ClockPair{100.0e6, 32768.0},  // Sandy Bridge class
                      ClockPair{19.2e6, 32768.0},   // phone SoC XO
                      ClockPair{24.0e6, 32000.0},   // non-binary RTC
                      ClockPair{38.4e6, 32768.0},
                      ClockPair{24.0e6, 1000.0},    // very slow backup
                      ClockPair{65536.0, 32768.0}), // degenerate 2:1
    [](const ::testing::TestParamInfo<ClockPair> &param_info) {
        return std::to_string(
                   static_cast<long long>(param_info.param.fastHz)) +
               "_over_" +
               std::to_string(
                   static_cast<long long>(param_info.param.slowHz));
    });

} // namespace
