/**
 * @file
 * Unit tests for the fixed-point arithmetic backing the slow timer.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "timing/fixed_point.hh"

using namespace odrips;

namespace
{

TEST(FixedPointTest, FromIntegerRoundTrips)
{
    const FixedUint v = FixedUint::fromInteger(1234, 21);
    EXPECT_EQ(v.integerPart(), 1234u);
    EXPECT_EQ(v.fractionPart(), 0u);
    EXPECT_EQ(v.fractionBits(), 21u);
    EXPECT_DOUBLE_EQ(v.toDouble(), 1234.0);
}

TEST(FixedPointTest, FromRatioExact)
{
    // 3/2 with 4 fraction bits = 1 + 8/16.
    const FixedUint v = FixedUint::fromRatio(3, 2, 4);
    EXPECT_EQ(v.integerPart(), 1u);
    EXPECT_EQ(v.fractionPart(), 8u);
    EXPECT_DOUBLE_EQ(v.toDouble(), 1.5);
}

TEST(FixedPointTest, FromRatioTruncatesTowardZero)
{
    // 1/3 with 2 fraction bits: 0.333... -> floor(4/3)/4 = 1/4.
    const FixedUint v = FixedUint::fromRatio(1, 3, 2);
    EXPECT_EQ(v.integerPart(), 0u);
    EXPECT_EQ(v.fractionPart(), 1u);
}

TEST(FixedPointTest, PaperRatio24MhzOver32Khz)
{
    // 24e6 / 32768 = 732.421875 exactly (= 46875/64).
    const FixedUint v = FixedUint::fromRatio(24000000, 32768, 21);
    EXPECT_EQ(v.integerPart(), 732u);
    EXPECT_DOUBLE_EQ(v.toDouble(), 732.421875);
}

TEST(FixedPointTest, AdditionCarriesIntoInteger)
{
    const FixedUint half = FixedUint::fromRatio(1, 2, 8);
    const FixedUint one = half + half;
    EXPECT_EQ(one.integerPart(), 1u);
    EXPECT_EQ(one.fractionPart(), 0u);
}

TEST(FixedPointTest, PlusEqualsAccumulates)
{
    FixedUint acc(8);
    const FixedUint step = FixedUint::fromRatio(5, 4, 8); // 1.25
    for (int i = 0; i < 4; ++i)
        acc += step;
    EXPECT_DOUBLE_EQ(acc.toDouble(), 5.0);
}

TEST(FixedPointTest, TimesMatchesRepeatedAddition)
{
    const FixedUint step = FixedUint::fromRatio(24000000, 32768, 21);
    FixedUint sum(21);
    for (int i = 0; i < 1000; ++i)
        sum += step;
    EXPECT_EQ(sum.raw(), step.times(1000).raw());
}

TEST(FixedPointTest, TimesLargeCountNoOverflow)
{
    // One day of 32 kHz cycles times the paper's Step must fit in the
    // 128-bit container: 2.8e9 cycles * 2^21 * 732 < 2^63 * 2^21.
    const FixedUint step = FixedUint::fromRatio(24000000, 32768, 21);
    const std::uint64_t cycles = 32768ULL * 86400ULL;
    const FixedUint total = step.times(cycles);
    EXPECT_NEAR(total.toDouble(), 24.0e6 * 86400.0, 1.0);
}

TEST(FixedPointTest, WidthMismatchPanics)
{
    Logger::throwOnError(true);
    FixedUint a(8);
    FixedUint b(9);
    EXPECT_THROW(a += b, SimError);
    Logger::throwOnError(false);
}

TEST(FixedPointTest, ComparisonOperators)
{
    const FixedUint a = FixedUint::fromRatio(1, 2, 8);
    const FixedUint b = FixedUint::fromRatio(3, 4, 8);
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(b < a);
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
}

TEST(FixedPointTest, ZeroDenominatorPanics)
{
    Logger::throwOnError(true);
    EXPECT_THROW(FixedUint::fromRatio(1, 0, 8), SimError);
    Logger::throwOnError(false);
}

TEST(FixedPointTest, ToStringShowsParts)
{
    const FixedUint v = FixedUint::fromRatio(3, 2, 4);
    EXPECT_NE(v.toString().find("1"), std::string::npos);
}

} // namespace
