/**
 * @file
 * Tests for the Step calibration of paper Sec. 4.1.3 — including the
 * paper's published representation (m = 10 integer bits, f = 21
 * fraction bits for 1 ppb) and a parameterized drift property over a
 * range of crystal manufacturing deviations.
 */

#include <gtest/gtest.h>

#include "clock/crystal.hh"
#include "timing/step_calibrator.hh"

using namespace odrips;

namespace
{

TEST(CalibratorTest, PaperIntegerBitsEq2)
{
    // Eq. 2: m = floor(log2(24e6 / 32768)) + 1 = floor(log2(732.4)) + 1
    //          = 9 + 1 = 10.
    EXPECT_EQ(StepCalibrator::requiredIntegerBits(Hertz(24.0e6),
                                             Hertz(32768.0)),
              10u);
}

TEST(CalibratorTest, PaperFractionBitsEq4)
{
    // Eq. 4: 2^f > (1e9 - 1) / 732.42 = 1.365e6 -> f = 21.
    EXPECT_EQ(StepCalibrator::requiredFractionBits(
                  Hertz(24.0e6), Hertz(32768.0), 1000000000ULL),
              21u);
}

TEST(CalibratorTest, IntegerBitsOtherRatios)
{
    // 100 MHz fast clock (as in other architectures cited in Sec. 3).
    EXPECT_EQ(StepCalibrator::requiredIntegerBits(Hertz(100.0e6),
                                             Hertz(32768.0)),
              12u);
    // Equal-ish clocks.
    EXPECT_EQ(StepCalibrator::requiredIntegerBits(Hertz(65536.0),
                                             Hertz(32768.0)),
              2u);
}

TEST(CalibratorTest, FractionBitsScaleWithPrecision)
{
    const unsigned f_ppb = StepCalibrator::requiredFractionBits(
        Hertz(24.0e6), Hertz(32768.0), 1000000000ULL);
    const unsigned f_ppm = StepCalibrator::requiredFractionBits(
        Hertz(24.0e6), Hertz(32768.0), 1000000ULL);
    EXPECT_GT(f_ppb, f_ppm);
    // 1 ppm needs roughly 10 fewer bits than 1 ppb (factor 1000).
    EXPECT_NEAR(static_cast<int>(f_ppb) - static_cast<int>(f_ppm), 10, 1);
}

TEST(CalibratorTest, CalibrationWindowIsTensOfSeconds)
{
    // N_slow = 2^21 cycles of 32.768 kHz is 64 s — the "several
    // seconds, once per reset" cost the paper describes.
    Crystal fast("f", 24.0e6, 0.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrateForPpb();
    EXPECT_EQ(r.fractionBits, 21u);
    EXPECT_EQ(r.slowCycles, 1ULL << 21);
    EXPECT_NEAR(r.duration.seconds(), 64.0, 0.1);
}

TEST(CalibratorTest, IdealCrystalsGiveExactRatio)
{
    Crystal fast("f", 24.0e6, 0.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrate(21);
    // 24e6/32768 = 732.421875 is exactly representable in 21 bits.
    EXPECT_DOUBLE_EQ(r.step.toDouble(), 732.421875);
    EXPECT_EQ(r.integerBits, 10u);
}

TEST(CalibratorTest, StepReflectsCrystalDeviation)
{
    Crystal fast("f", 24.0e6, 50.0, Milliwatts::zero());  // runs fast
    Crystal slow("s", 32768.0, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrate(21);
    EXPECT_GT(r.step.toDouble(), 732.421875);
    EXPECT_NEAR(r.step.toDouble(), 732.421875 * (1 + 50e-6), 1e-3);
}

TEST(CalibratorTest, FastCyclesCountMatchesWindow)
{
    Crystal fast("f", 24.0e6, 0.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrate(21);
    // The raw Step value *is* N_fast (binary-point trick).
    EXPECT_EQ(static_cast<std::uint64_t>(r.step.raw()), r.fastCycles);
    EXPECT_NEAR(static_cast<double>(r.fastCycles),
                r.duration.seconds() * 24.0e6, 1.0);
}

TEST(CalibratorTest, PhaseUncertaintyShiftsStepSlightly)
{
    Crystal fast("f", 24.0e6, 0.0, Milliwatts::zero());
    Crystal slow("s", 32768.0, 0.0, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult a = cal.calibrate(21, 0);
    const CalibrationResult b = cal.calibrate(21, 1);
    EXPECT_EQ(b.fastCycles, a.fastCycles + 1);
    // One miscounted edge out of 2^21 slow cycles stays below 1 ppb of
    // the fast count.
    const double rel = 1.0 / static_cast<double>(a.fastCycles);
    EXPECT_LT(rel, 1e-9);
}

/** Drift property over crystal tolerance corner cases. */
struct DriftCase
{
    double fastPpm;
    double slowPpm;
};

class DriftTest : public ::testing::TestWithParam<DriftCase>
{
};

TEST_P(DriftTest, CalibratedStepHoldsPpbOverAnHour)
{
    const DriftCase c = GetParam();
    Crystal fast("f", 24.0e6, c.fastPpm, Milliwatts::zero());
    Crystal slow("s", 32768.0, c.slowPpm, Milliwatts::zero());
    StepCalibrator cal(fast, slow);
    const CalibrationResult r = cal.calibrateForPpb();

    // One hour in ODRIPS: ~118M slow cycles.
    const std::uint64_t slow_cycles = 32768ULL * 3600ULL;
    const double drift_ppb = cal.evaluateDriftPpb(r, slow_cycles);

    // The paper's requirement: 1 ppb counting precision. Allow the
    // quantization of the one-shot calibration measurement itself
    // (up to one fast edge over the window).
    EXPECT_LT(std::abs(drift_ppb), 1.0)
        << "fast " << c.fastPpm << " ppm, slow " << c.slowPpm << " ppm";
}

TEST_P(DriftTest, UncalibratedNominalStepDriftsWhenCrystalsDeviate)
{
    const DriftCase c = GetParam();
    if (c.fastPpm == c.slowPpm)
        GTEST_SKIP() << "equal deviation cancels in the ratio";

    Crystal fast("f", 24.0e6, c.fastPpm, Milliwatts::zero());
    Crystal slow("s", 32768.0, c.slowPpm, Milliwatts::zero());
    StepCalibrator cal(fast, slow);

    // A Step computed from *nominal* frequencies (no calibration).
    CalibrationResult nominal;
    nominal.fractionBits = 21;
    nominal.step = FixedUint::fromRatio(24000000, 32768, 21);

    const std::uint64_t slow_cycles = 32768ULL * 3600ULL;
    const double drift_ppb =
        std::abs(cal.evaluateDriftPpb(nominal, slow_cycles));

    // The miscount is the relative crystal mismatch (ppm scale), so it
    // blows through the 1 ppb budget by orders of magnitude.
    EXPECT_GT(drift_ppb, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    CrystalCorners, DriftTest,
    ::testing::Values(DriftCase{0.0, 0.0}, DriftCase{20.0, 0.0},
                      DriftCase{-20.0, 0.0}, DriftCase{0.0, 35.0},
                      DriftCase{0.0, -35.0}, DriftCase{18.0, -35.0},
                      DriftCase{-18.0, 35.0}, DriftCase{50.0, 50.0},
                      DriftCase{-50.0, -50.0}, DriftCase{100.0, -100.0}));

} // namespace
