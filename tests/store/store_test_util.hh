/**
 * @file
 * Shared helpers for the result-store suites: scratch directories and
 * raw segment-file surgery for the torture tests.
 *
 * This file deliberately performs raw I/O on .odst segment files —
 * that is its purpose (corrupting stores to prove the read path
 * degrades safely). Production code must go through
 * store::ResultStore; the store-io lint rule enforces that, and the
 * allow tags below are the torture suite's sanctioned exemption.
 */

#ifndef ODRIPS_TESTS_STORE_STORE_TEST_UTIL_HH
#define ODRIPS_TESTS_STORE_STORE_TEST_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

namespace odrips::test
{

/** mkdtemp()-backed scratch directory, recursively removed on exit. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/odrips-store-test-XXXXXX";
        if (::mkdtemp(tmpl) == nullptr)
            std::abort();
        path_ = tmpl;
    }

    ~TempDir()
    {
        removeAll();
    }

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }

    std::string
    file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

    /** Names of the sealed segments, sorted. */
    std::vector<std::string>
    segmentFiles() const
    {
        std::vector<std::string> names;
        if (DIR *dir = ::opendir(path_.c_str())) {
            while (const dirent *ent = ::readdir(dir)) {
                const std::string name = ent->d_name;
                if (name.size() > 5 &&
                    name.compare(name.size() - 5, 5, ".odst") == 0)
                    names.push_back(name);
            }
            ::closedir(dir);
        }
        std::sort(names.begin(), names.end());
        return names;
    }

  private:
    void
    removeAll()
    {
        if (DIR *dir = ::opendir(path_.c_str())) {
            while (const dirent *ent = ::readdir(dir)) {
                const std::string name = ent->d_name;
                if (name != "." && name != "..")
                    ::unlink(file(name).c_str());
            }
            ::closedir(dir);
            ::rmdir(path_.c_str());
        }
    }

    std::string path_;
};

/** Read a whole file (torture fixture surgery). */
inline std::vector<std::uint8_t>
readRawFile(const std::string &path)
{
    std::vector<std::uint8_t> data;
    // odrips-lint: allow(store-io)
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return data;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    std::fclose(f);
    return data;
}

/** Overwrite a whole file (torture fixture surgery). */
inline void
writeRawFile(const std::string &path,
             const std::vector<std::uint8_t> &data)
{
    // odrips-lint: allow(store-io)
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        std::abort();
    if (!data.empty())
        std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
}

/** XOR one byte of @p path in place. */
inline void
flipByteInFile(const std::string &path, std::size_t offset)
{
    std::vector<std::uint8_t> data = readRawFile(path);
    if (offset < data.size()) {
        data[offset] ^= 0xff;
        writeRawFile(path, data);
    }
}

/** Truncate @p path to its first @p keep bytes. */
inline void
truncateFile(const std::string &path, std::size_t keep)
{
    std::vector<std::uint8_t> data = readRawFile(path);
    if (keep < data.size()) {
        data.resize(keep);
        writeRawFile(path, data);
    }
}

} // namespace odrips::test

#endif // ODRIPS_TESTS_STORE_STORE_TEST_UTIL_HH
