/**
 * @file
 * Stored-result schema tests: encode/decode round-trips bit-exactly,
 * version mismatches and truncation are loud errors (never garbage),
 * and the physics tag composes epoch and schema version.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "store/result_schema.hh"

using namespace odrips;
using namespace odrips::store;

namespace
{

/** A profile with awkward values: non-representable decimals, huge and
 * tiny magnitudes, negative ticks would be invalid so latencies large. */
CyclePowerProfile
awkwardProfile()
{
    CyclePowerProfile p;
    p.idlePower = 0.1 + 0.2; // 0.30000000000000004
    p.activePower = 1.0 / 3.0;
    p.stallPower = 5e-324; // smallest subnormal double
    p.entryLatency = 123456789012345ll;
    p.exitLatency = 1;
    p.entryEnergy = 1.7976931348623157e308;
    p.exitEnergy = 2.2250738585072014e-308;
    p.contextSaveLatency = 0;
    p.contextRestoreLatency = 987654321;
    p.contextIntact = false;
    return p;
}

std::vector<std::uint8_t>
encoded(const StoredResult &result)
{
    ckpt::Writer w;
    encodeResult(w, result);
    return w.take();
}

bool
bitEqual(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

TEST(ResultSchemaTest, RoundTripIsBitExact)
{
    StoredResult in;
    in.profile = awkwardProfile();
    in.averagePower = 0.061999999999999999;
    in.transitionOverheadEnergy = 1e-9;

    const StoredResult out = decodeResult(encoded(in));

    EXPECT_TRUE(bitEqual(out.profile.idlePower, in.profile.idlePower));
    EXPECT_TRUE(
        bitEqual(out.profile.activePower, in.profile.activePower));
    EXPECT_TRUE(bitEqual(out.profile.stallPower, in.profile.stallPower));
    EXPECT_EQ(out.profile.entryLatency, in.profile.entryLatency);
    EXPECT_EQ(out.profile.exitLatency, in.profile.exitLatency);
    EXPECT_TRUE(
        bitEqual(out.profile.entryEnergy, in.profile.entryEnergy));
    EXPECT_TRUE(bitEqual(out.profile.exitEnergy, in.profile.exitEnergy));
    EXPECT_EQ(out.profile.contextSaveLatency,
              in.profile.contextSaveLatency);
    EXPECT_EQ(out.profile.contextRestoreLatency,
              in.profile.contextRestoreLatency);
    EXPECT_EQ(out.profile.contextIntact, in.profile.contextIntact);
    EXPECT_TRUE(bitEqual(out.averagePower, in.averagePower));
    EXPECT_TRUE(bitEqual(out.transitionOverheadEnergy,
                         in.transitionOverheadEnergy));
}

TEST(ResultSchemaTest, MakeStoredResultComputesDerivedStats)
{
    const PlatformConfig cfg = skylakeConfig();
    CyclePowerProfile p = awkwardProfile();
    p.idlePower = 0.05;
    p.activePower = 1.5;
    p.entryEnergy = 1e-4;
    p.exitEnergy = 2e-4;

    const StoredResult result = makeStoredResult(p, cfg);
    EXPECT_GT(result.averagePower, 0.0);
    EXPECT_TRUE(bitEqual(result.transitionOverheadEnergy,
                         p.transitionOverheadEnergy()));
}

TEST(ResultSchemaTest, SchemaVersionMismatchThrows)
{
    StoredResult in;
    in.profile = awkwardProfile();
    std::vector<std::uint8_t> buf = encoded(in);
    // The payload leads with the little-endian schema version; bump it.
    buf[0] = static_cast<std::uint8_t>(kResultSchemaVersion + 1);
    EXPECT_THROW(decodeResult(buf), ckpt::SnapshotError);
}

TEST(ResultSchemaTest, EveryTruncationThrowsInsteadOfMisreading)
{
    StoredResult in;
    in.profile = awkwardProfile();
    const std::vector<std::uint8_t> buf = encoded(in);
    for (std::size_t keep = 0; keep < buf.size(); ++keep) {
        const std::vector<std::uint8_t> cut(buf.begin(),
                                            buf.begin() +
                                                static_cast<long>(keep));
        EXPECT_THROW(decodeResult(cut), ckpt::SnapshotError)
            << "prefix of " << keep << " bytes decoded";
    }
}

TEST(ResultSchemaTest, TrailingBytesThrow)
{
    StoredResult in;
    in.profile = awkwardProfile();
    std::vector<std::uint8_t> buf = encoded(in);
    buf.push_back(0);
    EXPECT_THROW(decodeResult(buf), ckpt::SnapshotError);
}

TEST(ResultSchemaTest, PhysicsVersionComposesEpochAndSchema)
{
    EXPECT_EQ(physicsVersion() >> 32, kPhysicsEpoch);
    EXPECT_EQ(physicsVersion() & 0xffffffffull, kResultSchemaVersion);
    EXPECT_NE(physicsVersion(), 0u);
}

} // namespace
