/**
 * @file
 * Functional tests for the persistent result store: pending entries
 * are served before they reach disk, flush seals immutable segments
 * that survive reopen, duplicate keys resolve newest-wins, a second
 * writer degrades to read-only, and refresh() picks up segments sealed
 * by another handle.
 */

#include <gtest/gtest.h>

#include "store/result_store.hh"
#include "store_test_util.hh"

using namespace odrips;
using namespace odrips::store;
using odrips::test::TempDir;

namespace
{

StoredResult
resultWithMarker(double marker)
{
    StoredResult r;
    r.profile.idlePower = marker;
    r.profile.activePower = marker * 2;
    r.profile.entryLatency = static_cast<Tick>(marker * 1000);
    r.averagePower = marker / 3;
    r.transitionOverheadEnergy = marker / 7;
    return r;
}

TEST(ResultStoreTest, PendingEntriesServeBeforeFlush)
{
    TempDir dir;
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    EXPECT_TRUE(db.writable());

    const ProfileKey key{1, 2};
    db.insert(key, resultWithMarker(0.5));

    const auto hit = db.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->profile.idlePower, 0.5);
    EXPECT_EQ(db.entryCount(), 1u);
    EXPECT_EQ(db.segmentCount(), 0u); // nothing sealed yet

    const StoreCounters c = db.counters();
    EXPECT_EQ(c.inserts, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.lookups, 1u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 1.0);
}

TEST(ResultStoreTest, FlushSealsSegmentThatSurvivesReopen)
{
    TempDir dir;
    {
        ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
        db.insert(ProfileKey{10, 20}, resultWithMarker(1.25));
        db.insert(ProfileKey{11, 21}, resultWithMarker(2.5));
        db.flush();
        EXPECT_EQ(db.segmentCount(), 1u);
        // Entries still served after they moved from pending to disk.
        const auto hit = db.lookup(ProfileKey{10, 20});
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->profile.idlePower, 1.25);
    }
    ASSERT_EQ(dir.segmentFiles().size(), 1u);

    ResultStore reader(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_FALSE(reader.writable());
    EXPECT_EQ(reader.entryCount(), 2u);
    const auto hit = reader.lookup(ProfileKey{11, 21});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->profile.idlePower, 2.5);
    EXPECT_EQ(hit->profile.activePower, 5.0);
    EXPECT_EQ(reader.counters().segmentsLoaded, 1u);
}

TEST(ResultStoreTest, EmptyFlushIsANoOp)
{
    TempDir dir;
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    db.flush();
    EXPECT_EQ(db.segmentCount(), 0u);
    EXPECT_TRUE(dir.segmentFiles().empty());
}

TEST(ResultStoreTest, DuplicateKeysResolveNewestWins)
{
    TempDir dir;
    const ProfileKey key{7, 9};
    {
        ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
        db.insert(key, resultWithMarker(1.0));
        db.flush();
        db.insert(key, resultWithMarker(2.0));
        db.flush();
        EXPECT_EQ(db.segmentCount(), 2u);
        // In-handle view already sees the newer value.
        ASSERT_TRUE(db.lookup(key).has_value());
        EXPECT_EQ(db.lookup(key)->profile.idlePower, 2.0);
        // Two segments, one distinct key.
        EXPECT_EQ(db.entryCount(), 1u);
    }

    // A fresh open indexes segments in number order: last writer wins.
    ResultStore reader(dir.path(), ResultStore::Mode::ReadOnly);
    ASSERT_TRUE(reader.lookup(key).has_value());
    EXPECT_EQ(reader.lookup(key)->profile.idlePower, 2.0);
    EXPECT_EQ(reader.entryCount(), 1u);
}

TEST(ResultStoreTest, PendingOverridesSealedSegment)
{
    TempDir dir;
    const ProfileKey key{3, 4};
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    db.insert(key, resultWithMarker(1.0));
    db.flush();
    db.insert(key, resultWithMarker(3.0)); // pending, not sealed
    ASSERT_TRUE(db.lookup(key).has_value());
    EXPECT_EQ(db.lookup(key)->profile.idlePower, 3.0);
}

TEST(ResultStoreTest, AutoFlushAtThreshold)
{
    TempDir dir;
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    for (std::uint64_t i = 0; i < ResultStore::flushThreshold; ++i)
        db.insert(ProfileKey{i, i + 1},
                  resultWithMarker(static_cast<double>(i)));
    // The threshold-th insert sealed a segment without an explicit
    // flush().
    EXPECT_EQ(db.segmentCount(), 1u);
    EXPECT_EQ(db.counters().flushes, 1u);
    EXPECT_EQ(dir.segmentFiles().size(), 1u);
    EXPECT_EQ(db.entryCount(), ResultStore::flushThreshold);
}

TEST(ResultStoreTest, ReadOnlyOpenOfMissingDirectoryThrows)
{
    TempDir dir;
    EXPECT_THROW(
        ResultStore(dir.file("nonexistent"), ResultStore::Mode::ReadOnly),
        StoreError);
}

TEST(ResultStoreTest, ReadWriteCreatesDirectory)
{
    TempDir dir;
    const std::string nested = dir.file("fresh");
    ResultStore db(nested, ResultStore::Mode::ReadWrite);
    EXPECT_TRUE(db.writable());
    EXPECT_EQ(db.entryCount(), 0u);
}

TEST(ResultStoreTest, SecondWriterDegradesToReadOnly)
{
    TempDir dir;
    ResultStore first(dir.path(), ResultStore::Mode::ReadWrite);
    ASSERT_TRUE(first.writable());
    first.insert(ProfileKey{1, 1}, resultWithMarker(4.0));
    first.flush();

    // flock() conflicts across descriptors even within one process, so
    // this behaves exactly like a second process grabbing the store.
    ResultStore second(dir.path(), ResultStore::Mode::ReadWrite);
    EXPECT_FALSE(second.writable());

    // The degraded handle still reads everything...
    ASSERT_TRUE(second.lookup(ProfileKey{1, 1}).has_value());
    // ...but its inserts are dropped (counted misses only), with no
    // error and no interleaved corruption of the first writer's store.
    second.insert(ProfileKey{2, 2}, resultWithMarker(5.0));
    second.flush();
    EXPECT_FALSE(second.lookup(ProfileKey{2, 2}).has_value());
    EXPECT_EQ(second.counters().inserts, 0u);
}

TEST(ResultStoreTest, RefreshSeesSegmentsSealedByOtherHandle)
{
    TempDir dir;
    ResultStore writer(dir.path(), ResultStore::Mode::ReadWrite);
    ResultStore reader(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_FALSE(reader.lookup(ProfileKey{5, 6}).has_value());

    writer.insert(ProfileKey{5, 6}, resultWithMarker(6.5));
    writer.flush();

    // Not visible until the reader rescans the directory...
    EXPECT_FALSE(reader.lookup(ProfileKey{5, 6}).has_value());
    reader.refresh();
    const auto hit = reader.lookup(ProfileKey{5, 6});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->profile.idlePower, 6.5);
}

TEST(ResultStoreTest, DestructorFlushesPendingEntries)
{
    TempDir dir;
    {
        ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
        db.insert(ProfileKey{8, 8}, resultWithMarker(7.0));
        // no explicit flush
    }
    ResultStore reader(dir.path(), ResultStore::Mode::ReadOnly);
    ASSERT_TRUE(reader.lookup(ProfileKey{8, 8}).has_value());
    EXPECT_EQ(reader.lookup(ProfileKey{8, 8})->profile.idlePower, 7.0);
}

TEST(ResultStoreTest, CountersTrackMissesAndHitRate)
{
    TempDir dir;
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    db.insert(ProfileKey{1, 0}, resultWithMarker(1.0));
    db.lookup(ProfileKey{1, 0});
    db.lookup(ProfileKey{2, 0});
    db.lookup(ProfileKey{3, 0});
    const StoreCounters c = db.counters();
    EXPECT_EQ(c.lookups, 3u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 2u);
    EXPECT_NEAR(c.hitRate(), 1.0 / 3.0, 1e-12);
}

} // namespace
