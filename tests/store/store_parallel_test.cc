/**
 * @file
 * Thread-safety of the store-backed profile cache under real worker
 * pools (odrips_tsan label: scripts/check.sh rebuilds this suite with
 * -fsanitize=thread). A jobs sweep over {1, 2, 8} drives concurrent
 * lookup/insert traffic through CycleProfileCache + StoreProfileBackend
 * + ResultStore; every jobs count must produce results bit-identical
 * to the serial reference, and the second pass must be served without
 * re-measuring.
 */

#include <gtest/gtest.h>

#include "core/profile_cache.hh"
#include "exec/parallel_sweep.hh"
#include "platform/techniques.hh"
#include "store/profile_store.hh"
#include "store/result_store.hh"
#include "store_test_util.hh"

using namespace odrips;
using namespace odrips::store;
using odrips::test::TempDir;

namespace
{

/** A few distinct configurations, cycled across sweep points. */
PlatformConfig
configForPoint(std::size_t index)
{
    PlatformConfig cfg = skylakeConfig();
    cfg.coreFrequencyHz = 0.4e9 + 0.1e9 * static_cast<double>(index % 4);
    return cfg;
}

struct PointResult
{
    double idlePower = 0.0;
    double activePower = 0.0;
    Tick entryLatency = 0;
};

std::vector<PointResult>
runSweep(CycleProfileCache &cache, std::size_t points, unsigned jobs)
{
    exec::ExecPolicy policy;
    policy.jobs = jobs;
    const TechniqueSet techniques = TechniqueSet::odrips();
    return exec::parallelSweep(
        "store-parallel-test", points,
        [&](const exec::SweepPoint &point) {
            const CyclePowerProfile p =
                cache.getOrMeasure(configForPoint(point.index),
                                   techniques);
            return PointResult{p.idlePower, p.activePower,
                               p.entryLatency};
        },
        policy);
}

TEST(StoreParallelTest, JobsSweepIsBitIdenticalAndStoreServed)
{
    Logger::quiet(true);
    constexpr std::size_t kPoints = 16;

    // Serial reference without any store.
    CycleProfileCache reference;
    const std::vector<PointResult> expected =
        runSweep(reference, kPoints, 1);

    for (const unsigned jobs : {1u, 2u, 8u}) {
        TempDir dir;
        ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
        StoreProfileBackend backend(db);

        // Cold pass: concurrent misses measure and write back.
        CycleProfileCache cold;
        cold.setBackend(&backend);
        const std::vector<PointResult> measured =
            runSweep(cold, kPoints, jobs);
        ASSERT_EQ(measured.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(measured[i].idlePower, expected[i].idlePower)
                << "jobs=" << jobs << " point " << i;
            EXPECT_EQ(measured[i].activePower, expected[i].activePower);
            EXPECT_EQ(measured[i].entryLatency,
                      expected[i].entryLatency);
        }
        // 4 distinct configs; concurrent first-touches of one key may
        // legitimately both measure (identical results, last insert
        // wins), so the count is bounded, not exact.
        EXPECT_GE(cold.statistics().misses, 4u);
        EXPECT_LE(cold.statistics().misses, kPoints);

        // Hot pass through a fresh cache: every key must come from the
        // store (concurrent mapped-segment + pending reads), zero
        // re-measurements, identical bits.
        CycleProfileCache hot;
        hot.setBackend(&backend);
        const std::vector<PointResult> served =
            runSweep(hot, kPoints, jobs);
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(served[i].idlePower, expected[i].idlePower);
            EXPECT_EQ(served[i].activePower, expected[i].activePower);
            EXPECT_EQ(served[i].entryLatency, expected[i].entryLatency);
        }
        EXPECT_EQ(hot.statistics().misses, 0u)
            << "jobs=" << jobs << " re-measured despite a warm store";
        EXPECT_GE(hot.statistics().storeHits, 4u);
    }
}

TEST(StoreParallelTest, ConcurrentRawInsertAndLookup)
{
    // Hammer the ResultStore API directly from many workers: disjoint
    // inserts racing lookups (including auto-flush seals) must stay
    // exact under TSan.
    TempDir dir;
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);

    constexpr std::size_t kOps = 512;
    exec::ExecPolicy policy;
    policy.jobs = 8;

    struct OpResult
    {
        bool wrongValue = false;
    };
    const std::vector<OpResult> results = exec::parallelSweep(
        "store-hammer", kOps,
        [&](const exec::SweepPoint &point) {
            const std::uint64_t i = point.index;
            StoredResult r;
            r.profile.idlePower = static_cast<double>(i);
            db.insert(ProfileKey{i, ~i}, r);
            // Probe random earlier keys; hits must be exact.
            OpResult out;
            Rng rng = point.rng;
            for (int probe = 0; probe < 4; ++probe) {
                const std::uint64_t j = rng.uniformInt(i + 1);
                const auto hit = db.lookup(ProfileKey{j, ~j});
                if (hit.has_value() &&
                    hit->profile.idlePower != static_cast<double>(j))
                    out.wrongValue = true;
            }
            return out;
        },
        policy);

    for (const OpResult &r : results)
        EXPECT_FALSE(r.wrongValue);
    db.flush();
    EXPECT_EQ(db.entryCount(), kOps);
    EXPECT_GE(db.counters().flushes, kOps / ResultStore::flushThreshold);
}

} // namespace
