/**
 * @file
 * Multi-process store tests: the advisory writer lock is exclusive
 * across processes, concurrent reader processes see only whole sealed
 * segments (never torn intermediate states), and every value a reader
 * observes is exact.
 *
 * Children assert with plain checks and report through their exit
 * status; the parent turns a non-zero child status into a test
 * failure. Entries are self-validating: entry {i, i} stores
 * idlePower == i, so a reader can verify any hit against its key.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "store/result_store.hh"
#include "store_test_util.hh"

using namespace odrips;
using namespace odrips::store;
using odrips::test::TempDir;

namespace
{

StoredResult
selfValidating(std::uint64_t i)
{
    StoredResult r;
    r.profile.idlePower = static_cast<double>(i);
    r.averagePower = static_cast<double>(i) * 0.5;
    return r;
}

int
waitForExit(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

TEST(StoreProcessTest, WriterLockIsExclusiveAcrossProcesses)
{
    TempDir dir;
    ResultStore writer(dir.path(), ResultStore::Mode::ReadWrite);
    ASSERT_TRUE(writer.writable());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: the parent holds the flock, so a ReadWrite open must
        // degrade (not fail, not deadlock) and reads must still work.
        int failures = 0;
        try {
            ResultStore child(dir.path(), ResultStore::Mode::ReadWrite);
            if (child.writable())
                ++failures;
            child.insert(ProfileKey{9, 9}, selfValidating(9));
            if (child.lookup(ProfileKey{9, 9}).has_value())
                ++failures; // degraded insert must be dropped
        } catch (const std::exception &) {
            failures += 10;
        }
        ::_exit(failures);
    }
    EXPECT_EQ(waitForExit(pid), 0);
}

TEST(StoreProcessTest, LockReleasesWhenWriterProcessExits)
{
    TempDir dir;
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        int code = 1;
        {
            ResultStore writer(dir.path(), ResultStore::Mode::ReadWrite);
            writer.insert(ProfileKey{1, 1}, selfValidating(1));
            code = writer.writable() ? 0 : 1;
            // Scope exit flushes and releases the flock (_exit() would
            // skip the destructor).
        }
        ::_exit(code);
    }
    ASSERT_EQ(waitForExit(pid), 0);

    // The child is gone: the lock must be acquirable and the child's
    // destructor-flushed segment readable.
    ResultStore writer(dir.path(), ResultStore::Mode::ReadWrite);
    EXPECT_TRUE(writer.writable());
    const auto hit = writer.lookup(ProfileKey{1, 1});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->profile.idlePower, 1.0);
}

TEST(StoreProcessTest, ConcurrentReaderNeverSeesAWrongValue)
{
    TempDir dir;
    constexpr std::uint64_t kBatches = 8;
    constexpr std::uint64_t kPerBatch = 16;

    // Seal batch 0 first so the reader child always has a store to
    // open (ReadOnly requires the directory to exist).
    ResultStore writer(dir.path(), ResultStore::Mode::ReadWrite);
    for (std::uint64_t i = 0; i < kPerBatch; ++i)
        writer.insert(ProfileKey{i, i}, selfValidating(i));
    writer.flush();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Reader child: hammer refresh()+lookup while the parent keeps
        // sealing segments. Every hit must be exact for its key; keys
        // from unsealed batches must be clean misses.
        int failures = 0;
        try {
            ResultStore reader(dir.path(), ResultStore::Mode::ReadOnly);
            for (int round = 0; round < 400; ++round) {
                reader.refresh();
                const std::uint64_t total = kBatches * kPerBatch;
                for (std::uint64_t i = 0; i < total; ++i) {
                    const auto hit = reader.lookup(ProfileKey{i, i});
                    if (hit.has_value() &&
                        hit->profile.idlePower !=
                            static_cast<double>(i))
                        ++failures;
                }
            }
        } catch (const std::exception &) {
            failures += 1000;
        }
        ::_exit(failures > 250 ? 250 : failures);
    }

    // Parent: keep sealing batches while the child reads.
    for (std::uint64_t b = 1; b < kBatches; ++b) {
        for (std::uint64_t i = b * kPerBatch; i < (b + 1) * kPerBatch;
             ++i)
            writer.insert(ProfileKey{i, i}, selfValidating(i));
        writer.flush();
    }
    EXPECT_EQ(waitForExit(pid), 0);

    // Final consistency: a fresh open sees every batch.
    ResultStore verify(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(verify.entryCount(), kBatches * kPerBatch);
}

} // namespace
