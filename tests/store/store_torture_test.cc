/**
 * @file
 * Store torture suite: every corruption mode — torn tails, truncated
 * headers, flipped payload bytes, wrong magic, stale physics tags —
 * must degrade to "recompute the key", never to a wrong answer or a
 * crash. The suite seals a known-good store through the public API,
 * performs raw byte surgery on the segment files (store_test_util.hh
 * carries the sanctioned store-io lint exemptions for that), reopens,
 * and checks both the served values and the damage counters.
 *
 * Segment layout under surgery (see store/result_store.hh):
 *   header  = magic(4) format(4) physics(8) count(4)      -> 20 bytes
 *   entry i = key.lo(8) key.hi(8) size(4) crc(4) payload  -> 24 + size
 */

#include <gtest/gtest.h>

#include "core/profile_cache.hh"
#include "platform/techniques.hh"
#include "store/profile_store.hh"
#include "store/result_store.hh"
#include "store_test_util.hh"

using namespace odrips;
using namespace odrips::store;
using odrips::test::TempDir;

namespace
{

constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kEntryHeaderBytes = 24;

StoredResult
resultWithMarker(double marker)
{
    StoredResult r;
    r.profile.idlePower = marker;
    r.profile.activePower = marker + 1;
    r.averagePower = marker + 2;
    return r;
}

/** Seal one segment holding @p count marker entries; keys are {i, i}. */
std::size_t
sealFixture(const TempDir &dir, std::uint64_t count)
{
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    for (std::uint64_t i = 0; i < count; ++i)
        db.insert(ProfileKey{i, i},
                  resultWithMarker(static_cast<double>(i)));
    db.flush();
    const std::vector<std::uint8_t> raw =
        odrips::test::readRawFile(dir.file(dir.segmentFiles().at(0)));
    // Fixed-size payloads: derive one payload's size for offset math.
    return (raw.size() - kHeaderBytes) / count - kEntryHeaderBytes;
}

TEST(StoreTortureTest, BadMagicSkipsSegmentWhole)
{
    TempDir dir;
    sealFixture(dir, 3);
    odrips::test::flipByteInFile(dir.file(dir.segmentFiles().at(0)), 0);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.entryCount(), 0u);
    EXPECT_EQ(db.counters().segmentsBad, 1u);
    EXPECT_FALSE(db.lookup(ProfileKey{0, 0}).has_value());
}

TEST(StoreTortureTest, BadFormatVersionSkipsSegmentWhole)
{
    TempDir dir;
    sealFixture(dir, 3);
    odrips::test::flipByteInFile(dir.file(dir.segmentFiles().at(0)), 4);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.entryCount(), 0u);
    EXPECT_EQ(db.counters().segmentsBad, 1u);
}

TEST(StoreTortureTest, HeaderShorterThanFixedPartIsBad)
{
    TempDir dir;
    sealFixture(dir, 2);
    const std::string seg = dir.file(dir.segmentFiles().at(0));
    odrips::test::truncateFile(seg, kHeaderBytes - 1);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.entryCount(), 0u);
    EXPECT_EQ(db.counters().segmentsBad, 1u);
}

TEST(StoreTortureTest, StalePhysicsTagInvalidatesSegment)
{
    TempDir dir;
    {
        // Sealed by a store stamping a different physics tag...
        ResultStore old(dir.path(), ResultStore::Mode::ReadWrite,
                        physicsVersion() ^ 0xdeadbeefull);
        old.insert(ProfileKey{1, 1}, resultWithMarker(1.0));
        old.flush();
    }
    // ...is invisible to a current-physics open, wholesale.
    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    EXPECT_EQ(db.entryCount(), 0u);
    EXPECT_EQ(db.counters().segmentsStalePhysics, 1u);
    EXPECT_EQ(db.counters().segmentsLoaded, 0u);
    EXPECT_FALSE(db.lookup(ProfileKey{1, 1}).has_value());

    // New writes under the current physics land in a fresh segment and
    // are served; the stale segment stays quarantined on disk.
    db.insert(ProfileKey{1, 1}, resultWithMarker(2.0));
    db.flush();
    ASSERT_TRUE(db.lookup(ProfileKey{1, 1}).has_value());
    EXPECT_EQ(db.lookup(ProfileKey{1, 1})->profile.idlePower, 2.0);
    EXPECT_EQ(dir.segmentFiles().size(), 2u);
}

TEST(StoreTortureTest, FlippedPayloadByteDropsOnlyThatEntry)
{
    TempDir dir;
    const std::size_t payload = sealFixture(dir, 5);
    const std::string seg = dir.file(dir.segmentFiles().at(0));
    // Corrupt one byte inside entry 2's payload.
    const std::size_t entry2 =
        kHeaderBytes + 2 * (kEntryHeaderBytes + payload);
    odrips::test::flipByteInFile(seg, entry2 + kEntryHeaderBytes + 3);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.counters().entriesCorrupt, 1u);
    EXPECT_EQ(db.entryCount(), 4u);
    // The corrupt key is a clean miss; its neighbours are intact and
    // exact — damage can cost recomputation, never a wrong answer.
    EXPECT_FALSE(db.lookup(ProfileKey{2, 2}).has_value());
    for (std::uint64_t i : {0ull, 1ull, 3ull, 4ull}) {
        const auto hit = db.lookup(ProfileKey{i, i});
        ASSERT_TRUE(hit.has_value()) << "entry " << i;
        EXPECT_EQ(hit->profile.idlePower, static_cast<double>(i));
    }
}

TEST(StoreTortureTest, TornTailKeepsFullyWrittenPrefix)
{
    TempDir dir;
    const std::size_t payload = sealFixture(dir, 5);
    const std::string seg = dir.file(dir.segmentFiles().at(0));
    // Cut mid-way through entry 3's payload: entries 0-2 survive,
    // 3 and 4 are torn.
    const std::size_t cut = kHeaderBytes +
                            3 * (kEntryHeaderBytes + payload) +
                            kEntryHeaderBytes + payload / 2;
    odrips::test::truncateFile(seg, cut);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.counters().entriesTorn, 2u);
    EXPECT_EQ(db.entryCount(), 3u);
    for (std::uint64_t i : {0ull, 1ull, 2ull}) {
        const auto hit = db.lookup(ProfileKey{i, i});
        ASSERT_TRUE(hit.has_value()) << "entry " << i;
        EXPECT_EQ(hit->profile.idlePower, static_cast<double>(i));
    }
    EXPECT_FALSE(db.lookup(ProfileKey{3, 3}).has_value());
    EXPECT_FALSE(db.lookup(ProfileKey{4, 4}).has_value());
}

TEST(StoreTortureTest, TornEntryHeaderAtTailIsCounted)
{
    TempDir dir;
    const std::size_t payload = sealFixture(dir, 2);
    const std::string seg = dir.file(dir.segmentFiles().at(0));
    // Keep entry 0 and only half of entry 1's header.
    odrips::test::truncateFile(
        dir.file(dir.segmentFiles().at(0)),
        kHeaderBytes + (kEntryHeaderBytes + payload) + 10);
    (void)seg;

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.counters().entriesTorn, 1u);
    EXPECT_EQ(db.entryCount(), 1u);
    ASSERT_TRUE(db.lookup(ProfileKey{0, 0}).has_value());
}

TEST(StoreTortureTest, OversizedEntrySizeFieldIsTornNotOverread)
{
    TempDir dir;
    sealFixture(dir, 3);
    const std::string seg = dir.file(dir.segmentFiles().at(0));
    // Entry 0's size field (offset 20+16) -> enormous: the payload
    // would run past end-of-file, which must read as torn, not as an
    // out-of-bounds access.
    std::vector<std::uint8_t> raw = odrips::test::readRawFile(seg);
    raw[kHeaderBytes + 16 + 2] = 0x7f;
    odrips::test::writeRawFile(seg, raw);

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.counters().entriesTorn, 3u);
    EXPECT_EQ(db.entryCount(), 0u);
}

TEST(StoreTortureTest, StrayTempFilesAreIgnored)
{
    TempDir dir;
    sealFixture(dir, 2);
    // A crash between write and rename leaves a .tmp behind; it must
    // not be indexed (and not crash the directory scan).
    odrips::test::writeRawFile(dir.file("seg-00000099.odst.tmp"),
                               {1, 2, 3});
    odrips::test::writeRawFile(dir.file("unrelated.txt"), {4, 5});

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.segmentCount(), 1u);
    EXPECT_EQ(db.entryCount(), 2u);
    EXPECT_EQ(db.counters().segmentsBad, 0u);
}

TEST(StoreTortureTest, EmptySegmentFileIsBadNotFatal)
{
    TempDir dir;
    sealFixture(dir, 2);
    odrips::test::writeRawFile(dir.file("seg-00000050.odst"), {});

    ResultStore db(dir.path(), ResultStore::Mode::ReadOnly);
    EXPECT_EQ(db.counters().segmentsBad, 1u);
    EXPECT_EQ(db.entryCount(), 2u);
}

/**
 * The end-to-end guarantee the whole suite exists for: with a damaged
 * store attached behind the profile cache, measureCycleProfile-level
 * queries still return bit-exactly what an uncached measurement
 * returns — the damage only costs a recomputation.
 */
TEST(StoreTortureTest, DamagedStoreFallsBackToRecomputeExactly)
{
    TempDir dir;
    const PlatformConfig cfg = skylakeConfig();
    const TechniqueSet techniques = TechniqueSet::odrips();
    const ProfileKey key = profileKey(cfg, techniques);
    const CyclePowerProfile fresh =
        measureCycleProfileUncached(cfg, techniques);

    {
        // Persist the real measurement, then corrupt its payload.
        ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
        db.insert(key, makeStoredResult(fresh, cfg));
        db.flush();
    }
    odrips::test::flipByteInFile(dir.file(dir.segmentFiles().at(0)),
                                 kHeaderBytes + kEntryHeaderBytes + 7);

    ResultStore db(dir.path(), ResultStore::Mode::ReadWrite);
    StoreProfileBackend backend(db);
    CycleProfileCache cache;
    cache.setBackend(&backend);

    const CyclePowerProfile served = cache.getOrMeasure(cfg, techniques);
    EXPECT_EQ(served.idlePower, fresh.idlePower);
    EXPECT_EQ(served.activePower, fresh.activePower);
    EXPECT_EQ(served.entryLatency, fresh.entryLatency);
    EXPECT_EQ(served.exitLatency, fresh.exitLatency);
    EXPECT_EQ(served.entryEnergy, fresh.entryEnergy);
    EXPECT_EQ(served.exitEnergy, fresh.exitEnergy);

    // The cache re-measured (store miss), then wrote the repaired
    // entry back; a second fresh cache now gets a store hit.
    const CycleProfileCacheStats stats = cache.statistics();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.storeHits, 0u);
    db.flush();

    CycleProfileCache second;
    second.setBackend(&backend);
    const CyclePowerProfile repaired =
        second.getOrMeasure(cfg, techniques);
    EXPECT_EQ(repaired.idlePower, fresh.idlePower);
    EXPECT_EQ(second.statistics().storeHits, 1u);
    EXPECT_EQ(second.statistics().misses, 0u);
}

} // namespace
