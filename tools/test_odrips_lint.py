#!/usr/bin/env python3
"""Self-test for tools/odrips-lint.

Runs the linter against the fixture trees in tools/fixtures/: the `bad`
tree must trip every rule exactly where seeded, the `good` tree (same
shapes, with allow tags / strong types / labels) must come back clean.
Registered as a ctest so the lint rules cannot rot silently.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(TOOLS_DIR, "odrips-lint")
FIXTURES = os.path.join(TOOLS_DIR, "fixtures")


def run_lint(root, *extra):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, *extra],
        capture_output=True, text=True)
    return proc


def findings(proc):
    """Parse `path:line: [rule] message` lines into (path, rule) pairs."""
    out = set()
    for line in proc.stdout.splitlines():
        if ": [" not in line:
            continue
        location, rest = line.split(": [", 1)
        rule = rest.split("]", 1)[0]
        path = location.rsplit(":", 1)[0]
        out.add((path.replace(os.sep, "/"), rule))
    return out


def findings_at(proc):
    """Parse output into (path, line, rule) triples."""
    out = set()
    for line in proc.stdout.splitlines():
        if ": [" not in line:
            continue
        location, rest = line.split(": [", 1)
        rule = rest.split("]", 1)[0]
        path, lineno = location.rsplit(":", 1)
        out.add((path.replace(os.sep, "/"), int(lineno), rule))
    return out


class BadTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "bad"))
        cls.found = findings(cls.proc)

    def test_exit_status_flags_violations(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stdout)

    def test_wall_clock_rule(self):
        self.assertIn(("src/sim/clock_user.cc", "wall-clock"), self.found)

    def test_raw_rand_rule(self):
        self.assertIn(("src/sim/rng_user.cc", "raw-rand"), self.found)

    def test_unordered_iter_rule(self):
        self.assertIn(("src/core/iter.cc", "unordered-iter"), self.found)

    def test_raw_units_rule_timing(self):
        self.assertIn(("src/timing/bad_units.hh", "raw-units"),
                      self.found)

    def test_raw_units_rule_power(self):
        self.assertIn(("src/power/bad_power.hh", "raw-units"), self.found)

    def test_tsan_label_rule(self):
        self.assertIn(("tests/CMakeLists.txt", "tsan-label"), self.found)

    def test_cmake_target_rule(self):
        self.assertIn(("src/core/orphan.cc", "cmake-target"), self.found)

    def test_simd_intrinsic_rule(self):
        self.assertIn(("src/sim/simd_user.cc", "simd-intrinsic"),
                      self.found)

    def test_raw_thread_rule(self):
        self.assertIn(("src/core/thread_user.cc", "raw-thread"),
                      self.found)

    def test_state_memcpy_rule(self):
        self.assertIn(("src/core/state_copy.cc", "state-memcpy"),
                      self.found)

    def test_store_io_rule(self):
        self.assertIn(("src/core/store_writer.cc", "store-io"),
                      self.found)

    def test_registered_files_not_flagged(self):
        self.assertNotIn(("src/sim/clock_user.cc", "cmake-target"),
                         self.found)


class GoodTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "good"))

    def test_clean_tree_exits_zero(self):
        self.assertEqual(
            self.proc.returncode, 0,
            f"stdout:\n{self.proc.stdout}\nstderr:\n{self.proc.stderr}")

    def test_no_output_when_clean(self):
        self.assertEqual(self.proc.stdout, "")


class SimdIntrinsicScope(unittest.TestCase):
    """src/arch/ is the sanctioned home for intrinsics."""

    def test_arch_directory_is_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "simd-intrinsic")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_same_code_outside_arch_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "simd-intrinsic")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/sim/simd_user.cc", "simd-intrinsic")})


class RawThreadScope(unittest.TestCase):
    """src/exec/ is the sanctioned home for raw threads; nested member
    types like std::thread::id stay allowed everywhere."""

    def test_exec_directory_and_thread_id_are_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "raw-thread")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_spawn_outside_exec_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "raw-thread")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/core/thread_user.cc", "raw-thread")})


class StateMemcpyScope(unittest.TestCase):
    """src/sim/checkpoint/ is the sanctioned home for byte-wise state
    copies; byte-buffer memcpys (sizeof(double), ...) and allow-tagged
    copies stay permitted everywhere."""

    def test_checkpoint_directory_and_byte_buffers_are_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "state-memcpy")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_state_copy_outside_checkpoint_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "state-memcpy")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/core/state_copy.cc", "state-memcpy")})

    def test_split_call_is_still_caught(self):
        # state_copy.cc seeds one single-line and one two-line call;
        # both must be reported (distinct line numbers).
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "state-memcpy")
        lines = [l for l in proc.stdout.splitlines() if ": [" in l]
        self.assertEqual(len(lines), 2, proc.stdout)


class StoreIoScope(unittest.TestCase):
    """src/store/ is the sanctioned home for raw .odst segment I/O;
    allow-tagged fixture surgery and files that mention .odst only in
    comments stay legal."""

    def test_store_directory_and_tagged_surgery_are_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "store-io")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_raw_segment_io_outside_store_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "store-io")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/core/store_writer.cc", "store-io")})

    def test_both_open_primitives_are_reported(self):
        # store_writer.cc seeds an ofstream and an fopen; both lines
        # must be reported (distinct line numbers).
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "store-io")
        at = findings_at(proc)
        self.assertIn(("src/core/store_writer.cc", 8, "store-io"), at,
                      proc.stdout)
        self.assertIn(("src/core/store_writer.cc", 10, "store-io"), at)


class RuleSelection(unittest.TestCase):
    def test_single_rule_filters_findings(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "raw-rand")
        found = findings(proc)
        self.assertEqual(found, {("src/sim/rng_user.cc", "raw-rand")})

    def test_unknown_rule_is_usage_error(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "no-such-rule")
        self.assertEqual(proc.returncode, 2)


class WallClockV2(unittest.TestCase):
    """The hardened wall-clock rule covers the C++20 host clocks and
    the C broken-down-time readers; near-miss identifiers stay legal."""

    def test_new_time_sources_are_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "wall-clock")
        at = findings_at(proc)
        for line in (17, 24, 31, 39):  # file_clock, utc_clock,
            # localtime, gmtime
            self.assertIn(("src/sim/clock_user.cc", line, "wall-clock"),
                          at, proc.stdout)

    def test_near_miss_identifiers_stay_legal(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "wall-clock")
        self.assertEqual(proc.returncode, 0, proc.stdout)


class CkptCoverage(unittest.TestCase):
    """Field-coverage audit of the snapshot path."""

    @classmethod
    def setUpClass(cls):
        cls.bad = run_lint(os.path.join(FIXTURES, "ckpt_bad"),
                           "--rules", "ckpt-coverage")
        cls.bad_at = findings_at(cls.bad)

    def test_capture_only_member_is_flagged_as_unrestored(self):
        self.assertIn(("src/core/state.hh", 18, "ckpt-coverage"),
                      self.bad_at, self.bad.stdout)
        self.assertIn("Meter::total is never restored", self.bad.stdout)

    def test_uncovered_member_is_flagged_on_both_sides(self):
        self.assertIn("Meter::phase is never captured or restored",
                      self.bad.stdout)

    def test_member_type_closure_reaches_subobjects(self):
        self.assertIn("SubBlock::depth", self.bad.stdout)

    def test_state_copy_types_seed_the_covered_set(self):
        # Histogram is audited purely through STATE_COPY_TYPES;
        # checkpoint.cc never names it.
        self.assertIn(("src/stats/histogram.hh", 10, "ckpt-coverage"),
                      self.bad_at, self.bad.stdout)

    def test_covered_member_is_not_flagged(self):
        self.assertNotIn("Meter::count", self.bad.stdout)

    def test_annotated_and_serialized_tree_is_clean(self):
        proc = run_lint(os.path.join(FIXTURES, "ckpt_good"),
                        "--rules", "ckpt-coverage")
        self.assertEqual(proc.returncode, 0, proc.stdout)


class Layering(unittest.TestCase):
    """Include-DAG enforcement over src/."""

    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "bad"),
                            "--rules", "layering")
        cls.at = findings_at(cls.proc)

    def test_upward_include_is_flagged(self):
        self.assertIn(("src/sim/layer_up.hh", 2, "layering"), self.at,
                      self.proc.stdout)

    def test_include_cycle_is_flagged_once_at_anchor(self):
        self.assertIn(("src/core/cycle_a.hh", 1, "layering"), self.at)
        self.assertIn("cycle_a.hh -> src/core/cycle_b.hh",
                      self.proc.stdout)

    def test_downward_include_is_legal(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "layering")
        self.assertEqual(proc.returncode, 0, proc.stdout)


class CrossFileUnorderedIter(unittest.TestCase):
    """Iteration of an unordered member declared in another file."""

    def test_cross_file_iteration_is_flagged_with_decl_site(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "unordered-iter")
        self.assertIn(("src/core/registry_user.cc", "unordered-iter"),
                      findings(proc), proc.stdout)
        self.assertIn("declared at src/core/registry.hh:11",
                      proc.stdout)

    def test_sorted_key_iteration_is_legal(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "unordered-iter")
        self.assertEqual(proc.returncode, 0, proc.stdout)


class FleetHotloop(unittest.TestCase):
    """Functions annotated `// fleet: hotloop` must be allocation-free
    and order-stable; the good tree's twin of the same shape (growth
    in an unannotated setup function, ordered traversal in the hot
    body) stays legal."""

    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "bad"),
                            "--rules", "fleet-hotloop")
        cls.at = findings_at(cls.proc)

    def test_heap_allocation_in_hot_body_is_flagged(self):
        self.assertIn(("src/fleet/hot_path.cc", 14, "fleet-hotloop"),
                      self.at, self.proc.stdout)
        self.assertIn("heap allocation", self.proc.stdout)

    def test_unordered_iteration_in_hot_body_is_flagged(self):
        self.assertIn(("src/fleet/hot_path.cc", 17, "fleet-hotloop"),
                      self.at, self.proc.stdout)
        self.assertIn("order-stable", self.proc.stdout)

    def test_dangling_annotation_is_flagged(self):
        self.assertIn(("src/fleet/hot_path.cc", 22, "fleet-hotloop"),
                      self.at, self.proc.stdout)
        self.assertIn("not followed", self.proc.stdout)

    def test_rule_scopes_to_annotated_bodies_only(self):
        # The good fixture resizes a vector in its un-annotated setup
        # function and walks an ordered container in the hot body;
        # neither may be reported.
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "fleet-hotloop")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertEqual(proc.stdout, "")


class StaleAllow(unittest.TestCase):
    """allow() comments must keep earning their keep."""

    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "bad"))
        cls.at = findings_at(cls.proc)

    def test_unused_allow_is_flagged(self):
        self.assertIn(("src/sim/stale_allow.hh", 8, "stale-allow"),
                      self.at, self.proc.stdout)

    def test_unknown_rule_allow_is_flagged(self):
        self.assertIn(("src/sim/stale_allow.hh", 14, "stale-allow"),
                      self.at)
        self.assertIn("allow(not-a-rule) names an unknown rule",
                      self.proc.stdout)

    def test_used_allows_are_not_flagged(self):
        # The good tree is all used allows; full run must stay clean.
        proc = run_lint(os.path.join(FIXTURES, "good"))
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_allow_is_not_judged_when_its_rule_did_not_run(self):
        # wall-clock did not run, so allow(wall-clock) cannot be
        # called stale; the unknown-rule allow is still reportable.
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "stale-allow")
        at = findings_at(proc)
        self.assertNotIn(("src/sim/stale_allow.hh", 8, "stale-allow"),
                         at, proc.stdout)
        self.assertIn(("src/sim/stale_allow.hh", 14, "stale-allow"),
                      at)


class JsonFormat(unittest.TestCase):
    def test_records_have_the_documented_shape(self):
        proc = run_lint(os.path.join(FIXTURES, "ckpt_bad"),
                        "--rules", "ckpt-coverage", "--format", "json")
        self.assertEqual(proc.returncode, 1)
        records = json.loads(proc.stdout)
        self.assertTrue(records)
        for rec in records:
            self.assertEqual(sorted(rec),
                             ["file", "line", "message", "rule"])
            self.assertEqual(rec["rule"], "ckpt-coverage")
        self.assertIn(("src/stats/histogram.hh", 10),
                      {(r["file"], r["line"]) for r in records})

    def test_clean_tree_emits_an_empty_array(self):
        proc = run_lint(os.path.join(FIXTURES, "ckpt_good"),
                        "--rules", "ckpt-coverage", "--format", "json")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertEqual(json.loads(proc.stdout), [])


class CmakeCommentStripping(unittest.TestCase):
    def test_commented_out_registration_does_not_count(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "cmake-target")
        found = findings(proc)
        self.assertIn(("src/core/commented_out.cc", "cmake-target"),
                      found, proc.stdout)
        self.assertNotIn(("src/core/registry_user.cc", "cmake-target"),
                         found)


class ChangedOnly(unittest.TestCase):
    """--changed-only scopes the report to git-changed files while the
    index still covers the whole tree."""

    def test_findings_filter_to_changed_files(self):
        git = shutil.which("git")
        if git is None:
            self.skipTest("git unavailable")
        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "tree")
            shutil.copytree(os.path.join(FIXTURES, "ckpt_bad"), root)
            env = {**os.environ,
                   "GIT_CONFIG_GLOBAL": os.devnull,
                   "GIT_CONFIG_SYSTEM": os.devnull}
            for cmd in (["init", "-q"], ["add", "-A"],
                        ["-c", "user.email=lint@test",
                         "-c", "user.name=lint",
                         "commit", "-q", "-m", "seed"]):
                subprocess.run([git, "-C", root, *cmd], check=True,
                               env=env, capture_output=True)
            state = os.path.join(root, "src", "core", "state.hh")
            with open(state, "a", encoding="utf-8") as f:
                f.write("// touched\n")
            proc = run_lint(root, "--rules", "ckpt-coverage",
                            "--changed-only")
            found = findings(proc)
            self.assertIn(("src/core/state.hh", "ckpt-coverage"),
                          found, proc.stdout)
            # histogram.hh is unchanged: its findings are filtered out
            # even though the index (and the audit) still saw it.
            self.assertNotIn(("src/stats/histogram.hh",
                              "ckpt-coverage"), found)


class SeededRegression(unittest.TestCase):
    """Adding a field to a real state header must fail ckpt-coverage
    until it is serialized or annotated — the audit's reason to exist,
    exercised against a temp copy of the real src/ tree."""

    FIELD = "double trulyNewField123 = 0.0;"
    ANCHOR = "    Milliwatts total;"
    HEADER = os.path.join("src", "power", "power_model.hh")
    CKPT = os.path.join("src", "core", "checkpoint.cc")

    @classmethod
    def setUpClass(cls):
        cls.repo = os.path.dirname(TOOLS_DIR)
        cls.tmp = tempfile.mkdtemp(prefix="odrips-lint-regress-")
        shutil.copytree(os.path.join(cls.repo, "src"),
                        os.path.join(cls.tmp, "src"))
        with open(os.path.join(cls.tmp, cls.HEADER),
                  encoding="utf-8") as f:
            cls.header_text = f.read()
        assert cls.ANCHOR in cls.header_text
        with open(os.path.join(cls.tmp, cls.CKPT),
                  encoding="utf-8") as f:
            cls.ckpt_text = f.read()

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tmp, ignore_errors=True)

    def _write(self, rel, text):
        with open(os.path.join(self.tmp, rel), "w",
                  encoding="utf-8") as f:
            f.write(text)

    def _with_field(self, suffix=""):
        return self.header_text.replace(
            self.ANCHOR,
            self.ANCHOR + "\n    " + self.FIELD + suffix, 1)

    def _lint(self):
        return run_lint(self.tmp, "--rules", "ckpt-coverage", "src")

    def test_0_baseline_copy_is_clean(self):
        self._write(self.HEADER, self.header_text)
        self._write(self.CKPT, self.ckpt_text)
        proc = self._lint()
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_1_new_field_fails_the_audit(self):
        self._write(self.HEADER, self._with_field())
        proc = self._lint()
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("trulyNewField123", proc.stdout)
        self._write(self.HEADER, self.header_text)

    def test_2_annotated_field_passes(self):
        self._write(self.HEADER,
                    self._with_field(" // ckpt: skip(self-test)"))
        proc = self._lint()
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self._write(self.HEADER, self.header_text)

    def test_3_serialized_field_passes(self):
        self._write(self.HEADER, self._with_field())
        ckpt = self.ckpt_text
        for fn in ("savePower(ckpt::Writer &w, Platform &p)\n{\n",
                   "loadPower(ckpt::Reader &r, Platform &p)\n{\n"):
            self.assertIn(fn, ckpt)
            ckpt = ckpt.replace(
                fn, fn + "    (void)trulyNewField123;\n", 1)
        self._write(self.CKPT, ckpt)
        proc = self._lint()
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self._write(self.HEADER, self.header_text)
        self._write(self.CKPT, self.ckpt_text)

    def test_4_malformed_annotation_is_flagged(self):
        self._write(self.HEADER,
                    self._with_field(" // ckpt: sometimes"))
        proc = self._lint()
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("unparseable ckpt annotation", proc.stdout)
        self._write(self.HEADER, self.header_text)


class RealTree(unittest.TestCase):
    def test_repository_is_clean(self):
        repo = os.path.dirname(TOOLS_DIR)
        proc = run_lint(repo)
        self.assertEqual(
            proc.returncode, 0,
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


if __name__ == "__main__":
    unittest.main()
