#!/usr/bin/env python3
"""Self-test for tools/odrips-lint.

Runs the linter against the fixture trees in tools/fixtures/: the `bad`
tree must trip every rule exactly where seeded, the `good` tree (same
shapes, with allow tags / strong types / labels) must come back clean.
Registered as a ctest so the lint rules cannot rot silently.
"""

import os
import subprocess
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(TOOLS_DIR, "odrips-lint")
FIXTURES = os.path.join(TOOLS_DIR, "fixtures")


def run_lint(root, *extra):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, *extra],
        capture_output=True, text=True)
    return proc


def findings(proc):
    """Parse `path:line: [rule] message` lines into (path, rule) pairs."""
    out = set()
    for line in proc.stdout.splitlines():
        if ": [" not in line:
            continue
        location, rest = line.split(": [", 1)
        rule = rest.split("]", 1)[0]
        path = location.rsplit(":", 1)[0]
        out.add((path.replace(os.sep, "/"), rule))
    return out


class BadTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "bad"))
        cls.found = findings(cls.proc)

    def test_exit_status_flags_violations(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stdout)

    def test_wall_clock_rule(self):
        self.assertIn(("src/sim/clock_user.cc", "wall-clock"), self.found)

    def test_raw_rand_rule(self):
        self.assertIn(("src/sim/rng_user.cc", "raw-rand"), self.found)

    def test_unordered_iter_rule(self):
        self.assertIn(("src/core/iter.cc", "unordered-iter"), self.found)

    def test_raw_units_rule_timing(self):
        self.assertIn(("src/timing/bad_units.hh", "raw-units"),
                      self.found)

    def test_raw_units_rule_power(self):
        self.assertIn(("src/power/bad_power.hh", "raw-units"), self.found)

    def test_tsan_label_rule(self):
        self.assertIn(("tests/CMakeLists.txt", "tsan-label"), self.found)

    def test_cmake_target_rule(self):
        self.assertIn(("src/core/orphan.cc", "cmake-target"), self.found)

    def test_simd_intrinsic_rule(self):
        self.assertIn(("src/sim/simd_user.cc", "simd-intrinsic"),
                      self.found)

    def test_raw_thread_rule(self):
        self.assertIn(("src/core/thread_user.cc", "raw-thread"),
                      self.found)

    def test_state_memcpy_rule(self):
        self.assertIn(("src/core/state_copy.cc", "state-memcpy"),
                      self.found)

    def test_registered_files_not_flagged(self):
        self.assertNotIn(("src/sim/clock_user.cc", "cmake-target"),
                         self.found)


class GoodTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint(os.path.join(FIXTURES, "good"))

    def test_clean_tree_exits_zero(self):
        self.assertEqual(
            self.proc.returncode, 0,
            f"stdout:\n{self.proc.stdout}\nstderr:\n{self.proc.stderr}")

    def test_no_output_when_clean(self):
        self.assertEqual(self.proc.stdout, "")


class SimdIntrinsicScope(unittest.TestCase):
    """src/arch/ is the sanctioned home for intrinsics."""

    def test_arch_directory_is_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "simd-intrinsic")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_same_code_outside_arch_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "simd-intrinsic")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/sim/simd_user.cc", "simd-intrinsic")})


class RawThreadScope(unittest.TestCase):
    """src/exec/ is the sanctioned home for raw threads; nested member
    types like std::thread::id stay allowed everywhere."""

    def test_exec_directory_and_thread_id_are_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "raw-thread")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_spawn_outside_exec_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "raw-thread")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/core/thread_user.cc", "raw-thread")})


class StateMemcpyScope(unittest.TestCase):
    """src/sim/checkpoint/ is the sanctioned home for byte-wise state
    copies; byte-buffer memcpys (sizeof(double), ...) and allow-tagged
    copies stay permitted everywhere."""

    def test_checkpoint_directory_and_byte_buffers_are_exempt(self):
        proc = run_lint(os.path.join(FIXTURES, "good"),
                        "--rules", "state-memcpy")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_state_copy_outside_checkpoint_is_flagged(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "state-memcpy")
        found = findings(proc)
        self.assertEqual(found,
                         {("src/core/state_copy.cc", "state-memcpy")})

    def test_split_call_is_still_caught(self):
        # state_copy.cc seeds one single-line and one two-line call;
        # both must be reported (distinct line numbers).
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "state-memcpy")
        lines = [l for l in proc.stdout.splitlines() if ": [" in l]
        self.assertEqual(len(lines), 2, proc.stdout)


class RuleSelection(unittest.TestCase):
    def test_single_rule_filters_findings(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "raw-rand")
        found = findings(proc)
        self.assertEqual(found, {("src/sim/rng_user.cc", "raw-rand")})

    def test_unknown_rule_is_usage_error(self):
        proc = run_lint(os.path.join(FIXTURES, "bad"),
                        "--rules", "no-such-rule")
        self.assertEqual(proc.returncode, 2)


class RealTree(unittest.TestCase):
    def test_repository_is_clean(self):
        repo = os.path.dirname(TOOLS_DIR)
        proc = run_lint(repo)
        self.assertEqual(
            proc.returncode, 0,
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


if __name__ == "__main__":
    unittest.main()
