#pragma once

struct BadWindow {
    double windowSeconds;
};
