/**
 * Seeded fleet-hotloop violations: heap growth and an unordered-
 * container walk inside the annotated hot function, plus a dangling
 * annotation with no function body to attach to.
 */

#include <unordered_map>
#include <vector>

// fleet: hotloop
double
accumulateDay(std::vector<double> &samples, double joules)
{
    samples.push_back(joules);
    std::unordered_map<int, double> byClass;
    double sum = 0.0;
    for (const auto &kv : byClass)
        sum += kv.second;
    return sum;
}

// fleet: hotloop
