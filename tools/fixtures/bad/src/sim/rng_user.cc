#include <cstdlib>

int
roll()
{
    return std::rand() % 6;
}
