#include <immintrin.h>

int
sum4(const int *v)
{
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i *>(v));
    const __m128i b = _mm_hadd_epi32(a, a);
    return _mm_cvtsi128_si32(_mm_hadd_epi32(b, b));
}
