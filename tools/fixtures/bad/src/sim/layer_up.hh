// src/sim/ (tier 1) must not reach up into src/core/ (tier 5).
#include "core/registry.hh"

namespace fx
{

inline std::uint64_t
registrySize(const Registry &reg)
{
    return reg.table.size();
}

} // namespace fx
