#include <chrono>

double
elapsedSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}
