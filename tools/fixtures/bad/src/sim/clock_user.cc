#include <chrono>
#include <ctime>

double
elapsedSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

long
fileStamp()
{
    // C++20 clocks still read host state.
    const auto t = std::chrono::file_clock::now();
    return t.time_since_epoch().count();
}

long
utcStamp()
{
    return std::chrono::utc_clock::now().time_since_epoch().count();
}

int
localHour()
{
    std::time_t now = std::time(nullptr);
    const std::tm *lt = std::localtime(&now);
    return lt ? lt->tm_hour : 0;
}

int
utcHour()
{
    std::time_t now = std::time(nullptr);
    const std::tm *gt = std::gmtime(&now);
    return gt ? gt->tm_hour : 0;
}
