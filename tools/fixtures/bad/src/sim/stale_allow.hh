// Suppressions that suppress nothing are themselves findings.
namespace fx
{

inline unsigned long
stepCount()
{
    return 7; // odrips-lint: allow(wall-clock)
}

inline unsigned long
stepBase()
{
    return 3; // odrips-lint: allow(not-a-rule)
}

} // namespace fx
