// Unordered member declared in a header: the per-file unordered-iter
// rule cannot see it from registry_user.cc; the cross-file half can.
#include <cstdint>
#include <unordered_map>

namespace fx
{

struct Registry
{
    std::unordered_map<std::uint64_t, std::uint64_t> table;
};

} // namespace fx
