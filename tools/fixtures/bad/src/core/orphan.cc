// Not listed in any CMakeLists.txt: must trip cmake-target.
int
orphan()
{
    return 0;
}
