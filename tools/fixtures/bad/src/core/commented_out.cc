// This source is named only inside a `#` comment in CMakeLists.txt,
// which must NOT count as registration once comments are stripped.
namespace fx
{

int
orphanValue()
{
    return 4;
}

} // namespace fx
