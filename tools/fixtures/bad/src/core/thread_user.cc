// Raw thread outside src/exec/: parallelism that bypasses the pool is
// invisible to the TSan gate and free to break determinism.
#include <thread>

void
spawnWorker()
{
    std::thread worker([] {});
    worker.join();
}
