// Byte-copying a simulator state object slices its owned heap state.
#include <cstring>

namespace odrips
{
struct Platform;
struct EventQueue;

void
clonePlatform(Platform *dst, const Platform *src)
{
    std::memcpy(dst, src, sizeof(Platform));
}

void
cloneQueue(EventQueue *dst, const EventQueue *src)
{
    memmove(dst, src,
            sizeof(odrips::EventQueue));
}
} // namespace odrips
