// Seeds store-io: raw segment I/O outside src/store/.
#include <cstdio>
#include <fstream>

void
scribbleSegment()
{
    std::ofstream out("seg-00000001.odst");
    out << "x";
    std::FILE *f = std::fopen("seg-00000002.odst", "rb");
    if (f != nullptr)
        std::fclose(f);
}
