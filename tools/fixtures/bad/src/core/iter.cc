#include <unordered_map>

double
total(const std::unordered_map<int, double> &)
{
    std::unordered_map<int, double> weights;
    double sum = 0.0;
    for (const auto &kv : weights)
        sum += kv.second;
    return sum;
}
