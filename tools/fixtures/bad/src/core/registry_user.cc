// Iterates Registry::table, declared in registry.hh: order-unstable,
// and invisible to a per-file scan of this translation unit.
#include "core/registry.hh"

namespace fx
{

std::uint64_t
sumTable(const Registry &reg)
{
    std::uint64_t sum = 0;
    for (const auto &kv : reg.table)
        sum += kv.second;
    return sum;
}

} // namespace fx
