// Other half of the file-level include cycle.
#include "core/cycle_a.hh"

namespace fx
{
struct CycleB
{
    int b = 0;
};
} // namespace fx
