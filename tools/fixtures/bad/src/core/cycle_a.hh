// Half of a file-level include cycle (same tier, same directory).
#include "core/cycle_b.hh"

namespace fx
{
struct CycleA
{
    int a = 0;
};
} // namespace fx
