#pragma once

struct BadRail {
    double railWatts() const;
};
