// Checkpoint-covered state with seeded coverage gaps:
//   Meter::total is written by the capture side (through readTotal())
//   but never restored; Meter::phase is on neither side; Meter::sub
//   pulls SubBlock into the covered set, whose depth is uncovered too.
#include <cstdint>

namespace fx
{

struct SubBlock
{
    unsigned depth = 0;
};

struct Meter
{
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    int phase = 0;
    SubBlock sub;

    std::uint64_t readTotal() const { return total; }
};

} // namespace fx
