// Fixture snapshot path: saveState covers count and (through the
// readTotal() accessor) total; loadState restores only count.
#include "core/state.hh"

namespace fx
{

void
saveState(Writer &w, Meter &m)
{
    w.u64(m.count);
    w.u64(m.readTotal());
}

void
loadState(Reader &r, Meter &m)
{
    m.count = r.u64();
}

} // namespace fx
