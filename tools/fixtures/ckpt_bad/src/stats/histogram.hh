// Histogram is in STATE_COPY_TYPES, so it is audited even though
// checkpoint.cc never names it.
#include <cstdint>

namespace fx
{

struct Histogram
{
    std::uint64_t bins = 0;
};

} // namespace fx
