// Same shapes as the ckpt_bad tree, now fully covered: total restores,
// phase and sub carry annotations (the via() tag also stops the
// member-type closure from pulling SubBlock in), cachedMean is derived.
#include <cstdint>

namespace fx
{

struct SubBlock
{
    unsigned depth = 0;
};

struct Meter
{
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    int phase = 0; // ckpt: skip(transient scan cursor)
    SubBlock sub;  // ckpt: via(core section)
    std::uint64_t cachedMean = 0; // ckpt: derived

    std::uint64_t readTotal() const { return total; }
};

} // namespace fx
