// A class-head tag exempts the whole type from the coverage audit.
#include <cstdint>

namespace fx
{

struct Histogram // ckpt: derived
{
    std::uint64_t bins = 0;
};

} // namespace fx
