#include "exec/thread_pool.hh"

int
main()
{
    return 0;
}
