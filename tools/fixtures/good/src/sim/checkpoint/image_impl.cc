// The checkpoint serializers are the sanctioned home for byte-wise
// state copies; the exemption mirrors src/arch/ for intrinsics.
#include <cstring>

namespace odrips
{
struct SnapshotImage;

void
cloneImage(SnapshotImage *dst, const SnapshotImage *src)
{
    std::memcpy(dst, src, sizeof(SnapshotImage));
}
} // namespace odrips
