#include "sim/random.hh"

// Comments mentioning std::rand or steady_clock must not trip rules.
int
roll(odrips::Rng &rng)
{
    return static_cast<int>(rng.uniform() * 6.0);
}
