// Simulated time base: everything derives from ticks, never the host.
#include <cstdint>

namespace fx
{

using Tick = std::uint64_t;

inline double
tickSeconds(Tick t, double hz)
{
    return static_cast<double>(t) / hz;
}

// Near-miss identifiers: runtime(0) and localtime_cache() must not
// trip the wall-clock rule, which keys on the real host-time readers.
inline Tick
runtime(Tick t)
{
    return t;
}

inline Tick
localtime_cache(Tick t)
{
    return t;
}

} // namespace fx
