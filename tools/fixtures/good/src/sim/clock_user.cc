#include <chrono>

// Progress metering for the operator, not a simulation result.
double
elapsedSeconds()
{
    // odrips-lint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               // odrips-lint: allow(wall-clock)
               std::chrono::steady_clock::now() - t0)
        .count();
}
