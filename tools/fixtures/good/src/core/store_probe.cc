// Fixture surgery on .odst segments, sanctioned by the allow tag.
#include <cstdio>

bool
probeSegment(const char *path)
{
    const char *suffix = ".odst";
    // odrips-lint: allow(store-io)
    std::FILE *f = std::fopen(path, "rb");
    if (f == nullptr)
        return false;
    std::fclose(f);
    return suffix[0] == '.';
}
