// Mentions .odst only in this comment: ordinary file I/O on other
// formats (this log, for instance) must stay legal.
#include <fstream>

void
writeLog(const char *path)
{
    std::ofstream out(path);
    out << "ok";
}
