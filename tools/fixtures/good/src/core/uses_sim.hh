// src/core/ (tier 5) may include src/sim/ (tier 1): downward is the
// sanctioned direction of the layer DAG.
#include "sim/timebase.hh"

namespace fx
{

inline double
coreSeconds(Tick t)
{
    return tickSeconds(t, 24.0e6);
}

} // namespace fx
