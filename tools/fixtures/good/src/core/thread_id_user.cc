// std::thread::id is a plain value type; naming it spawns nothing and
// stays allowed outside src/exec/.
#include <thread>

std::thread::id
currentThread()
{
    return std::this_thread::get_id();
}
