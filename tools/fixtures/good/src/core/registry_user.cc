// The sanctioned pattern: extract keys, sort them, iterate the sorted
// vector. Lookups into the unordered member stay order-independent.
#include "core/registry.hh"

#include <algorithm>
#include <vector>

namespace fx
{

std::uint64_t
sumTable(const Registry &reg)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(reg.table.size());
    for (std::uint64_t k = 0; k < 64; ++k)
        if (reg.table.count(k))
            keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    std::uint64_t sum = 0;
    for (const auto k : keys)
        sum += reg.table.at(k);
    return sum;
}

} // namespace fx
