// Unordered storage is fine; only *iterating* it is order-unstable.
#include <cstdint>
#include <unordered_map>

namespace fx
{

struct Registry
{
    std::unordered_map<std::uint64_t, std::uint64_t> table;
};

} // namespace fx
