// Plain byte-buffer memcpys stay allowed everywhere: the state-memcpy
// rule keys on sizeof() of a named simulator state type, not on memcpy
// itself. The tagged copy shows the escape hatch.
#include <cstdint>
#include <cstring>

namespace odrips
{
struct DirtyLineMap;

double
rebits(std::uint64_t word)
{
    double d;
    std::memcpy(&d, &word, sizeof(double));
    return d;
}

void
copyRuns(DirtyLineMap *dst, const DirtyLineMap *src)
{
    // odrips-lint: allow(state-memcpy)
    std::memcpy(dst, src, sizeof(DirtyLineMap));
}
} // namespace odrips
