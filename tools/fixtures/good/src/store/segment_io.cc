// src/store/ is the sanctioned home for raw .odst segment I/O.
#include <cstdio>
#include <fstream>

void
sealSegment()
{
    std::ofstream out("seg-00000001.odst.tmp");
    out << "x";
    std::FILE *f = std::fopen("seg-00000002.odst", "rb");
    if (f != nullptr)
        std::fclose(f);
}
