#pragma once

#include "sim/units.hh"

struct GoodWindow {
    odrips::Seconds window;
    double driftPpb; // dimensionless ratio: fine as a raw double
};
