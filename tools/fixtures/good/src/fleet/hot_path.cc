/**
 * Clean fleet-hotloop shape: the annotated hot function only reads
 * pre-sized state; all growth happens in the cold setup function,
 * which may resize freely because it carries no annotation.
 */

#include <cstddef>
#include <vector>

void
prepare(std::vector<double> &samples, std::size_t devices)
{
    samples.resize(devices, 0.0);
}

// fleet: hotloop
double
accumulateDay(const std::vector<double> &samples)
{
    double sum = 0.0;
    for (const double sample : samples)
        sum += sample;
    return sum;
}
