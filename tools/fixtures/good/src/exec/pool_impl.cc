// Raw threads are sanctioned here: src/exec/ implements the pool that
// the rest of the tree parallelises through.
#include <thread>
#include <vector>

void
startWorkers(std::vector<std::thread> &workers, unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        workers.emplace_back([] {});
}
