#pragma once

#include "sim/units.hh"

struct GoodRail {
    odrips::Milliwatts rated() const;
    double efficiency() const; // dimensionless
};
