"""Driver and CLI for odrips-lint.

Two stages: a whole-repo index (tokenizer + brace-tracking parser, see
odrips_lint.cxxindex) is built first, then the per-line token rules and
the index-driven semantic passes report findings through a shared
Context that centralizes allow()-tag handling — which is what lets the
stale-allow pass know which suppressions still earn their keep.
"""

import argparse
import json
import os
import re
import subprocess
import sys

from odrips_lint import passes, rules
from odrips_lint.cxxindex import Index

ALLOW_RE = re.compile(r"odrips-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

CXX_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp")

ALL_RULES = {"wall-clock", "raw-rand", "unordered-iter", "raw-units",
             "tsan-label", "cmake-target", "simd-intrinsic",
             "raw-thread", "state-memcpy", "store-io",
             "ckpt-coverage", "layering", "fleet-hotloop",
             "stale-allow"}


class Context:
    """Shared state for one lint run: index, findings, allow tracking."""

    def __init__(self, root, active_rules):
        self.root = root
        self.active_rules = active_rules
        self.index = Index(root)
        self.findings = []          # (rel, 1-based line, rule, message)
        self._allow_tags = {}       # rel -> {0-based line: set(rule)}
        self.used_allows = set()    # (rel, 0-based line, rule)

    # -- files -----------------------------------------------------------

    def file(self, rel):
        return self.index.add_file(rel)

    def allow_tags(self, rel):
        if rel not in self._allow_tags:
            info = self.file(rel)
            tags = {}
            if info is not None:
                for idx, line in enumerate(info.raw):
                    m = ALLOW_RE.search(line)
                    if m:
                        tags[idx] = {r.strip()
                                     for r in m.group(1).split(",")}
            self._allow_tags[rel] = tags
        return self._allow_tags[rel]

    # -- reporting -------------------------------------------------------

    def report(self, rel, line_idx, rule, message):
        """File a finding at 0-based ``line_idx`` unless an allow tag on
        that line (or the one above) suppresses it; either way, record
        the suppression for the stale-allow pass."""
        for probe in (line_idx, line_idx - 1):
            if probe < 0:
                continue
            tags = self.allow_tags(rel).get(probe)
            if tags and rule in tags:
                self.used_allows.add((rel, probe, rule))
                return
        self.findings.append((rel, line_idx + 1, rule, message))

    # -- tree walking ----------------------------------------------------

    def cxx_files(self, subdirs):
        for sub in subdirs:
            base = os.path.join(self.root, sub)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in ("fixtures",))
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        full = os.path.join(dirpath, name)
                        yield os.path.relpath(full, self.root)

    def cmake_files(self):
        found = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith((".", "build")) and d != "fixtures")
            if "CMakeLists.txt" in filenames:
                found.append(os.path.join(dirpath, "CMakeLists.txt"))
        return sorted(found)


def changed_files(root):
    """Repo-relative paths touched vs HEAD (staged, unstaged, untracked).

    Returns None when git is unavailable (caller falls back to a full
    report)."""
    out = set()
    for cmd in (["git", "-C", root, "diff", "--name-only", "HEAD"],
                ["git", "-C", root, "ls-files", "--others",
                 "--exclude-standard"]):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        out.update(p for p in proc.stdout.splitlines() if p)
    return out


def run(root, scan_paths, active_rules):
    """Build the index and run every active rule; returns the Context."""
    ctx = Context(root, active_rules)

    scan_files = list(ctx.cxx_files(scan_paths))
    # The semantic passes need the whole-src model even when only a
    # subset is being scanned: a .cc's unordered member lives in a
    # header, the checkpoint-covered types live all over src/.
    index_roots = set(scan_paths) | {"src"}
    for rel in ctx.cxx_files(sorted(index_roots)):
        ctx.file(rel)

    if "cmake-target" in active_rules:
        rules.check_cmake_targets(ctx)
    if "tsan-label" in active_rules:
        rules.check_tsan_labels(ctx)
    if rules.TOKEN_RULES & active_rules:
        for rel in scan_files:
            rules.check_tokens(ctx, rel)
    if "store-io" in active_rules:
        for rel in scan_files:
            rules.check_store_io(ctx, rel)
    if "raw-units" in active_rules:
        for sub in ("src/timing", "src/power"):
            for rel in ctx.cxx_files([sub]):
                if rel.endswith((".hh", ".hpp")):
                    rules.check_raw_units(ctx, rel)
    if "unordered-iter" in active_rules:
        passes.run_unordered_iter(ctx, scan_files)
    if "fleet-hotloop" in active_rules:
        passes.run_fleet_hotloop(ctx, scan_files)
    if "layering" in active_rules:
        passes.run_layering(ctx)
    if "ckpt-coverage" in active_rules:
        passes.run_ckpt_coverage(ctx)
    # Last: it needs every other rule's allow-usage bookkeeping.
    if "stale-allow" in active_rules:
        passes.run_stale_allow(ctx, scan_files, ALL_RULES)

    # Keep only active-rule findings, dedup identical reports (two
    # iteration patterns on one line file the same finding twice), sort.
    # Distinct messages on one line both survive — e.g. an unparseable
    # annotation next to a coverage gap.
    seen = set()
    out = []
    for f in sorted(ctx.findings):
        if f[2] not in active_rules:
            continue
        if f in seen:
            continue
        seen.add(f)
        out.append(f)
    ctx.findings = out
    return ctx


def main(argv):
    parser = argparse.ArgumentParser(
        prog="odrips-lint",
        description="Static invariant checks for the ODRIPS simulator.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--rules", default=",".join(sorted(ALL_RULES)),
                        help="comma-separated subset of rules to run")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human",
                        help="output format: human-readable lines "
                             "(default) or machine-readable JSON "
                             "records {file,line,rule,message}")
    parser.add_argument("--changed-only", action="store_true",
                        help="report findings only for files changed "
                             "vs git HEAD (plus untracked files); the "
                             "full index is still built, so cross-file "
                             "passes stay exact")
    parser.add_argument("paths", nargs="*",
                        default=["src", "bench", "tests"],
                        help="subdirectories to scan "
                             "(default: src bench tests)")
    args = parser.parse_args(argv)

    active = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = active - ALL_RULES
    if unknown:
        print(f"odrips-lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    if not os.path.isdir(args.root):
        print(f"odrips-lint: no such directory: {args.root}",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    ctx = run(root, args.paths or ["src", "bench", "tests"], active)

    findings = ctx.findings
    if args.changed_only:
        changed = changed_files(root)
        if changed is None:
            print("odrips-lint: --changed-only: git unavailable; "
                  "reporting the full tree", file=sys.stderr)
        else:
            changed = {p.replace(os.sep, "/") for p in changed}
            findings = [f for f in findings
                        if f[0].replace(os.sep, "/") in changed]

    if args.format == "json":
        records = [{"file": rel.replace(os.sep, "/"), "line": line,
                    "rule": rule, "message": message}
                   for rel, line, rule, message in findings]
        print(json.dumps(records, indent=1))
    else:
        for rel, line, rule, message in findings:
            print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"odrips-lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0
