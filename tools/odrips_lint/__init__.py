"""odrips-lint v2: indexed static analysis for the ODRIPS simulator.

Package layout:
  source.py    comment/string stripping + tokenizer
  cxxindex.py  whole-repo model: classes/members, includes, functions
  rules.py     v1 per-line token rules and build-integration rules
  passes.py    semantic passes: ckpt-coverage, layering, cross-file
               unordered-iter, stale-allow
  cli.py       driver, allow-tag bookkeeping, human/JSON output

The executable entry point stays at tools/odrips-lint.
"""

__version__ = "2.0"
