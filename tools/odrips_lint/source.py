"""Comment/string stripping and tokenization for the odrips-lint indexer.

The indexer never sees a compiler front end: it works on a per-line
"code view" of each translation unit (comments and string/char literals
blanked, line count preserved so findings map back to real lines) plus a
parallel "comment view" that keeps the comment text — annotations such
as `// ckpt: skip(...)` and `// odrips-lint: allow(...)` live in
comments, so both views are needed.
"""

import re

__all__ = [
    "split_code_and_comments",
    "strip_comments_and_strings",
    "tokenize",
    "Token",
]


def split_code_and_comments(lines):
    """Return (code_lines, comment_lines) for C++ source ``lines``.

    ``code_lines[i]`` is line ``i`` with comments and string/char
    literals blanked (strings collapse to an empty literal ``""`` so
    token shapes survive); ``comment_lines[i]`` is the concatenated
    comment text found on line ``i`` ("" when none). Both lists keep
    the input line count, so indexes are 0-based line numbers.

    Raw strings are treated as plain strings; the repo does not use
    multi-line raw literals.
    """
    code = []
    comments = []
    in_block = False
    for line in lines:
        buf = []
        cbuf = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    cbuf.append(line[i:])
                    i = n
                else:
                    cbuf.append(line[i:end])
                    in_block = False
                    i = end + 2
                continue
            c = line[i]
            two = line[i:i + 2]
            if two == "//":
                cbuf.append(line[i + 2:])
                break
            if two == "/*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                buf.append(quote + quote)
                continue
            buf.append(c)
            i += 1
        code.append("".join(buf))
        comments.append(" ".join(p for p in cbuf if p.strip()))
    return code, comments


def strip_comments_and_strings(lines):
    """Back-compat helper: just the code view (see split_code_and_comments)."""
    return split_code_and_comments(lines)[0]


# Multi-character operators first so the alternation is longest-match.
_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\d[\w.+-]*"  # numbers incl. 1e-3, 0x1f (good enough for indexing)
    r"|::|->\*?|\+\+|--|<<=?|>>=?|<=|>=|==|!=|&&|\|\||\.\.\."
    r"|[-+*/%^&|~!<>=?.,;:(){}\[\]#\\]"
)

_IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


class Token:
    """One lexical token: text, 0-based line, and call-position flag."""

    __slots__ = ("text", "line", "is_call")

    def __init__(self, text, line):
        self.text = text
        self.line = line
        self.is_call = False

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.text!r}, line={self.line})"


_KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "static_assert", "throw", "new",
    "delete", "assert", "defined",
}


def tokenize(code_lines):
    """Tokenize blanked code lines into a flat Token list.

    Preprocessor lines (and their backslash continuations) are skipped
    entirely — the indexer records `#include` edges from the raw lines
    instead, and macro bodies would only confuse the brace tracker.

    An identifier immediately followed by ``(`` is marked as being in
    call position (used by the ckpt-coverage closure); control-flow
    keywords are excluded.
    """
    toks = []
    in_continuation = False
    for lineno, line in enumerate(code_lines):
        stripped = line.lstrip()
        if in_continuation or stripped.startswith("#"):
            in_continuation = line.rstrip().endswith("\\")
            continue
        for m in _TOKEN_RE.finditer(line):
            toks.append(Token(m.group(0), lineno))
    for i, tok in enumerate(toks):
        if (i + 1 < len(toks) and toks[i + 1].text == "("
                and _IDENT_RE.match(tok.text)
                and tok.text not in _KEYWORDS_NOT_CALLS):
            tok.is_call = True
    return toks
