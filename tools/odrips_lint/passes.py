"""Index-driven semantic passes for odrips-lint.

  ckpt-coverage   every data member of every checkpoint-covered state
                  type must be serialized by the capture AND restore
                  sides of src/core/checkpoint.cc (directly or through
                  the save/load helpers it calls), or carry an explicit
                  `// ckpt:` annotation. Adding a field without
                  updating Snapshot becomes a lint failure instead of
                  a flaky golden.
  layering        the src/ include graph must respect the layer order
                  arch < sim < {clock,exec,stats} <
                  {power,timing,io,mem,security} <
                  {platform,workload,flows} < core < {store,fleet}: no
                  include may point at a higher tier, same-tier
                  sibling includes must stay acyclic, and no
                  file-level include cycle is permitted anywhere.
  unordered-iter  (cross-file half) iterating an unordered container
                  member that was declared in a *header* from another
                  translation unit — the per-file rule cannot see the
                  declaration, the index can.
  fleet-hotloop   functions annotated `// fleet: hotloop` (the fleet
                  campaign's per-device path) must stay free of heap
                  allocation and of unordered-container iteration: a
                  stray push_back or make_unique in the device loop
                  costs throughput at fleet scale and an unordered walk
                  breaks the determinism gate.
  stale-allow     `odrips-lint: allow(...)` comments that no longer
                  suppress any finding, so suppressions cannot rot.
"""

import os
import re

from odrips_lint.rules import STATE_COPY_TYPES

__all__ = ["run_layering", "run_unordered_iter", "run_ckpt_coverage",
           "run_fleet_hotloop", "run_stale_allow", "LAYER_TIERS",
           "CHECKPOINT_FILE"]

CHECKPOINT_FILE = "src/core/checkpoint.cc"

# The include DAG, lowest tier first. A file in src/<dir>/ may include
# its own directory, any lower tier, and same-tier siblings (the
# sibling edges must form a DAG — checked below); it must never include
# a higher tier.
LAYER_TIERS = (
    ("arch",),
    ("sim",),
    ("clock", "exec", "stats"),
    ("power", "timing", "io", "mem", "security"),
    ("platform", "workload", "flows"),
    ("core",),
    ("store", "fleet"),
)

_TIER_OF = {d: i for i, tier in enumerate(LAYER_TIERS) for d in tier}

_IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def _src_dir_of(rel):
    """'src/<d>/...' -> '<d>' when <d> is a known layer, else None."""
    parts = rel.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in _TIER_OF:
        return parts[1]
    return None


# -------------------------------------------------------------- layering


def run_layering(ctx):
    idx = ctx.index
    src_files = sorted(r for r in idx.files
                       if r.replace(os.sep, "/").startswith("src/"))

    # 1. Per-include tier check + directory edge collection.
    dir_edges = {}
    file_edges = {}
    for rel in src_files:
        d = _src_dir_of(rel)
        info = idx.files[rel]
        edges = []
        for line_idx, inc in info.includes:
            target_dir = inc.split("/")[0] if "/" in inc else None
            resolved = "src/" + inc
            if resolved in idx.files:
                edges.append(resolved)
            if d is None or target_dir not in _TIER_OF:
                continue
            if _TIER_OF[target_dir] > _TIER_OF[d]:
                ctx.report(rel, line_idx, "layering",
                           f"src/{d}/ (tier {_TIER_OF[d]}) must not "
                           f"include \"{inc}\" from src/{target_dir}/ "
                           f"(tier {_TIER_OF[target_dir]}): the layer "
                           "order is arch < sim < {clock,exec,stats} < "
                           "{power,timing,io,mem,security} < "
                           "{platform,workload,flows} < core < "
                           "{store,fleet}")
            if target_dir != d:
                dir_edges.setdefault(d, set()).add(target_dir)
        file_edges[rel] = edges

    # 2. Same-tier sibling edges must form a DAG at directory level.
    for cycle in _find_cycles(dir_edges):
        if len({_TIER_OF[d] for d in cycle}) != 1:
            continue  # a cross-tier cycle already contains an upward
            # include reported above
        anchor = min(cycle)
        rel = next((r for r in src_files if _src_dir_of(r) == anchor),
                   None)
        if rel is not None:
            ctx.report(rel, 0, "layering",
                       "include cycle between same-tier directories: "
                       + " -> ".join(sorted(cycle)) + " -> ...")

    # 3. No file-level include cycles anywhere.
    for cycle in _find_cycles(file_edges):
        anchor = min(cycle)
        path = _cycle_order(file_edges, anchor, set(cycle))
        ctx.report(anchor, 0, "layering",
                   "file include cycle: " + " -> ".join(path)
                   + " -> " + path[0])


def _find_cycles(edges):
    """Strongly connected components with >1 node, or self-loops.

    Returns a deterministic list of node sets. Iterative Tarjan.
    """
    index_of = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for start in sorted(edges):
        if start in index_of:
            continue
        work = [(start, iter(sorted(edges.get(start, ()))))]
        index_of[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                comp = set()
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    comp.add(top)
                    if top == node:
                        break
                if len(comp) > 1 or node in edges.get(node, ()):
                    sccs.append(comp)
    return sccs


def _cycle_order(edges, start, comp):
    """Walk ``comp`` from ``start`` along edges for a readable path."""
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = next((n for n in sorted(edges.get(node, ()))
                    if n in comp and n not in seen), None)
        if nxt is None:
            return path
        path.append(nxt)
        seen.add(nxt)
        node = nxt


# -------------------------------------------------------- unordered-iter

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;{=]"
)
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
# Ordered/sequence container declarations: a local with one of these
# types shadows any same-named unordered member for this file.
ORDERED_DECL_RE = re.compile(
    r"\b(?:map|set|multimap|multiset|vector|deque|list|array|string"
    r"|span)\s*<[^;{]*>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:[\w.\->]*[.>])?(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin)\s*\(")


def unordered_members(index):
    """name -> (class qual_name, file, 1-based line) for every
    unordered-container data member in the index."""
    out = {}
    for name in sorted(index.classes):
        for cls in index.classes[name]:
            for m in cls.members:
                if UNORDERED_TYPE_RE.search(m.type_text) and \
                        m.name not in out:
                    out[m.name] = (cls.qual_name, cls.file, m.line + 1)
    return out


def run_unordered_iter(ctx, scan_files):
    members = unordered_members(ctx.index)
    for rel in scan_files:
        info = ctx.file(rel)
        if info is None:
            continue
        local_unordered = set()
        local_ordered = set()
        for line in info.code:
            local_unordered.update(UNORDERED_DECL_RE.findall(line))
            local_ordered.update(ORDERED_DECL_RE.findall(line))
        for idx, line in enumerate(info.code):
            names = [m.group(1) for m in RANGE_FOR_RE.finditer(line)]
            names += [m.group(1) for m in BEGIN_CALL_RE.finditer(line)]
            for name in names:
                if name in local_unordered:
                    ctx.report(rel, idx, "unordered-iter",
                               f"iteration over unordered container "
                               f"'{name}' is order-unstable")
                elif name in members and name not in local_ordered:
                    qual, decl_file, decl_line = members[name]
                    if decl_file == rel:
                        continue  # member decl matched local regex or
                        # is visible to the per-file path already
                    ctx.report(rel, idx, "unordered-iter",
                               f"iteration over unordered member "
                               f"'{qual}::{name}' (declared at "
                               f"{decl_file}:{decl_line}) is "
                               "order-unstable")


# --------------------------------------------------------- ckpt-coverage

_CAPTURE_NAME_RE = re.compile(r"save|capture|write|pack", re.IGNORECASE)
_RESTORE_NAME_RE = re.compile(r"load|restore|read|unpack", re.IGNORECASE)


def _classify_seed(qual_name):
    """capture / restore / None (wrappers like fork() or writeFile()
    call into a classified seed anyway, so they add nothing)."""
    base = qual_name.split("::")[-1]
    cap = bool(_CAPTURE_NAME_RE.search(base))
    res = bool(_RESTORE_NAME_RE.search(base))
    if cap and not res:
        return "capture"
    if res and not cap:
        return "restore"
    return None


def _closure(index, seeds):
    """Transitive closure over the call-position call graph."""
    seen = set()
    queue = list(seeds)
    out = []
    while queue:
        fd = queue.pop()
        key = id(fd)
        if key in seen:
            continue
        seen.add(key)
        out.append(fd)
        for call in sorted(fd.calls):
            for nxt in index.function_bodies(call):
                if id(nxt) not in seen:
                    queue.append(nxt)
    return out


def _type_tokens(type_text):
    return set(re.findall(r"[A-Za-z_]\w*", type_text))


def run_ckpt_coverage(ctx):
    idx = ctx.index
    info = idx.files.get(CHECKPOINT_FILE)
    if info is None:
        return  # tree has no checkpoint subsystem (e.g. fixtures)

    # 1. Seed contexts: every function defined in checkpoint.cc,
    #    classified capture/restore/both by name.
    cap_seeds = []
    res_seeds = []
    for name in sorted(idx.functions):
        for fd in idx.functions[name]:
            if fd.file != CHECKPOINT_FILE:
                continue
            kind = _classify_seed(fd.qual_name)
            if kind == "capture":
                cap_seeds.append(fd)
            elif kind == "restore":
                res_seeds.append(fd)

    # 2. Close each side over the call graph: p.mee->saveState(w) pulls
    #    Mee::saveState's body into the capture side, and so on down.
    cap_idents = set()
    for fd in _closure(idx, cap_seeds):
        cap_idents |= fd.idents
    res_idents = set()
    for fd in _closure(idx, res_seeds):
        res_idents |= fd.idents

    # 3. Covered types: STATE_COPY_TYPES plus every indexed class whose
    #    name appears in checkpoint.cc, then transitively the types of
    #    covered (non-exempt) members. Only definitions under src/
    #    count, and the serialization transport itself
    #    (src/sim/checkpoint/) is not simulated state.
    def eligible(cls):
        posix = cls.file.replace(os.sep, "/")
        return (posix.startswith("src/")
                and not posix.startswith("src/sim/checkpoint/"))

    ckpt_idents = {t.text for t in info.tokens
                   if _IDENT_RE.match(t.text)}
    covered = {}

    def add_type(name):
        for cls in idx.class_defs(name):
            if not eligible(cls) or cls.qual_name in covered:
                continue
            if any(kind in ("skip", "derived", "via")
                   for kind, _ in cls.tags):
                continue  # whole type annotated away at its head
            covered[cls.qual_name] = cls

    for name in STATE_COPY_TYPES:
        add_type(name)
    for name in sorted(idx.classes):
        if name in ckpt_idents:
            add_type(name)
    # Transitive member-type closure (bounded: annotations stop it).
    while True:
        grew = False
        for cls in list(covered.values()):
            for m in cls.members:
                if m.exempt_kind():
                    continue
                for tok in sorted(_type_tokens(m.type_text)):
                    if tok in idx.classes:
                        before = len(covered)
                        add_type(tok)
                        grew = grew or len(covered) != before
        if not grew:
            break

    # 4. Audit every member of every covered type.
    for qual in sorted(covered):
        cls = covered[qual]
        for m in cls.members:
            for kind, arg in m.tags:
                if kind == "invalid":
                    ctx.report(cls.file, m.line, "ckpt-coverage",
                               f"unparseable ckpt annotation on "
                               f"{qual}::{m.name}: \"{arg}\" — use "
                               "'// ckpt: skip(<reason>)', "
                               "'// ckpt: derived' or "
                               "'// ckpt: via(<carrier>)'")
                elif kind == "skip" and not arg:
                    ctx.report(cls.file, m.line, "ckpt-coverage",
                               f"ckpt: skip() on {qual}::{m.name} "
                               "needs a reason")
            if m.exempt_kind():
                continue
            in_cap = m.name in cap_idents
            in_res = m.name in res_idents
            if in_cap and in_res:
                continue
            if not in_cap and not in_res:
                missing = "captured or restored"
            elif not in_cap:
                missing = "captured"
            else:
                missing = "restored"
            ctx.report(cls.file, m.line, "ckpt-coverage",
                       f"state member {qual}::{m.name} is never "
                       f"{missing} by the snapshot path rooted at "
                       "core/checkpoint.cc; serialize it or annotate "
                       "it with '// ckpt: skip(<reason>)' / "
                       "'// ckpt: derived' / '// ckpt: via(<carrier>)'")


# --------------------------------------------------------- fleet-hotloop

HOTLOOP_TAG_RE = re.compile(r"\bfleet:\s*hotloop\b")

# How far below the annotation the function's opening brace may sit
# (doc comment + template/attribute lines + a multi-line signature).
_HOTLOOP_BRACE_WINDOW = 20

# Heap-allocation tokens. `new` covers placement and array forms;
# the member calls are the std container growth surface (push_back on
# a reserved vector still reallocs on overflow, so it is banned too —
# hot-loop state must be sized before the loop).
HEAP_ALLOC_RE = re.compile(
    r"\bnew\b"
    r"|\bmake_(?:unique|shared)\s*<"
    r"|\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("
    r"|\.\s*(?:push_back|emplace_back|emplace|resize|reserve|insert"
    r"|append|push_front|emplace_front)\s*\(")


def _hotloop_bodies(info):
    """Yield (annotation_line, [body line indexes]) for each
    `// fleet: hotloop` annotation in ``info``.

    The body is the brace-balanced block opened by the first `{` found
    within a few lines of the annotation; an annotation with no
    followable brace yields an empty body (reported by the caller).
    """
    for idx, comment in enumerate(info.comments):
        if not HOTLOOP_TAG_RE.search(comment):
            continue
        open_line = None
        for probe in range(idx, min(idx + _HOTLOOP_BRACE_WINDOW,
                                    len(info.code))):
            if "{" in info.code[probe]:
                open_line = probe
                break
        if open_line is None:
            yield idx, []
            continue
        body = []
        depth = 0
        line = open_line
        while line < len(info.code):
            opened = info.code[line].count("{")
            closed = info.code[line].count("}")
            depth += opened - closed
            body.append(line)
            if depth <= 0 and opened + closed > 0:
                break
            line += 1
        yield idx, body


def run_fleet_hotloop(ctx, scan_files):
    members = unordered_members(ctx.index)
    for rel in scan_files:
        info = ctx.file(rel)
        if info is None:
            continue
        local_unordered = set()
        for line in info.code:
            local_unordered.update(UNORDERED_DECL_RE.findall(line))
        for tag_line, body in _hotloop_bodies(info):
            if not body:
                ctx.report(rel, tag_line, "fleet-hotloop",
                           "'fleet: hotloop' annotation is not followed "
                           "by a function body")
                continue
            for idx in body:
                line = info.code[idx]
                if HEAP_ALLOC_RE.search(line):
                    ctx.report(rel, idx, "fleet-hotloop",
                               "heap allocation inside a 'fleet: "
                               "hotloop' function; size all state "
                               "before the per-device loop")
                names = [m.group(1)
                         for m in RANGE_FOR_RE.finditer(line)]
                names += [m.group(1)
                          for m in BEGIN_CALL_RE.finditer(line)]
                for name in names:
                    if name in local_unordered or name in members:
                        ctx.report(rel, idx, "fleet-hotloop",
                                   f"unordered-container iteration "
                                   f"over '{name}' inside a 'fleet: "
                                   "hotloop' function; hot-loop "
                                   "traversal must be order-stable")


# ----------------------------------------------------------- stale-allow


def run_stale_allow(ctx, scan_files, all_rules):
    """Must run after every other active rule has reported."""
    for rel in scan_files:
        info = ctx.file(rel)
        if info is None:
            continue
        for line_idx, rules in sorted(ctx.allow_tags(rel).items()):
            for rule in sorted(rules):
                if rule == "stale-allow":
                    continue
                if rule not in all_rules:
                    ctx.report(rel, line_idx, "stale-allow",
                               f"allow({rule}) names an unknown rule")
                    continue
                if rule not in ctx.active_rules:
                    continue  # that rule did not run; cannot judge
                if (rel, line_idx, rule) not in ctx.used_allows:
                    ctx.report(rel, line_idx, "stale-allow",
                               f"allow({rule}) no longer suppresses "
                               "any finding; remove the stale "
                               "suppression")
