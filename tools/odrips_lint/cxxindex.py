"""Whole-repo C++ index for odrips-lint's semantic passes.

A deliberately small model, extracted with a brace-tracking token
walker (no libclang):

  * per file: raw lines, blanked code lines, comment text per line,
    `#include "..."` edges, and the full token stream;
  * per class/struct definition: qualified name, file/line, and every
    data member (name, declared type text, line, `// ckpt:` tags,
    ref/const/static/function-type flags);
  * per function definition (free, out-of-line method, or inline
    method): unqualified name, qualified name, the set of identifier
    tokens in its body, and the subset that appear in call position.

The model is an over-approximation in the places a linter can afford
to be (identifier matching instead of name lookup, all overloads of a
name treated alike) and exact where it must be (line numbers, member
lists, include edges).
"""

import os
import re

from odrips_lint.source import split_code_and_comments, tokenize

__all__ = ["Index", "FileInfo", "ClassInfo", "Member", "FuncDef",
           "CKPT_TAG_RE", "parse_ckpt_tags"]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Annotation grammar for intentionally-unserialized state members:
#   // ckpt: skip(<reason>)   not serialized on purpose; say why
#   // ckpt: derived          recomputed from other state on restore
#   // ckpt: via(<carrier>)   serialized indirectly through <carrier>
# A tag on the member's declaration line (or the line above) applies to
# that member; on a class head it applies to the whole type.
CKPT_TAG_RE = re.compile(
    r"ckpt:\s*(skip|via)\(([^)]*)\)|ckpt:\s*(derived)\b")

_ACCESS_SPECIFIERS = {"public", "private", "protected"}

_DECL_SKIP_STARTERS = {
    "using", "typedef", "friend", "static_assert", "template",
}

_TYPE_KEYWORD_NOISE = {
    "const", "constexpr", "constinit", "mutable", "static", "inline",
    "volatile", "typename", "struct", "class", "enum", "unsigned",
    "signed", "long", "short", "explicit", "virtual",
}

_FUNCTION_TYPE_RE = re.compile(r"\bstd\s*::\s*function\b|\bfunction\s*<")


def parse_ckpt_tags(comment_text):
    """Extract ckpt annotations from one line's comment text.

    Returns a list of (kind, argument) pairs, e.g. [("skip", "reason")]
    — plus ("invalid", raw) entries for comments that say ``ckpt:`` but
    do not match the grammar, so typos fail loudly instead of silently
    not suppressing.
    """
    tags = []
    if "ckpt:" not in comment_text:
        return tags
    matched_spans = []
    for m in CKPT_TAG_RE.finditer(comment_text):
        matched_spans.append(m.span())
        if m.group(3):
            tags.append(("derived", ""))
        else:
            tags.append((m.group(1), m.group(2).strip()))
    # Any "ckpt:" occurrence not covered by a valid tag is a typo
    # (e.g. "ckpt: skipped" or "ckpt: skip" without parentheses) —
    # unless it is ordinary prose like "ckpt::Writer" (scope operator).
    for m in re.finditer(r"ckpt:(?!:)", comment_text):
        if not any(s <= m.start() < e for s, e in matched_spans):
            tail = comment_text[m.start():m.start() + 40].strip()
            tags.append(("invalid", tail))
    return tags


class Member:
    __slots__ = ("name", "type_text", "line", "tags", "is_reference",
                 "is_const", "is_static", "is_function_type")

    def __init__(self, name, type_text, line):
        self.name = name
        self.type_text = type_text
        self.line = line  # 0-based
        self.tags = []
        self.is_reference = False
        self.is_const = False
        self.is_static = False
        self.is_function_type = False

    def exempt_kind(self):
        """Why this member needs no serialization, or None."""
        for kind, _ in self.tags:
            if kind in ("skip", "derived", "via"):
                return kind
        if self.is_reference:
            return "reference"
        if self.is_static:
            return "static"
        if self.is_const:
            return "const"
        if self.is_function_type:
            return "callable"
        return None


class ClassInfo:
    __slots__ = ("name", "qual_name", "file", "line", "members", "tags")

    def __init__(self, name, qual_name, file, line):
        self.name = name
        self.qual_name = qual_name
        self.file = file
        self.line = line  # 0-based
        self.members = []
        self.tags = []


class FuncDef:
    __slots__ = ("name", "qual_name", "file", "line", "idents", "calls")

    def __init__(self, name, qual_name, file, line, idents, calls):
        self.name = name
        self.qual_name = qual_name
        self.file = file
        self.line = line  # 0-based
        self.idents = idents  # set of identifier tokens in the body
        self.calls = calls    # subset in call position


class FileInfo:
    __slots__ = ("rel", "raw", "code", "comments", "tokens", "includes")

    def __init__(self, rel, raw, code, comments, tokens, includes):
        self.rel = rel
        self.raw = raw
        self.code = code
        self.comments = comments
        self.tokens = tokens
        self.includes = includes  # [(0-based line, include path)]


_IDENT_START = re.compile(r"[A-Za-z_]")


def _is_ident(text):
    return bool(_IDENT_START.match(text)) and text.isidentifier()


class _Parser:
    """Token-stream walker extracting classes, members and functions."""

    def __init__(self, rel, tokens, comments, index):
        self.rel = rel
        self.toks = tokens
        self.comments = comments
        self.index = index
        self.i = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, k=0):
        j = self.i + k
        return self.toks[j].text if j < len(self.toks) else None

    def _collect_body(self):
        """The opening ``{`` was just consumed; collect to its match.

        Returns the spanned tokens (exclusive of the outer braces) and
        leaves self.i just past the closing ``}``. Bails gracefully at
        EOF on unbalanced input.
        """
        depth = 1
        spanned = []
        while self.i < len(self.toks):
            t = self.toks[self.i].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return spanned
            spanned.append(self.toks[self.i])
            self.i += 1
        return spanned

    def _skip_template_args(self):
        """self.i at ``<``: skip balanced angle brackets (best effort)."""
        depth = 0
        while self.i < len(self.toks):
            t = self.toks[self.i].text
            if t == "<" or t == "<<":
                depth += 2 if t == "<<" else 1
            elif t == ">" or t == ">>":
                depth -= 2 if t == ">>" else 1
                if depth <= 0:
                    self.i += 1
                    return
            elif t in (";", "{"):
                return  # not template args after all
            self.i += 1

    # -- statement scanning ----------------------------------------------

    def _scan_statement(self):
        """Collect tokens until ``;`` or ``{`` at top level.

        Tracks () and [] nesting, and <> nesting heuristically (a ``<``
        opens template args only when preceded by an identifier, ``>``
        or ``::``). ``operator`` is followed by raw operator symbols
        which are skipped verbatim so ``operator<`` cannot derail the
        angle tracking. Returns (tokens, terminator) where terminator
        is ";", "{", or None at EOF.
        """
        out = []
        paren = 0
        angle = 0
        prev = None
        while self.i < len(self.toks):
            tok = self.toks[self.i]
            t = tok.text
            if t == "operator":
                out.append(tok)
                self.i += 1
                while (self.i < len(self.toks)
                       and not _is_ident(self._peek())
                       and self._peek() not in ("(", ";")):
                    out.append(self.toks[self.i])
                    self.i += 1
                prev = "operator"
                continue
            if paren == 0 and angle == 0 and t in (";", "{"):
                self.i += 1
                return out, t
            if t in ("(", "["):
                paren += 1
            elif t in (")", "]"):
                paren -= 1
            elif t == "<" and paren >= 0 and prev is not None and (
                    _is_ident(prev) or prev in (">", "::")):
                angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == ">>" and angle > 0:
                angle -= 2
                if angle < 0:
                    angle = 0
            out.append(tok)
            prev = t
            self.i += 1
        return out, None

    # -- declarations ----------------------------------------------------

    @staticmethod
    def _top_level_paren_index(stmt):
        """Index of the first ``(`` outside template args, or -1."""
        angle = 0
        prev = None
        for k, tok in enumerate(stmt):
            t = tok.text
            if t == "<" and prev is not None and (
                    _is_ident(prev) or prev in (">", "::")):
                angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t == "(" and angle == 0:
                return k
            prev = t
        return -1

    @staticmethod
    def _function_name_before(stmt, paren_idx):
        """Qualified name ending just before stmt[paren_idx], or None."""
        k = paren_idx - 1
        parts = []
        if k >= 0 and not _is_ident(stmt[k].text):
            # operator() / operator< etc: back up over the symbols to
            # the ``operator`` keyword.
            j = k
            while j >= 0 and stmt[j].text != "operator":
                if _is_ident(stmt[j].text) or stmt[j].text in (";", ")"):
                    return None
                j -= 1
            if j >= 0:
                return "operator", stmt[j].line
            return None
        while k >= 0 and _is_ident(stmt[k].text):
            parts.append(stmt[k].text)
            if k - 1 >= 0 and stmt[k - 1].text == "::":
                k -= 2
                # skip template args in qualifiers: A<T>::f — rare, and
                # the walker already folded <...> into the statement.
                continue
            break
        if not parts:
            return None
        parts.reverse()
        return "::".join(parts), stmt[paren_idx - 1].line

    def _record_function(self, stmt, paren_idx, class_stack):
        """The function's opening ``{`` was just consumed by the
        statement scanner; stmt holds everything before it."""
        named = self._function_name_before(stmt, paren_idx)
        body = self._collect_body()
        if named is None:
            return
        name, line = named
        base = name.split("::")[-1]
        if class_stack and "::" not in name:
            qual = "::".join(c.name for c in class_stack) + "::" + name
        else:
            qual = name
        idents = set()
        calls = set()
        # Include the ctor-initializer tokens (between ')' and '{'),
        # which reference members, by scanning the statement tail too.
        for tok in list(stmt) + body:
            if _is_ident(tok.text):
                idents.add(tok.text)
                if tok.is_call:
                    calls.add(tok.text)
        self.index.functions.setdefault(base, []).append(
            FuncDef(base, qual, self.rel, line, idents, calls))

    def _member_from_statement(self, stmt, cls):
        """Classify a ';'-terminated class-body statement."""
        if not stmt:
            return
        head = stmt[0].text
        if head in _DECL_SKIP_STARTERS or head == "enum":
            return
        texts = [t.text for t in stmt]
        if "operator" in texts:
            return
        paren_idx = self._top_level_paren_index(stmt)
        if paren_idx >= 0:
            return  # method declaration (or ctor) — not a data member
        # Strip default-member-initializer: cut at top-level '='.
        angle = 0
        prev = None
        cut = len(stmt)
        for k, tok in enumerate(stmt):
            t = tok.text
            if t == "<" and prev is not None and (
                    _is_ident(prev) or prev in (">", "::")):
                angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t == "=" and angle == 0:
                cut = k
                break
            prev = t
        decl = stmt[:cut]
        # Drop trailing array extents and bitfield widths.
        while decl and decl[-1].text == "]":
            depth = 0
            for k in range(len(decl) - 1, -1, -1):
                if decl[k].text == "]":
                    depth += 1
                elif decl[k].text == "[":
                    depth -= 1
                    if depth == 0:
                        decl = decl[:k]
                        break
            else:
                break
        if len(decl) >= 2 and decl[-2].text == ":":
            decl = decl[:-2]  # bitfield
        if not decl:
            return
        name_tok = None
        for tok in reversed(decl):
            if _is_ident(tok.text):
                name_tok = tok
                break
        if name_tok is None or name_tok is decl[0]:
            return  # no separate type — not a data member
        if name_tok.text in _TYPE_KEYWORD_NOISE:
            return
        type_text = " ".join(t.text for t in decl
                             if t is not name_tok)
        member = Member(name_tok.text, type_text, name_tok.line)
        angle = 0
        prev = None
        for tok in decl:
            t = tok.text
            if t == "<" and prev is not None and (
                    _is_ident(prev) or prev in (">", "::")):
                angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif angle == 0:
                if t == "&":
                    member.is_reference = True
                elif t == "const":
                    member.is_const = True
                elif t in ("static", "constexpr"):
                    member.is_static = True
            prev = t
        if _FUNCTION_TYPE_RE.search(type_text):
            member.is_function_type = True
        first_line = stmt[0].line
        for probe in range(max(0, first_line - 1), name_tok.line + 1):
            member.tags.extend(parse_ckpt_tags(self.comments[probe]))
        cls.members.append(member)

    # -- class bodies ----------------------------------------------------

    def _parse_class_body(self, cls, class_stack, ns):
        """self.i is just past the class's opening '{'."""
        while self.i < len(self.toks):
            t = self._peek()
            if t == "}":
                self.i += 1
                if self._peek() == ";":
                    self.i += 1
                return
            if t in _ACCESS_SPECIFIERS and self._peek(1) == ":":
                self.i += 2
                continue
            if t in ("class", "struct") and self._looks_like_class_def():
                self._parse_class(class_stack + [cls], ns)
                continue
            if t == "enum":
                self._skip_enum()
                continue
            if t == "template":
                self.i += 1
                if self._peek() == "<":
                    self._skip_template_args()
                continue
            stmt, term = self._scan_statement()
            if term == "{":
                paren_idx = self._top_level_paren_index(stmt)
                if paren_idx >= 0:
                    self._record_function(stmt, paren_idx,
                                          class_stack + [cls])
                else:
                    # Brace initializer (``Milliwatts sum{};``): fold
                    # the braces in and keep scanning to the ';'.
                    self._collect_body()
                    tail, term2 = self._scan_statement()
                    if term2 == ";":
                        self._member_from_statement(stmt + tail, cls)
            elif term == ";":
                self._member_from_statement(stmt, cls)
            else:
                return  # EOF

    def _skip_enum(self):
        """self.i at ``enum``: skip the whole definition."""
        while self.i < len(self.toks):
            t = self._peek()
            if t == "{":
                self.i += 1
                self._collect_body()
                if self._peek() == ";":
                    self.i += 1
                return
            if t == ";":
                self.i += 1
                return
            self.i += 1

    def _looks_like_class_def(self):
        """At ``class``/``struct``: definition (not fwd decl/elaborated)?"""
        j = self.i + 1
        # skip attributes / macro-ish tokens until the name
        while j < len(self.toks) and not _is_ident(self.toks[j].text):
            if self.toks[j].text in (";", "{", "}"):
                return False
            j += 1
        j += 1  # past the name
        depth = 0
        while j < len(self.toks):
            t = self.toks[j].text
            if depth == 0 and t == "{":
                return True
            if depth == 0 and t in (";", ")", ","):
                return False
            if t == "<":
                depth += 1
            elif t == ">":
                depth = max(0, depth - 1)
            elif t == ">>":
                depth = max(0, depth - 2)
            j += 1
        return False

    def _parse_class(self, class_stack, ns):
        """self.i at ``class``/``struct`` known to start a definition."""
        self.i += 1
        while self.i < len(self.toks) and not _is_ident(self._peek()):
            self.i += 1
        name = self._peek()
        head_line = self.toks[self.i].line
        self.i += 1
        # skip "final" and the base clause up to '{'
        while self.i < len(self.toks) and self._peek() != "{":
            if self._peek() == "<":
                self._skip_template_args()
                continue
            self.i += 1
        if self.i >= len(self.toks):
            return
        self.i += 1  # past '{'
        qual_parts = [c.name for c in class_stack] + [name]
        qual = "::".join(qual_parts)
        cls = ClassInfo(name, qual, self.rel, head_line)
        for probe in (head_line - 1, head_line):
            if 0 <= probe < len(self.comments):
                cls.tags.extend(parse_ckpt_tags(self.comments[probe]))
        self.index.classes.setdefault(name, []).append(cls)
        self._parse_class_body(cls, class_stack, ns)

    # -- top level -------------------------------------------------------

    def parse(self):
        while self.i < len(self.toks):
            t = self._peek()
            if t == "namespace":
                self.i += 1
                while self.i < len(self.toks) and self._peek() not in (
                        "{", ";", "="):
                    self.i += 1
                if self._peek() == "{":
                    self.i += 1  # descend into the namespace
                elif self._peek() is not None:
                    self.i += 1  # alias / ; — skip
                continue
            if t in ("class", "struct") and self._looks_like_class_def():
                self._parse_class([], None)
                continue
            if t == "enum":
                self._skip_enum()
                continue
            if t == "template":
                self.i += 1
                if self._peek() == "<":
                    self._skip_template_args()
                continue
            if t == "}":
                self.i += 1  # namespace close
                continue
            stmt, term = self._scan_statement()
            if term == "{":
                paren_idx = self._top_level_paren_index(stmt)
                has_eq = any(tok.text == "=" for tok in stmt)
                if paren_idx >= 0 and not has_eq:
                    self._record_function(stmt, paren_idx, [])
                else:
                    self._collect_body()
                    # variable with brace init: run on to the ';'
                    self._scan_statement()
            elif term is None:
                return


class Index:
    """Parsed model of a file set (see module docstring)."""

    def __init__(self, root):
        self.root = root
        self.files = {}       # rel -> FileInfo
        self.classes = {}     # unqualified name -> [ClassInfo]
        self.functions = {}   # unqualified name -> [FuncDef]

    def add_file(self, rel):
        if rel in self.files:
            return self.files[rel]
        path = os.path.join(self.root, rel)
        try:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as f:
                raw = f.read().splitlines()
        except OSError:
            return None
        code, comments = split_code_and_comments(raw)
        includes = []
        for lineno, line in enumerate(raw):
            m = INCLUDE_RE.match(line)
            if m:
                includes.append((lineno, m.group(1)))
        tokens = tokenize(code)
        info = FileInfo(rel, raw, code, comments, tokens, includes)
        self.files[rel] = info
        _Parser(rel, tokens, comments, self).parse()
        return info

    # -- queries ---------------------------------------------------------

    def class_defs(self, name):
        """All definitions of unqualified class name ``name``."""
        return self.classes.get(name, [])

    def function_bodies(self, name):
        return self.functions.get(name, [])
