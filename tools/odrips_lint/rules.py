"""Per-line token rules and build-integration rules for odrips-lint.

These are the v1 rules (see tools/odrips-lint --help for the catalog),
now reporting through a shared Context so allow-tag usage is tracked
for the stale-allow pass. The index-driven semantic passes live in
odrips_lint.passes.
"""

import os
import re

__all__ = [
    "TOKEN_RULES", "check_tokens", "check_raw_units", "check_store_io",
    "check_cmake_targets", "check_tsan_labels",
    "WALL_CLOCK_RE", "STATE_COPY_TYPES", "strip_cmake_comments",
]

# Files that implement the sanctioned abstraction a rule polices.
RULE_EXEMPT_FILES = {
    "raw-rand": {"src/sim/random.hh", "src/sim/random.cc"},
    "wall-clock": set(),
    "raw-units": {"src/sim/units.hh"},
}

# Host time sources. Covers the classic chrono clocks, the C++20
# additions that still read host state (utc_clock, file_clock, and the
# tai/gps clocks derived from utc), POSIX clock calls, and the C
# broken-down-time readers localtime/gmtime (incl. _r/_s variants).
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock"
    r"|utc_clock|file_clock|tai_clock|gps_clock)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\blocaltime(?:_r|_s)?\s*\("
    r"|\bgmtime(?:_r|_s)?\s*\("
    r"|(?:\bstd::|\b::|^|[^:\w.])time\s*\(\s*(?:nullptr|NULL|0|&)"
)

RAW_RAND_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bdrand48\b|\blrand48\b"
)

RAW_UNIT_RE = re.compile(
    r"\bdouble\b[^;{}()=]*\b\w*(?:[Ss]econds?|SECONDS?"
    r"|[Jj]oules?|JOULES?|[Ww]atts?|WATTS?)\w*"
)

CONCURRENCY_RE = re.compile(
    r"exec/thread_pool\.hh|exec/parallel_sweep\.hh"
    r"|\bstd::(?:thread|jthread|async)\b"
)

# Intrinsic headers (x86 *mmintrin.h family, x86intrin.h, ARM NEON/ACLE)
# and the identifier families they introduce.
SIMD_RE = re.compile(
    r"\b[a-z0-9]*mmintrin\.h\b|\bx86intrin\.h\b"
    r"|\barm_neon\.h\b|\barm_acle\.h\b"
    r"|\b_mm\d{0,3}_\w+|\b__m(?:64|128|256|512)[id]?\b"
    r"|\bv(?:ld|st)[1-4]q?_\w+"
)

# The one directory allowed to contain raw intrinsics.
SIMD_EXEMPT_PREFIX = "src/arch/"

# Thread-spawning primitives: the type names themselves (but not
# nested members like std::thread::id, which spawn nothing) and
# std::async calls.
RAW_THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread)\b(?!\s*::)|\bstd::async\s*\(")

# The one directory allowed to own raw threads.
THREAD_EXEMPT_PREFIX = "src/exec/"

# Simulator state types that are NOT trivially copyable: they own heap
# allocations (vectors, unique_ptrs), intrusive event-queue links, or
# registration back-pointers, so a raw byte copy produces a sliced,
# double-freeing aliasing of the original. The serializers under
# src/sim/checkpoint/ are the sanctioned way to copy such state. The
# same list seeds the ckpt-coverage pass's audited-type set.
STATE_COPY_TYPES = (
    "Platform", "StandbySimulator", "StandbyFlows", "EventQueue",
    "Event", "PowerModel", "PowerComponent", "PowerAnalyzer",
    "EnergyAccountant", "Mee", "MeeCache", "MemoryController",
    "ProcessorContext", "ContextRegion", "DirtyLineMap", "Snapshot",
    "SnapshotImage", "StatGroup", "Histogram",
)
STATE_MEMCPY_RE = re.compile(
    r"\b(?:std::)?mem(?:cpy|move)\s*\("
    r"[^;]*\bsizeof\s*\(\s*(?:\w+::)*(?:"
    + "|".join(STATE_COPY_TYPES) + r")\s*\)")
MEMCPY_CALL_RE = re.compile(r"\b(?:std::)?mem(?:cpy|move)\s*\(")

# The one directory allowed to serialize simulator state byte-wise.
CKPT_EXEMPT_PREFIX = "src/sim/checkpoint/"

TOKEN_RULES = {"wall-clock", "raw-rand", "simd-intrinsic", "raw-thread",
               "state-memcpy"}


def check_tokens(ctx, rel):
    """Run the per-line token rules over one file."""
    info = ctx.file(rel)
    if info is None:
        return
    code = info.code
    posix = rel.replace(os.sep, "/")
    for idx, line in enumerate(code):
        if WALL_CLOCK_RE.search(line) and \
                rel not in RULE_EXEMPT_FILES["wall-clock"]:
            ctx.report(rel, idx, "wall-clock",
                       "host time source in simulator code; "
                       "derive time from the event queue")
        if RAW_RAND_RE.search(line) and \
                rel not in RULE_EXEMPT_FILES["raw-rand"]:
            ctx.report(rel, idx, "raw-rand",
                       "unseeded randomness; use the streams "
                       "in sim/random.hh")
        if SIMD_RE.search(line) and \
                not posix.startswith(SIMD_EXEMPT_PREFIX):
            ctx.report(rel, idx, "simd-intrinsic",
                       "SIMD intrinsics outside src/arch/; "
                       "call through the kernels in "
                       "arch/dispatch.hh instead")
        if RAW_THREAD_RE.search(line) and \
                not posix.startswith(THREAD_EXEMPT_PREFIX):
            ctx.report(rel, idx, "raw-thread",
                       "raw thread primitive outside "
                       "src/exec/; use exec::ThreadPool / "
                       "TaskGroup (deterministic sharding, "
                       "TSan-covered)")
        # A call split across lines ("memcpy(\n &dst, ...") is
        # joined with its continuation; matching only lines that
        # hold the call itself avoids double-reporting.
        if MEMCPY_CALL_RE.search(line):
            joined = line
            if idx + 1 < len(code):
                joined = line + " " + code[idx + 1].lstrip()
            if STATE_MEMCPY_RE.search(joined) and \
                    not posix.startswith(CKPT_EXEMPT_PREFIX):
                ctx.report(rel, idx, "state-memcpy",
                           "raw byte copy of a non-trivially-"
                           "copyable simulator type; copy "
                           "state through the serializers in "
                           "sim/checkpoint/")


def check_raw_units(ctx, rel):
    info = ctx.file(rel)
    if info is None or rel in RULE_EXEMPT_FILES["raw-units"]:
        return
    code = info.code
    for idx in range(len(code)):
        line = code[idx]
        # A declaration split after the return type: join the pair so
        # `double\n    windowSeconds()` is still seen.
        if line.rstrip().endswith("double") and idx + 1 < len(code):
            line = line + " " + code[idx + 1].lstrip()
        if RAW_UNIT_RE.search(line):
            ctx.report(rel, idx, "raw-units",
                       "raw double with a seconds/joules/watts "
                       "name in a public header; use the strong "
                       "types from sim/units.hh")


# Result-store segment files. A file "handles" the store when ".odst"
# appears outside comments (in code or a string literal); in such a
# file, raw file-open primitives bypass store::ResultStore's CRC and
# temp-file+rename discipline. Reads/writes on an already-open handle
# follow the open, so only the opening primitives are matched.
STORE_FILE_TOKEN = ".odst"
RAW_STORE_IO_RE = re.compile(
    r"\bstd::[io]?fstream\b|\b[io]fstream\b"
    r"|\b(?:std::)?fopen\s*\(|\b::open\s*\(|\.\s*open\s*\("
    r"|\bmmap\s*\(|\bcreat\s*\(")

# The one directory allowed to touch segment files byte-wise.
STORE_IO_EXEMPT_PREFIX = "src/store/"


def check_store_io(ctx, rel):
    """Raw file I/O in a file that handles .odst store segments."""
    info = ctx.file(rel)
    posix = rel.replace(os.sep, "/")
    if info is None or posix.startswith(STORE_IO_EXEMPT_PREFIX):
        return
    handles_store = any(
        STORE_FILE_TOKEN in raw and STORE_FILE_TOKEN not in comment
        for raw, comment in zip(info.raw, info.comments))
    if not handles_store:
        return
    for idx, line in enumerate(info.code):
        if RAW_STORE_IO_RE.search(line):
            ctx.report(rel, idx, "store-io",
                       "raw file I/O in a file that handles .odst "
                       "segments; go through store::ResultStore "
                       "(CRC-checked reads, atomic sealed writes)")


# -- build-integration rules ----------------------------------------------

_CMAKE_QUOTE_AWARE_HASH = re.compile(r'"(?:[^"\\]|\\.)*"|(#)')


def strip_cmake_comments(text):
    """Blank `#` comments out of CMake source, line by line.

    Quoted strings are respected (a ``#`` inside ``"..."`` is not a
    comment); bracket comments are treated like line comments, which is
    exact enough for this repo. Line count is preserved.
    """
    out = []
    for line in text.splitlines():
        cut = len(line)
        for m in _CMAKE_QUOTE_AWARE_HASH.finditer(line):
            if m.group(1):
                cut = m.start(1)
                break
        out.append(line[:cut])
    return "\n".join(out)


def check_cmake_targets(ctx):
    registered = set()
    dir_words = {}
    for path in ctx.cmake_files():
        with open(path, "r", encoding="utf-8") as f:
            text = strip_cmake_comments(f.read())
        for token in re.findall(r"[\w./-]+\.(?:cc|cpp)\b", text):
            registered.add(os.path.basename(token))
        rel_dir = os.path.relpath(os.path.dirname(path), ctx.root)
        dir_words[rel_dir] = set(re.findall(r"[\w-]+", text))
    roots = {"src": ".cc", "tests": ".cc",
             "bench": ".cpp", "examples": ".cpp"}
    for sub, ext in roots.items():
        for rel in ctx.cxx_files([sub]):
            if not rel.endswith(ext):
                continue
            if os.path.basename(rel) in registered:
                continue
            # Helper macros like odrips_bench(name) append the
            # extension themselves; accept a bare-stem mention in
            # the nearest enclosing CMakeLists.txt.
            stem = os.path.splitext(os.path.basename(rel))[0]
            probe = os.path.dirname(rel)
            found = False
            while True:
                if stem in dir_words.get(probe, ()):
                    found = True
                    break
                if probe in ("", "."):
                    break
                probe = os.path.dirname(probe) or "."
            if not found:
                ctx.report(rel, 0, "cmake-target",
                           "source file is not registered in any "
                           "CMakeLists.txt target")


def check_tsan_labels(ctx):
    cmake = os.path.join(ctx.root, "tests", "CMakeLists.txt")
    if not os.path.isfile(cmake):
        return
    with open(cmake, "r", encoding="utf-8") as f:
        text = strip_cmake_comments(f.read())
    for m in re.finditer(r"odrips_test\s*\(([^)]*)\)", text):
        body = m.group(1).split()
        if not body:
            continue
        target = body[0]
        labels = []
        sources = []
        in_labels = False
        for token in body[1:]:
            if token == "LABELS":
                in_labels = True
                continue
            (labels if in_labels else sources).append(token)
        line_idx = text[:m.start()].count("\n")
        uses_threads = False
        for src in sources:
            path = os.path.join(ctx.root, "tests", src)
            if not os.path.isfile(path):
                continue
            with open(path, "r", encoding="utf-8",
                      errors="replace") as f:
                if CONCURRENCY_RE.search(f.read()):
                    uses_threads = True
                    break
        if uses_threads and "odrips_tsan" not in labels:
            ctx.report(os.path.join("tests", "CMakeLists.txt"),
                       line_idx, "tsan-label",
                       f"test target '{target}' exercises the "
                       "thread pool but lacks LABELS odrips_tsan")
