#!/usr/bin/env bash
# Rebuild everything, run the full test suite, and regenerate every
# table/figure of the paper into test_output.txt / bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt, bench_output.txt"
