#!/usr/bin/env bash
# Tracked perf harness: builds Release, runs bench/microbench plus an
# end-to-end fig6a_techniques wall-clock timing, and emits the
# BENCH_kernel.json trajectory file.
#
# Schema (odrips-bench-v1): {"benchmarks": {<name>: {"ns_per_op": N,
# "bytes_per_second": N} | {"wall_clock_s": N}}}. scripts/check.sh
# bench diffs a fresh run against the committed BENCH_kernel.json and
# warns when any tracked benchmark regresses >25%.
#
# The figure binary is timed from here with `date`: simulator sources
# must not read host time (the wall-clock lint rule), so end-to-end
# wall clock is the harness's job.
#
# Usage: scripts/bench.sh [output.json]      (default: BENCH_kernel.json)
#        ODRIPS_BENCH_BUILD=dir overrides the Release build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_kernel.json}"
jobs=$(nproc 2>/dev/null || echo 2)
build_dir="${ODRIPS_BENCH_BUILD:-build-bench}"

generator=()
[ -d "$build_dir" ] || { command -v ninja >/dev/null 2>&1 && generator=(-G Ninja); }

echo "== bench.sh: Release build in $build_dir =="
cmake -B "$build_dir" "${generator[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j "$jobs" \
    --target microbench fig6a_techniques longtrace_throughput arch_info \
    >/dev/null

micro_json="$(mktemp)"
trap 'rm -f "$micro_json"' EXIT

echo "== bench.sh: microbench =="
"$build_dir/bench/microbench" --benchmark_format=json > "$micro_json"

# Environment stamp: which kernels produced these numbers, on what CPU,
# at which commit. A perf delta without this block is unattributable.
arch_json="$("$build_dir/bench/arch_info")"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo "== bench.sh: fig6a_techniques wall clock (best of 3) =="
best_ns=""
for _ in 1 2 3; do
    t0=$(date +%s%N)
    "$build_dir/bench/fig6a_techniques" --jobs=1 >/dev/null 2>&1
    t1=$(date +%s%N)
    dt=$((t1 - t0))
    if [ -z "$best_ns" ] || [ "$dt" -lt "$best_ns" ]; then
        best_ns="$dt"
    fi
done

long_cycles=1000
echo "== bench.sh: longtrace_throughput wall clock ($long_cycles cycles, best of 3) =="
long_best_ns=""
for _ in 1 2 3; do
    t0=$(date +%s%N)
    "$build_dir/bench/longtrace_throughput" "$long_cycles" >/dev/null
    t1=$(date +%s%N)
    dt=$((t1 - t0))
    if [ -z "$long_best_ns" ] || [ "$dt" -lt "$long_best_ns" ]; then
        long_best_ns="$dt"
    fi
done

python3 - "$micro_json" "$best_ns" "$out" "$arch_json" "$git_sha" \
    "$long_best_ns" "$long_cycles" <<'PY'
import json
import sys

micro_path, fig_ns, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
environment = json.loads(sys.argv[4])
environment["git_sha"] = sys.argv[5]
long_ns, long_cycles = int(sys.argv[6]), int(sys.argv[7])
with open(micro_path) as f:
    micro = json.load(f)

scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
benches = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    benches[b["name"]] = {
        "ns_per_op": round(b["real_time"] * scale[b.get("time_unit", "ns")], 1),
        "bytes_per_second": int(b.get("bytes_per_second", 0)),
    }
benches["fig6a_techniques"] = {"wall_clock_s": round(fig_ns / 1e9, 3)}
# Long-trace throughput: simulated standby cycles per host second over
# a >=1000-cycle trace (CsrSubset mutation model, incremental saves).
benches["longtrace_throughput"] = {
    "wall_clock_s": round(long_ns / 1e9, 3),
    "cycles_per_second": round(long_cycles / (long_ns / 1e9), 1),
}

# Preserve any history block the committed trajectory carries.
previous = None
try:
    with open(out_path) as f:
        previous = json.load(f).get("previous")
except (OSError, ValueError):
    pass

doc = {
    "schema": "odrips-bench-v1",
    "note": "Tracked perf trajectory; regenerate with scripts/bench.sh. "
            "scripts/check.sh bench warns when a fresh run regresses "
            ">25% vs these numbers.",
    "build_type": "Release",
    "environment": environment,
    "benchmarks": benches,
}
if previous is not None:
    doc["previous"] = previous

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench.sh: wrote {out_path}")
PY
