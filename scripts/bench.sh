#!/usr/bin/env bash
# Tracked perf harness: builds Release, runs bench/microbench plus
# end-to-end wall-clock timings (fig6a_techniques, longtrace
# throughput, the query_engine batch, and fleet_campaign device-days/s
# in cold / warm / store-hot regimes), and emits the BENCH_kernel.json
# trajectory file.
#
# Schema (odrips-bench-v1): {"benchmarks": {<name>: {"ns_per_op": N,
# "bytes_per_second": N} | {"wall_clock_s": N}}}. scripts/check.sh
# bench diffs a fresh run against the committed BENCH_kernel.json and
# warns when any tracked benchmark regresses >25%.
#
# The figure binary is timed from here with `date`: simulator sources
# must not read host time (the wall-clock lint rule), so end-to-end
# wall clock is the harness's job.
#
# Every benchmark binary is run fail-loud: a non-zero exit aborts the
# harness with the binary's name instead of silently writing a JSON
# file with missing or stale numbers. The output file is written
# atomically (tmp + rename) so an aborted run never leaves a truncated
# trajectory behind.
#
# Usage: scripts/bench.sh [output.json]      (default: BENCH_kernel.json)
#        ODRIPS_BENCH_BUILD=dir overrides the Release build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_kernel.json}"
jobs=$(nproc 2>/dev/null || echo 2)
build_dir="${ODRIPS_BENCH_BUILD:-build-bench}"

fail() {
    echo "bench.sh: FAIL: $*" >&2
    exit 1
}

generator=()
[ -d "$build_dir" ] || { command -v ninja >/dev/null 2>&1 && generator=(-G Ninja); }

echo "== bench.sh: Release build in $build_dir =="
build_log="$(mktemp)"
micro_json="$(mktemp)"
query_dir=""
fleet_dir=""
trap 'rm -f "$build_log" "$micro_json"; [ -n "$query_dir" ] && rm -rf "$query_dir"; [ -n "$fleet_dir" ] && rm -rf "$fleet_dir"' EXIT

# Ninja reports compile errors on stdout, so a bare >/dev/null would
# swallow them; keep the build log and replay its tail on failure.
cmake -B "$build_dir" "${generator[@]}" -DCMAKE_BUILD_TYPE=Release \
    > "$build_log" 2>&1 \
    || { tail -40 "$build_log" >&2; fail "cmake configure failed"; }
cmake --build "$build_dir" -j "$jobs" \
    --target microbench fig6a_techniques longtrace_throughput \
    query_engine fleet_campaign arch_info \
    > "$build_log" 2>&1 \
    || { tail -40 "$build_log" >&2; fail "Release build failed"; }

echo "== bench.sh: microbench =="
"$build_dir/bench/microbench" --benchmark_format=json > "$micro_json" \
    || fail "microbench exited non-zero"

# Environment stamp: which kernels produced these numbers, on what CPU,
# at which commit. A perf delta without this block is unattributable.
arch_json="$("$build_dir/bench/arch_info")"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo "== bench.sh: fig6a_techniques wall clock (best of 3) =="
best_ns=""
for _ in 1 2 3; do
    t0=$(date +%s%N)
    "$build_dir/bench/fig6a_techniques" --jobs=1 >/dev/null 2>&1 \
        || fail "fig6a_techniques exited non-zero"
    t1=$(date +%s%N)
    dt=$((t1 - t0))
    if [ -z "$best_ns" ] || [ "$dt" -lt "$best_ns" ]; then
        best_ns="$dt"
    fi
done

long_cycles=1000
echo "== bench.sh: longtrace_throughput wall clock ($long_cycles cycles, best of 3) =="
long_best_ns=""
for _ in 1 2 3; do
    t0=$(date +%s%N)
    "$build_dir/bench/longtrace_throughput" "$long_cycles" >/dev/null \
        || fail "longtrace_throughput exited non-zero"
    t1=$(date +%s%N)
    dt=$((t1 - t0))
    if [ -z "$long_best_ns" ] || [ "$dt" -lt "$long_best_ns" ]; then
        long_best_ns="$dt"
    fi
done

# Batched what-if queries against a persistent result store: the same
# 1000-query batch (90% repeat keys) simulated cold into a fresh store,
# then re-answered hot from it. Both phases report their own timings on
# stderr (query-engine-telemetry); the two stdouts must be
# bit-identical or the store is serving wrong answers.
query_batch=1000
echo "== bench.sh: query_engine $query_batch-query batch (cold, then hot) =="
query_dir="$(mktemp -d)"
"$build_dir/bench/query_engine" --gen="$query_batch" --gen-repeat=0.9 \
    --emit-queries > "$query_dir/batch.jsonl" \
    || fail "query_engine --emit-queries exited non-zero"
"$build_dir/bench/query_engine" --store="$query_dir/store" \
    --jobs="$jobs" < "$query_dir/batch.jsonl" \
    > "$query_dir/cold.jsonl" 2> "$query_dir/cold.err" \
    || fail "query_engine cold batch exited non-zero"
"$build_dir/bench/query_engine" --store="$query_dir/store" \
    --jobs="$jobs" < "$query_dir/batch.jsonl" \
    > "$query_dir/hot.jsonl" 2> "$query_dir/hot.err" \
    || fail "query_engine hot batch exited non-zero"
cmp -s "$query_dir/cold.jsonl" "$query_dir/hot.jsonl" \
    || fail "query_engine cold/hot stdout diverged"
cold_telemetry="$(grep -o 'query-engine-telemetry: .*' "$query_dir/cold.err" | tail -1 | cut -d' ' -f2-)"
hot_telemetry="$(grep -o 'query-engine-telemetry: .*' "$query_dir/hot.err" | tail -1 | cut -d' ' -f2-)"
[ -n "$cold_telemetry" ] && [ -n "$hot_telemetry" ] \
    || fail "query_engine emitted no telemetry line"

# Fleet campaign throughput in device-days per host second, three
# regimes: the naive cold loop (fresh platform per device), the warm
# engine (phase-matched checkpoint forks + in-process profile cache),
# and the warm engine backed by a pre-populated persistent profile
# store (second run against the same ODRIPS_STORE directory). The warm
# and store-hot stdouts must be bit-identical — the store is an
# accelerator, not a physics input.
fleet_cold_devices=200
fleet_warm_devices=10000
echo "== bench.sh: fleet_campaign device-days/s (cold $fleet_cold_devices, warm $fleet_warm_devices, store-hot $fleet_warm_devices) =="
fleet_dir="$(mktemp -d)"
t0=$(date +%s%N)
"$build_dir/bench/fleet_campaign" --devices="$fleet_cold_devices" \
    --cold --jobs="$jobs" >/dev/null 2>&1 \
    || fail "fleet_campaign --cold exited non-zero"
t1=$(date +%s%N)
fleet_cold_ns=$((t1 - t0))
t0=$(date +%s%N)
"$build_dir/bench/fleet_campaign" --devices="$fleet_warm_devices" \
    --jobs="$jobs" > "$fleet_dir/warm.txt" 2>/dev/null \
    || fail "fleet_campaign warm exited non-zero"
t1=$(date +%s%N)
fleet_warm_ns=$((t1 - t0))
ODRIPS_STORE="$fleet_dir/store" \
    "$build_dir/bench/fleet_campaign" --devices="$fleet_warm_devices" \
    --jobs="$jobs" >/dev/null 2>/dev/null \
    || fail "fleet_campaign store-fill exited non-zero"
t0=$(date +%s%N)
ODRIPS_STORE="$fleet_dir/store" \
    "$build_dir/bench/fleet_campaign" --devices="$fleet_warm_devices" \
    --jobs="$jobs" > "$fleet_dir/hot.txt" 2> "$fleet_dir/hot.err" \
    || fail "fleet_campaign store-hot exited non-zero"
t1=$(date +%s%N)
fleet_hot_ns=$((t1 - t0))
cmp -s "$fleet_dir/warm.txt" "$fleet_dir/hot.txt" \
    || fail "fleet_campaign store-hot stdout diverged from warm run"
fleet_telemetry="$(grep -o 'fleet-campaign-telemetry: .*' "$fleet_dir/hot.err" | tail -1 | cut -d' ' -f2-)"
[ -n "$fleet_telemetry" ] \
    || fail "fleet_campaign emitted no telemetry line"

python3 - "$micro_json" "$best_ns" "$out" "$arch_json" "$git_sha" \
    "$long_best_ns" "$long_cycles" "$cold_telemetry" "$hot_telemetry" \
    "$fleet_cold_ns" "$fleet_warm_ns" "$fleet_hot_ns" \
    "$fleet_cold_devices" "$fleet_warm_devices" "$fleet_telemetry" \
    <<'PY'
import json
import os
import sys

micro_path, fig_ns, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
environment = json.loads(sys.argv[4])
environment["git_sha"] = sys.argv[5]
long_ns, long_cycles = int(sys.argv[6]), int(sys.argv[7])
cold_tel, hot_tel = json.loads(sys.argv[8]), json.loads(sys.argv[9])
fleet_cold_ns, fleet_warm_ns, fleet_hot_ns = (
    int(sys.argv[10]), int(sys.argv[11]), int(sys.argv[12]))
fleet_cold_n, fleet_warm_n = int(sys.argv[13]), int(sys.argv[14])
fleet_tel = json.loads(sys.argv[15])
with open(micro_path) as f:
    micro = json.load(f)

scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
benches = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    benches[b["name"]] = {
        "ns_per_op": round(b["real_time"] * scale[b.get("time_unit", "ns")], 1),
        "bytes_per_second": int(b.get("bytes_per_second", 0)),
    }
benches["fig6a_techniques"] = {"wall_clock_s": round(fig_ns / 1e9, 3)}
# Long-trace throughput: simulated standby cycles per host second over
# a >=1000-cycle trace (CsrSubset mutation model, incremental saves).
benches["longtrace_throughput"] = {
    "wall_clock_s": round(long_ns / 1e9, 3),
    "cycles_per_second": round(long_cycles / (long_ns / 1e9), 1),
}
# Batched what-if queries: cold fills a fresh store, hot re-answers the
# identical batch from it. The store's served fraction on the hot pass
# goes into the environment block (it attributes the hot number).
benches["query_engine_batch_cold"] = {
    "wall_clock_s": round(cold_tel["total_s"], 4),
}
benches["query_engine_batch_hot"] = {
    "wall_clock_s": round(hot_tel["total_s"], 4),
}
# Fleet campaign throughput: device-days of connected standby
# evaluated per host second, per regime. The headline number is
# fleet_campaign_warm; cold is the naive foil, store_hot adds a
# pre-populated persistent profile store.
benches["fleet_campaign_cold"] = {
    "wall_clock_s": round(fleet_cold_ns / 1e9, 3),
    "device_days_per_second":
        round(fleet_cold_n / (fleet_cold_ns / 1e9), 1),
}
benches["fleet_campaign_warm"] = {
    "wall_clock_s": round(fleet_warm_ns / 1e9, 3),
    "device_days_per_second":
        round(fleet_warm_n / (fleet_warm_ns / 1e9), 1),
}
benches["fleet_campaign_store_hot"] = {
    "wall_clock_s": round(fleet_hot_ns / 1e9, 3),
    "device_days_per_second":
        round(fleet_warm_n / (fleet_hot_ns / 1e9), 1),
}
# O(stats) proof + accelerator attribution for the fleet numbers.
environment["fleet_campaign"] = {
    "devices": fleet_tel["devices"],
    "cycles": fleet_tel["cycles"],
    "aggregation_bytes": fleet_tel["aggregation_bytes"],
    "pool_restores": fleet_tel["pool_restores"],
    "profile_cache_hits": fleet_tel["profile_cache_hits"],
    "profile_store_hits": fleet_tel["profile_store_hits"],
}
environment["store_hit_rate"] = round(hot_tel["store_hit_rate"], 4)
environment["store_batch"] = {
    "queries": cold_tel["batch"],
    "unique_keys": cold_tel["unique_keys"],
    "cold_sim_s": round(cold_tel["cold_sim_s"], 4),
    "hot_serve_s": round(hot_tel["hot_serve_s"], 6),
}

# Preserve any history block the committed trajectory carries.
previous = None
try:
    with open(out_path) as f:
        previous = json.load(f).get("previous")
except (OSError, ValueError):
    pass

doc = {
    "schema": "odrips-bench-v1",
    "note": "Tracked perf trajectory; regenerate with scripts/bench.sh. "
            "scripts/check.sh bench warns when a fresh run regresses "
            ">25% vs these numbers.",
    "build_type": "Release",
    "environment": environment,
    "benchmarks": benches,
}
if previous is not None:
    doc["previous"] = previous

# Atomic write: a crash mid-dump must not leave a truncated trajectory
# where the committed baseline used to be.
tmp_path = out_path + ".tmp"
with open(tmp_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
os.replace(tmp_path, out_path)
print(f"bench.sh: wrote {out_path}")
PY
