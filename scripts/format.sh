#!/usr/bin/env bash
# clang-format gate over the tracked C++ sources.
#
# Usage: scripts/format.sh [--check]
#   --check   dry-run; exit 1 if any file needs reformatting (CI mode)
#   (default) rewrite files in place
#
# Skips gracefully (exit 0 with a notice) when clang-format is not
# installed, so scripts/check.sh lint works on minimal containers.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-fix}"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format.sh: clang-format not found; skipping format gate"
    exit 0
fi

# Tracked C++ sources only; fixtures are intentionally odd-shaped.
mapfile -t files < <(git ls-files \
    'src/**/*.cc' 'src/**/*.hh' \
    'tests/**/*.cc' 'tests/**/*.hh' \
    'bench/*.cpp' 'examples/*.cpp' \
    ':!:tools/fixtures/**')

if [ "${#files[@]}" -eq 0 ]; then
    echo "format.sh: no C++ sources found"
    exit 0
fi

case "$mode" in
--check|check)
    clang-format --dry-run --Werror "${files[@]}"
    echo "format.sh: ${#files[@]} files clean"
    ;;
fix|--fix)
    clang-format -i "${files[@]}"
    echo "format.sh: formatted ${#files[@]} files"
    ;;
*)
    echo "usage: $0 [--check]" >&2
    exit 2
    ;;
esac
