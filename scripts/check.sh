#!/usr/bin/env bash
# CI gate: static analysis + sanitizers.
#
# Modes:
#  lint        tools/odrips-lint (simulator invariants), the linter's
#              fixture self-test, scripts/format.sh --check, and
#              clang-tidy over compile_commands.json when a clang-tidy
#              binary is installed. No compiler needed for the first
#              three, so this is the cheapest gate.
#  tsan        build-tsan: -fsanitize=thread on the exec/concurrency
#              suites (`ctest -L odrips_tsan`) — catches data races in
#              the thread pool and parallel sweep runner. TSan and ASan
#              cannot be combined, so this is its own tree.
#  asan        build-asan: -fsanitize=address,undefined on everything
#              else (`ctest -LE odrips_tsan`).
#  all         lint, then tsan, then asan (default).
#
# Usage: scripts/check.sh [lint|tsan|asan]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_lint() {
    echo "== Lint gate (odrips-lint + format + clang-tidy) =="
    python3 tools/odrips-lint --root .
    python3 tools/test_odrips_lint.py
    scripts/format.sh --check

    if command -v clang-tidy >/dev/null 2>&1; then
        # Any configured build tree exports compile_commands.json
        # (CMAKE_EXPORT_COMPILE_COMMANDS is on); symlink the first one
        # found to the root where clang-tidy looks for it.
        local db=""
        for d in build build-warn build-tsan build-asan; do
            [ -f "$d/compile_commands.json" ] && { db="$d"; break; }
        done
        if [ -z "$db" ]; then
            cmake -B build "${generator[@]}" >/dev/null
            db="build"
        fi
        ln -sf "$db/compile_commands.json" compile_commands.json
        git ls-files 'src/**/*.cc' | xargs -P "$jobs" -n 8 \
            clang-tidy -p "$db" --quiet
        echo "clang-tidy: clean"
    else
        echo "clang-tidy not found; skipping (install clang-tools to enable)"
    fi
    echo "lint gate passed"
}

run_tsan() {
    echo "== TSan build (ctest -L odrips_tsan) =="
    cmake -B build-tsan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan -L odrips_tsan --output-on-failure -j "$jobs"
}

run_asan() {
    echo "== ASan/UBSan build (ctest -LE odrips_tsan) =="
    cmake -B build-asan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan -LE odrips_tsan --output-on-failure -j "$jobs"
}

case "$mode" in
lint) run_lint ;;
tsan) run_tsan ;;
asan) run_asan ;;
all)
    run_lint
    run_tsan
    run_asan
    ;;
*)
    echo "usage: $0 [lint|tsan|asan]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested gates passed"
