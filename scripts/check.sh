#!/usr/bin/env bash
# CI gate: static analysis + sanitizers.
#
# Modes:
#  lint        tools/odrips-lint (per-line invariants plus the indexed
#              semantic passes: ckpt-coverage, layering, cross-file
#              unordered-iter, stale-allow), the linter's fixture
#              self-test, scripts/format.sh --check, and clang-tidy
#              over compile_commands.json when a clang-tidy binary is
#              installed. Writes build/lint-report.json
#              (machine-readable findings); on failure also prints the
#              findings scoped to files changed vs git HEAD. No
#              compiler needed for the first three, so this is the
#              cheapest gate.
#  tsan        build-tsan: -fsanitize=thread on the exec/concurrency
#              suites (`ctest -L odrips_tsan`) — catches data races in
#              the thread pool and parallel sweep runner. TSan and ASan
#              cannot be combined, so this is its own tree.
#  asan        build-asan: -fsanitize=address,undefined on everything
#              else (`ctest -LE odrips_tsan`).
#  bench       scripts/bench.sh into a scratch file (Release build,
#              -O2 -DNDEBUG), then diff against the committed
#              BENCH_kernel.json; warns when any tracked benchmark
#              regresses >25%. Not part of `all` — timings need an
#              otherwise idle machine.
#  simd        the security/SIMD differential suites (`ctest -L
#              odrips_simd`) twice: once with native dispatch (the
#              best kernels the CPU supports) and once pinned to the
#              portable reference with ODRIPS_DISPATCH=scalar — so a
#              bug in either side of the scalar/SIMD equivalence
#              cannot pass unnoticed.
#  ckpt        the checkpoint/fork differential suites (`ctest -L
#              odrips_ckpt`) three ways — native, ODRIPS_DISPATCH=scalar
#              and ODRIPS_CHECKPOINT=0 (the cold sweep path) — plus two
#              end-to-end bit-equality cross-checks: fig6a stdout with
#              checkpointing on/off for jobs {1,2,8}, and the longtrace
#              summary with and without periodic checkpoint/resume.
#  store       the persistent result-store suites (`ctest -L
#              odrips_store`: schema round-trips, torture negatives,
#              multi-process locking) plus two end-to-end checks on a
#              generated 1000-query batch: query_engine stdout is
#              bit-identical whether answers are simulated cold or
#              served from the store, across ODRIPS_PROFILE_CACHE
#              {1,0} x jobs {1,8}; and the engine-reported hot serve
#              time beats the cold simulate time by >=100x.
#  fleet       the fleet campaign suites (`ctest -L odrips_fleet`:
#              .odwl torture negatives, campaign determinism, quantile
#              sketches, jobs-sweep stability) plus end-to-end checks
#              on the fleet_campaign binary: the percentile report is
#              bit-identical across jobs {1,2,8} x ODRIPS_CHECKPOINT
#              {1,0} x ODRIPS_PROFILE_CACHE {1,0}, a population saved
#              to .odwl and replayed reproduces it byte for byte, the
#              naive cold loop agrees with the warm engine exactly,
#              and the warm engine's device-days/s rate beats the cold
#              loop by >=50x.
#  all         lint, then simd, then ckpt, then store, then fleet,
#              then tsan, then asan (default).
#
# Usage: scripts/check.sh [lint|simd|ckpt|store|fleet|tsan|asan|bench]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_lint() {
    echo "== Lint gate (odrips-lint + format + clang-tidy) =="
    # Human output gates the run; a JSON artifact of the same findings
    # lands next to the build trees for diffable CI logs. A second,
    # advisory pass scoped to files changed vs HEAD localizes blame
    # when the full run fails.
    mkdir -p build
    if ! python3 tools/odrips-lint --root . --format json \
            > build/lint-report.json; then
        python3 tools/odrips-lint --root . || true
        echo "full report: build/lint-report.json; changed files only:"
        python3 tools/odrips-lint --root . --changed-only || true
        return 1
    fi
    python3 tools/test_odrips_lint.py
    scripts/format.sh --check

    if command -v clang-tidy >/dev/null 2>&1; then
        # Any configured build tree exports compile_commands.json
        # (CMAKE_EXPORT_COMPILE_COMMANDS is on); symlink the first one
        # found to the root where clang-tidy looks for it.
        local db=""
        for d in build build-warn build-tsan build-asan; do
            [ -f "$d/compile_commands.json" ] && { db="$d"; break; }
        done
        if [ -z "$db" ]; then
            cmake -B build "${generator[@]}" >/dev/null
            db="build"
        fi
        ln -sf "$db/compile_commands.json" compile_commands.json
        git ls-files 'src/**/*.cc' | xargs -P "$jobs" -n 8 \
            clang-tidy -p "$db" --quiet
        echo "clang-tidy: clean"
    else
        echo "clang-tidy not found; skipping (install clang-tools to enable)"
    fi
    echo "lint gate passed"
}

run_simd() {
    echo "== SIMD gate (ctest -L odrips_simd, native + scalar) =="
    # Reuse an existing default tree as-is; the generator flag only
    # applies on first configure (it cannot change retroactively).
    local gen=()
    [ -d build ] || gen=("${generator[@]}")
    cmake -B build "${gen[@]}" >/dev/null
    cmake --build build -j "$jobs" \
        --target security_test simd_dispatch_test
    echo "-- native dispatch --"
    ctest --test-dir build -L odrips_simd --output-on-failure -j "$jobs"
    echo "-- ODRIPS_DISPATCH=scalar --"
    ODRIPS_DISPATCH=scalar \
        ctest --test-dir build -L odrips_simd --output-on-failure \
        -j "$jobs"
}

run_ckpt() {
    echo "== Checkpoint gate (ctest -L odrips_ckpt + bit-equality cross-checks) =="
    local gen=()
    [ -d build ] || gen=("${generator[@]}")
    cmake -B build "${gen[@]}" >/dev/null
    cmake --build build -j "$jobs" \
        --target checkpoint_test checkpoint_parallel_test \
        fig6a_techniques longtrace_throughput

    echo "-- native --"
    ctest --test-dir build -L odrips_ckpt --output-on-failure -j "$jobs"
    echo "-- ODRIPS_DISPATCH=scalar --"
    ODRIPS_DISPATCH=scalar \
        ctest --test-dir build -L odrips_ckpt --output-on-failure \
        -j "$jobs"
    echo "-- ODRIPS_CHECKPOINT=0 (cold sweep path) --"
    ODRIPS_CHECKPOINT=0 \
        ctest --test-dir build -L odrips_ckpt --output-on-failure \
        -j "$jobs"

    # Warm-forked sweeps must not change a single figure: fig6a stdout
    # (the host-timed telemetry table goes to stderr) is bit-identical
    # with checkpointing on and off, for every worker count.
    echo "-- fig6a bit-equality: ODRIPS_CHECKPOINT {1,0} x jobs {1,2,8} --"
    local ref scratch
    ref="$(mktemp)"
    scratch="$(mktemp)"
    ./build/bench/fig6a_techniques 2>/dev/null >"$ref"
    local j c
    for j in 1 2 8; do
        for c in 1 0; do
            ODRIPS_JOBS=$j ODRIPS_CHECKPOINT=$c \
                ./build/bench/fig6a_techniques 2>/dev/null >"$scratch"
            if ! cmp -s "$ref" "$scratch"; then
                echo "ckpt: fig6a output diverged (jobs=$j," \
                     "checkpoint=$c)" >&2
                rm -f "$ref" "$scratch"
                exit 1
            fi
        done
    done

    # Periodic checkpoint/resume (full state -> disk -> fresh
    # simulator) must leave the longtrace summary bit-identical to an
    # uninterrupted run.
    echo "-- longtrace checkpoint/resume bit-equality --"
    ./build/bench/longtrace_throughput 60 2>/dev/null >"$ref"
    ./build/bench/longtrace_throughput 60 7 2>/dev/null >"$scratch"
    if ! cmp -s "$ref" "$scratch"; then
        echo "ckpt: longtrace checkpoint/resume diverged" >&2
        rm -f "$ref" "$scratch"
        exit 1
    fi
    rm -f "$ref" "$scratch"
    echo "checkpoint gate passed"
}

run_store() {
    echo "== Store gate (ctest -L odrips_store + cold/hot bit-equality) =="
    local gen=()
    [ -d build ] || gen=("${generator[@]}")
    cmake -B build "${gen[@]}" >/dev/null
    cmake --build build -j "$jobs" \
        --target store_test store_parallel_test query_engine

    echo "-- ctest -L odrips_store --"
    ctest --test-dir build -L odrips_store --output-on-failure -j "$jobs"

    # A what-if batch must produce bit-identical stdout whether the
    # answers are simulated cold or served from the store, with the
    # in-memory memo on or off, at any worker count. The reference is
    # the cold pass that fills the store; every later pass serves hot.
    echo "-- query_engine bit-equality: cold vs hot x ODRIPS_PROFILE_CACHE {1,0} x jobs {1,8} --"
    local dir
    dir="$(mktemp -d)"
    ./build/bench/query_engine --gen=1000 --gen-repeat=0.9 \
        --emit-queries > "$dir/batch.jsonl"
    ./build/bench/query_engine --store="$dir/store" --jobs=8 \
        < "$dir/batch.jsonl" > "$dir/ref.jsonl" 2> "$dir/cold.err"
    local j c
    for c in 1 0; do
        for j in 1 8; do
            ODRIPS_PROFILE_CACHE=$c \
                ./build/bench/query_engine --store="$dir/store" \
                --jobs="$j" < "$dir/batch.jsonl" \
                > "$dir/scratch.jsonl" 2> "$dir/hot.err"
            if ! cmp -s "$dir/ref.jsonl" "$dir/scratch.jsonl"; then
                echo "store: query_engine output diverged" \
                     "(cache=$c, jobs=$j)" >&2
                rm -rf "$dir"
                exit 1
            fi
        done
    done

    # The memoized store must be worth keeping: the engine's own
    # telemetry says how long the batch's unique keys took to simulate
    # cold and how long the full batch took to serve hot.
    echo "-- store speedup: hot serve vs cold simulate (>=100x) --"
    if ! python3 - "$dir/cold.err" "$dir/hot.err" <<'PY'
import json
import sys

def telemetry(path):
    tail = None
    with open(path) as f:
        for line in f:
            if line.startswith("query-engine-telemetry: "):
                tail = line.split(": ", 1)[1]
    if tail is None:
        sys.exit(f"store: no query-engine-telemetry line in {path}")
    return json.loads(tail)

cold = telemetry(sys.argv[1])
hot = telemetry(sys.argv[2])
cold_s, hot_s = cold["cold_sim_s"], hot["hot_serve_s"]
speedup = cold_s / hot_s if hot_s > 0 else float("inf")
print(f"store: cold simulate {cold_s:.4f}s for "
      f"{cold['cold_keys']} keys, hot serve {hot_s * 1e6:.1f}us for "
      f"{hot['batch']} queries ({speedup:.0f}x)")
if speedup < 100:
    sys.exit("store: hot path is <100x faster than cold; the store "
             "is not earning its keep")
PY
    then
        rm -rf "$dir"
        exit 1
    fi
    rm -rf "$dir"
    echo "store gate passed"
}

run_fleet() {
    echo "== Fleet gate (ctest -L odrips_fleet + campaign bit-equality) =="
    local gen=()
    [ -d build ] || gen=("${generator[@]}")
    cmake -B build "${gen[@]}" >/dev/null
    cmake --build build -j "$jobs" \
        --target odwl_test fleet_test fleet_parallel_test fleet_campaign

    echo "-- ctest -L odrips_fleet --"
    ctest --test-dir build -L odrips_fleet --output-on-failure -j "$jobs"

    # The percentile report depends only on the campaign
    # configuration: the worker count, the warm checkpoint pool and
    # the profile cache/store are pure accelerators. Any divergence
    # here means an accelerator changed the physics.
    echo "-- fleet_campaign bit-equality: jobs {1,2,8} x ODRIPS_CHECKPOINT {1,0} x ODRIPS_PROFILE_CACHE {1,0} --"
    local dir
    dir="$(mktemp -d)"
    ./build/bench/fleet_campaign --devices=600 --jobs=8 \
        2>/dev/null > "$dir/ref.txt"
    local j c p
    for j in 1 2 8; do
        for c in 1 0; do
            for p in 1 0; do
                ODRIPS_CHECKPOINT=$c ODRIPS_PROFILE_CACHE=$p \
                    ./build/bench/fleet_campaign --devices=600 \
                    --jobs="$j" 2>/dev/null > "$dir/scratch.txt"
                if ! cmp -s "$dir/ref.txt" "$dir/scratch.txt"; then
                    echo "fleet: campaign report diverged (jobs=$j," \
                         "checkpoint=$c, profile_cache=$p)" >&2
                    rm -rf "$dir"
                    exit 1
                fi
            done
        done
    done

    # A population saved to .odwl and replayed must reproduce the
    # in-memory population's report byte for byte.
    echo "-- .odwl population round-trip bit-equality --"
    ./build/bench/fleet_campaign --emit-odwl="$dir/pop.odwl" 2>/dev/null
    ./build/bench/fleet_campaign --odwl="$dir/pop.odwl" --devices=600 \
        --jobs=8 2>/dev/null > "$dir/scratch.txt"
    if ! cmp -s "$dir/ref.txt" "$dir/scratch.txt"; then
        echo "fleet: .odwl-replayed report diverged from in-memory" \
             "population" >&2
        rm -rf "$dir"
        exit 1
    fi

    # The naive cold loop is the semantic reference: same numbers,
    # none of the machinery.
    echo "-- naive cold loop == warm engine (40 devices) --"
    ./build/bench/fleet_campaign --devices=40 --jobs=1 \
        2>/dev/null > "$dir/warm40.txt"
    ./build/bench/fleet_campaign --devices=40 --cold --jobs=1 \
        2>/dev/null > "$dir/cold40.txt"
    if ! cmp -s "$dir/warm40.txt" "$dir/cold40.txt"; then
        echo "fleet: naive cold loop and warm engine disagree" >&2
        rm -rf "$dir"
        exit 1
    fi

    # The warm engine must be worth its machinery: device-days/s from
    # external `date` timing (simulator sources cannot read host time).
    echo "-- fleet speedup: warm fork vs naive cold rebuild (>=50x) --"
    local t0 t1 cold_ns warm_ns
    t0=$(date +%s%N)
    ./build/bench/fleet_campaign --devices=100 --cold --jobs="$jobs" \
        >/dev/null 2>&1
    t1=$(date +%s%N)
    cold_ns=$((t1 - t0))
    t0=$(date +%s%N)
    ./build/bench/fleet_campaign --devices=4000 --jobs="$jobs" \
        >/dev/null 2>&1
    t1=$(date +%s%N)
    warm_ns=$((t1 - t0))
    if ! python3 - "$cold_ns" "$warm_ns" <<'PY'
import sys

cold_ns, warm_ns = int(sys.argv[1]), int(sys.argv[2])
cold_rate = 100 / (cold_ns / 1e9)
warm_rate = 4000 / (warm_ns / 1e9)
speedup = warm_rate / cold_rate if cold_rate > 0 else float("inf")
print(f"fleet: cold {cold_rate:.1f} device-days/s, warm "
      f"{warm_rate:.1f} device-days/s ({speedup:.0f}x)")
if speedup < 50:
    sys.exit("fleet: warm engine is <50x the naive cold loop; the "
             "checkpoint pool is not earning its keep")
PY
    then
        rm -rf "$dir"
        exit 1
    fi
    rm -rf "$dir"
    echo "fleet gate passed"
}

run_tsan() {
    echo "== TSan build (ctest -L odrips_tsan) =="
    cmake -B build-tsan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan -L odrips_tsan --output-on-failure -j "$jobs"
}

run_asan() {
    echo "== ASan/UBSan build (ctest -LE odrips_tsan) =="
    cmake -B build-asan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan -LE odrips_tsan --output-on-failure -j "$jobs"
}

run_bench() {
    echo "== Bench gate (Release run vs committed BENCH_kernel.json) =="
    if [ ! -f BENCH_kernel.json ]; then
        echo "bench: no committed BENCH_kernel.json baseline; run" \
             "scripts/bench.sh and commit the result" >&2
        exit 1
    fi
    local fresh
    fresh="$(mktemp)"
    scripts/bench.sh "$fresh"
    python3 - "$fresh" BENCH_kernel.json <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    fresh = json.load(f)["benchmarks"]
with open(sys.argv[2]) as f:
    base = json.load(f)["benchmarks"]

warned = False
for name, entry in base.items():
    cur = fresh.get(name)
    if cur is None:
        print(f"bench: {name}: MISSING from fresh run")
        warned = True
        continue
    # lower-is-better keys, then higher-is-better ones (throughput).
    for key in ("ns_per_op", "wall_clock_s", "cycles_per_second",
                "device_days_per_second"):
        if key in entry and key in cur and entry[key] > 0 and cur[key] > 0:
            higher_better = key in ("cycles_per_second",
                                    "device_days_per_second")
            ratio = (entry[key] / cur[key] if higher_better
                     else cur[key] / entry[key])
            marker = ""
            if ratio > 1.25:
                marker = "  <-- WARNING: regressed >25%"
                warned = True
            print(f"bench: {name} {key}: {entry[key]} -> {cur[key]}"
                  f" ({ratio:.2f}x){marker}")

if warned:
    print("bench: WARNING: tracked benchmarks regressed >25% vs the "
          "committed baseline (see markers above)")
else:
    print("bench: all tracked benchmarks within 25% of the committed "
          "baseline")
PY
    rm -f "$fresh"
}

case "$mode" in
lint) run_lint ;;
simd) run_simd ;;
ckpt) run_ckpt ;;
store) run_store ;;
fleet) run_fleet ;;
tsan) run_tsan ;;
asan) run_asan ;;
bench) run_bench ;;
all)
    run_lint
    run_simd
    run_ckpt
    run_store
    run_fleet
    run_tsan
    run_asan
    ;;
*)
    echo "usage: $0 [lint|simd|ckpt|store|fleet|tsan|asan|bench]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested gates passed"
