#!/usr/bin/env bash
# Sanitizer CI gate.
#
# Two builds, two test selections:
#  1. build-tsan:  -fsanitize=thread on the exec/concurrency suites
#     (`ctest -L odrips_tsan`) — catches data races in the thread pool
#     and parallel sweep runner. TSan and ASan cannot be combined, so
#     this is its own tree.
#  2. build-asan:  -fsanitize=address,undefined on everything else
#     (`ctest -LE odrips_tsan`).
#
# Usage: scripts/check.sh [tsan|asan]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_tsan() {
    echo "== TSan build (ctest -L odrips_tsan) =="
    cmake -B build-tsan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan -L odrips_tsan --output-on-failure -j "$jobs"
}

run_asan() {
    echo "== ASan/UBSan build (ctest -LE odrips_tsan) =="
    cmake -B build-asan "${generator[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan -LE odrips_tsan --output-on-failure -j "$jobs"
}

case "$mode" in
tsan) run_tsan ;;
asan) run_asan ;;
all)
    run_tsan
    run_asan
    ;;
*)
    echo "usage: $0 [tsan|asan]" >&2
    exit 2
    ;;
esac

echo "check.sh: all sanitizer suites passed"
