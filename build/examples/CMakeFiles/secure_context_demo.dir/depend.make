# Empty dependencies file for secure_context_demo.
# This may be replaced when dependencies are built.
