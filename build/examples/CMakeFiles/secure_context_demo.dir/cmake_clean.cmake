file(REMOVE_RECURSE
  "CMakeFiles/secure_context_demo.dir/secure_context_demo.cpp.o"
  "CMakeFiles/secure_context_demo.dir/secure_context_demo.cpp.o.d"
  "secure_context_demo"
  "secure_context_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_context_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
