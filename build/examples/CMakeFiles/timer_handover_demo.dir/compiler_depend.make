# Empty compiler generated dependencies file for timer_handover_demo.
# This may be replaced when dependencies are built.
