file(REMOVE_RECURSE
  "CMakeFiles/timer_handover_demo.dir/timer_handover_demo.cpp.o"
  "CMakeFiles/timer_handover_demo.dir/timer_handover_demo.cpp.o.d"
  "timer_handover_demo"
  "timer_handover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_handover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
