file(REMOVE_RECURSE
  "CMakeFiles/connected_standby_report.dir/connected_standby_report.cpp.o"
  "CMakeFiles/connected_standby_report.dir/connected_standby_report.cpp.o.d"
  "connected_standby_report"
  "connected_standby_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_standby_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
