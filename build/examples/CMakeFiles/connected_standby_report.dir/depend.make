# Empty dependencies file for connected_standby_report.
# This may be replaced when dependencies are built.
