file(REMOVE_RECURSE
  "CMakeFiles/standby_cli.dir/standby_cli.cpp.o"
  "CMakeFiles/standby_cli.dir/standby_cli.cpp.o.d"
  "standby_cli"
  "standby_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standby_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
