# Empty compiler generated dependencies file for standby_cli.
# This may be replaced when dependencies are built.
