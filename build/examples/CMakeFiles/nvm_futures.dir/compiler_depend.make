# Empty compiler generated dependencies file for nvm_futures.
# This may be replaced when dependencies are built.
