file(REMOVE_RECURSE
  "CMakeFiles/nvm_futures.dir/nvm_futures.cpp.o"
  "CMakeFiles/nvm_futures.dir/nvm_futures.cpp.o.d"
  "nvm_futures"
  "nvm_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
