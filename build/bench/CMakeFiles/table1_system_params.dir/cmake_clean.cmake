file(REMOVE_RECURSE
  "CMakeFiles/table1_system_params.dir/table1_system_params.cpp.o"
  "CMakeFiles/table1_system_params.dir/table1_system_params.cpp.o.d"
  "table1_system_params"
  "table1_system_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
