# Empty dependencies file for table1_system_params.
# This may be replaced when dependencies are built.
