file(REMOVE_RECURSE
  "CMakeFiles/sec7_model_validation.dir/sec7_model_validation.cpp.o"
  "CMakeFiles/sec7_model_validation.dir/sec7_model_validation.cpp.o.d"
  "sec7_model_validation"
  "sec7_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
