# Empty compiler generated dependencies file for sec7_model_validation.
# This may be replaced when dependencies are built.
