file(REMOVE_RECURSE
  "CMakeFiles/ablation_mee_cache.dir/ablation_mee_cache.cpp.o"
  "CMakeFiles/ablation_mee_cache.dir/ablation_mee_cache.cpp.o.d"
  "ablation_mee_cache"
  "ablation_mee_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mee_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
