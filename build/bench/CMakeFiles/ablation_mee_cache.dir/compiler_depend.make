# Empty compiler generated dependencies file for ablation_mee_cache.
# This may be replaced when dependencies are built.
