file(REMOVE_RECURSE
  "CMakeFiles/fig2_standby_timeline.dir/fig2_standby_timeline.cpp.o"
  "CMakeFiles/fig2_standby_timeline.dir/fig2_standby_timeline.cpp.o.d"
  "fig2_standby_timeline"
  "fig2_standby_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_standby_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
