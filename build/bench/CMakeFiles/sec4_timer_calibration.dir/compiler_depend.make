# Empty compiler generated dependencies file for sec4_timer_calibration.
# This may be replaced when dependencies are built.
