file(REMOVE_RECURSE
  "CMakeFiles/sec4_timer_calibration.dir/sec4_timer_calibration.cpp.o"
  "CMakeFiles/sec4_timer_calibration.dir/sec4_timer_calibration.cpp.o.d"
  "sec4_timer_calibration"
  "sec4_timer_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_timer_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
