file(REMOVE_RECURSE
  "CMakeFiles/ablation_wake_interval.dir/ablation_wake_interval.cpp.o"
  "CMakeFiles/ablation_wake_interval.dir/ablation_wake_interval.cpp.o.d"
  "ablation_wake_interval"
  "ablation_wake_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wake_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
