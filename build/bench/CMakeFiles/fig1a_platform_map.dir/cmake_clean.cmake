file(REMOVE_RECURSE
  "CMakeFiles/fig1a_platform_map.dir/fig1a_platform_map.cpp.o"
  "CMakeFiles/fig1a_platform_map.dir/fig1a_platform_map.cpp.o.d"
  "fig1a_platform_map"
  "fig1a_platform_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_platform_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
