# Empty compiler generated dependencies file for fig1a_platform_map.
# This may be replaced when dependencies are built.
