file(REMOVE_RECURSE
  "CMakeFiles/fig1b_drips_breakdown.dir/fig1b_drips_breakdown.cpp.o"
  "CMakeFiles/fig1b_drips_breakdown.dir/fig1b_drips_breakdown.cpp.o.d"
  "fig1b_drips_breakdown"
  "fig1b_drips_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_drips_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
