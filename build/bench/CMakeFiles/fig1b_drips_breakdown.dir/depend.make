# Empty dependencies file for fig1b_drips_breakdown.
# This may be replaced when dependencies are built.
