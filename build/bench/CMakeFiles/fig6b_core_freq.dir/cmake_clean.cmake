file(REMOVE_RECURSE
  "CMakeFiles/fig6b_core_freq.dir/fig6b_core_freq.cpp.o"
  "CMakeFiles/fig6b_core_freq.dir/fig6b_core_freq.cpp.o.d"
  "fig6b_core_freq"
  "fig6b_core_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_core_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
