
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6b_core_freq.cpp" "bench/CMakeFiles/fig6b_core_freq.dir/fig6b_core_freq.cpp.o" "gcc" "bench/CMakeFiles/fig6b_core_freq.dir/fig6b_core_freq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/odrips_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flows/CMakeFiles/odrips_flows.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/odrips_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/odrips_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/odrips_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/odrips_security.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/odrips_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/odrips_io.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrips_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
