# Empty dependencies file for fig6b_core_freq.
# This may be replaced when dependencies are built.
