file(REMOVE_RECURSE
  "CMakeFiles/sec63_context_latency.dir/sec63_context_latency.cpp.o"
  "CMakeFiles/sec63_context_latency.dir/sec63_context_latency.cpp.o.d"
  "sec63_context_latency"
  "sec63_context_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_context_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
