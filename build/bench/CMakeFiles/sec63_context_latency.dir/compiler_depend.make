# Empty compiler generated dependencies file for sec63_context_latency.
# This may be replaced when dependencies are built.
