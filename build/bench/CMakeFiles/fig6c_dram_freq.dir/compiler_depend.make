# Empty compiler generated dependencies file for fig6c_dram_freq.
# This may be replaced when dependencies are built.
