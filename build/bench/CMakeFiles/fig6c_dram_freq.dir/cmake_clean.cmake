file(REMOVE_RECURSE
  "CMakeFiles/fig6c_dram_freq.dir/fig6c_dram_freq.cpp.o"
  "CMakeFiles/fig6c_dram_freq.dir/fig6c_dram_freq.cpp.o.d"
  "fig6c_dram_freq"
  "fig6c_dram_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_dram_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
