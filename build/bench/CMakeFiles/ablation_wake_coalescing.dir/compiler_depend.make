# Empty compiler generated dependencies file for ablation_wake_coalescing.
# This may be replaced when dependencies are built.
