file(REMOVE_RECURSE
  "CMakeFiles/ablation_wake_coalescing.dir/ablation_wake_coalescing.cpp.o"
  "CMakeFiles/ablation_wake_coalescing.dir/ablation_wake_coalescing.cpp.o.d"
  "ablation_wake_coalescing"
  "ablation_wake_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wake_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
