file(REMOVE_RECURSE
  "CMakeFiles/ablation_step_precision.dir/ablation_step_precision.cpp.o"
  "CMakeFiles/ablation_step_precision.dir/ablation_step_precision.cpp.o.d"
  "ablation_step_precision"
  "ablation_step_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
