# Empty compiler generated dependencies file for fig6a_techniques.
# This may be replaced when dependencies are built.
