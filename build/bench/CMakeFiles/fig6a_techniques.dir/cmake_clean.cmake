file(REMOVE_RECURSE
  "CMakeFiles/fig6a_techniques.dir/fig6a_techniques.cpp.o"
  "CMakeFiles/fig6a_techniques.dir/fig6a_techniques.cpp.o.d"
  "fig6a_techniques"
  "fig6a_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
