file(REMOVE_RECURSE
  "CMakeFiles/ablation_cstate_governor.dir/ablation_cstate_governor.cpp.o"
  "CMakeFiles/ablation_cstate_governor.dir/ablation_cstate_governor.cpp.o.d"
  "ablation_cstate_governor"
  "ablation_cstate_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cstate_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
