# Empty dependencies file for fig6d_nvm.
# This may be replaced when dependencies are built.
