file(REMOVE_RECURSE
  "CMakeFiles/fig6d_nvm.dir/fig6d_nvm.cpp.o"
  "CMakeFiles/fig6d_nvm.dir/fig6d_nvm.cpp.o.d"
  "fig6d_nvm"
  "fig6d_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
