# Empty dependencies file for ablation_power_delivery.
# This may be replaced when dependencies are built.
