file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_delivery.dir/ablation_power_delivery.cpp.o"
  "CMakeFiles/ablation_power_delivery.dir/ablation_power_delivery.cpp.o.d"
  "ablation_power_delivery"
  "ablation_power_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
