file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_dvfs.dir/ablation_memory_dvfs.cpp.o"
  "CMakeFiles/ablation_memory_dvfs.dir/ablation_memory_dvfs.cpp.o.d"
  "ablation_memory_dvfs"
  "ablation_memory_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
