# Empty dependencies file for ablation_memory_dvfs.
# This may be replaced when dependencies are built.
