file(REMOVE_RECURSE
  "CMakeFiles/security_test.dir/security/crypto_test.cc.o"
  "CMakeFiles/security_test.dir/security/crypto_test.cc.o.d"
  "CMakeFiles/security_test.dir/security/mee_cache_test.cc.o"
  "CMakeFiles/security_test.dir/security/mee_cache_test.cc.o.d"
  "CMakeFiles/security_test.dir/security/mee_property_test.cc.o"
  "CMakeFiles/security_test.dir/security/mee_property_test.cc.o.d"
  "CMakeFiles/security_test.dir/security/mee_test.cc.o"
  "CMakeFiles/security_test.dir/security/mee_test.cc.o.d"
  "CMakeFiles/security_test.dir/security/tree_layout_test.cc.o"
  "CMakeFiles/security_test.dir/security/tree_layout_test.cc.o.d"
  "security_test"
  "security_test.pdb"
  "security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
