
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/board.cc" "src/platform/CMakeFiles/odrips_platform.dir/board.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/board.cc.o.d"
  "/root/repo/src/platform/chipset.cc" "src/platform/CMakeFiles/odrips_platform.dir/chipset.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/chipset.cc.o.d"
  "/root/repo/src/platform/config.cc" "src/platform/CMakeFiles/odrips_platform.dir/config.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/config.cc.o.d"
  "/root/repo/src/platform/context.cc" "src/platform/CMakeFiles/odrips_platform.dir/context.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/context.cc.o.d"
  "/root/repo/src/platform/cstate.cc" "src/platform/CMakeFiles/odrips_platform.dir/cstate.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/cstate.cc.o.d"
  "/root/repo/src/platform/platform.cc" "src/platform/CMakeFiles/odrips_platform.dir/platform.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/platform.cc.o.d"
  "/root/repo/src/platform/processor.cc" "src/platform/CMakeFiles/odrips_platform.dir/processor.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/processor.cc.o.d"
  "/root/repo/src/platform/techniques.cc" "src/platform/CMakeFiles/odrips_platform.dir/techniques.cc.o" "gcc" "src/platform/CMakeFiles/odrips_platform.dir/techniques.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/odrips_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrips_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/odrips_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/odrips_security.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/odrips_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
