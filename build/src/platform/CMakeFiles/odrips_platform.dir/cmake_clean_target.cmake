file(REMOVE_RECURSE
  "libodrips_platform.a"
)
