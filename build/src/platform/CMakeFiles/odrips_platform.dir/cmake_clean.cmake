file(REMOVE_RECURSE
  "CMakeFiles/odrips_platform.dir/board.cc.o"
  "CMakeFiles/odrips_platform.dir/board.cc.o.d"
  "CMakeFiles/odrips_platform.dir/chipset.cc.o"
  "CMakeFiles/odrips_platform.dir/chipset.cc.o.d"
  "CMakeFiles/odrips_platform.dir/config.cc.o"
  "CMakeFiles/odrips_platform.dir/config.cc.o.d"
  "CMakeFiles/odrips_platform.dir/context.cc.o"
  "CMakeFiles/odrips_platform.dir/context.cc.o.d"
  "CMakeFiles/odrips_platform.dir/cstate.cc.o"
  "CMakeFiles/odrips_platform.dir/cstate.cc.o.d"
  "CMakeFiles/odrips_platform.dir/platform.cc.o"
  "CMakeFiles/odrips_platform.dir/platform.cc.o.d"
  "CMakeFiles/odrips_platform.dir/processor.cc.o"
  "CMakeFiles/odrips_platform.dir/processor.cc.o.d"
  "CMakeFiles/odrips_platform.dir/techniques.cc.o"
  "CMakeFiles/odrips_platform.dir/techniques.cc.o.d"
  "libodrips_platform.a"
  "libodrips_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
