# Empty dependencies file for odrips_platform.
# This may be replaced when dependencies are built.
