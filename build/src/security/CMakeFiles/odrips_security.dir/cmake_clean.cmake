file(REMOVE_RECURSE
  "CMakeFiles/odrips_security.dir/ctr_mode.cc.o"
  "CMakeFiles/odrips_security.dir/ctr_mode.cc.o.d"
  "CMakeFiles/odrips_security.dir/integrity_tree.cc.o"
  "CMakeFiles/odrips_security.dir/integrity_tree.cc.o.d"
  "CMakeFiles/odrips_security.dir/mee.cc.o"
  "CMakeFiles/odrips_security.dir/mee.cc.o.d"
  "CMakeFiles/odrips_security.dir/mee_cache.cc.o"
  "CMakeFiles/odrips_security.dir/mee_cache.cc.o.d"
  "CMakeFiles/odrips_security.dir/sha256.cc.o"
  "CMakeFiles/odrips_security.dir/sha256.cc.o.d"
  "CMakeFiles/odrips_security.dir/speck.cc.o"
  "CMakeFiles/odrips_security.dir/speck.cc.o.d"
  "libodrips_security.a"
  "libodrips_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
