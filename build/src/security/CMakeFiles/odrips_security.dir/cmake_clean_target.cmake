file(REMOVE_RECURSE
  "libodrips_security.a"
)
