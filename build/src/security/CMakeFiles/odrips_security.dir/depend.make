# Empty dependencies file for odrips_security.
# This may be replaced when dependencies are built.
