
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/ctr_mode.cc" "src/security/CMakeFiles/odrips_security.dir/ctr_mode.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/ctr_mode.cc.o.d"
  "/root/repo/src/security/integrity_tree.cc" "src/security/CMakeFiles/odrips_security.dir/integrity_tree.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/integrity_tree.cc.o.d"
  "/root/repo/src/security/mee.cc" "src/security/CMakeFiles/odrips_security.dir/mee.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/mee.cc.o.d"
  "/root/repo/src/security/mee_cache.cc" "src/security/CMakeFiles/odrips_security.dir/mee_cache.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/mee_cache.cc.o.d"
  "/root/repo/src/security/sha256.cc" "src/security/CMakeFiles/odrips_security.dir/sha256.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/sha256.cc.o.d"
  "/root/repo/src/security/speck.cc" "src/security/CMakeFiles/odrips_security.dir/speck.cc.o" "gcc" "src/security/CMakeFiles/odrips_security.dir/speck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/odrips_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrips_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
