file(REMOVE_RECURSE
  "CMakeFiles/odrips_stats.dir/group.cc.o"
  "CMakeFiles/odrips_stats.dir/group.cc.o.d"
  "CMakeFiles/odrips_stats.dir/histogram.cc.o"
  "CMakeFiles/odrips_stats.dir/histogram.cc.o.d"
  "CMakeFiles/odrips_stats.dir/report.cc.o"
  "CMakeFiles/odrips_stats.dir/report.cc.o.d"
  "CMakeFiles/odrips_stats.dir/stat.cc.o"
  "CMakeFiles/odrips_stats.dir/stat.cc.o.d"
  "libodrips_stats.a"
  "libodrips_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
