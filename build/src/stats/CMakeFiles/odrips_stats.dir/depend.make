# Empty dependencies file for odrips_stats.
# This may be replaced when dependencies are built.
