file(REMOVE_RECURSE
  "libodrips_stats.a"
)
