# Empty dependencies file for odrips_core.
# This may be replaced when dependencies are built.
