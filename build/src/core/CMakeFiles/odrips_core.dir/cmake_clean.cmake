file(REMOVE_RECURSE
  "CMakeFiles/odrips_core.dir/breakeven.cc.o"
  "CMakeFiles/odrips_core.dir/breakeven.cc.o.d"
  "CMakeFiles/odrips_core.dir/experiment.cc.o"
  "CMakeFiles/odrips_core.dir/experiment.cc.o.d"
  "CMakeFiles/odrips_core.dir/governor.cc.o"
  "CMakeFiles/odrips_core.dir/governor.cc.o.d"
  "CMakeFiles/odrips_core.dir/memory_dvfs.cc.o"
  "CMakeFiles/odrips_core.dir/memory_dvfs.cc.o.d"
  "CMakeFiles/odrips_core.dir/profile.cc.o"
  "CMakeFiles/odrips_core.dir/profile.cc.o.d"
  "CMakeFiles/odrips_core.dir/standby_simulator.cc.o"
  "CMakeFiles/odrips_core.dir/standby_simulator.cc.o.d"
  "libodrips_core.a"
  "libodrips_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
