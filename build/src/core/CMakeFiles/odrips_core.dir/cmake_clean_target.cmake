file(REMOVE_RECURSE
  "libodrips_core.a"
)
