# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("clock")
subdirs("timing")
subdirs("power")
subdirs("mem")
subdirs("security")
subdirs("io")
subdirs("platform")
subdirs("flows")
subdirs("workload")
subdirs("core")
