file(REMOVE_RECURSE
  "CMakeFiles/odrips_io.dir/aon_io.cc.o"
  "CMakeFiles/odrips_io.dir/aon_io.cc.o.d"
  "CMakeFiles/odrips_io.dir/gpio.cc.o"
  "CMakeFiles/odrips_io.dir/gpio.cc.o.d"
  "libodrips_io.a"
  "libodrips_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
