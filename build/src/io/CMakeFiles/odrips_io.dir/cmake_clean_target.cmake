file(REMOVE_RECURSE
  "libodrips_io.a"
)
