# Empty dependencies file for odrips_io.
# This may be replaced when dependencies are built.
