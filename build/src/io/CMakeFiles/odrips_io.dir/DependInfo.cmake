
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/aon_io.cc" "src/io/CMakeFiles/odrips_io.dir/aon_io.cc.o" "gcc" "src/io/CMakeFiles/odrips_io.dir/aon_io.cc.o.d"
  "/root/repo/src/io/gpio.cc" "src/io/CMakeFiles/odrips_io.dir/gpio.cc.o" "gcc" "src/io/CMakeFiles/odrips_io.dir/gpio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrips_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
