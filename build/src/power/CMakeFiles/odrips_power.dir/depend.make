# Empty dependencies file for odrips_power.
# This may be replaced when dependencies are built.
