file(REMOVE_RECURSE
  "CMakeFiles/odrips_power.dir/breakdown.cc.o"
  "CMakeFiles/odrips_power.dir/breakdown.cc.o.d"
  "CMakeFiles/odrips_power.dir/power_analyzer.cc.o"
  "CMakeFiles/odrips_power.dir/power_analyzer.cc.o.d"
  "CMakeFiles/odrips_power.dir/power_model.cc.o"
  "CMakeFiles/odrips_power.dir/power_model.cc.o.d"
  "CMakeFiles/odrips_power.dir/process_scaling.cc.o"
  "CMakeFiles/odrips_power.dir/process_scaling.cc.o.d"
  "libodrips_power.a"
  "libodrips_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
