
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/breakdown.cc" "src/power/CMakeFiles/odrips_power.dir/breakdown.cc.o" "gcc" "src/power/CMakeFiles/odrips_power.dir/breakdown.cc.o.d"
  "/root/repo/src/power/power_analyzer.cc" "src/power/CMakeFiles/odrips_power.dir/power_analyzer.cc.o" "gcc" "src/power/CMakeFiles/odrips_power.dir/power_analyzer.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/odrips_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/odrips_power.dir/power_model.cc.o.d"
  "/root/repo/src/power/process_scaling.cc" "src/power/CMakeFiles/odrips_power.dir/process_scaling.cc.o" "gcc" "src/power/CMakeFiles/odrips_power.dir/process_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
