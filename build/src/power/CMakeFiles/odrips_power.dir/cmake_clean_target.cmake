file(REMOVE_RECURSE
  "libodrips_power.a"
)
