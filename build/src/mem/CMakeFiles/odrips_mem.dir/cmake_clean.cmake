file(REMOVE_RECURSE
  "CMakeFiles/odrips_mem.dir/backing_store.cc.o"
  "CMakeFiles/odrips_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/odrips_mem.dir/dram.cc.o"
  "CMakeFiles/odrips_mem.dir/dram.cc.o.d"
  "CMakeFiles/odrips_mem.dir/memory_controller.cc.o"
  "CMakeFiles/odrips_mem.dir/memory_controller.cc.o.d"
  "CMakeFiles/odrips_mem.dir/nvm.cc.o"
  "CMakeFiles/odrips_mem.dir/nvm.cc.o.d"
  "CMakeFiles/odrips_mem.dir/sram.cc.o"
  "CMakeFiles/odrips_mem.dir/sram.cc.o.d"
  "libodrips_mem.a"
  "libodrips_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
