# Empty dependencies file for odrips_mem.
# This may be replaced when dependencies are built.
