file(REMOVE_RECURSE
  "libodrips_mem.a"
)
