
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/odrips_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/odrips_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/odrips_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/odrips_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/mem/CMakeFiles/odrips_mem.dir/memory_controller.cc.o" "gcc" "src/mem/CMakeFiles/odrips_mem.dir/memory_controller.cc.o.d"
  "/root/repo/src/mem/nvm.cc" "src/mem/CMakeFiles/odrips_mem.dir/nvm.cc.o" "gcc" "src/mem/CMakeFiles/odrips_mem.dir/nvm.cc.o.d"
  "/root/repo/src/mem/sram.cc" "src/mem/CMakeFiles/odrips_mem.dir/sram.cc.o" "gcc" "src/mem/CMakeFiles/odrips_mem.dir/sram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrips_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/odrips_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
