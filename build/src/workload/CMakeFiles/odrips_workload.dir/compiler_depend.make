# Empty compiler generated dependencies file for odrips_workload.
# This may be replaced when dependencies are built.
