file(REMOVE_RECURSE
  "CMakeFiles/odrips_workload.dir/standby_workload.cc.o"
  "CMakeFiles/odrips_workload.dir/standby_workload.cc.o.d"
  "CMakeFiles/odrips_workload.dir/wake_source.cc.o"
  "CMakeFiles/odrips_workload.dir/wake_source.cc.o.d"
  "libodrips_workload.a"
  "libodrips_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
