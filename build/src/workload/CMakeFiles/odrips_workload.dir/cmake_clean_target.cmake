file(REMOVE_RECURSE
  "libodrips_workload.a"
)
