# Empty dependencies file for odrips_flows.
# This may be replaced when dependencies are built.
