file(REMOVE_RECURSE
  "libodrips_flows.a"
)
