file(REMOVE_RECURSE
  "CMakeFiles/odrips_flows.dir/context_fsm.cc.o"
  "CMakeFiles/odrips_flows.dir/context_fsm.cc.o.d"
  "CMakeFiles/odrips_flows.dir/flow_sequence.cc.o"
  "CMakeFiles/odrips_flows.dir/flow_sequence.cc.o.d"
  "CMakeFiles/odrips_flows.dir/standby_flows.cc.o"
  "CMakeFiles/odrips_flows.dir/standby_flows.cc.o.d"
  "libodrips_flows.a"
  "libodrips_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
