file(REMOVE_RECURSE
  "CMakeFiles/odrips_sim.dir/event_queue.cc.o"
  "CMakeFiles/odrips_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/odrips_sim.dir/logging.cc.o"
  "CMakeFiles/odrips_sim.dir/logging.cc.o.d"
  "CMakeFiles/odrips_sim.dir/random.cc.o"
  "CMakeFiles/odrips_sim.dir/random.cc.o.d"
  "libodrips_sim.a"
  "libodrips_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
