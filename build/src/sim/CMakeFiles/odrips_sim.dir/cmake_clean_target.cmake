file(REMOVE_RECURSE
  "libodrips_sim.a"
)
