# Empty dependencies file for odrips_sim.
# This may be replaced when dependencies are built.
