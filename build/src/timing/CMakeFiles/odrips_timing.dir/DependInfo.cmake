
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/fixed_point.cc" "src/timing/CMakeFiles/odrips_timing.dir/fixed_point.cc.o" "gcc" "src/timing/CMakeFiles/odrips_timing.dir/fixed_point.cc.o.d"
  "/root/repo/src/timing/step_calibrator.cc" "src/timing/CMakeFiles/odrips_timing.dir/step_calibrator.cc.o" "gcc" "src/timing/CMakeFiles/odrips_timing.dir/step_calibrator.cc.o.d"
  "/root/repo/src/timing/wake_timer_unit.cc" "src/timing/CMakeFiles/odrips_timing.dir/wake_timer_unit.cc.o" "gcc" "src/timing/CMakeFiles/odrips_timing.dir/wake_timer_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odrips_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
