# Empty compiler generated dependencies file for odrips_timing.
# This may be replaced when dependencies are built.
