file(REMOVE_RECURSE
  "CMakeFiles/odrips_timing.dir/fixed_point.cc.o"
  "CMakeFiles/odrips_timing.dir/fixed_point.cc.o.d"
  "CMakeFiles/odrips_timing.dir/step_calibrator.cc.o"
  "CMakeFiles/odrips_timing.dir/step_calibrator.cc.o.d"
  "CMakeFiles/odrips_timing.dir/wake_timer_unit.cc.o"
  "CMakeFiles/odrips_timing.dir/wake_timer_unit.cc.o.d"
  "libodrips_timing.a"
  "libodrips_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrips_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
