file(REMOVE_RECURSE
  "libodrips_timing.a"
)
