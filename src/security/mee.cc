#include "security/mee.hh"

#include <cstring>
#include <vector>

namespace odrips
{

void
MeeRootState::serialize(std::uint8_t *out) const
{
    std::memcpy(out, &rootCounter, 8);
    std::memcpy(out + 8, key.data(), 16);
}

MeeRootState
MeeRootState::deserialize(const std::uint8_t *in)
{
    MeeRootState s;
    std::memcpy(&s.rootCounter, in, 8);
    std::memcpy(s.key.data(), in + 8, 16);
    return s;
}

Mee::Mee(std::string name, MainMemory &memory, const MeeConfig &config)
    : Named(std::move(name)), mem(memory), cfg(config),
      tree(config.dataSize), ctr(config.key),
      cache(config.cacheNodes, config.cacheAssociativity)
{
    ODRIPS_ASSERT(cfg.dataBase % TreeLayout::lineBytes == 0,
                  this->name(), ": protected base must be 64 B aligned");
    // Metadata region must not overlap data.
    const std::uint64_t meta_end = cfg.metaBase + tree.metadataBytes();
    const std::uint64_t data_end = cfg.dataBase + cfg.dataSize;
    ODRIPS_ASSERT(meta_end <= cfg.dataBase || cfg.metaBase >= data_end,
                  this->name(), ": metadata region overlaps the data region");
    ODRIPS_ASSERT(meta_end <= mem.capacityBytes(),
                  this->name(), ": metadata region beyond memory capacity");
}

std::uint64_t
Mee::nodeAddress(NodeKind kind, unsigned level, std::uint64_t group) const
{
    return cfg.metaBase + tree.nodeOffset(kind, level, group);
}

void
Mee::splitKey(std::uint64_t key, NodeKind &kind, unsigned &level,
              std::uint64_t &group)
{
    kind = static_cast<NodeKind>(key >> 62);
    level = static_cast<unsigned>((key >> 56) & 0x3f);
    group = key & ((std::uint64_t{1} << 56) - 1);
}

void
Mee::writebackNode(std::uint64_t key, const MetadataNode &node, Tick now)
{
    NodeKind kind;
    unsigned level;
    std::uint64_t group;
    splitKey(key, kind, level, group);

    std::uint8_t buf[MetadataNode::storageBytes];
    node.serialize(buf);
    mem.write(nodeAddress(kind, level, group), buf, sizeof(buf), now);
    stats.metadataBytesWritten += sizeof(buf);
}

MetadataNode &
Mee::fetchNode(NodeKind kind, unsigned level, std::uint64_t group,
               bool is_write, Tick now, Tick &latency, bool for_read_path)
{
    ODRIPS_ASSERT(poweredOn, name(), ": metadata access while powered off");
    const std::uint64_t key = TreeLayout::nodeKey(kind, level, group);

    // Hit: one associative search updates LRU/dirty and hands back the
    // resident node.
    if (MetadataNode *node = cache.probe(key, is_write)) {
        ++stats.cacheHits;
        return *node;
    }

    // Miss: read the node from memory.
    ++stats.cacheMisses;
    std::uint8_t buf[MetadataNode::storageBytes];
    mem.read(nodeAddress(kind, level, group), buf, sizeof(buf), now);
    stats.metadataBytesRead += sizeof(buf);

    const double penalty_ns = for_read_path ? cfg.missPenaltyReadNs
                                            : cfg.missPenaltyWriteNs;
    latency += secondsToTicks(
        penalty_ns * 1e-9 +
        static_cast<double>(sizeof(buf)) / mem.peakBandwidth());

    const MeeInsertResult r =
        cache.insert(key, MetadataNode::deserialize(buf), is_write);
    if (r.writeback) {
        writebackNode(r.writeback->first, r.writeback->second, now);
        latency += secondsToTicks(
            static_cast<double>(MetadataNode::storageBytes) /
            mem.peakBandwidth());
    }
    return *r.node;
}

std::uint64_t
Mee::nodeMac(unsigned level, std::uint64_t group, const MetadataNode &node,
             std::uint64_t parent_counter) const
{
    // The counter array is contiguous, so it streams into the MAC in
    // place; no staging copy. Digest is identical to MACing the
    // concatenated buffer.
    const std::uint64_t domain =
        0x4e4f4445ULL ^ (std::uint64_t{level} << 56) ^ group;
    return mac64(cfg.key, domain,
                 {{node.counters.data(), 8 * MetadataNode::arity},
                  {&parent_counter, 8}});
}

std::uint64_t
Mee::lineMac(std::uint64_t addr, std::uint64_t version,
             const std::uint8_t *ciphertext) const
{
    return mac64(cfg.key, 0x4c494e45ULL,
                 {{ciphertext, TreeLayout::lineBytes},
                  {&addr, 8},
                  {&version, 8}});
}

std::uint64_t
Mee::parentCounter(unsigned level, std::uint64_t group, bool bump,
                   Tick now, Tick &latency, bool for_read_path)
{
    // Counter index `group` at level (level + 1); the root sits above
    // the last counter level.
    if (level + 1 >= tree.counterLevels()) {
        if (bump)
            ++rootCounter;
        return rootCounter;
    }
    MetadataNode &node =
        fetchNode(NodeKind::CounterGroup, level + 1,
                  group / TreeLayout::arity, bump, now, latency,
                  for_read_path);
    std::uint64_t &counter = node.counters[group % TreeLayout::arity];
    if (bump)
        ++counter;
    return counter;
}

MemAccessResult
Mee::secureWrite(std::uint64_t addr, const std::uint8_t *data,
                 std::uint64_t len, Tick now)
{
    ODRIPS_ASSERT(poweredOn, name(), ": write while powered off");
    ODRIPS_ASSERT(addr >= cfg.dataBase &&
                      addr + len <= cfg.dataBase + cfg.dataSize,
                  name(), ": write outside the protected region");
    ODRIPS_ASSERT(addr % TreeLayout::lineBytes == 0 &&
                      len % TreeLayout::lineBytes == 0,
                  name(), ": unaligned protected write");

    Tick latency = 0;
    // Reuse the scratch buffer across calls: a context transfer issues
    // thousands of secureWrite bursts, and a fresh vector per call was
    // an allocation on every one of them.
    writeScratch.assign(data, data + len);

    const std::uint64_t lines = len / TreeLayout::lineBytes;
    for (std::uint64_t k = 0; k < lines; ++k) {
        const std::uint64_t line_addr = addr + k * TreeLayout::lineBytes;
        const std::uint64_t index =
            (line_addr - cfg.dataBase) / TreeLayout::lineBytes;
        std::uint8_t *line = writeScratch.data() + k * TreeLayout::lineBytes;

        // Bump the version counter and encrypt under the new version.
        std::uint64_t version;
        {
            MetadataNode &l0 =
                fetchNode(NodeKind::CounterGroup, 0,
                          index / TreeLayout::arity, true, now, latency,
                          false);
            version = ++l0.counters[index % TreeLayout::arity];
        }
        ctr.apply(line_addr, version, line, TreeLayout::lineBytes);

        // Record the line MAC.
        {
            MetadataNode &macs =
                fetchNode(NodeKind::DataMacGroup, 0,
                          index / TreeLayout::arity, true, now, latency,
                          false);
            macs.counters[index % TreeLayout::arity] =
                lineMac(line_addr, version, line);
        }

        // Propagate: bump parents and re-MAC every node on the path.
        std::uint64_t idx = index;
        for (unsigned level = 0; level < tree.counterLevels(); ++level) {
            const std::uint64_t group = idx / TreeLayout::arity;
            const std::uint64_t parent =
                parentCounter(level, group, true, now, latency, false);
            MetadataNode &node =
                fetchNode(NodeKind::CounterGroup, level, group, true, now,
                          latency, false);
            node.mac = nodeMac(level, group, node, parent);
            idx = group;
        }
        ++stats.linesWritten;
    }

    // Stream the ciphertext to memory in one burst.
    MemAccessResult mem_result =
        mem.write(addr, writeScratch.data(), len, now);

    stats.cryptoEnergy +=
        cfg.cryptoEnergyPerByte * static_cast<double>(len);

    MemAccessResult out;
    out.bytes = len;
    out.latency =
        mem_result.latency + latency +
        secondsToTicks(cfg.cryptoWriteNsPerLine * 1e-9 *
                       static_cast<double>(lines));
    return out;
}

MemAccessResult
Mee::secureRead(std::uint64_t addr, std::uint8_t *data, std::uint64_t len,
                Tick now, bool &authentic)
{
    ODRIPS_ASSERT(poweredOn, name(), ": read while powered off");
    ODRIPS_ASSERT(addr >= cfg.dataBase &&
                      addr + len <= cfg.dataBase + cfg.dataSize,
                  name(), ": read outside the protected region");
    ODRIPS_ASSERT(addr % TreeLayout::lineBytes == 0 &&
                      len % TreeLayout::lineBytes == 0,
                  name(), ": unaligned protected read");

    authentic = true;
    Tick latency = 0;

    // Fetch the ciphertext in one burst.
    MemAccessResult mem_result = mem.read(addr, data, len, now);

    const std::uint64_t lines = len / TreeLayout::lineBytes;
    for (std::uint64_t k = 0; k < lines; ++k) {
        const std::uint64_t line_addr = addr + k * TreeLayout::lineBytes;
        const std::uint64_t index =
            (line_addr - cfg.dataBase) / TreeLayout::lineBytes;
        std::uint8_t *line = data + k * TreeLayout::lineBytes;

        std::uint64_t version;
        {
            MetadataNode &l0 =
                fetchNode(NodeKind::CounterGroup, 0,
                          index / TreeLayout::arity, false, now, latency,
                          true);
            version = l0.counters[index % TreeLayout::arity];
        }

        // Verify the line MAC against the stored one.
        {
            const std::uint64_t expected =
                lineMac(line_addr, version, line);
            MetadataNode &macs =
                fetchNode(NodeKind::DataMacGroup, 0,
                          index / TreeLayout::arity, false, now, latency,
                          true);
            if (macs.counters[index % TreeLayout::arity] != expected)
                authentic = false;
        }

        // Verify the counter chain up to the on-chip root.
        std::uint64_t idx = index;
        for (unsigned level = 0; level < tree.counterLevels(); ++level) {
            const std::uint64_t group = idx / TreeLayout::arity;
            const std::uint64_t parent =
                parentCounter(level, group, false, now, latency, true);
            MetadataNode &node =
                fetchNode(NodeKind::CounterGroup, level, group, false,
                          now, latency, true);
            if (node.mac != nodeMac(level, group, node, parent))
                authentic = false;
            idx = group;
        }

        // Decrypt in place.
        ctr.apply(line_addr, version, line, TreeLayout::lineBytes);
        ++stats.linesRead;
    }

    if (!authentic)
        ++stats.authFailures;

    stats.cryptoEnergy +=
        cfg.cryptoEnergyPerByte * static_cast<double>(len);

    MemAccessResult out;
    out.bytes = len;
    out.latency =
        mem_result.latency + latency +
        secondsToTicks(cfg.cryptoReadNsPerLine * 1e-9 *
                       static_cast<double>(lines));
    return out;
}

Tick
Mee::flush(Tick now)
{
    const auto dirty = cache.flush();
    for (const auto &[key, node] : dirty)
        writebackNode(key, node, now);

    const double bytes = static_cast<double>(
        dirty.size() * MetadataNode::storageBytes);
    return secondsToTicks(bytes / mem.peakBandwidth() +
                          (dirty.empty() ? 0.0 : 100e-9));
}

void
Mee::powerOff()
{
    cache.invalidate();
    poweredOn = false;
}

MeeRootState
Mee::exportRoot() const
{
    MeeRootState s;
    s.rootCounter = rootCounter;
    s.key = cfg.key;
    return s;
}

void
Mee::importRoot(const MeeRootState &state)
{
    rootCounter = state.rootCounter;
    cfg.key = state.key;
    ctr = CtrCipher(state.key);
    poweredOn = true;
}

void
Mee::resetStatistics()
{
    stats = MeeStats{};
    cache.resetStats();
}

} // namespace odrips
