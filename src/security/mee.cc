#include "security/mee.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "exec/thread_pool.hh"

namespace odrips
{

namespace
{

/** Domain separator of the per-line MACs ("LINE"). */
constexpr std::uint64_t lineMacDomain = 0x4c494e45ULL;

} // namespace

void
MeeRootState::serialize(std::uint8_t *out) const
{
    std::memcpy(out, &rootCounter, 8);
    std::memcpy(out + 8, key.data(), 16);
}

MeeRootState
MeeRootState::deserialize(const std::uint8_t *in)
{
    MeeRootState s;
    std::memcpy(&s.rootCounter, in, 8);
    std::memcpy(s.key.data(), in + 8, 16);
    return s;
}

Mee::Mee(std::string name, MainMemory &memory, const MeeConfig &config)
    : Named(std::move(name)), mem(memory), cfg(config),
      tree(config.dataSize), ctr(config.key),
      cache(config.cacheNodes, config.cacheAssociativity)
{
    ODRIPS_ASSERT(cfg.dataBase % TreeLayout::lineBytes == 0,
                  this->name(), ": protected base must be 64 B aligned");
    // Metadata region must not overlap data.
    const std::uint64_t meta_end = cfg.metaBase + tree.metadataBytes();
    const std::uint64_t data_end = cfg.dataBase + cfg.dataSize;
    ODRIPS_ASSERT(meta_end <= cfg.dataBase || cfg.metaBase >= data_end,
                  this->name(), ": metadata region overlaps the data region");
    ODRIPS_ASSERT(meta_end <= mem.capacityBytes(),
                  this->name(), ": metadata region beyond memory capacity");
}

std::uint64_t
Mee::nodeAddress(NodeKind kind, unsigned level, std::uint64_t group) const
{
    return cfg.metaBase + tree.nodeOffset(kind, level, group);
}

void
Mee::splitKey(std::uint64_t key, NodeKind &kind, unsigned &level,
              std::uint64_t &group)
{
    kind = static_cast<NodeKind>(key >> 62);
    level = static_cast<unsigned>((key >> 56) & 0x3f);
    group = key & ((std::uint64_t{1} << 56) - 1);
}

void
Mee::writebackNode(std::uint64_t key, const MetadataNode &node, Tick now)
{
    NodeKind kind;
    unsigned level;
    std::uint64_t group;
    splitKey(key, kind, level, group);

    std::uint8_t buf[MetadataNode::storageBytes];
    node.serialize(buf);
    mem.write(nodeAddress(kind, level, group), buf, sizeof(buf), now);
    stats.metadataBytesWritten += sizeof(buf);
}

MetadataNode &
Mee::fetchNode(NodeKind kind, unsigned level, std::uint64_t group,
               bool is_write, Tick now, Tick &latency, bool for_read_path)
{
    ODRIPS_ASSERT(poweredOn, name(), ": metadata access while powered off");
    const std::uint64_t key = TreeLayout::nodeKey(kind, level, group);

    // Hit: one associative search updates LRU/dirty and hands back the
    // resident node.
    if (MetadataNode *node = cache.probe(key, is_write)) {
        ++stats.cacheHits;
        return *node;
    }

    // Miss: read the node from memory.
    ++stats.cacheMisses;
    std::uint8_t buf[MetadataNode::storageBytes];
    mem.read(nodeAddress(kind, level, group), buf, sizeof(buf), now);
    stats.metadataBytesRead += sizeof(buf);

    const double penalty_ns = for_read_path ? cfg.missPenaltyReadNs
                                            : cfg.missPenaltyWriteNs;
    latency += secondsToTicks(
        penalty_ns * 1e-9 +
        static_cast<double>(sizeof(buf)) / mem.peakBandwidth());

    const MeeInsertResult r =
        cache.insert(key, MetadataNode::deserialize(buf), is_write);
    if (r.writeback) {
        writebackNode(r.writeback->first, r.writeback->second, now);
        latency += secondsToTicks(
            static_cast<double>(MetadataNode::storageBytes) /
            mem.peakBandwidth());
    }
    return *r.node;
}

std::uint64_t
Mee::nodeMac(unsigned level, std::uint64_t group, const MetadataNode &node,
             std::uint64_t parent_counter) const
{
    // The counter array is contiguous, so it streams into the MAC in
    // place; no staging copy. Digest is identical to MACing the
    // concatenated buffer.
    const std::uint64_t domain =
        0x4e4f4445ULL ^ (std::uint64_t{level} << 56) ^ group;
    return mac64(cfg.key, domain,
                 {{node.counters.data(), 8 * MetadataNode::arity},
                  {&parent_counter, 8}});
}

std::uint64_t
Mee::lineMac(std::uint64_t addr, std::uint64_t version,
             const std::uint8_t *ciphertext) const
{
    return mac64(cfg.key, lineMacDomain,
                 {{ciphertext, TreeLayout::lineBytes},
                  {&addr, 8},
                  {&version, 8}});
}

void
Mee::batchLineMacs(const std::uint8_t *linesData, std::uint64_t count,
                   const std::uint64_t *addrs,
                   const std::uint64_t *versions, std::uint64_t *out) const
{
    if (count == macBatchLines) {
        std::uint64_t domains[macBatchLines];
        MacSegment segments[macBatchLines * 3];
        for (std::uint64_t b = 0; b < macBatchLines; ++b) {
            domains[b] = lineMacDomain;
            segments[3 * b] = {linesData + b * TreeLayout::lineBytes,
                               TreeLayout::lineBytes};
            segments[3 * b + 1] = {&addrs[b], 8};
            segments[3 * b + 2] = {&versions[b], 8};
        }
        mac64x8(cfg.key, domains, segments, 3, out);
        return;
    }
    for (std::uint64_t b = 0; b < count; ++b)
        out[b] = lineMac(addrs[b], versions[b],
                         linesData + b * TreeLayout::lineBytes);
}

void
Mee::setTransferPool(exec::ThreadPool *pool)
{
    transferPoolOverride = pool;
    transferPoolSet = true;
}

exec::ThreadPool *
Mee::cryptoPool(std::uint64_t lines) const
{
    if (lines < parallelMinLines)
        return nullptr;
    // Nested inside a pool worker (e.g. a parallel sweep): run inline
    // rather than wait on another pool from a worker thread.
    if (exec::ThreadPool::current() != nullptr)
        return nullptr;
    return transferPoolSet ? transferPoolOverride : exec::defaultPool();
}

void
Mee::peekCounterGroup(std::uint64_t group,
                      std::uint64_t out[TreeLayout::arity]) const
{
    const std::uint64_t key =
        TreeLayout::nodeKey(NodeKind::CounterGroup, 0, group);
    if (const MetadataNode *node = cache.peek(key)) {
        std::copy(node->counters.begin(), node->counters.end(), out);
        return;
    }
    // Not resident: the fetch the modeled walk will do reads exactly
    // these backing-store bytes (the cache is write-back, so DRAM is
    // up to date for any non-resident node).
    std::uint8_t buf[MetadataNode::storageBytes];
    mem.store().read(nodeAddress(NodeKind::CounterGroup, 0, group), buf,
                     sizeof(buf));
    const MetadataNode node = MetadataNode::deserialize(buf);
    std::copy(node.counters.begin(), node.counters.end(), out);
}

void
Mee::predictVersions(std::uint64_t first_line, std::uint64_t count,
                     bool bump, std::uint64_t *out) const
{
    std::uint64_t counters[TreeLayout::arity];
    std::uint64_t group = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t line = first_line + i;
        const std::uint64_t g = line / TreeLayout::arity;
        if (i == 0 || g != group) {
            group = g;
            peekCounterGroup(g, counters);
        }
        out[i] = counters[line % TreeLayout::arity] + (bump ? 1 : 0);
    }
}

void
Mee::transferCrypto(std::uint64_t addr, std::uint8_t *data,
                    std::uint64_t lines, const std::uint64_t *versions,
                    bool mac_first, std::uint64_t *macs) const
{
    const std::uint64_t chunks =
        (lines + macBatchLines - 1) / macBatchLines;

    // The chunking reproduces the historical serial batching exactly:
    // chunk c covers lines [8c, 8c + 8), with the same full-batch
    // mac64x8 / partial-batch fallback split, so the MAC values are
    // bit-identical to the line-at-a-time loop.
    auto runChunks = [&](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t lineAddr[macBatchLines];
        for (std::uint64_t c = begin; c < end; ++c) {
            const std::uint64_t first = c * macBatchLines;
            const std::uint64_t batch =
                std::min<std::uint64_t>(macBatchLines, lines - first);
            std::uint8_t *chunkData =
                data + first * TreeLayout::lineBytes;
            for (std::uint64_t b = 0; b < batch; ++b)
                lineAddr[b] = addr + (first + b) * TreeLayout::lineBytes;
            if (mac_first)
                batchLineMacs(chunkData, batch, lineAddr,
                              versions + first, macs + first);
            for (std::uint64_t b = 0; b < batch; ++b)
                ctr.apply(lineAddr[b], versions[first + b],
                          chunkData + b * TreeLayout::lineBytes,
                          TreeLayout::lineBytes);
            if (!mac_first)
                batchLineMacs(chunkData, batch, lineAddr,
                              versions + first, macs + first);
        }
    };

    exec::ThreadPool *pool = cryptoPool(lines);
    if (pool == nullptr) {
        runChunks(0, chunks);
        return;
    }

    // Static sharding: one contiguous chunk span per worker, results
    // into disjoint slots of @p data / @p macs. No scheduling decision
    // affects any output value, so the merge is deterministic for any
    // worker count.
    const std::uint64_t spans =
        std::min<std::uint64_t>(pool->size(), chunks);
    const std::uint64_t per = (chunks + spans - 1) / spans;
    exec::TaskGroup group(*pool);
    for (std::uint64_t s = 0; s < spans; ++s) {
        const std::uint64_t begin = s * per;
        const std::uint64_t end = std::min(chunks, begin + per);
        if (begin >= end)
            break;
        group.run([&runChunks, begin, end] { runChunks(begin, end); });
    }
    group.wait();
}

std::uint64_t
Mee::parentCounter(unsigned level, std::uint64_t group, bool bump,
                   Tick now, Tick &latency, bool for_read_path)
{
    // Counter index `group` at level (level + 1); the root sits above
    // the last counter level.
    if (level + 1 >= tree.counterLevels()) {
        if (bump)
            ++rootCounter;
        return rootCounter;
    }
    MetadataNode &node =
        fetchNode(NodeKind::CounterGroup, level + 1,
                  group / TreeLayout::arity, bump, now, latency,
                  for_read_path);
    std::uint64_t &counter = node.counters[group % TreeLayout::arity];
    if (bump)
        ++counter;
    return counter;
}

MemAccessResult
Mee::secureWrite(std::uint64_t addr, const std::uint8_t *data,
                 std::uint64_t len, Tick now)
{
    ODRIPS_ASSERT(poweredOn, name(), ": write while powered off");
    ODRIPS_ASSERT(addr >= cfg.dataBase &&
                      addr + len <= cfg.dataBase + cfg.dataSize,
                  name(), ": write outside the protected region");
    ODRIPS_ASSERT(addr % TreeLayout::lineBytes == 0 &&
                      len % TreeLayout::lineBytes == 0,
                  name(), ": unaligned protected write");

    Tick latency = 0;
    // Reuse the scratch buffer across calls: a context transfer issues
    // thousands of secureWrite bursts, and a fresh vector per call was
    // an allocation on every one of them.
    writeScratch.assign(data, data + len);

    const std::uint64_t lines = len / TreeLayout::lineBytes;
    const std::uint64_t firstLine =
        (addr - cfg.dataBase) / TreeLayout::lineBytes;

    // Host-side crypto phase: predict every line's post-bump version
    // from the current counters (stats-neutral peek), then encrypt and
    // MAC the whole transfer — sharded across the transfer pool for
    // large bursts. The modeled walk below consumes these values and
    // asserts the predictions.
    versionScratch.resize(lines);
    macScratch.resize(lines);
    predictVersions(firstLine, lines, true, versionScratch.data());
    transferCrypto(addr, writeScratch.data(), lines,
                   versionScratch.data(), false, macScratch.data());

    // Modeled metadata walk, in batches of up to 8 lines. The per-line
    // metadata accesses keep their relative order inside each phase,
    // and a batch of consecutive lines shares its counter/MAC groups
    // (arity 8), so the cache hit/miss pattern and final LRU order
    // match the historical line-at-a-time loop.
    std::uint64_t done = 0;
    while (done < lines) {
        const std::uint64_t batch =
            std::min<std::uint64_t>(macBatchLines, lines - done);
        std::uint64_t lineIndex[macBatchLines];

        // Bump each line's version counter.
        for (std::uint64_t b = 0; b < batch; ++b) {
            const std::uint64_t k = done + b;
            lineIndex[b] = firstLine + k;
            MetadataNode &l0 =
                fetchNode(NodeKind::CounterGroup, 0,
                          lineIndex[b] / TreeLayout::arity, true, now,
                          latency, false);
            const std::uint64_t version =
                ++l0.counters[lineIndex[b] % TreeLayout::arity];
            ODRIPS_ASSERT(version == versionScratch[k], name(),
                          ": predicted version diverged from the walk");
        }

        // Record the line MACs.
        for (std::uint64_t b = 0; b < batch; ++b) {
            MetadataNode &macNode =
                fetchNode(NodeKind::DataMacGroup, 0,
                          lineIndex[b] / TreeLayout::arity, true, now,
                          latency, false);
            macNode.counters[lineIndex[b] % TreeLayout::arity] =
                macScratch[done + b];
        }

        // Propagate: bump parents and re-MAC every node on the path.
        for (std::uint64_t b = 0; b < batch; ++b) {
            std::uint64_t idx = lineIndex[b];
            for (unsigned level = 0; level < tree.counterLevels();
                 ++level) {
                const std::uint64_t group = idx / TreeLayout::arity;
                const std::uint64_t parent =
                    parentCounter(level, group, true, now, latency,
                                  false);
                MetadataNode &node =
                    fetchNode(NodeKind::CounterGroup, level, group, true,
                              now, latency, false);
                node.mac = nodeMac(level, group, node, parent);
                idx = group;
            }
        }
        stats.linesWritten += batch;
        done += batch;
    }

    // Stream the ciphertext to memory in one burst.
    MemAccessResult mem_result =
        mem.write(addr, writeScratch.data(), len, now);

    stats.cryptoEnergy +=
        cfg.cryptoEnergyPerByte * static_cast<double>(len);

    MemAccessResult out;
    out.bytes = len;
    out.latency =
        mem_result.latency + latency +
        secondsToTicks(cfg.cryptoWriteNsPerLine * 1e-9 *
                       static_cast<double>(lines));
    return out;
}

MemAccessResult
Mee::secureRead(std::uint64_t addr, std::uint8_t *data, std::uint64_t len,
                Tick now, bool &authentic)
{
    ODRIPS_ASSERT(poweredOn, name(), ": read while powered off");
    ODRIPS_ASSERT(addr >= cfg.dataBase &&
                      addr + len <= cfg.dataBase + cfg.dataSize,
                  name(), ": read outside the protected region");
    ODRIPS_ASSERT(addr % TreeLayout::lineBytes == 0 &&
                      len % TreeLayout::lineBytes == 0,
                  name(), ": unaligned protected read");

    authentic = true;
    Tick latency = 0;

    // Fetch the ciphertext in one burst.
    MemAccessResult mem_result = mem.read(addr, data, len, now);

    const std::uint64_t lines = len / TreeLayout::lineBytes;
    const std::uint64_t firstLine =
        (addr - cfg.dataBase) / TreeLayout::lineBytes;

    // Host-side crypto phase: the expected line MACs over the
    // ciphertext and the in-place decryption, per 8-line chunk,
    // sharded across the transfer pool for large bursts. Versions come
    // from a stats-neutral peek of the counters; a tampered counter is
    // peeked and fetched identically, so verification below fails
    // exactly as in the historical in-walk compute.
    versionScratch.resize(lines);
    macScratch.resize(lines);
    predictVersions(firstLine, lines, false, versionScratch.data());
    transferCrypto(addr, data, lines, versionScratch.data(), true,
                   macScratch.data());

    // Modeled metadata walk, batched like secureWrite.
    std::uint64_t done = 0;
    while (done < lines) {
        const std::uint64_t batch =
            std::min<std::uint64_t>(macBatchLines, lines - done);
        std::uint64_t lineIndex[macBatchLines];

        // Look up each line's version counter.
        for (std::uint64_t b = 0; b < batch; ++b) {
            const std::uint64_t k = done + b;
            lineIndex[b] = firstLine + k;
            MetadataNode &l0 =
                fetchNode(NodeKind::CounterGroup, 0,
                          lineIndex[b] / TreeLayout::arity, false, now,
                          latency, true);
            const std::uint64_t version =
                l0.counters[lineIndex[b] % TreeLayout::arity];
            ODRIPS_ASSERT(version == versionScratch[k], name(),
                          ": peeked version diverged from the walk");
        }

        // Verify the line MACs against the stored ones.
        for (std::uint64_t b = 0; b < batch; ++b) {
            MetadataNode &macNode =
                fetchNode(NodeKind::DataMacGroup, 0,
                          lineIndex[b] / TreeLayout::arity, false, now,
                          latency, true);
            if (macNode.counters[lineIndex[b] % TreeLayout::arity] !=
                macScratch[done + b])
                authentic = false;
        }

        // Verify the counter chain up to the on-chip root.
        for (std::uint64_t b = 0; b < batch; ++b) {
            std::uint64_t idx = lineIndex[b];
            for (unsigned level = 0; level < tree.counterLevels();
                 ++level) {
                const std::uint64_t group = idx / TreeLayout::arity;
                const std::uint64_t parent =
                    parentCounter(level, group, false, now, latency,
                                  true);
                MetadataNode &node =
                    fetchNode(NodeKind::CounterGroup, level, group, false,
                              now, latency, true);
                // Nothing mutates tree nodes on the read path, so when
                // the previous line of this batch just verified the
                // same group the recompute would be bit-identical;
                // skip the redundant MAC (the fetches above still run,
                // keeping traffic, stats and LRU state unchanged).
                const unsigned shift = 3 * (level + 1);
                const bool verified_by_prev =
                    b > 0 &&
                    (lineIndex[b - 1] >> shift) == (lineIndex[b] >> shift);
                if (!verified_by_prev &&
                    node.mac != nodeMac(level, group, node, parent))
                    authentic = false;
                idx = group;
            }
        }
        stats.linesRead += batch;
        done += batch;
    }

    if (!authentic)
        ++stats.authFailures;

    stats.cryptoEnergy +=
        cfg.cryptoEnergyPerByte * static_cast<double>(len);

    MemAccessResult out;
    out.bytes = len;
    out.latency =
        mem_result.latency + latency +
        secondsToTicks(cfg.cryptoReadNsPerLine * 1e-9 *
                       static_cast<double>(lines));
    return out;
}

Tick
Mee::flush(Tick now)
{
    const auto dirty = cache.flush();
    for (const auto &[key, node] : dirty)
        writebackNode(key, node, now);

    const double bytes = static_cast<double>(
        dirty.size() * MetadataNode::storageBytes);
    return secondsToTicks(bytes / mem.peakBandwidth() +
                          (dirty.empty() ? 0.0 : 100e-9));
}

void
Mee::powerOff()
{
    cache.invalidate();
    poweredOn = false;
}

MeeRootState
Mee::exportRoot() const
{
    MeeRootState s;
    s.rootCounter = rootCounter;
    s.key = cfg.key;
    return s;
}

void
Mee::importRoot(const MeeRootState &state)
{
    rootCounter = state.rootCounter;
    cfg.key = state.key;
    ctr = CtrCipher(state.key);
    poweredOn = true;
}

void
Mee::resetStatistics()
{
    stats = MeeStats{};
    cache.resetStats();
}

void
Mee::saveState(ckpt::Writer &w) const
{
    // The key can diverge from the configured one at runtime
    // (importRoot() installs the Boot-SRAM copy), so it is state.
    MeeRootState root = exportRoot();
    std::uint8_t rootBytes[MeeRootState::storageBytes] = {};
    root.serialize(rootBytes);
    w.bytes(rootBytes, sizeof(rootBytes));
    w.b(poweredOn);
    w.u64(stats.linesWritten);
    w.u64(stats.linesRead);
    w.u64(stats.metadataBytesRead);
    w.u64(stats.metadataBytesWritten);
    w.u64(stats.cacheHits);
    w.u64(stats.cacheMisses);
    w.u64(stats.authFailures);
    w.f64(stats.cryptoEnergy);
    cache.saveState(w);
}

void
Mee::loadState(ckpt::Reader &r)
{
    std::uint8_t rootBytes[MeeRootState::storageBytes] = {};
    r.bytes(rootBytes, sizeof(rootBytes));
    const MeeRootState root = MeeRootState::deserialize(rootBytes);
    rootCounter = root.rootCounter;
    cfg.key = root.key;
    ctr = CtrCipher(root.key);
    poweredOn = r.b();
    stats.linesWritten = r.u64();
    stats.linesRead = r.u64();
    stats.metadataBytesRead = r.u64();
    stats.metadataBytesWritten = r.u64();
    stats.cacheHits = r.u64();
    stats.cacheMisses = r.u64();
    stats.authFailures = r.u64();
    stats.cryptoEnergy = r.f64();
    cache.loadState(r);
}

} // namespace odrips
