#include "security/sha256.hh"

#include <vector>

#include "arch/dispatch.hh"
#include "sim/logging.hh"

namespace odrips
{

namespace
{

constexpr std::array<std::uint32_t, 8> initialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
    0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

} // namespace

void
Sha256::reset()
{
    state = initialState;
    bufferLen = 0;
    totalBytes = 0;
}

void
Sha256::update(const std::uint8_t *data, std::size_t len)
{
    const arch::CryptoKernels &kernels = arch::activeKernels();
    totalBytes += len;

    // Drain a partially filled buffer first.
    if (bufferLen > 0) {
        const std::size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, data, take);
        bufferLen += take;
        data += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            kernels.sha256Compress(state.data(), buffer.data(), 1);
            bufferLen = 0;
        }
    }

    // Whole blocks compress straight from the caller's memory — no
    // staging copy, and the kernel sees the full run of blocks (which
    // is what the multi-block SIMD schedule paths batch over).
    const std::size_t blocks = len / buffer.size();
    if (blocks > 0) {
        kernels.sha256Compress(state.data(), data, blocks);
        data += blocks * buffer.size();
        len -= blocks * buffer.size();
    }

    if (len > 0) {
        std::memcpy(buffer.data(), data, len);
        bufferLen = len;
    }
}

Sha256::Digest
Sha256::finish()
{
    const arch::CryptoKernels &kernels = arch::activeKernels();
    const std::uint64_t bit_len = totalBytes * 8;

    // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit
    // length — written straight into the block buffer (one memset)
    // rather than byte-at-a-time through update().
    buffer[bufferLen++] = std::uint8_t{0x80};
    if (bufferLen > 56) {
        std::memset(buffer.data() + bufferLen, 0,
                    buffer.size() - bufferLen);
        kernels.sha256Compress(state.data(), buffer.data(), 1);
        bufferLen = 0;
    }
    std::memset(buffer.data() + bufferLen, 0, 56 - bufferLen);
    for (int i = 0; i < 8; ++i) {
        buffer[static_cast<std::size_t>(56 + i)] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    kernels.sha256Compress(state.data(), buffer.data(), 1);

    Digest digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

Sha256::Digest
Sha256::hash(const std::uint8_t *data, std::size_t len)
{
    Sha256 h;
    h.update(data, len);
    return h.finish();
}

std::uint64_t
mac64(const std::array<std::uint8_t, 16> &key, std::uint64_t domain,
      const std::uint8_t *message, std::size_t len)
{
    return mac64(key, domain, {{message, len}});
}

std::uint64_t
mac64(const std::array<std::uint8_t, 16> &key, std::uint64_t domain,
      std::initializer_list<MacSegment> segments)
{
    Sha256 h;
    h.update(key.data(), key.size());
    h.update(&domain, sizeof(domain));
    for (const MacSegment &seg : segments)
        h.update(seg.data, seg.len);
    const Sha256::Digest d = h.finish();
    std::uint64_t mac;
    std::memcpy(&mac, d.data(), sizeof(mac));
    return mac;
}

void
mac64x8(const std::array<std::uint8_t, 16> &key,
        const std::uint64_t *domains, const MacSegment *segments,
        std::size_t segmentsPerLane, std::uint64_t *out)
{
    constexpr std::size_t lanes = 8;

    // Message length (key || domain || segments) — identical across
    // lanes by contract, which keeps every lane on the same block
    // count for the 8-way kernel.
    std::size_t msgLen = key.size() + sizeof(std::uint64_t);
    for (std::size_t j = 0; j < segmentsPerLane; ++j)
        msgLen += segments[j].len;
    const std::size_t blocks = (msgLen + 9 + 63) / 64;
    const std::size_t stride = blocks * 64;

    // The MEE's MAC shapes fit two blocks; keep a heap path for
    // anything larger so the contract stays general.
    std::uint8_t stackScratch[lanes * 4 * 64];
    std::vector<std::uint8_t> heapScratch;
    std::uint8_t *scratch = stackScratch;
    if (lanes * stride > sizeof(stackScratch)) {
        heapScratch.resize(lanes * stride);
        scratch = heapScratch.data();
    }

    // Lay out each lane's padded message exactly as the streaming
    // update()/finish() pair would feed it to the compressor.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        std::uint8_t *p = scratch + lane * stride;
        std::size_t off = 0;
        std::memcpy(p + off, key.data(), key.size());
        off += key.size();
        std::memcpy(p + off, &domains[lane], sizeof(std::uint64_t));
        off += sizeof(std::uint64_t);
        for (std::size_t j = 0; j < segmentsPerLane; ++j) {
            const MacSegment &seg = segments[lane * segmentsPerLane + j];
            std::memcpy(p + off, seg.data, seg.len);
            off += seg.len;
        }
        ODRIPS_ASSERT(off == msgLen,
                      "mac64x8: lanes must have equal message lengths");
        p[off++] = std::uint8_t{0x80};
        std::memset(p + off, 0, stride - 8 - off);
        const std::uint64_t bit_len = msgLen * 8;
        for (int i = 0; i < 8; ++i)
            p[stride - 8 + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }

    alignas(32) std::uint32_t states[lanes * 8];
    for (std::size_t lane = 0; lane < lanes; ++lane)
        for (std::size_t i = 0; i < 8; ++i)
            states[8 * lane + i] = initialState[i];

    arch::activeKernels().sha256Compress8(states, scratch, stride, blocks);

    // mac64 truncation: the first 8 digest bytes, i.e. the first two
    // state words in big-endian byte order.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        std::uint8_t d[8];
        for (int i = 0; i < 2; ++i) {
            const std::uint32_t w = states[8 * lane + static_cast<std::size_t>(i)];
            d[4 * i] = static_cast<std::uint8_t>(w >> 24);
            d[4 * i + 1] = static_cast<std::uint8_t>(w >> 16);
            d[4 * i + 2] = static_cast<std::uint8_t>(w >> 8);
            d[4 * i + 3] = static_cast<std::uint8_t>(w);
        }
        std::memcpy(&out[lane], d, sizeof(d));
    }
}

} // namespace odrips
