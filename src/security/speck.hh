/**
 * @file
 * SPECK-128/128 block cipher (Beaulieu et al., NSA 2013), from scratch.
 *
 * The MEE encrypts context lines with counter-mode encryption built on a
 * 128-bit block cipher. We use SPECK because it is compact, public, and
 * fast in software; the reproduction cares about the *structure* of the
 * encrypted-context path (counter mode + per-line versions + MAC tree),
 * not about matching Intel's AES hardware.
 */

#ifndef ODRIPS_SECURITY_SPECK_HH
#define ODRIPS_SECURITY_SPECK_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace odrips
{

/** A 128-bit block as two 64-bit words (x = high, y = low). */
struct Block128
{
    std::uint64_t x = 0;
    std::uint64_t y = 0;

    bool
    operator==(const Block128 &other) const
    {
        return x == other.x && y == other.y;
    }
};

/** SPECK-128/128: 32 rounds, 128-bit key, 128-bit block. */
class Speck128
{
  public:
    static constexpr unsigned rounds = 32;
    using Key = std::array<std::uint8_t, 16>;

    explicit Speck128(const Key &key);

    /** Encrypt one block. */
    Block128 encrypt(Block128 plaintext) const;

    /**
     * Encrypt @p count blocks in place. Equivalent to calling encrypt()
     * per block, but the round loop is hoisted outside the block loop,
     * so independent blocks pipeline through the ALU instead of
     * serialising on each block's 32-round dependency chain. This is
     * what makes multi-block CTR keystream batches pay off.
     */
    void encryptBatch(Block128 *blocks, std::size_t count) const;

    /** Decrypt one block. */
    Block128 decrypt(Block128 ciphertext) const;

  private:
    std::array<std::uint64_t, rounds> roundKeys;
};

} // namespace odrips

#endif // ODRIPS_SECURITY_SPECK_HH
