/**
 * @file
 * Counter-mode encryption on SPECK-128.
 *
 * The keystream block for (line address, version) is
 * E_k(address || version), XORed over the line. Re-encrypting the same
 * address with a bumped version yields an unrelated keystream — exactly
 * the property the MEE's per-line version counters provide.
 */

#ifndef ODRIPS_SECURITY_CTR_MODE_HH
#define ODRIPS_SECURITY_CTR_MODE_HH

#include <cstdint>

#include "security/speck.hh"

namespace odrips
{

/** Counter-mode cipher bound to one key. */
class CtrCipher
{
  public:
    explicit CtrCipher(const Speck128::Key &key) : cipher(key) {}

    /**
     * XOR the keystream for (@p address, @p version) over @p len bytes
     * of @p data in place. Encryption and decryption are the same
     * operation.
     */
    void apply(std::uint64_t address, std::uint64_t version,
               std::uint8_t *data, std::size_t len) const;

  private:
    Speck128 cipher;
};

} // namespace odrips

#endif // ODRIPS_SECURITY_CTR_MODE_HH
