/**
 * @file
 * Integrity (authentication) tree layout.
 *
 * The protected region is covered by a counter tree of arity 8:
 *  - every 64 B data line has a version counter (level 0) and a MAC
 *    binding (address, version, ciphertext);
 *  - counters are grouped eight to a metadata node; each node carries a
 *    MAC keyed by its *parent* counter (one level up);
 *  - the single top counter (the root) lives on-chip and never leaves
 *    the security perimeter — it is part of the ~1 KB Boot-SRAM context
 *    in ODRIPS.
 *
 * This class computes the pure layout: level sizes, node counts, and
 * the DRAM offsets of serialized nodes. The Mee engine implements the
 * cryptographic walk on top of it.
 */

#ifndef ODRIPS_SECURITY_INTEGRITY_TREE_HH
#define ODRIPS_SECURITY_INTEGRITY_TREE_HH

#include <cstdint>
#include <vector>

#include "security/mee_cache.hh"
#include "sim/logging.hh"

namespace odrips
{

/** Kinds of metadata nodes stored in DRAM. */
enum class NodeKind : std::uint64_t
{
    CounterGroup = 0, ///< eight version counters + group MAC
    DataMacGroup = 1, ///< eight data-line MACs (packed in counter slots)
};

/** Pure layout of the integrity tree over a protected region. */
class TreeLayout
{
  public:
    static constexpr std::uint64_t lineBytes = 64;
    static constexpr std::uint64_t arity = MetadataNode::arity;

    /**
     * @param data_size protected-region size in bytes (multiple of 64)
     */
    explicit TreeLayout(std::uint64_t data_size);

    /** Number of protected 64 B data lines. */
    std::uint64_t dataLines() const { return nLines; }

    /**
     * Number of counter levels below the root. Level l holds
     * counterCount(l) counters grouped into counterNodes(l) nodes.
     */
    unsigned counterLevels() const
    {
        return static_cast<unsigned>(levelCounters.size());
    }

    /** Counters at level @p l (level 0 = per data line). */
    std::uint64_t counterCount(unsigned level) const;

    /** Metadata nodes at level @p l. */
    std::uint64_t counterNodes(unsigned level) const;

    /** Nodes holding data-line MACs. */
    std::uint64_t
    dataMacNodes() const
    {
        return (nLines + arity - 1) / arity;
    }

    /** Total serialized metadata footprint in bytes. */
    std::uint64_t metadataBytes() const;

    /** Total number of metadata nodes of all kinds. */
    std::uint64_t totalNodes() const;

    /** Unique cache/storage key for a node. */
    static std::uint64_t
    nodeKey(NodeKind kind, unsigned level, std::uint64_t group)
    {
        return (static_cast<std::uint64_t>(kind) << 62) |
               (static_cast<std::uint64_t>(level) << 56) | group;
    }

    /** Byte offset of a node's serialized form within the metadata
     * region. */
    std::uint64_t nodeOffset(NodeKind kind, unsigned level,
                             std::uint64_t group) const;

  private:
    std::uint64_t nLines;
    /** levelCounters[l] = number of counters at level l (root excluded;
     * the root is the single counter above the last level). */
    std::vector<std::uint64_t> levelCounters;
    /** Cumulative node-offset base per counter level. */
    std::vector<std::uint64_t> levelNodeBase;
    std::uint64_t dataMacBase = 0;
    std::uint64_t totalNodeCount = 0;
};

} // namespace odrips

#endif // ODRIPS_SECURITY_INTEGRITY_TREE_HH
