#include "security/ctr_mode.hh"

#include <algorithm>
#include <cstring>

namespace odrips
{

void
CtrCipher::apply(std::uint64_t address, std::uint64_t version,
                 std::uint8_t *data, std::size_t len) const
{
    // Keystream blocks are independent, so they are generated in
    // batches (the SPECK round loop pipelines across blocks) and XORed
    // over the data a 64-bit word at a time. The output is byte
    // identical to the historical one-block-at-a-time loop: the counter
    // layout is unchanged and XOR acts on the same object
    // representation either way.
    constexpr std::size_t batchBlocks = 8;

    std::uint64_t block_index = 0;
    std::size_t offset = 0;
    while (len - offset >= 16) {
        const std::size_t blocks =
            std::min<std::size_t>(batchBlocks, (len - offset) / 16);

        Block128 ks[batchBlocks];
        for (std::size_t b = 0; b < blocks; ++b) {
            // Counter block: address in x, (version, block index) in y.
            ks[b].x = address;
            ks[b].y = (version << 16) ^ (block_index + b);
        }
        cipher.encryptBatch(ks, blocks);

        for (std::size_t b = 0; b < blocks; ++b) {
            std::uint64_t w0, w1;
            std::memcpy(&w0, data + offset, 8);
            std::memcpy(&w1, data + offset + 8, 8);
            w0 ^= ks[b].x;
            w1 ^= ks[b].y;
            std::memcpy(data + offset, &w0, 8);
            std::memcpy(data + offset + 8, &w1, 8);
            offset += 16;
        }
        block_index += blocks;
    }

    if (offset < len) {
        // Partial tail block: XOR just the leading keystream bytes.
        Block128 counter;
        counter.x = address;
        counter.y = (version << 16) ^ block_index;
        const Block128 keystream = cipher.encrypt(counter);

        std::uint8_t ks[16];
        std::memcpy(ks, &keystream.x, 8);
        std::memcpy(ks + 8, &keystream.y, 8);
        for (std::size_t i = 0; offset < len; ++i, ++offset)
            data[offset] ^= ks[i];
    }
}

} // namespace odrips
