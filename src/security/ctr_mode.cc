#include "security/ctr_mode.hh"

#include <cstring>

namespace odrips
{

void
CtrCipher::apply(std::uint64_t address, std::uint64_t version,
                 std::uint8_t *data, std::size_t len) const
{
    std::uint64_t block_index = 0;
    std::size_t offset = 0;
    while (offset < len) {
        // Counter block: address in x, (version, block index) in y.
        Block128 counter;
        counter.x = address;
        counter.y = (version << 16) ^ block_index;
        const Block128 keystream = cipher.encrypt(counter);

        std::uint8_t ks[16];
        std::memcpy(ks, &keystream.x, 8);
        std::memcpy(ks + 8, &keystream.y, 8);

        const std::size_t chunk = std::min<std::size_t>(16, len - offset);
        for (std::size_t i = 0; i < chunk; ++i)
            data[offset + i] ^= ks[i];

        offset += chunk;
        ++block_index;
    }
}

} // namespace odrips
