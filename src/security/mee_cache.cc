#include "security/mee_cache.hh"

#include <cstring>

namespace odrips
{

void
MetadataNode::serialize(std::uint8_t *out) const
{
    std::memset(out, 0, storageBytes);
    for (unsigned i = 0; i < arity; ++i)
        std::memcpy(out + 8 * i, &counters[i], 8);
    std::memcpy(out + 8 * arity, &mac, 8);
}

MetadataNode
MetadataNode::deserialize(const std::uint8_t *in)
{
    MetadataNode node;
    for (unsigned i = 0; i < arity; ++i)
        std::memcpy(&node.counters[i], in + 8 * i, 8);
    std::memcpy(&node.mac, in + 8 * arity, 8);
    return node;
}

MeeCache::MeeCache(std::size_t capacity_nodes, std::size_t associativity)
    : ways(associativity)
{
    ODRIPS_ASSERT(associativity > 0, "associativity must be positive");
    ODRIPS_ASSERT(capacity_nodes >= associativity &&
                      capacity_nodes % associativity == 0,
                  "capacity must be a positive multiple of associativity");
    sets = capacity_nodes / associativity;
    lines.resize(capacity_nodes);
}

std::size_t
MeeCache::setIndex(std::uint64_t key) const
{
    // Mix the key so (kind, level, index) fields spread across sets.
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h % sets);
}

MeeCacheResult
MeeCache::access(std::uint64_t key, const MetadataNode &fill, bool is_write)
{
    MeeCacheResult result;
    if (probe(key, is_write) != nullptr) {
        result.hit = true;
        return result;
    }
    result.writeback = insert(key, fill, is_write).writeback;
    return result;
}

MetadataNode *
MeeCache::probe(std::uint64_t key, bool is_write)
{
    const std::size_t base = setIndex(key) * ways;
    for (std::size_t w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.key == key) {
            line.lastUse = ++useClock;
            line.dirty = line.dirty || is_write;
            ++hitCount;
            return &line.node;
        }
    }
    return nullptr;
}

MeeInsertResult
MeeCache::insert(std::uint64_t key, const MetadataNode &fill, bool is_write)
{
    MeeInsertResult result;
    ++missCount;

    // Pick victim (invalid first, else LRU).
    const std::size_t base = setIndex(key) * ways;
    std::size_t victim = base;
    for (std::size_t w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (!line.valid) {
            victim = base + w;
            break;
        }
        if (line.lastUse < lines[victim].lastUse)
            victim = base + w;
    }

    Line &line = lines[victim];
    if (line.valid && line.dirty) {
        result.writeback = {line.key, line.node};
        ++writebackCount;
    }
    line.valid = true;
    line.dirty = is_write;
    line.key = key;
    line.lastUse = ++useClock;
    line.node = fill;
    result.node = &line.node;
    return result;
}

bool
MeeCache::contains(std::uint64_t key) const
{
    const std::size_t base = setIndex(key) * ways;
    for (std::size_t w = 0; w < ways; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.key == key)
            return true;
    }
    return false;
}

const MetadataNode *
MeeCache::peek(std::uint64_t key) const
{
    const std::size_t base = setIndex(key) * ways;
    for (std::size_t w = 0; w < ways; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.key == key)
            return &line.node;
    }
    return nullptr;
}

MetadataNode &
MeeCache::nodeFor(std::uint64_t key)
{
    const std::size_t base = setIndex(key) * ways;
    for (std::size_t w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.key == key)
            return line.node;
    }
    panic("MeeCache::nodeFor on non-resident key");
}

std::vector<std::pair<std::uint64_t, MetadataNode>>
MeeCache::flush()
{
    std::vector<std::pair<std::uint64_t, MetadataNode>> dirty;
    for (Line &line : lines) {
        if (line.valid && line.dirty) {
            dirty.emplace_back(line.key, line.node);
            ++writebackCount;
        }
        line.valid = false;
        line.dirty = false;
    }
    return dirty;
}

void
MeeCache::invalidate()
{
    for (Line &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

void
MeeCache::saveState(ckpt::Writer &w) const
{
    w.u64(ways);
    w.u64(sets);
    w.u64(useClock);
    w.u64(hitCount);
    w.u64(missCount);
    w.u64(writebackCount);
    for (const Line &line : lines) {
        w.b(line.valid);
        w.b(line.dirty);
        w.u64(line.key);
        w.u64(line.lastUse);
        for (std::uint64_t c : line.node.counters)
            w.u64(c);
        w.u64(line.node.mac);
    }
}

void
MeeCache::loadState(ckpt::Reader &r)
{
    if (r.u64() != ways || r.u64() != sets)
        throw ckpt::SnapshotError("MEE cache geometry mismatch");
    useClock = r.u64();
    hitCount = r.u64();
    missCount = r.u64();
    writebackCount = r.u64();
    for (Line &line : lines) {
        line.valid = r.b();
        line.dirty = r.b();
        line.key = r.u64();
        line.lastUse = r.u64();
        for (std::uint64_t &c : line.node.counters)
            c = r.u64();
        line.node.mac = r.u64();
    }
}

} // namespace odrips
