/**
 * @file
 * MEE metadata cache.
 *
 * The paper (Sec. 6.2, citing the MEE design) notes the engine keeps an
 * internal cache of integrity-tree metadata to alleviate the cost of
 * walking the authentication tree on every protected access. This is a
 * set-associative, write-back, LRU cache whose payload is the metadata
 * node itself (eight 64-bit counters plus a 64-bit MAC).
 */

#ifndef ODRIPS_SECURITY_MEE_CACHE_HH
#define ODRIPS_SECURITY_MEE_CACHE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/checkpoint/serializer.hh"
#include "sim/logging.hh"

namespace odrips
{

/** One integrity-tree metadata node (a counter group and its MAC). */
struct MetadataNode
{
    static constexpr unsigned arity = 8;

    std::array<std::uint64_t, arity> counters{};
    std::uint64_t mac = 0;

    /** Serialized size in DRAM (72 B payload padded to 80 B). */
    static constexpr std::uint64_t storageBytes = 80;

    void serialize(std::uint8_t *out) const;
    static MetadataNode deserialize(const std::uint8_t *in);
};

/** Result of a cache lookup-with-fill. */
struct MeeCacheResult
{
    bool hit = false;
    /** Key and node of a dirty eviction that must be written back. */
    std::optional<std::pair<std::uint64_t, MetadataNode>> writeback;
};

/** Result of filling the cache after a probe() miss. */
struct MeeInsertResult
{
    /** The freshly inserted, resident node. */
    MetadataNode *node = nullptr;
    /** Key and node of a dirty eviction that must be written back. */
    std::optional<std::pair<std::uint64_t, MetadataNode>> writeback;
};

/** Set-associative write-back LRU cache of MetadataNodes. */
class MeeCache
{
  public:
    /**
     * @param capacity_nodes total number of nodes the cache can hold
     * @param associativity  ways per set (capacity must divide evenly)
     */
    MeeCache(std::size_t capacity_nodes, std::size_t associativity);

    /**
     * Look up @p key; on miss, insert @p fill (the node read from
     * memory) and report any dirty victim. On hit the stored node is
     * authoritative and @p fill is ignored.
     */
    MeeCacheResult access(std::uint64_t key, const MetadataNode &fill,
                          bool is_write);

    /**
     * Single-lookup hit path: if @p key is resident, update LRU/dirty
     * state, count the hit, and return the node; otherwise return
     * nullptr with no state change (the miss is counted by the
     * follow-up insert()). probe()+insert() together count exactly one
     * hit or one miss per access, the same as access() — the hot path
     * just avoids the historical contains()+access()+nodeFor() triple
     * associative search.
     */
    MetadataNode *probe(std::uint64_t key, bool is_write);

    /**
     * Fill @p key with @p fill after a probe() miss: counts the miss,
     * evicts the LRU way if needed, and returns the resident node plus
     * any dirty victim. @p key must not be resident.
     */
    MeeInsertResult insert(std::uint64_t key, const MetadataNode &fill,
                           bool is_write);

    /** True if @p key is resident (no state change). */
    bool contains(std::uint64_t key) const;

    /**
     * Resident node for @p key with NO side effects at all: no LRU
     * update, no dirty bit, no hit/miss accounting. Lets callers
     * precompute crypto from current counter values without perturbing
     * the modeled cache state; returns nullptr when not resident.
     */
    const MetadataNode *peek(std::uint64_t key) const;

    /** Current node value for a resident key (must be resident). */
    MetadataNode &nodeFor(std::uint64_t key);

    /** Remove everything, returning all dirty nodes for writeback. */
    std::vector<std::pair<std::uint64_t, MetadataNode>> flush();

    /** Drop all contents WITHOUT writeback (power loss). */
    void invalidate();

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t writebacks() const { return writebackCount; }
    std::size_t capacityNodes() const { return ways * sets; }

    void
    resetStats()
    {
        hitCount = 0;
        missCount = 0;
        writebackCount = 0;
    }

    /**
     * @name Checkpoint support
     * Serializes every line (valid/dirty/key/LRU stamp/node) plus the
     * use clock and hit/miss/writeback counters; restore requires the
     * same geometry (ways and sets are config-derived).
     * @{
     */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
        MetadataNode node;
    };

    std::size_t setIndex(std::uint64_t key) const;

    std::size_t ways;
    std::size_t sets;
    std::vector<Line> lines; // sets * ways, set-major
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t writebackCount = 0;
};

} // namespace odrips

#endif // ODRIPS_SECURITY_MEE_CACHE_HH
