/**
 * @file
 * Memory Encryption Engine (MEE).
 *
 * The SGX-style engine on the path between the memory controller and
 * DRAM (paper Sec. 6.2 / Fig. 4): counter-mode encryption per 64 B line,
 * a MAC per line, and an integrity tree over the per-line version
 * counters whose root stays on-chip. The engine provides
 * confidentiality, integrity, and freshness for the processor context
 * stored in the protected DRAM region.
 *
 * Latency model: protected accesses pay the raw memory latency, plus a
 * per-line crypto-pipeline cost, plus a per-metadata-miss penalty and
 * the metadata bytes' bandwidth. The MEE cache absorbs most metadata
 * traffic for streaming transfers — exactly the behaviour the paper
 * relies on for the 18 us / 13 us context save/restore latencies.
 */

#ifndef ODRIPS_SECURITY_MEE_HH
#define ODRIPS_SECURITY_MEE_HH

#include <cstdint>
#include <vector>

#include "mem/main_memory.hh"
#include "mem/memory_controller.hh"
#include "security/ctr_mode.hh"
#include "security/integrity_tree.hh"
#include "security/mee_cache.hh"
#include "security/sha256.hh"
#include "security/speck.hh"
#include "sim/checkpoint/serializer.hh"
#include "sim/named.hh"

namespace odrips
{

namespace exec
{
class ThreadPool;
} // namespace exec

/** MEE configuration. */
struct MeeConfig
{
    Speck128::Key key{};

    /** Protected data region (base within main memory, size). */
    std::uint64_t dataBase = 0;
    std::uint64_t dataSize = 0;

    /** Metadata region base (must not overlap the data region). */
    std::uint64_t metaBase = 0;

    /** Cache geometry. */
    std::size_t cacheNodes = 128;
    std::size_t cacheAssociativity = 8;

    /** Per-64B-line crypto pipeline latency, nanoseconds. */
    double cryptoWriteNsPerLine = 1.0;
    double cryptoReadNsPerLine = 0.3;

    /** Per metadata-node-miss penalty, nanoseconds. */
    double missPenaltyWriteNs = 3.0;
    double missPenaltyReadNs = 2.0;

    /** Crypto datapath energy per protected byte, joules. */
    double cryptoEnergyPerByte = 20.0e-12;
};

/** On-chip persistent state — the part that must go into Boot SRAM. */
struct MeeRootState
{
    std::uint64_t rootCounter = 0;
    Speck128::Key key{};

    /** Serialized size (fits easily in the ~1 KB Boot SRAM). */
    static constexpr std::uint64_t storageBytes = 24;

    void serialize(std::uint8_t *out) const;
    static MeeRootState deserialize(const std::uint8_t *in);
};

/** MEE statistics. */
struct MeeStats
{
    std::uint64_t linesWritten = 0;
    std::uint64_t linesRead = 0;
    std::uint64_t metadataBytesRead = 0;
    std::uint64_t metadataBytesWritten = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t authFailures = 0;
    double cryptoEnergy = 0.0;
};

/** The engine. Accesses must be 64 B aligned (the FSMs guarantee it). */
class Mee : public SecureMemoryPath, public Named
{
  public:
    Mee(std::string name, MainMemory &memory, const MeeConfig &config);

    MemAccessResult secureWrite(std::uint64_t addr,
                                const std::uint8_t *data,
                                std::uint64_t len, Tick now) override;

    MemAccessResult secureRead(std::uint64_t addr, std::uint8_t *data,
                               std::uint64_t len, Tick now,
                               bool &authentic) override;

    /**
     * Write every dirty cached metadata node back to memory. Must be
     * called before DRAM enters self-refresh with the engine powered
     * off, or cached tree updates would be lost.
     * @return latency of the writeback burst.
     */
    Tick flush(Tick now);

    /** Power-off: drop cache contents (they are volatile). flush()
     * must have been called first if the tree should stay consistent. */
    void powerOff();

    /** Export the on-chip persistent state for the Boot SRAM. */
    MeeRootState exportRoot() const;

    /** Restore the on-chip state after power-up (Boot FSM). */
    void importRoot(const MeeRootState &state);

    const MeeStats &statistics() const { return stats; }
    void resetStatistics();

    const TreeLayout &layout() const { return tree; }
    const MeeConfig &config() const { return cfg; }

    /** Metadata region footprint in bytes. */
    std::uint64_t metadataBytes() const { return tree.metadataBytes(); }

    /**
     * Shard the host-side transfer crypto (encrypt + line MACs) of
     * large transfers across @p pool instead of exec::defaultPool();
     * nullptr forces the serial path. The sharding is static over
     * fixed 8-line chunks with an ordered merge, so the modeled
     * behaviour — memory contents, stats, latencies — is bit-identical
     * for every pool size, including serial.
     */
    void setTransferPool(exec::ThreadPool *pool);

    /**
     * @name Checkpoint support
     * Serializes the root counter, statistics, power flag, and the full
     * metadata cache; the key and geometry come from the configuration
     * of the platform being restored into. Scratch buffers and the pool
     * override are transient and excluded.
     * @{
     */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);
    /** @} */

    /**
     * @name Version-prediction test hooks
     * Read-only windows onto the private predictVersions() /
     * peekCounterGroup() pair so the unit suite can pin the
     * no-side-effect invariant and cross-check predictions against a
     * serial walk of the metadata bytes in memory.
     * @{
     */

    /** Public face of predictVersions() (identical semantics). */
    void
    predictVersionsProbe(std::uint64_t first_line, std::uint64_t count,
                         bool bump, std::uint64_t *out) const
    {
        predictVersions(first_line, count, bump, out);
    }

    /** Public face of peekCounterGroup() (identical semantics). */
    void
    peekCounterGroupProbe(std::uint64_t group,
                          std::uint64_t out[TreeLayout::arity]) const
    {
        peekCounterGroup(group, out);
    }

    /** DRAM address of level-0 counter group @p group. */
    std::uint64_t
    counterGroupAddress(std::uint64_t group) const
    {
        return nodeAddress(NodeKind::CounterGroup, 0, group);
    }

    /** The metadata cache (read-only; peek() et al. are const). */
    const MeeCache &metadataCache() const { return cache; }

    /** @} */

  private:
    /** Cached fetch of a metadata node; accounts traffic and latency. */
    MetadataNode &fetchNode(NodeKind kind, unsigned level,
                            std::uint64_t group, bool is_write, Tick now,
                            Tick &latency, bool for_read_path);

    void writebackNode(std::uint64_t key, const MetadataNode &node,
                       Tick now);

    /** DRAM address of a node. */
    std::uint64_t nodeAddress(NodeKind kind, unsigned level,
                              std::uint64_t group) const;

    /** Decompose a cache key back into (kind, level, group). */
    static void splitKey(std::uint64_t key, NodeKind &kind,
                         unsigned &level, std::uint64_t &group);

    /** MAC over a counter group keyed by its parent counter. */
    std::uint64_t nodeMac(unsigned level, std::uint64_t group,
                          const MetadataNode &node,
                          std::uint64_t parent_counter) const;

    /** MAC over a data line's ciphertext and version. */
    std::uint64_t lineMac(std::uint64_t addr, std::uint64_t version,
                          const std::uint8_t *ciphertext) const;

    /** Lines per MAC batch (matches the 8-way SIMD SHA-256 kernel). */
    static constexpr std::uint64_t macBatchLines = 8;

    /**
     * Line MACs for @p count consecutive lines of ciphertext at
     * @p linesData. A full batch runs through mac64x8 (one SHA-256
     * stream per SIMD lane); partial batches fall back to per-line
     * lineMac(). Bit-identical either way.
     */
    void batchLineMacs(const std::uint8_t *linesData, std::uint64_t count,
                       const std::uint64_t *addrs,
                       const std::uint64_t *versions,
                       std::uint64_t *out) const;

    /** Parent counter of level-@p level group @p group; walks to the
     * root. @p bump increments it (write path). */
    std::uint64_t parentCounter(unsigned level, std::uint64_t group,
                                bool bump, Tick now, Tick &latency,
                                bool for_read_path);

    /** Current counters of level-0 counter group @p group with no
     * modeled side effects: the resident cached copy when there is
     * one, else the backing-store bytes (what a fetch would load). */
    void peekCounterGroup(std::uint64_t group,
                          std::uint64_t out[TreeLayout::arity]) const;

    /**
     * Predicted version of each line in [@p first_line, @p first_line
     * + @p count): the current counter value, plus one on the write
     * path (@p bump). Pure host compute; the modeled metadata walk
     * asserts it produced exactly these values.
     */
    void predictVersions(std::uint64_t first_line, std::uint64_t count,
                         bool bump, std::uint64_t *out) const;

    /**
     * Host-side crypto phase of a transfer: per 8-line chunk, CTR
     * en/decryption of @p data in place plus the 64-bit line MACs into
     * @p macs. @p mac_first MACs the chunk before applying the
     * keystream (read path: MACs cover ciphertext). Chunks are
     * data-independent, so the phase runs serially or statically
     * sharded across cryptoPool() with bit-identical results.
     */
    void transferCrypto(std::uint64_t addr, std::uint8_t *data,
                        std::uint64_t lines,
                        const std::uint64_t *versions, bool mac_first,
                        std::uint64_t *macs) const;

    /** Pool for transferCrypto(), or nullptr for the serial path
     * (small transfers, nested inside a sweep worker, --jobs=1). */
    exec::ThreadPool *cryptoPool(std::uint64_t lines) const;

    MainMemory &mem;
    MeeConfig cfg;
    TreeLayout tree;
    CtrCipher ctr;
    MeeCache cache;
    std::uint64_t rootCounter = 0;
    MeeStats stats;
    bool poweredOn = true;
    /** Ciphertext staging buffer reused across secureWrite calls. */
    std::vector<std::uint8_t> writeScratch;
    /** Per-line predicted versions / MACs, reused across transfers. */
    std::vector<std::uint64_t> versionScratch;
    std::vector<std::uint64_t> macScratch;
    /** Transfer-crypto pool override (setTransferPool). */
    exec::ThreadPool *transferPoolOverride = nullptr;
    bool transferPoolSet = false;
    /** Below this size the sharding overhead outweighs the win. */
    static constexpr std::uint64_t parallelMinLines = 256;
};

} // namespace odrips

#endif // ODRIPS_SECURITY_MEE_HH
