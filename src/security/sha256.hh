/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used by the memory encryption engine to derive MACs for the integrity
 * tree. Only the primitives needed by the MEE are provided: one-shot
 * hashing, streaming hashing, a keyed truncated MAC, and an 8-wide
 * batched MAC for independent same-shape messages.
 *
 * The block compression runs through the runtime-dispatched kernels in
 * src/arch/ (SHA-NI / AVX2 / SSE4.1 when the CPU has them, portable
 * scalar otherwise); every kernel is bit-identical to the scalar
 * reference, so digests never depend on the machine or on
 * ODRIPS_DISPATCH.
 */

#ifndef ODRIPS_SECURITY_SHA256_HH
#define ODRIPS_SECURITY_SHA256_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>

namespace odrips
{

/** Streaming SHA-256 hasher. */
class Sha256
{
  public:
    using Digest = std::array<std::uint8_t, 32>;

    Sha256() { reset(); }

    /** Restart a fresh hash computation. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    void
    update(const void *data, std::size_t len)
    {
        update(static_cast<const std::uint8_t *>(data), len);
    }

    /** Finish and return the digest (object must be reset() to reuse). */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const std::uint8_t *data, std::size_t len);

  private:
    std::array<std::uint32_t, 8> state;
    std::array<std::uint8_t, 64> buffer;
    std::size_t bufferLen = 0;
    std::uint64_t totalBytes = 0;
};

/**
 * Keyed MAC truncated to 64 bits: SHA-256(key || domain || message)
 * truncated. Sufficient for the simulator's integrity modelling (the
 * real MEE uses a Carter-Wegman MAC; what matters for the reproduction
 * is the metadata layout and traffic, not the exact MAC construction).
 */
std::uint64_t mac64(const std::array<std::uint8_t, 16> &key,
                    std::uint64_t domain, const std::uint8_t *message,
                    std::size_t len);

/** A (pointer, length) view of one segment of a MAC input. */
struct MacSegment
{
    const void *data;
    std::size_t len;
};

/**
 * Segmented variant: MACs the concatenation of @p segments. Because
 * SHA-256 is a streaming hash, this produces exactly the digest of the
 * concatenated message without the caller copying the pieces into one
 * buffer first — the MEE line/node MAC paths feed their fields in
 * place.
 */
std::uint64_t mac64(const std::array<std::uint8_t, 16> &key,
                    std::uint64_t domain,
                    std::initializer_list<MacSegment> segments);

/**
 * Eight independent mac64 computations at once.
 *
 * Lane i MACs the concatenation of @p segmentsPerLane segments at
 * @p segments[i * segmentsPerLane ...] under domain @p domains[i] and
 * the shared @p key. All lanes must have the same total message length
 * (the MEE's line MACs do: same segment shape for every line), which
 * lets the whole batch run through the 8-way SIMD compression kernel.
 * Results are written to @p out[0..7] and are bit-identical to eight
 * mac64() calls.
 */
void mac64x8(const std::array<std::uint8_t, 16> &key,
             const std::uint64_t *domains, const MacSegment *segments,
             std::size_t segmentsPerLane, std::uint64_t *out);

} // namespace odrips

#endif // ODRIPS_SECURITY_SHA256_HH
