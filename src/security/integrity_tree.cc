#include "security/integrity_tree.hh"

namespace odrips
{

TreeLayout::TreeLayout(std::uint64_t data_size)
{
    ODRIPS_ASSERT(data_size > 0 && data_size % lineBytes == 0,
                  "protected region must be a positive multiple of 64 B");
    nLines = data_size / lineBytes;

    // Build counter levels until a single root counter would remain.
    std::uint64_t count = nLines;
    while (count > 1) {
        levelCounters.push_back(count);
        count = (count + arity - 1) / arity;
    }
    // A one-line region still needs its level-0 counter (root above it).
    if (levelCounters.empty())
        levelCounters.push_back(1);

    // Node numbering: counter levels first, then data-MAC nodes.
    std::uint64_t base = 0;
    for (std::uint64_t counters : levelCounters) {
        levelNodeBase.push_back(base);
        base += (counters + arity - 1) / arity;
    }
    dataMacBase = base;
    base += dataMacNodes();
    totalNodeCount = base;
}

std::uint64_t
TreeLayout::counterCount(unsigned level) const
{
    ODRIPS_ASSERT(level < levelCounters.size(), "bad tree level");
    return levelCounters[level];
}

std::uint64_t
TreeLayout::counterNodes(unsigned level) const
{
    return (counterCount(level) + arity - 1) / arity;
}

std::uint64_t
TreeLayout::totalNodes() const
{
    return totalNodeCount;
}

std::uint64_t
TreeLayout::metadataBytes() const
{
    return totalNodeCount * MetadataNode::storageBytes;
}

std::uint64_t
TreeLayout::nodeOffset(NodeKind kind, unsigned level,
                       std::uint64_t group) const
{
    std::uint64_t node_index;
    if (kind == NodeKind::CounterGroup) {
        ODRIPS_ASSERT(level < levelCounters.size(), "bad tree level");
        ODRIPS_ASSERT(group < counterNodes(level), "bad tree group");
        node_index = levelNodeBase[level] + group;
    } else {
        ODRIPS_ASSERT(group < dataMacNodes(), "bad data-MAC group");
        node_index = dataMacBase + group;
    }
    return node_index * MetadataNode::storageBytes;
}

} // namespace odrips
