#include "security/speck.hh"

#include <cstring>

#include "arch/dispatch.hh"

namespace odrips
{

namespace
{

std::uint64_t
ror64(std::uint64_t x, unsigned r)
{
    return (x >> r) | (x << (64 - r));
}

std::uint64_t
rol64(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

void
speckRound(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    x = ror64(x, 8);
    x += y;
    x ^= k;
    y = rol64(y, 3);
    y ^= x;
}

void
speckRoundInverse(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    y ^= x;
    y = ror64(y, 3);
    x ^= k;
    x -= y;
    x = rol64(x, 8);
}

} // namespace

Speck128::Speck128(const Key &key)
{
    std::uint64_t a, b;
    std::memcpy(&a, key.data(), 8);     // low half
    std::memcpy(&b, key.data() + 8, 8); // high half

    roundKeys[0] = a;
    for (unsigned i = 0; i < rounds - 1; ++i) {
        speckRound(b, a, static_cast<std::uint64_t>(i));
        roundKeys[i + 1] = a;
    }
}

Block128
Speck128::encrypt(Block128 block) const
{
    for (unsigned i = 0; i < rounds; ++i)
        speckRound(block.x, block.y, roundKeys[i]);
    return block;
}

void
Speck128::encryptBatch(Block128 *blocks, std::size_t count) const
{
    // Block128 is two contiguous uint64_t words, so the batch is the
    // interleaved (x, y) layout the dispatched kernels consume. The
    // SIMD variants spread the independent blocks across vector lanes;
    // the scalar reference pipelines them through the ALU. Identical
    // ciphertext either way (exact 64-bit integer math).
    arch::activeKernels().speckEncryptBatch(
        roundKeys.data(), reinterpret_cast<std::uint64_t *>(blocks),
        count);
}

Block128
Speck128::decrypt(Block128 block) const
{
    for (unsigned i = rounds; i > 0; --i)
        speckRoundInverse(block.x, block.y, roundKeys[i - 1]);
    return block;
}

} // namespace odrips
