#include "security/speck.hh"

#include <cstring>

namespace odrips
{

namespace
{

std::uint64_t
ror64(std::uint64_t x, unsigned r)
{
    return (x >> r) | (x << (64 - r));
}

std::uint64_t
rol64(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

void
speckRound(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    x = ror64(x, 8);
    x += y;
    x ^= k;
    y = rol64(y, 3);
    y ^= x;
}

void
speckRoundInverse(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    y ^= x;
    y = ror64(y, 3);
    x ^= k;
    x -= y;
    x = rol64(x, 8);
}

} // namespace

Speck128::Speck128(const Key &key)
{
    std::uint64_t a, b;
    std::memcpy(&a, key.data(), 8);     // low half
    std::memcpy(&b, key.data() + 8, 8); // high half

    roundKeys[0] = a;
    for (unsigned i = 0; i < rounds - 1; ++i) {
        speckRound(b, a, static_cast<std::uint64_t>(i));
        roundKeys[i + 1] = a;
    }
}

Block128
Speck128::encrypt(Block128 block) const
{
    for (unsigned i = 0; i < rounds; ++i)
        speckRound(block.x, block.y, roundKeys[i]);
    return block;
}

void
Speck128::encryptBatch(Block128 *blocks, std::size_t count) const
{
    for (unsigned i = 0; i < rounds; ++i) {
        const std::uint64_t k = roundKeys[i];
        for (std::size_t b = 0; b < count; ++b)
            speckRound(blocks[b].x, blocks[b].y, k);
    }
}

Block128
Speck128::decrypt(Block128 block) const
{
    for (unsigned i = rounds; i > 0; --i)
        speckRoundInverse(block.x, block.y, roundKeys[i - 1]);
    return block;
}

} // namespace odrips
