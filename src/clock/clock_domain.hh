/**
 * @file
 * Clock domain derived from a crystal source.
 *
 * A ClockDomain distributes a (possibly multiplied/divided) version of a
 * crystal's output to a set of consumers and supports clock gating. Cycle
 * counting is done arithmetically — the simulator never schedules an
 * event per clock edge.
 */

#ifndef ODRIPS_CLOCK_CLOCK_DOMAIN_HH
#define ODRIPS_CLOCK_CLOCK_DOMAIN_HH

#include <cstdint>
#include <string>

#include "clock/crystal.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** A gateable clock domain fed by a Crystal. */
class ClockDomain : public Named
{
  public:
    /**
     * @param name   instance name
     * @param source crystal feeding this domain
     * @param ratio  frequency multiplier relative to the source (PLL
     *               ratio); 1.0 means the domain runs at crystal speed
     */
    ClockDomain(std::string name, const Crystal &source, double ratio = 1.0)
        : Named(std::move(name)), source_(source), ratio_(ratio)
    {
        ODRIPS_ASSERT(ratio > 0, "clock ratio must be positive");
    }

    const Crystal &source() const { return source_; }

    /** Effective frequency in Hz (0 when the source is off or gated). */
    double
    frequency() const
    {
        if (gated_ || !source_.enabled())
            return 0.0;
        return source_.actualHz() * ratio_;
    }

    /** Nominal frequency ignoring gating (for period computations). */
    double ungatedFrequency() const { return source_.actualHz() * ratio_; }

    /** Clock period in ticks (of the ungated clock). */
    Tick period() const { return frequencyToPeriod(ungatedFrequency()); }

    bool gated() const { return gated_; }
    void gate() { gated_ = true; }
    void ungate() { gated_ = false; }

    /** True if edges are being delivered right now. */
    bool running() const { return !gated_ && source_.enabled(); }

    /**
     * Number of full clock cycles that elapse in the half-open tick
     * interval [from, to), assuming the clock runs throughout.
     */
    std::uint64_t
    cyclesIn(Tick from, Tick to) const
    {
        if (to <= from)
            return 0;
        return static_cast<std::uint64_t>((to - from) / period());
    }

    /** Next clock edge at or after @p t (edges at integer periods). */
    Tick
    nextEdge(Tick t) const
    {
        const Tick p = period();
        const Tick k = (t + p - 1) / p;
        return k * p;
    }

  private:
    const Crystal &source_;
    double ratio_; // ckpt: derived
    bool gated_ = false;
};

} // namespace odrips

#endif // ODRIPS_CLOCK_CLOCK_DOMAIN_HH
