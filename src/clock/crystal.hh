/**
 * @file
 * Crystal oscillator (XTAL) model.
 *
 * The platform has two board-level crystals (Fig. 1(a) of the paper):
 * a 24 MHz XTAL feeding the processor/chipset fast clocks and a
 * 32.768 kHz RTC XTAL. Real crystals deviate from their nominal frequency
 * by a few tens of ppm; that deviation is what makes the Step calibration
 * of Sec. 4.1.3 necessary, so the model carries an exact rational actual
 * frequency.
 */

#ifndef ODRIPS_CLOCK_CRYSTAL_HH
#define ODRIPS_CLOCK_CRYSTAL_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

/**
 * A crystal oscillator with a nominal frequency, a manufacturing
 * tolerance expressed in ppm, and an on/off state with associated power.
 */
class Crystal : public Named
{
  public:
    /**
     * @param name        instance name
     * @param nominal_hz  data-sheet frequency in Hz
     * @param ppm_error   actual deviation from nominal in parts-per-million
     *                    (positive = runs fast)
     * @param rated_power power drawn while enabled
     */
    Crystal(std::string name, double nominal_hz, double ppm_error,
            Milliwatts rated_power)
        : Named(std::move(name)), nominalHz_(nominal_hz),
          ppmError_(ppm_error), ratedPower_(rated_power)
    {
        ODRIPS_ASSERT(nominal_hz > 0, "crystal frequency must be positive");
    }

    double nominalHz() const { return nominalHz_; }
    double ppmError() const { return ppmError_; }

    /** Actual oscillation frequency including the ppm deviation. */
    double
    actualHz() const
    {
        return nominalHz_ * (1.0 + ppmError_ * 1e-6);
    }

    /** Actual frequency as a strong type. */
    Hertz actualFrequency() const { return Hertz(actualHz()); }

    /** Nominal frequency as a strong type. */
    Hertz nominalFrequency() const { return Hertz(nominalHz_); }

    /** Actual period in simulator ticks (rounded to nearest ps). */
    Tick period() const { return frequencyToPeriod(actualHz()); }

    bool enabled() const { return on; }

    /** Turn the oscillator on; takes a start-up time in reality, which
     * the flows account for separately. */
    void enable() { on = true; }

    /** Turn the oscillator off (e.g. the 24 MHz XTAL in ODRIPS). */
    void disable() { on = false; }

    /** Power currently drawn by the oscillator. */
    Milliwatts power() const { return on ? ratedPower_ : Milliwatts::zero(); }

    /** Power drawn when enabled (regardless of current state). */
    Milliwatts ratedPower() const { return ratedPower_; }

  private:
    double nominalHz_; // ckpt: derived
    double ppmError_; // ckpt: derived
    Milliwatts ratedPower_; // ckpt: derived
    bool on = true;
};

} // namespace odrips

#endif // ODRIPS_CLOCK_CRYSTAL_HH
