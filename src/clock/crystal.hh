/**
 * @file
 * Crystal oscillator (XTAL) model.
 *
 * The platform has two board-level crystals (Fig. 1(a) of the paper):
 * a 24 MHz XTAL feeding the processor/chipset fast clocks and a
 * 32.768 kHz RTC XTAL. Real crystals deviate from their nominal frequency
 * by a few tens of ppm; that deviation is what makes the Step calibration
 * of Sec. 4.1.3 necessary, so the model carries an exact rational actual
 * frequency.
 */

#ifndef ODRIPS_CLOCK_CRYSTAL_HH
#define ODRIPS_CLOCK_CRYSTAL_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/**
 * A crystal oscillator with a nominal frequency, a manufacturing
 * tolerance expressed in ppm, and an on/off state with associated power.
 */
class Crystal : public Named
{
  public:
    /**
     * @param name        instance name
     * @param nominal_hz  data-sheet frequency in Hz
     * @param ppm_error   actual deviation from nominal in parts-per-million
     *                    (positive = runs fast)
     * @param power_watts power drawn while enabled
     */
    Crystal(std::string name, double nominal_hz, double ppm_error,
            double power_watts)
        : Named(std::move(name)), nominalHz_(nominal_hz),
          ppmError_(ppm_error), powerWatts_(power_watts)
    {
        ODRIPS_ASSERT(nominal_hz > 0, "crystal frequency must be positive");
    }

    double nominalHz() const { return nominalHz_; }
    double ppmError() const { return ppmError_; }

    /** Actual oscillation frequency including the ppm deviation. */
    double
    actualHz() const
    {
        return nominalHz_ * (1.0 + ppmError_ * 1e-6);
    }

    /** Actual period in simulator ticks (rounded to nearest ps). */
    Tick period() const { return frequencyToPeriod(actualHz()); }

    bool enabled() const { return on; }

    /** Turn the oscillator on; takes a start-up time in reality, which
     * the flows account for separately. */
    void enable() { on = true; }

    /** Turn the oscillator off (e.g. the 24 MHz XTAL in ODRIPS). */
    void disable() { on = false; }

    /** Power currently drawn by the oscillator. */
    double power() const { return on ? powerWatts_ : 0.0; }

    /** Power drawn when enabled (regardless of current state). */
    double ratedPower() const { return powerWatts_; }

  private:
    double nominalHz_;
    double ppmError_;
    double powerWatts_;
    bool on = true;
};

} // namespace odrips

#endif // ODRIPS_CLOCK_CRYSTAL_HH
