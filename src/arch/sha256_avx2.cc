/**
 * @file
 * AVX2 SHA-256 kernels.
 *
 * Two shapes of parallelism, both across *blocks* (the rounds of one
 * block are a serial dependency chain; the message schedule and
 * independent streams are not):
 *
 *  - sha256CompressAvx2: single stream, 8 consecutive blocks per
 *    group. The 48 message-schedule steps run with one 32-bit lane per
 *    block (the "8-lane multi-block message schedule"); the rounds
 *    then run scalar per block off the precomputed schedule.
 *
 *  - sha256Compress8Avx2: eight independent streams, one stream per
 *    lane, everything (schedule *and* rounds) vectorised. This is the
 *    kernel behind mac64x8 and the MEE's batched line MACs.
 *
 * Compiled with -mavx2; only ever called after the CPUID probe
 * confirms AVX2 (see arch/dispatch.cc).
 */

#include <immintrin.h>

#include "arch/crypto_kernels.hh"
#include "arch/sha256_common.hh"

#if defined(ODRIPS_HAVE_AVX2_KERNELS)

namespace odrips::arch
{

namespace
{

// Per-128-bit-lane byte shuffle that big-endian-swaps each 32-bit word.
inline __m256i
bswap32x8(__m256i v)
{
    const __m256i mask = _mm256_setr_epi8(
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
    return _mm256_shuffle_epi8(v, mask);
}

inline __m256i
rotr32x8(__m256i v, int n)
{
    return _mm256_or_si256(_mm256_srli_epi32(v, n),
                           _mm256_slli_epi32(v, 32 - n));
}

// sigma0 / sigma1 of the message schedule, 8 lanes at once.
inline __m256i
schedS0(__m256i v)
{
    return _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(v, 7), rotr32x8(v, 18)),
        _mm256_srli_epi32(v, 3));
}

inline __m256i
schedS1(__m256i v)
{
    return _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(v, 17), rotr32x8(v, 19)),
        _mm256_srli_epi32(v, 10));
}

/** Transpose 8 rows of 8 u32 (r[i] = row i) in place to columns. */
inline void
transpose8x8(__m256i r[8])
{
    const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);

    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);

    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/**
 * Load word-rows for 8 "lanes" and produce the transposed schedule
 * vectors w[0..15], where w[t] lane i is big-endian word t of lane i's
 * block. Lane i's block starts at @p base + i * @p laneStride.
 */
inline void
loadMessageWords(const std::uint8_t *base, std::size_t laneStride,
                 __m256i w[16])
{
    __m256i lo[8], hi[8];
    for (int i = 0; i < 8; ++i) {
        const std::uint8_t *block =
            base + static_cast<std::size_t>(i) * laneStride;
        lo[i] = bswap32x8(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(block)));
        hi[i] = bswap32x8(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(block + 32)));
    }
    transpose8x8(lo);
    transpose8x8(hi);
    for (int t = 0; t < 8; ++t) {
        w[t] = lo[t];
        w[t + 8] = hi[t];
    }
}

} // namespace

void
sha256CompressAvx2(std::uint32_t *state, const std::uint8_t *blocks,
                   std::size_t count)
{
    alignas(32) std::uint32_t ws[64 * 8];

    while (count >= 8) {
        // Lanes are the 8 consecutive blocks of this group.
        __m256i w[16];
        loadMessageWords(blocks, 64, w);
        for (int t = 0; t < 16; ++t)
            _mm256_store_si256(reinterpret_cast<__m256i *>(ws + 8 * t),
                               w[t]);
        for (int t = 16; t < 64; ++t) {
            const __m256i wt = _mm256_add_epi32(
                _mm256_add_epi32(w[(t - 16) & 15], schedS0(w[(t - 15) & 15])),
                _mm256_add_epi32(w[(t - 7) & 15], schedS1(w[(t - 2) & 15])));
            w[t & 15] = wt;
            _mm256_store_si256(reinterpret_cast<__m256i *>(ws + 8 * t), wt);
        }
        // Rounds stay serial across a single stream's blocks: each
        // block reads its lane (stride 8) of the precomputed schedule.
        for (std::size_t b = 0; b < 8; ++b)
            sha256RoundsFromSchedule(state, ws + b, 8);
        blocks += 8 * 64;
        count -= 8;
    }
    if (count > 0)
        sha256CompressScalar(state, blocks, count);
}

void
sha256Compress8Avx2(std::uint32_t *states, const std::uint8_t *blocks,
                    std::size_t stride, std::size_t count)
{
    // Load the 8 states and transpose so vector i holds word i of all
    // streams (lane s = stream s).
    __m256i s[8];
    for (int i = 0; i < 8; ++i)
        s[i] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(states + 8 * i));
    transpose8x8(s);

    for (std::size_t blk = 0; blk < count; ++blk) {
        __m256i w[16];
        loadMessageWords(blocks + 64 * blk, stride, w);

        __m256i a = s[0], b = s[1], c = s[2], d = s[3];
        __m256i e = s[4], f = s[5], g = s[6], h = s[7];

        for (int t = 0; t < 64; ++t) {
            __m256i wt;
            if (t < 16) {
                wt = w[t];
            } else {
                wt = _mm256_add_epi32(
                    _mm256_add_epi32(w[(t - 16) & 15],
                                     schedS0(w[(t - 15) & 15])),
                    _mm256_add_epi32(w[(t - 7) & 15],
                                     schedS1(w[(t - 2) & 15])));
                w[t & 15] = wt;
            }
            const __m256i s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr32x8(e, 6), rotr32x8(e, 11)),
                rotr32x8(e, 25));
            const __m256i ch = _mm256_xor_si256(
                _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            const __m256i k = _mm256_set1_epi32(
                static_cast<int>(sha256K[static_cast<std::size_t>(t)]));
            const __m256i temp1 = _mm256_add_epi32(
                _mm256_add_epi32(_mm256_add_epi32(h, s1),
                                 _mm256_add_epi32(ch, k)),
                wt);
            const __m256i s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr32x8(a, 2), rotr32x8(a, 13)),
                rotr32x8(a, 22));
            const __m256i maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b),
                                 _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c));
            const __m256i temp2 = _mm256_add_epi32(s0, maj);
            h = g;
            g = f;
            f = e;
            e = _mm256_add_epi32(d, temp1);
            d = c;
            c = b;
            b = a;
            a = _mm256_add_epi32(temp1, temp2);
        }

        s[0] = _mm256_add_epi32(s[0], a);
        s[1] = _mm256_add_epi32(s[1], b);
        s[2] = _mm256_add_epi32(s[2], c);
        s[3] = _mm256_add_epi32(s[3], d);
        s[4] = _mm256_add_epi32(s[4], e);
        s[5] = _mm256_add_epi32(s[5], f);
        s[6] = _mm256_add_epi32(s[6], g);
        s[7] = _mm256_add_epi32(s[7], h);
    }

    transpose8x8(s);
    for (int i = 0; i < 8; ++i)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(states + 8 * i),
                            s[i]);
}

} // namespace odrips::arch

#endif // ODRIPS_HAVE_AVX2_KERNELS
