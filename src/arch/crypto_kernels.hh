/**
 * @file
 * Internal declarations of the per-ISA kernel entry points.
 *
 * Each kernel lives in its own translation unit compiled with exactly
 * the ISA flags it needs (see src/arch/CMakeLists.txt); this header
 * deliberately contains no intrinsics so it can be included from the
 * portable dispatch code. The ODRIPS_HAVE_* macros are defined by the
 * build for kernels whose flags the compiler accepted.
 */

#ifndef ODRIPS_ARCH_CRYPTO_KERNELS_HH
#define ODRIPS_ARCH_CRYPTO_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace odrips::arch
{

// -- portable reference kernels (always present) ------------------------

void sha256CompressScalar(std::uint32_t *state, const std::uint8_t *blocks,
                          std::size_t count);
void sha256Compress8Scalar(std::uint32_t *states, const std::uint8_t *blocks,
                           std::size_t stride, std::size_t count);
void speckEncryptBatchScalar(const std::uint64_t *roundKeys,
                             std::uint64_t *xy, std::size_t count);

#if defined(ODRIPS_HAVE_SSE4_KERNELS)
/** Single-stream compress with a 4-lane SSE4.1 message schedule. */
void sha256CompressSse4(std::uint32_t *state, const std::uint8_t *blocks,
                        std::size_t count);
/** 2-lane SSE SPECK CTR batch. */
void speckEncryptBatchSse4(const std::uint64_t *roundKeys,
                           std::uint64_t *xy, std::size_t count);
#endif

#if defined(ODRIPS_HAVE_AVX2_KERNELS)
/** Single-stream compress with an 8-lane AVX2 message schedule. */
void sha256CompressAvx2(std::uint32_t *state, const std::uint8_t *blocks,
                        std::size_t count);
/** True 8-way multi-buffer compress (one stream per 32-bit lane). */
void sha256Compress8Avx2(std::uint32_t *states, const std::uint8_t *blocks,
                         std::size_t stride, std::size_t count);
/** 4-lane AVX2 SPECK CTR batch. */
void speckEncryptBatchAvx2(const std::uint64_t *roundKeys,
                           std::uint64_t *xy, std::size_t count);
#endif

#if defined(ODRIPS_HAVE_SHANI_KERNELS)
/** Single-stream compress on the x86 SHA extensions. */
void sha256CompressShaNi(std::uint32_t *state, const std::uint8_t *blocks,
                         std::size_t count);
#endif

} // namespace odrips::arch

#endif // ODRIPS_ARCH_CRYPTO_KERNELS_HH
