/**
 * @file
 * Runtime dispatch registry for the crypto kernels.
 *
 * src/security/ calls crypto through the small function table returned
 * by activeKernels(). The table is chosen once, at first use, from the
 * probed CPU features (arch/cpu_features.hh), and can be pinned to a
 * lower level for reproducible baselines:
 *
 *   ODRIPS_DISPATCH=scalar   portable reference code only
 *   ODRIPS_DISPATCH=sse4     SSE4.1 kernels (x86-64)
 *   ODRIPS_DISPATCH=avx2     AVX2 kernels (x86-64)
 *   ODRIPS_DISPATCH=native   best the CPU supports (default; uses
 *                            SHA-NI for single-stream SHA-256 when
 *                            present)
 *
 * A requested level the CPU cannot run is clamped down to the best
 * supported level at or below it (with a one-time stderr note), so a
 * pinned script never crashes on older hardware — it just runs the
 * closest baseline. Non-x86 builds always resolve to scalar (the
 * AArch64 probe reports NEON/SHA2 for diagnostics, but no NEON kernels
 * are provided yet; see DESIGN.md "SIMD dispatch").
 *
 * Every kernel is bit-identical to the scalar reference — the scalar
 * code *is* the specification, and tests/security/simd_dispatch_test.cc
 * enforces equality on random inputs for every resolvable level.
 */

#ifndef ODRIPS_ARCH_DISPATCH_HH
#define ODRIPS_ARCH_DISPATCH_HH

#include <cstddef>
#include <cstdint>

namespace odrips::arch
{

/** Dispatch levels, ordered weakest to strongest. */
enum class DispatchLevel { Scalar = 0, Sse4 = 1, Avx2 = 2, Native = 3 };

/**
 * The kernel function table. All pointers are always non-null; a level
 * that has no specialised implementation for an entry inherits the
 * best weaker one (ultimately the scalar reference).
 */
struct CryptoKernels
{
    /** Level this table implements (after clamping). */
    DispatchLevel level;

    /** Level name for logs/bench metadata: scalar|sse4|avx2|native. */
    const char *levelName;

    /** Names of the selected kernels, for bench metadata. */
    const char *sha256Name;
    const char *speckName;

    /**
     * SHA-256 compression over @p count consecutive 64-byte blocks.
     * @p state is the 8-word working state, updated in place. Blocks
     * may be unaligned.
     */
    void (*sha256Compress)(std::uint32_t *state,
                           const std::uint8_t *blocks, std::size_t count);

    /**
     * 8-stream SHA-256 compression: stream i's blocks start at
     * @p blocks + i * @p stride and its 8-word state at
     * @p states + 8 * i; every stream processes @p count blocks.
     * Equivalent to eight independent sha256Compress calls.
     */
    void (*sha256Compress8)(std::uint32_t *states,
                            const std::uint8_t *blocks, std::size_t stride,
                            std::size_t count);

    /**
     * SPECK-128/128 encryption of @p count blocks laid out as
     * interleaved (x, y) 64-bit word pairs (the in-memory layout of
     * odrips::Block128), under the 32 expanded @p roundKeys.
     */
    void (*speckEncryptBatch)(const std::uint64_t *roundKeys,
                              std::uint64_t *xy, std::size_t count);
};

/**
 * The active kernel table. First call resolves ODRIPS_DISPATCH (or
 * Native) against the CPU probe; later calls are a single atomic load.
 */
const CryptoKernels &activeKernels();

/** The table for @p level, clamped to what the CPU supports. */
const CryptoKernels &kernelsFor(DispatchLevel level);

/** True when @p level resolves to itself (not clamped down). */
bool levelSupported(DispatchLevel level);

/**
 * Re-pin the active table (tests and per-level benchmarks). Returns
 * the previous level. Not meant to be raced against in-flight crypto:
 * callers switch levels only from single-threaded sections.
 */
DispatchLevel setDispatchLevel(DispatchLevel level);

/** Parse a level name; returns false on unknown names. */
bool parseDispatchLevel(const char *name, DispatchLevel &out);

} // namespace odrips::arch

#endif // ODRIPS_ARCH_DISPATCH_HH
