/**
 * @file
 * One-time CPU feature probe.
 *
 * The SIMD crypto kernels under src/arch/ are compiled with per-file
 * ISA flags and must only ever be *called* when the running CPU
 * advertises the matching feature. This probe is the single source of
 * truth: CPUID (with the XGETBV AVX state check) on x86-64, HWCAP on
 * Linux/AArch64, and all-false everywhere else so the portable scalar
 * kernels remain the unconditional fallback.
 */

#ifndef ODRIPS_ARCH_CPU_FEATURES_HH
#define ODRIPS_ARCH_CPU_FEATURES_HH

#include <string>

namespace odrips::arch
{

/** Features relevant to the crypto kernel dispatch. */
struct CpuFeatures
{
    // x86-64
    bool sse41 = false;
    bool avx2 = false;
    bool shaNi = false;
    // AArch64
    bool neon = false;
    bool sha2 = false;
};

/** Probe once (thread-safe) and return the cached result. */
const CpuFeatures &cpuFeatures();

/**
 * Human/JSON-friendly summary of the probed features, e.g.
 * "sse4_1+avx2+sha_ni", or "scalar-only" when nothing relevant is
 * present. Stable token names: sse4_1, avx2, sha_ni, neon, sha2.
 */
std::string cpuFeatureString();

} // namespace odrips::arch

#endif // ODRIPS_ARCH_CPU_FEATURES_HH
