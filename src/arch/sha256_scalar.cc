#include "arch/crypto_kernels.hh"
#include "arch/sha256_common.hh"

namespace odrips::arch
{

void
sha256CompressScalar(std::uint32_t *state, const std::uint8_t *blocks,
                     std::size_t count)
{
    for (std::size_t blk = 0; blk < count; ++blk) {
        const std::uint8_t *block = blocks + 64 * blk;
        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i)
            w[i] = sha256LoadBe32(block + 4 * i);
        for (int i = 16; i < 64; ++i) {
            const std::uint32_t s0 = sha256Rotr(w[i - 15], 7) ^
                                     sha256Rotr(w[i - 15], 18) ^
                                     (w[i - 15] >> 3);
            const std::uint32_t s1 = sha256Rotr(w[i - 2], 17) ^
                                     sha256Rotr(w[i - 2], 19) ^
                                     (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }
        sha256RoundsFromSchedule(state, w, 1);
    }
}

void
sha256Compress8Scalar(std::uint32_t *states, const std::uint8_t *blocks,
                      std::size_t stride, std::size_t count)
{
    for (std::size_t s = 0; s < 8; ++s)
        sha256CompressScalar(states + 8 * s, blocks + s * stride, count);
}

} // namespace odrips::arch
