#include "arch/crypto_kernels.hh"

namespace odrips::arch
{

namespace
{

std::uint64_t
ror64(std::uint64_t x, unsigned r)
{
    return (x >> r) | (x << (64 - r));
}

std::uint64_t
rol64(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

} // namespace

void
speckEncryptBatchScalar(const std::uint64_t *roundKeys, std::uint64_t *xy,
                        std::size_t count)
{
    // Round loop outside the block loop: independent blocks pipeline
    // through the ALU instead of serialising on one block's 32-round
    // dependency chain (same structure the SIMD kernels vectorise).
    for (unsigned i = 0; i < 32; ++i) {
        const std::uint64_t k = roundKeys[i];
        for (std::size_t b = 0; b < count; ++b) {
            std::uint64_t &x = xy[2 * b];
            std::uint64_t &y = xy[2 * b + 1];
            x = ror64(x, 8);
            x += y;
            x ^= k;
            y = rol64(y, 3);
            y ^= x;
        }
    }
}

} // namespace odrips::arch
