/**
 * @file
 * Shared pieces of the SHA-256 kernels: the FIPS 180-4 round constants
 * and the scalar round/compress helpers. The SSE4.1 and AVX2 message-
 * schedule kernels vectorise only the schedule and reuse the scalar
 * rounds below, which keeps every variant trivially bit-identical in
 * the rounds and concentrates the differential-test surface on the
 * schedule math.
 */

#ifndef ODRIPS_ARCH_SHA256_COMMON_HH
#define ODRIPS_ARCH_SHA256_COMMON_HH

#include <array>
#include <cstdint>

namespace odrips::arch
{

inline constexpr std::array<std::uint32_t, 64> sha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t
sha256Rotr(std::uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

inline std::uint32_t
sha256LoadBe32(const std::uint8_t *p)
{
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/**
 * The 64 SHA-256 rounds over a fully expanded message schedule
 * @p w (64 words), updating @p state in place. Shared by the scalar
 * kernel and the SIMD schedule-precompute kernels; @p stride lets the
 * SIMD kernels keep w in lane-major layout (w[t * stride]).
 */
inline void
sha256RoundsFromSchedule(std::uint32_t *state, const std::uint32_t *w,
                         std::size_t stride)
{
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            sha256Rotr(e, 6) ^ sha256Rotr(e, 11) ^ sha256Rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t temp1 =
            h + s1 + ch + sha256K[static_cast<std::size_t>(i)] +
            w[static_cast<std::size_t>(i) * stride];
        const std::uint32_t s0 =
            sha256Rotr(a, 2) ^ sha256Rotr(a, 13) ^ sha256Rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace odrips::arch

#endif // ODRIPS_ARCH_SHA256_COMMON_HH
