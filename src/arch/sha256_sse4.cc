/**
 * @file
 * SSE4.1 SHA-256 kernel: single stream, 4 consecutive blocks per
 * group, 4-lane message schedule + scalar rounds. Structure mirrors
 * the AVX2 kernel at half the width (see sha256_avx2.cc).
 *
 * Compiled with -msse4.1; only called after the CPUID probe.
 */

#include <smmintrin.h>
#include <tmmintrin.h>

#include "arch/crypto_kernels.hh"
#include "arch/sha256_common.hh"

#if defined(ODRIPS_HAVE_SSE4_KERNELS)

namespace odrips::arch
{

namespace
{

inline __m128i
bswap32x4(__m128i v)
{
    const __m128i mask =
        _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
    return _mm_shuffle_epi8(v, mask);
}

inline __m128i
rotr32x4(__m128i v, int n)
{
    return _mm_or_si128(_mm_srli_epi32(v, n), _mm_slli_epi32(v, 32 - n));
}

inline __m128i
schedS0(__m128i v)
{
    return _mm_xor_si128(_mm_xor_si128(rotr32x4(v, 7), rotr32x4(v, 18)),
                         _mm_srli_epi32(v, 3));
}

inline __m128i
schedS1(__m128i v)
{
    return _mm_xor_si128(_mm_xor_si128(rotr32x4(v, 17), rotr32x4(v, 19)),
                         _mm_srli_epi32(v, 10));
}

/** Transpose 4 rows of 4 u32 in place. */
inline void
transpose4x4(__m128i r[4])
{
    const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
    const __m128i t1 = _mm_unpackhi_epi32(r[0], r[1]);
    const __m128i t2 = _mm_unpacklo_epi32(r[2], r[3]);
    const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
    r[0] = _mm_unpacklo_epi64(t0, t2);
    r[1] = _mm_unpackhi_epi64(t0, t2);
    r[2] = _mm_unpacklo_epi64(t1, t3);
    r[3] = _mm_unpackhi_epi64(t1, t3);
}

} // namespace

void
sha256CompressSse4(std::uint32_t *state, const std::uint8_t *blocks,
                   std::size_t count)
{
    alignas(16) std::uint32_t ws[64 * 4];

    while (count >= 4) {
        // w[t] lane b = big-endian word t of block b. Each quarter of
        // the 16 message words is a 4x4 transpose across the blocks.
        __m128i w[16];
        for (int q = 0; q < 4; ++q) {
            __m128i rows[4];
            for (int b = 0; b < 4; ++b)
                rows[b] = bswap32x4(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(blocks + 64 * b +
                                                      16 * q)));
            transpose4x4(rows);
            for (int t = 0; t < 4; ++t)
                w[4 * q + t] = rows[t];
        }
        for (int t = 0; t < 16; ++t)
            _mm_store_si128(reinterpret_cast<__m128i *>(ws + 4 * t), w[t]);
        for (int t = 16; t < 64; ++t) {
            const __m128i wt = _mm_add_epi32(
                _mm_add_epi32(w[(t - 16) & 15], schedS0(w[(t - 15) & 15])),
                _mm_add_epi32(w[(t - 7) & 15], schedS1(w[(t - 2) & 15])));
            w[t & 15] = wt;
            _mm_store_si128(reinterpret_cast<__m128i *>(ws + 4 * t), wt);
        }
        for (std::size_t b = 0; b < 4; ++b)
            sha256RoundsFromSchedule(state, ws + b, 4);
        blocks += 4 * 64;
        count -= 4;
    }
    if (count > 0)
        sha256CompressScalar(state, blocks, count);
}

} // namespace odrips::arch

#endif // ODRIPS_HAVE_SSE4_KERNELS
