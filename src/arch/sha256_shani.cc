/**
 * @file
 * SHA-256 on the x86 SHA extensions (SHA-NI).
 *
 * The sha256rnds2 instruction retires two rounds per issue with the
 * message schedule kept in XMM registers via sha256msg1/msg2, so a
 * single stream compresses at several times the scalar rate. Written
 * as a loop over the sixteen 4-round groups; slot indices follow the
 * standard identities (the schedule for group g+1 needs raw words of
 * groups g and g-1 plus the msg1-accumulated group g-3).
 *
 * Compiled with -msha -msse4.1; only called after the CPUID probe.
 */

#include <immintrin.h>

#include "arch/crypto_kernels.hh"
#include "arch/sha256_common.hh"

#if defined(ODRIPS_HAVE_SHANI_KERNELS)

namespace odrips::arch
{

void
sha256CompressShaNi(std::uint32_t *state, const std::uint8_t *blocks,
                    std::size_t count)
{
    const __m128i bswapMask =
        _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

    // Repack the linear state into the ABEF/CDGH register layout the
    // rnds2 instruction expects.
    __m128i tmp =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state));
    __m128i state1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state + 4));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);
    state1 = _mm_shuffle_epi32(state1, 0x1B);
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);

    while (count > 0) {
        const __m128i save0 = state0;
        const __m128i save1 = state1;

        __m128i msg[4];
        for (int j = 0; j < 4; ++j)
            msg[j] = _mm_shuffle_epi8(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(blocks + 16 * j)),
                bswapMask);

        for (int g = 0; g < 16; ++g) {
            __m128i m = _mm_add_epi32(
                msg[g & 3],
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    sha256K.data() + 4 * g)));
            state1 = _mm_sha256rnds2_epu32(state1, state0, m);
            if (g >= 3 && g <= 14) {
                const __m128i shifted =
                    _mm_alignr_epi8(msg[g & 3], msg[(g + 3) & 3], 4);
                msg[(g + 1) & 3] = _mm_sha256msg2_epu32(
                    _mm_add_epi32(msg[(g + 1) & 3], shifted), msg[g & 3]);
            }
            m = _mm_shuffle_epi32(m, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, m);
            if (g >= 1 && g <= 12)
                msg[(g + 3) & 3] =
                    _mm_sha256msg1_epu32(msg[(g + 3) & 3], msg[g & 3]);
        }

        state0 = _mm_add_epi32(state0, save0);
        state1 = _mm_add_epi32(state1, save1);
        blocks += 64;
        --count;
    }

    // Unpack ABEF/CDGH back to the linear layout.
    tmp = _mm_shuffle_epi32(state0, 0x1B);
    state1 = _mm_shuffle_epi32(state1, 0xB1);
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);
    state1 = _mm_alignr_epi8(state1, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state + 4), state1);
}

} // namespace odrips::arch

#endif // ODRIPS_HAVE_SHANI_KERNELS
