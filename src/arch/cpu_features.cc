#include "arch/cpu_features.hh"

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define ODRIPS_ARCH_X86 1
#include <cpuid.h>
#elif defined(__aarch64__)
#define ODRIPS_ARCH_AARCH64 1
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace odrips::arch
{

namespace
{

#if defined(ODRIPS_ARCH_X86)

// XGETBV: the OS must have enabled YMM state saving (XCR0 bits 1|2)
// before AVX2 instructions are safe to execute, independent of what
// CPUID leaf 7 advertises.
bool
osSavesYmm()
{
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    const bool osxsave = (ecx >> 27) & 1u;
    if (!osxsave)
        return false;
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    (void)xcr0_hi;
    return (xcr0_lo & 0x6u) == 0x6u; // SSE + YMM state
}

CpuFeatures
probe()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        f.sse41 = (ecx >> 19) & 1u;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        const bool ymm = osSavesYmm();
        f.avx2 = ymm && ((ebx >> 5) & 1u);
        // SHA-NI operates on XMM state only, but every SHA-capable
        // part has SSE4.1; require it so the kernel's pshufb/blend
        // companions are safe too.
        f.shaNi = ((ebx >> 29) & 1u) && f.sse41;
    }
    return f;
}

#elif defined(ODRIPS_ARCH_AARCH64)

CpuFeatures
probe()
{
    CpuFeatures f;
#if defined(__linux__)
    // HWCAP_ASIMD = 1 << 1, HWCAP_SHA2 = 1 << 6 (asm/hwcap.h values;
    // spelled out so the probe builds without kernel headers).
    const unsigned long hwcap = getauxval(AT_HWCAP);
    f.neon = (hwcap >> 1) & 1ul;
    f.sha2 = (hwcap >> 6) & 1ul;
#else
    // No runtime probe available: trust the compile-time baseline.
#if defined(__ARM_NEON)
    f.neon = true;
#endif
#if defined(__ARM_FEATURE_SHA2)
    f.sha2 = true;
#endif
#endif
    return f;
}

#else

CpuFeatures
probe()
{
    return CpuFeatures{};
}

#endif

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = probe();
    return features;
}

std::string
cpuFeatureString()
{
    const CpuFeatures &f = cpuFeatures();
    std::string out;
    const auto append = [&out](const char *token) {
        if (!out.empty())
            out += '+';
        out += token;
    };
    if (f.sse41)
        append("sse4_1");
    if (f.avx2)
        append("avx2");
    if (f.shaNi)
        append("sha_ni");
    if (f.neon)
        append("neon");
    if (f.sha2)
        append("sha2");
    if (out.empty())
        out = "scalar-only";
    return out;
}

} // namespace odrips::arch
