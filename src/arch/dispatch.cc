#include "arch/dispatch.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arch/cpu_features.hh"
#include "arch/crypto_kernels.hh"

namespace odrips::arch
{

namespace
{

CryptoKernels
makeScalar()
{
    return {DispatchLevel::Scalar, "scalar", "scalar", "scalar",
            sha256CompressScalar, sha256Compress8Scalar,
            speckEncryptBatchScalar};
}

#if defined(ODRIPS_HAVE_SSE4_KERNELS)
CryptoKernels
makeSse4()
{
    // No dedicated multi-stream kernel at this level: the 8-way path
    // inherits the scalar reference (still correct, just not faster).
    return {DispatchLevel::Sse4, "sse4", "sse4-msg-sched", "sse4-x2",
            sha256CompressSse4, sha256Compress8Scalar,
            speckEncryptBatchSse4};
}
#endif

#if defined(ODRIPS_HAVE_AVX2_KERNELS)
CryptoKernels
makeAvx2()
{
    return {DispatchLevel::Avx2, "avx2", "avx2-msg-sched", "avx2-x4",
            sha256CompressAvx2, sha256Compress8Avx2,
            speckEncryptBatchAvx2};
}
#endif

bool
haveSse4()
{
#if defined(ODRIPS_HAVE_SSE4_KERNELS)
    return cpuFeatures().sse41;
#else
    return false;
#endif
}

bool
haveAvx2()
{
#if defined(ODRIPS_HAVE_AVX2_KERNELS)
    return cpuFeatures().avx2;
#else
    return false;
#endif
}

bool
haveShaNi()
{
#if defined(ODRIPS_HAVE_SHANI_KERNELS)
    return cpuFeatures().shaNi;
#else
    return false;
#endif
}

/** Best-of-everything table ("native"). */
CryptoKernels
makeNative()
{
    CryptoKernels k = makeScalar();
#if defined(ODRIPS_HAVE_SSE4_KERNELS)
    if (haveSse4()) {
        k = makeSse4();
    }
#endif
#if defined(ODRIPS_HAVE_AVX2_KERNELS)
    if (haveAvx2()) {
        k = makeAvx2();
    }
#endif
#if defined(ODRIPS_HAVE_SHANI_KERNELS)
    if (haveShaNi()) {
        k.sha256Compress = sha256CompressShaNi;
        k.sha256Name = "sha_ni";
    }
#endif
    k.level = DispatchLevel::Native;
    k.levelName = "native";
    return k;
}

/** The four resolved tables, built once. */
const CryptoKernels &
tableFor(DispatchLevel level)
{
    static const CryptoKernels scalar = makeScalar();
#if defined(ODRIPS_HAVE_SSE4_KERNELS)
    static const CryptoKernels sse4 =
        haveSse4() ? makeSse4() : makeScalar();
#else
    static const CryptoKernels &sse4 = scalar;
#endif
#if defined(ODRIPS_HAVE_AVX2_KERNELS)
    static const CryptoKernels avx2 = haveAvx2() ? makeAvx2() : sse4;
#else
    static const CryptoKernels &avx2 = sse4;
#endif
    static const CryptoKernels native = makeNative();

    switch (level) {
    case DispatchLevel::Scalar:
        return scalar;
    case DispatchLevel::Sse4:
        return sse4;
    case DispatchLevel::Avx2:
        return avx2;
    case DispatchLevel::Native:
        return native;
    }
    return scalar;
}

std::atomic<const CryptoKernels *> active{nullptr};

const CryptoKernels *
resolveInitial()
{
    DispatchLevel level = DispatchLevel::Native;
    const char *env = std::getenv("ODRIPS_DISPATCH");
    if (env != nullptr && *env != '\0') {
        if (!parseDispatchLevel(env, level)) {
            std::fprintf(stderr,
                         "odrips: ODRIPS_DISPATCH=%s is not one of "
                         "scalar|sse4|avx2|native; using native\n",
                         env);
            level = DispatchLevel::Native;
        } else if (!levelSupported(level)) {
            std::fprintf(stderr,
                         "odrips: ODRIPS_DISPATCH=%s not supported by "
                         "this CPU/build (%s); clamping to '%s'\n",
                         env, cpuFeatureString().c_str(),
                         tableFor(level).levelName);
        }
    }
    return &tableFor(level);
}

} // namespace

bool
parseDispatchLevel(const char *name, DispatchLevel &out)
{
    if (std::strcmp(name, "scalar") == 0)
        out = DispatchLevel::Scalar;
    else if (std::strcmp(name, "sse4") == 0)
        out = DispatchLevel::Sse4;
    else if (std::strcmp(name, "avx2") == 0)
        out = DispatchLevel::Avx2;
    else if (std::strcmp(name, "native") == 0)
        out = DispatchLevel::Native;
    else
        return false;
    return true;
}

bool
levelSupported(DispatchLevel level)
{
    switch (level) {
    case DispatchLevel::Scalar:
    case DispatchLevel::Native:
        return true;
    case DispatchLevel::Sse4:
        return haveSse4();
    case DispatchLevel::Avx2:
        return haveAvx2();
    }
    return false;
}

const CryptoKernels &
kernelsFor(DispatchLevel level)
{
    return tableFor(level);
}

const CryptoKernels &
activeKernels()
{
    const CryptoKernels *k = active.load(std::memory_order_acquire);
    if (k == nullptr) {
        // First use (single-threaded in practice: process start-up).
        // A benign race would just resolve the same table twice.
        k = resolveInitial();
        active.store(k, std::memory_order_release);
    }
    return *k;
}

DispatchLevel
setDispatchLevel(DispatchLevel level)
{
    const DispatchLevel previous = activeKernels().level;
    active.store(&tableFor(level), std::memory_order_release);
    return previous;
}

} // namespace odrips::arch
