/**
 * @file
 * SSE SPECK-128/128 CTR batch kernel: two blocks per vector pair, two
 * pairs in flight. Same structure as the AVX2 kernel at half width
 * (see speck_avx2.cc). Uses SSSE3 pshufb for the ror-by-8; grouped
 * with the SSE4.1 dispatch level.
 *
 * Compiled with -msse4.1; only called after the CPUID probe.
 */

#include <smmintrin.h>
#include <tmmintrin.h>

#include "arch/crypto_kernels.hh"

#if defined(ODRIPS_HAVE_SSE4_KERNELS)

namespace odrips::arch
{

namespace
{

inline __m128i
ror8x64(__m128i v)
{
    const __m128i mask =
        _mm_setr_epi8(1, 2, 3, 4, 5, 6, 7, 0, 9, 10, 11, 12, 13, 14, 15, 8);
    return _mm_shuffle_epi8(v, mask);
}

inline __m128i
rol3x64(__m128i v)
{
    return _mm_or_si128(_mm_slli_epi64(v, 3), _mm_srli_epi64(v, 61));
}

struct BlockPair
{
    __m128i x, y;
};

inline BlockPair
loadPair(const std::uint64_t *xy)
{
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(xy));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(xy + 2));
    return {_mm_unpacklo_epi64(v0, v1), _mm_unpackhi_epi64(v0, v1)};
}

inline void
storePair(std::uint64_t *xy, const BlockPair &p)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(xy),
                     _mm_unpacklo_epi64(p.x, p.y));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(xy + 2),
                     _mm_unpackhi_epi64(p.x, p.y));
}

inline void
roundPair(BlockPair &p, __m128i k)
{
    p.x = ror8x64(p.x);
    p.x = _mm_add_epi64(p.x, p.y);
    p.x = _mm_xor_si128(p.x, k);
    p.y = rol3x64(p.y);
    p.y = _mm_xor_si128(p.y, p.x);
}

} // namespace

void
speckEncryptBatchSse4(const std::uint64_t *roundKeys, std::uint64_t *xy,
                      std::size_t count)
{
    while (count >= 4) {
        BlockPair p0 = loadPair(xy);
        BlockPair p1 = loadPair(xy + 4);
        for (unsigned i = 0; i < 32; ++i) {
            const __m128i k = _mm_set1_epi64x(
                static_cast<long long>(roundKeys[i]));
            roundPair(p0, k);
            roundPair(p1, k);
        }
        storePair(xy, p0);
        storePair(xy + 4, p1);
        xy += 8;
        count -= 4;
    }
    if (count >= 2) {
        BlockPair p = loadPair(xy);
        for (unsigned i = 0; i < 32; ++i)
            roundPair(p, _mm_set1_epi64x(
                             static_cast<long long>(roundKeys[i])));
        storePair(xy, p);
        xy += 4;
        count -= 2;
    }
    if (count > 0)
        speckEncryptBatchScalar(roundKeys, xy, count);
}

} // namespace odrips::arch

#endif // ODRIPS_HAVE_SSE4_KERNELS
