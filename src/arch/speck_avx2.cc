/**
 * @file
 * AVX2 SPECK-128/128 CTR batch kernel: four blocks per vector pair
 * (x-words in one ymm, y-words in another), two pairs in flight for
 * ILP. The ror-by-8 uses a per-qword byte rotate (vpshufb); the
 * rol-by-3 is shift+or. Exact 64-bit integer math, so bit-identity
 * with the scalar reference is structural.
 *
 * Compiled with -mavx2; only called after the CPUID probe.
 */

#include <immintrin.h>

#include "arch/crypto_kernels.hh"

#if defined(ODRIPS_HAVE_AVX2_KERNELS)

namespace odrips::arch
{

namespace
{

inline __m256i
ror8x64(__m256i v)
{
    // Per 64-bit word: result byte i = source byte (i + 1) % 8.
    const __m256i mask = _mm256_setr_epi8(
        1, 2, 3, 4, 5, 6, 7, 0, 9, 10, 11, 12, 13, 14, 15, 8,
        1, 2, 3, 4, 5, 6, 7, 0, 9, 10, 11, 12, 13, 14, 15, 8);
    return _mm256_shuffle_epi8(v, mask);
}

inline __m256i
rol3x64(__m256i v)
{
    return _mm256_or_si256(_mm256_slli_epi64(v, 3),
                           _mm256_srli_epi64(v, 61));
}

struct BlockQuad
{
    __m256i x, y;
};

inline BlockQuad
loadQuad(const std::uint64_t *xy)
{
    // Memory order x0 y0 x1 y1 | x2 y2 x3 y3; unpack to lane-permuted
    // x/y vectors (the permutation is undone symmetrically on store,
    // and the round function is lane-independent).
    const __m256i v0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(xy));
    const __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(xy + 4));
    return {_mm256_unpacklo_epi64(v0, v1), _mm256_unpackhi_epi64(v0, v1)};
}

inline void
storeQuad(std::uint64_t *xy, const BlockQuad &q)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(xy),
                        _mm256_unpacklo_epi64(q.x, q.y));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(xy + 4),
                        _mm256_unpackhi_epi64(q.x, q.y));
}

inline void
roundQuad(BlockQuad &q, __m256i k)
{
    q.x = ror8x64(q.x);
    q.x = _mm256_add_epi64(q.x, q.y);
    q.x = _mm256_xor_si256(q.x, k);
    q.y = rol3x64(q.y);
    q.y = _mm256_xor_si256(q.y, q.x);
}

} // namespace

void
speckEncryptBatchAvx2(const std::uint64_t *roundKeys, std::uint64_t *xy,
                      std::size_t count)
{
    while (count >= 8) {
        BlockQuad q0 = loadQuad(xy);
        BlockQuad q1 = loadQuad(xy + 8);
        for (unsigned i = 0; i < 32; ++i) {
            const __m256i k = _mm256_set1_epi64x(
                static_cast<long long>(roundKeys[i]));
            roundQuad(q0, k);
            roundQuad(q1, k);
        }
        storeQuad(xy, q0);
        storeQuad(xy + 8, q1);
        xy += 16;
        count -= 8;
    }
    if (count >= 4) {
        BlockQuad q = loadQuad(xy);
        for (unsigned i = 0; i < 32; ++i)
            roundQuad(q, _mm256_set1_epi64x(
                             static_cast<long long>(roundKeys[i])));
        storeQuad(xy, q);
        xy += 8;
        count -= 4;
    }
    if (count > 0)
        speckEncryptBatchScalar(roundKeys, xy, count);
}

} // namespace odrips::arch

#endif // ODRIPS_HAVE_AVX2_KERNELS
