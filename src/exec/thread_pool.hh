/**
 * @file
 * Work-stealing thread pool for the parallel experiment runner.
 *
 * Each worker owns a deque of tasks: it pushes and pops at the back
 * (LIFO, cache-friendly for task trees) and victims are robbed from the
 * front (FIFO, takes the oldest — typically largest — work first).
 * External submitters distribute round-robin across the worker deques.
 *
 * Determinism note: the pool never reorders *results* — ordered
 * collection is the job of ParallelSweep, which gives every point a
 * dedicated output slot. The pool only schedules.
 */

#ifndef ODRIPS_EXEC_THREAD_POOL_HH
#define ODRIPS_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odrips::exec
{

/** A fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. Zero picks the process default
     * (defaultJobs(), i.e. --jobs / ODRIPS_JOBS / hardware).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Queue a task. Called from a worker thread the task lands on that
     * worker's own deque (depth-first); otherwise it is dealt
     * round-robin across the workers.
     */
    void post(std::function<void()> task);

    /**
     * The pool whose worker is running the calling thread, or nullptr
     * on a non-worker thread. Used to run nested parallel regions
     * inline instead of deadlocking on a saturated pool.
     */
    static ThreadPool *current();

    /** Sentinel returned by currentWorkerIndex() off the pool. */
    static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

    /**
     * Index of the pool worker running the calling thread, or
     * kNoWorker on a non-worker thread. Lets callers keep per-worker
     * arenas/accumulators without a thread-id map.
     */
    static std::size_t currentWorkerIndex();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned me);
    bool popOwn(unsigned me, std::function<void()> &out);
    bool steal(unsigned me, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    /** Wakes idle workers; guarded by sleepMutex. */
    std::mutex sleepMutex;
    std::condition_variable sleepCv;
    std::size_t queued = 0; ///< tasks currently in any deque
    bool stopping = false;

    std::size_t nextVictim = 0; ///< round-robin cursor for post()
};

/**
 * A group of tasks on a pool that can be awaited together. The first
 * exception thrown by any task is captured and rethrown from wait();
 * later exceptions are dropped (the tasks still complete).
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &owner_pool) : pool(owner_pool) {}

    /** TaskGroups must be waited before destruction. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Queue one task as part of this group. */
    void run(std::function<void()> task);

    /**
     * Block until every task of the group finished; rethrows the first
     * captured exception.
     */
    void wait();

  private:
    ThreadPool &pool;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr error;
};

/**
 * Process-wide default worker count for parallel sweeps: the value set
 * via setDefaultJobs() (benches feed it from --jobs / ODRIPS_JOBS, see
 * resolveJobs() in platform/config.hh), falling back to
 * std::thread::hardware_concurrency().
 */
unsigned defaultJobs();

/** Override the default worker count (0 restores the hardware value). */
void setDefaultJobs(unsigned jobs);

/**
 * Lazily constructed process-wide pool sized defaultJobs() at first
 * use. Returns nullptr when defaultJobs() == 1 (serial opt-out): the
 * caller should run inline instead.
 */
ThreadPool *defaultPool();

} // namespace odrips::exec

#endif // ODRIPS_EXEC_THREAD_POOL_HH
