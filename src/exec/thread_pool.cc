#include "exec/thread_pool.hh"

#include <atomic>
#include <memory>

#include "sim/logging.hh"

namespace odrips::exec
{

namespace
{

/** Pool owning the calling thread (set for the worker's lifetime). */
thread_local ThreadPool *currentPool = nullptr;
/** Index of the calling worker inside currentPool. */
thread_local unsigned currentWorker = 0;

std::atomic<unsigned> jobsOverride{0};

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultJobs();
    ODRIPS_ASSERT(threads > 0, "thread pool needs at least one worker");

    queues.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        stopping = true;
    }
    sleepCv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    std::size_t target;
    {
        // Publish the task count *before* the task itself: a worker
        // that grabs the task therefore always decrements after this
        // increment, so `queued` can never underflow.
        std::lock_guard<std::mutex> lock(sleepMutex);
        ++queued;
        target = currentPool == this ? currentWorker
                                     : nextVictim++ % queues.size();
    }
    {
        std::lock_guard<std::mutex> lock(queues[target]->mutex);
        queues[target]->tasks.push_back(std::move(task));
    }
    sleepCv.notify_one();
}

bool
ThreadPool::popOwn(unsigned me, std::function<void()> &out)
{
    WorkerQueue &q = *queues[me];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty())
        return false;
    // Workers service their own deque back-first (depth-first).
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(unsigned me, std::function<void()> &out)
{
    const std::size_t n = queues.size();
    for (std::size_t off = 1; off < n; ++off) {
        WorkerQueue &q = *queues[(me + off) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            continue;
        // Steal the oldest task from the victim's front.
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned me)
{
    currentPool = this;
    currentWorker = me;
    std::function<void()> task;
    while (true) {
        if (popOwn(me, task) || steal(me, task)) {
            {
                std::lock_guard<std::mutex> lock(sleepMutex);
                --queued;
            }
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex);
        if (queued > 0)
            continue; // posted but not yet pushed — rescan
        if (stopping)
            break; // every deque drained, safe to exit
        sleepCv.wait(lock, [this] { return queued > 0 || stopping; });
    }
    currentPool = nullptr;
}

ThreadPool *
ThreadPool::current()
{
    return currentPool;
}

std::size_t
ThreadPool::currentWorkerIndex()
{
    return currentPool != nullptr ? static_cast<std::size_t>(currentWorker)
                                  : kNoWorker;
}

TaskGroup::~TaskGroup()
{
    // Tasks reference this group; leaving them running would be a
    // use-after-free. Absorb any exception: destructors must not throw.
    try {
        wait();
    } catch (...) {
    }
}

void
TaskGroup::run(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++pending;
    }
    pool.post([this, task = std::move(task)] {
        std::exception_ptr caught;
        try {
            task();
        } catch (...) {
            caught = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex);
        if (caught && !error)
            error = caught;
        if (--pending == 0)
            done.notify_all();
    });
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [this] { return pending == 0; });
    if (error) {
        std::exception_ptr e = error;
        error = nullptr;
        std::rethrow_exception(e);
    }
}

unsigned
defaultJobs()
{
    const unsigned override_jobs = jobsOverride.load();
    return override_jobs > 0 ? override_jobs : hardwareJobs();
}

void
setDefaultJobs(unsigned jobs)
{
    jobsOverride.store(jobs);
}

ThreadPool *
defaultPool()
{
    const unsigned jobs = defaultJobs();
    if (jobs <= 1)
        return nullptr;
    // Sized at first use; a later setDefaultJobs() does not resize it
    // (callers that need an exact width pass their own pool).
    static ThreadPool pool(jobs);
    return &pool;
}

} // namespace odrips::exec
