/**
 * @file
 * ParallelSweep: shard the independent points of an experiment sweep
 * (break-even residency sweeps, ablation grids, technique sets) across
 * a work-stealing thread pool with *ordered* result collection.
 *
 * Determinism contract: every point gets a dedicated output slot and a
 * dedicated RNG stream forked from the sweep seed by point index
 * (Rng::fork), so the result vector is bit-identical to the serial
 * path for any worker count. Points must not share mutable state —
 * simulation points build their own Platform/EventQueue.
 *
 * Nested sweeps (a parallel point that itself calls a parallel sweep,
 * e.g. evaluateFig6aSet -> findBreakeven) run inline on the calling
 * worker: this keeps the pool deadlock-free without changing results.
 */

#ifndef ODRIPS_EXEC_PARALLEL_SWEEP_HH
#define ODRIPS_EXEC_PARALLEL_SWEEP_HH

#include <algorithm>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hh"
#include "sim/random.hh"
#include "stats/sweep_meter.hh"

namespace odrips::exec
{

/** How a sweep should be executed. */
struct ExecPolicy
{
    /**
     * Worker count: 0 = process default (--jobs / ODRIPS_JOBS /
     * hardware, see defaultJobs()); 1 = serial inline (the opt-out).
     */
    unsigned jobs = 0;

    /** Explicit pool to run on (its size wins over @c jobs > 1).
     * Mostly for tests that need an exact worker count. */
    ThreadPool *pool = nullptr;

    /** Resolved worker count this policy will use. */
    unsigned
    resolvedJobs() const
    {
        if (pool)
            return pool->size();
        return jobs > 0 ? jobs : defaultJobs();
    }
};

/** One point of a sweep: its index and its private RNG stream. */
struct SweepPoint
{
    std::size_t index = 0;
    /** Forked from the sweep seed by index; streams are independent
     * across points and identical for any worker count. */
    Rng rng;
};

/**
 * Run @p n independent points through @p fn and collect the results in
 * index order. @p fn is invoked as fn(const SweepPoint &) and its
 * return type must be default-constructible.
 *
 * Records a stats::SweepRecord (wall-clock, points/sec, jobs) under
 * @p name so every bench can report its sweep throughput.
 */
template <typename Fn>
auto
parallelSweep(const std::string &name, std::size_t n, Fn &&fn,
              const ExecPolicy &policy = {},
              std::uint64_t seed = 0x0d219500d219ULL)
    -> std::vector<std::invoke_result_t<Fn &, const SweepPoint &>>
{
    using Result = std::invoke_result_t<Fn &, const SweepPoint &>;
    static_assert(std::is_default_constructible_v<Result>,
                  "sweep point results must be default-constructible");
    static_assert(!std::is_same_v<Result, bool>,
                  "std::vector<bool> slots are not thread-safe; wrap "
                  "the flag in a struct");

    const Rng base(seed);
    std::vector<Result> out(n);

    const auto runPoint = [&](std::size_t i) {
        SweepPoint point;
        point.index = i;
        point.rng = base.fork(static_cast<std::uint64_t>(i));
        out[i] = fn(static_cast<const SweepPoint &>(point));
    };

    // Nested parallel regions run inline on the owning worker.
    ThreadPool *pool = nullptr;
    std::unique_ptr<ThreadPool> transient;
    if (!ThreadPool::current() && n > 1) {
        if (policy.pool) {
            pool = policy.pool;
        } else if (policy.jobs == 0) {
            pool = defaultPool(); // nullptr when the default is serial
        } else if (policy.jobs > 1) {
            transient = std::make_unique<ThreadPool>(policy.jobs);
            pool = transient.get();
        }
    }
    const unsigned jobs = pool ? pool->size() : 1;

    stats::SweepMeter meter(name, n, jobs);

    if (!pool || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            runPoint(i);
        return out;
    }

    // Shard into contiguous ranges, a few per worker so the stealing
    // deques can rebalance non-uniform points.
    const std::size_t chunks =
        std::min<std::size_t>(n, static_cast<std::size_t>(jobs) * 4);
    const std::size_t grain = (n + chunks - 1) / chunks;

    TaskGroup group(*pool);
    for (std::size_t begin = 0; begin < n; begin += grain) {
        const std::size_t end = std::min(n, begin + grain);
        group.run([&runPoint, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                runPoint(i);
        });
    }
    group.wait();
    return out;
}

} // namespace odrips::exec

#endif // ODRIPS_EXEC_PARALLEL_SWEEP_HH
