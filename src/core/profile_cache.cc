#include "core/profile_cache.hh"

#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>
#include <type_traits>

#include "stats/report.hh"
#include "stats/sweep_meter.hh"

namespace odrips
{

namespace
{

/**
 * Two-lane byte hasher: lane `lo` is FNV-1a/64, lane `hi` runs the
 * same bytes through a multiply-xorshift mix with a different seed.
 * 128 bits of key make accidental collisions between distinct configs
 * a non-concern for memoisation.
 */
class KeyHasher
{
  public:
    void
    absorbBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            lo = (lo ^ p[i]) * 0x100000001b3ULL;
            hi ^= p[i];
            hi *= 0xff51afd7ed558ccdULL;
            hi ^= hi >> 33;
        }
    }

    void
    absorb(std::uint64_t v)
    {
        absorbBytes(&v, sizeof(v));
    }

    void
    absorb(double v)
    {
        // Hash the bit representation: distinguishes every distinct
        // value (including ±0.0, which never appear as config knobs).
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        absorb(bits);
    }

    void absorb(bool v) { absorb(std::uint64_t{v ? 1u : 0u}); }
    void absorb(unsigned v) { absorb(std::uint64_t{v}); }
    void absorb(Milliwatts v) { absorb(v.watts()); }
    void absorb(Tick v) { absorb(static_cast<std::uint64_t>(v)); }

    template <typename E>
    std::enable_if_t<std::is_enum_v<E>>
    absorb(E v)
    {
        absorb(static_cast<std::uint64_t>(v));
    }

    void
    absorb(const std::string &s)
    {
        absorb(std::uint64_t{s.size()});
        absorbBytes(s.data(), s.size());
    }

    ProfileKey
    key() const
    {
        return ProfileKey{lo, hi};
    }

  private:
    std::uint64_t lo = 0xcbf29ce484222325ULL;
    std::uint64_t hi = 0x9ae16a3b2f90404fULL;
};

void
absorbConfig(KeyHasher &h, const DramConfig &c)
{
    h.absorb(c.dataRateHz);
    h.absorb(c.channels);
    h.absorb(c.busBytes);
    h.absorb(c.capacityBytes);
    h.absorb(c.accessLatencyNs);
    h.absorb(c.selfRefreshEntryNs);
    h.absorb(c.selfRefreshExitNs);
    h.absorb(c.selfRefreshPower);
    h.absorb(c.idlePower);
    h.absorb(c.activePower);
    h.absorb(c.energyPerByte);
    h.absorb(c.ckeDrivePower);
}

void
absorbConfig(KeyHasher &h, const PcmConfig &c)
{
    h.absorb(c.capacityBytes);
    h.absorb(c.readLatencyNs);
    h.absorb(c.writeLatencyNs);
    h.absorb(c.readBandwidth);
    h.absorb(c.writeBandwidth);
    h.absorb(c.idlePower);
    h.absorb(c.standbyPower);
    h.absorb(c.readEnergyPerByte);
    h.absorb(c.writeEnergyPerByte);
    h.absorb(c.enduranceWrites);
    h.absorb(c.trafficReadFraction);
}

void
absorbConfig(KeyHasher &h, const DripsPowerBudget &c)
{
    h.absorb(c.procWakeTimer);
    h.absorb(c.procAonIo);
    h.absorb(c.srSramSa);
    h.absorb(c.srSramCores);
    h.absorb(c.bootSram);
    h.absorb(c.chipsetAon);
    h.absorb(c.chipsetFastClock);
    h.absorb(c.xtal24);
    h.absorb(c.xtal32);
    h.absorb(c.boardOther);
}

void
absorbConfig(KeyHasher &h, const ActivePowerBudget &c)
{
    h.absorb(c.coresGfxBase);
    h.absorb(c.systemAgent);
    h.absorb(c.llc);
    h.absorb(c.pmu);
    h.absorb(c.chipsetActive);
    h.absorb(c.boardActive);
    h.absorb(c.stallPowerFraction);
    h.absorb(c.transitionNominal);
    h.absorb(c.activeMemoryTraffic);
}

void
absorbConfig(KeyHasher &h, const VfCurve &c)
{
    h.absorb(c.vminVolts);
    h.absorb(c.vminCeilingHz);
    h.absorb(c.slopeVoltsPerGHz);
    h.absorb(c.maxFrequencyHz);
}

void
absorbConfig(KeyHasher &h, const FlowTimings &c)
{
    h.absorb(c.baselineEntry);
    h.absorb(c.baselineExit);
    h.absorb(c.vrRampUp);
    h.absorb(c.vrRampDown);
    h.absorb(c.pmuGate);
    h.absorb(c.wakeDetect);
    h.absorb(c.firmwareDecision);
    h.absorb(c.xtalRestart);
    h.absorb(c.fetSwitch);
    h.absorb(c.wakeupEntryFirmware);
    h.absorb(c.wakeupExitFirmware);
    h.absorb(c.aonGateEntryFirmware);
    h.absorb(c.aonGateExitFirmware);
    h.absorb(c.ctxEntryFirmware);
    h.absorb(c.ctxExitFirmware);
    h.absorb(c.bootFsmRestore);
}

void
absorbConfig(KeyHasher &h, const WorkloadConfig &c)
{
    h.absorb(c.idleDwellSeconds);
    h.absorb(c.activeMinSeconds);
    h.absorb(c.activeMaxSeconds);
    h.absorb(c.scalableFraction);
    h.absorb(c.networkWakeMeanSeconds);
    h.absorb(c.coalescingWindowSeconds);
    h.absorb(c.seed);
}

} // namespace

ProfileKey
profileKey(const PlatformConfig &cfg, const TechniqueSet &techniques)
{
    KeyHasher h;

    h.absorb(cfg.name);
    h.absorb(cfg.processorNode);
    h.absorb(cfg.chipsetNode);
    h.absorb(cfg.coreFrequencyHz);
    absorbConfig(h, cfg.vfCurve);
    h.absorb(cfg.llcBytes);
    h.absorb(cfg.llcDirtyFraction);
    h.absorb(cfg.saContextBytes);
    h.absorb(cfg.coresContextBytes);
    h.absorb(cfg.bootContextBytes);
    h.absorb(cfg.xtal24Ppm);
    h.absorb(cfg.xtal32Ppm);
    h.absorb(cfg.timerPrecisionCycles);
    h.absorb(cfg.memoryKind);
    absorbConfig(h, cfg.dram);
    absorbConfig(h, cfg.pcm);
    h.absorb(cfg.sgxRegionBase);
    h.absorb(cfg.sgxRegionSize);
    h.absorb(std::uint64_t{cfg.meeCacheNodes});
    h.absorb(std::uint64_t{cfg.meeCacheAssociativity});
    h.absorb(cfg.contextStorage);
    h.absorb(cfg.emramPessimism);
    h.absorb(cfg.srSramResidualFraction);
    h.absorb(cfg.emramResidualFraction);
    absorbConfig(h, cfg.dripsPower);
    absorbConfig(h, cfg.activePower);
    absorbConfig(h, cfg.timings);
    absorbConfig(h, cfg.workload);
    h.absorb(cfg.pdLowEfficiency);
    h.absorb(cfg.pdHighEfficiency);
    h.absorb(cfg.pdThreshold);
    h.absorb(cfg.gpioPins);
    h.absorb(cfg.pmlCyclesPerWord);
    h.absorb(cfg.pmlProtocolCycles);

    h.absorb(techniques.wakeupOff);
    h.absorb(techniques.aonIoGate);
    h.absorb(techniques.contextOffload);
    h.absorb(techniques.contextStorage);

    return h.key();
}

CyclePowerProfile
CycleProfileCache::getOrMeasure(const PlatformConfig &cfg,
                                const TechniqueSet &techniques)
{
    const ProfileKey key = profileKey(cfg, techniques);
    ProfileStoreBackend *persistent = nullptr;
    {
        std::lock_guard<std::mutex> guard(mtx);
        const auto it = entries.find(key);
        if (it != entries.end()) {
            ++stats.hits;
            return it->second;
        }
        persistent = store;
    }

    // Memory miss: try the persistent backend before paying for a
    // simulation. Both the fetch and the measurement run outside the
    // lock so parallel sweep workers don't serialise on each other.
    if (persistent != nullptr) {
        CyclePowerProfile fetched;
        if (persistent->fetch(key, fetched)) {
            std::lock_guard<std::mutex> guard(mtx);
            ++stats.storeHits;
            insertLocked(key, fetched);
            return fetched;
        }
    }

    const CyclePowerProfile profile =
        measureCycleProfileUncached(cfg, techniques);

    {
        std::lock_guard<std::mutex> guard(mtx);
        ++stats.misses;
        insertLocked(key, profile);
    }
    if (persistent != nullptr)
        persistent->persist(key, cfg, techniques, profile);
    return profile;
}

void
CycleProfileCache::insertLocked(const ProfileKey &key,
                                const CyclePowerProfile &profile)
{
    const auto [it, fresh] = entries.insert_or_assign(key, profile);
    (void)it;
    if (!fresh)
        return;
    ++stats.inserts;
    insertionOrder.push_back(key);
    while (capacity != 0 && entries.size() > capacity) {
        entries.erase(insertionOrder.front());
        insertionOrder.pop_front();
        ++stats.evictions;
    }
}

CycleProfileCacheStats
CycleProfileCache::statistics() const
{
    std::lock_guard<std::mutex> guard(mtx);
    return stats;
}

std::size_t
CycleProfileCache::entryCount() const
{
    std::lock_guard<std::mutex> guard(mtx);
    return entries.size();
}

void
CycleProfileCache::clear()
{
    std::lock_guard<std::mutex> guard(mtx);
    entries.clear();
    insertionOrder.clear();
    stats = CycleProfileCacheStats{};
}

void
CycleProfileCache::setCapacity(std::size_t cap)
{
    std::lock_guard<std::mutex> guard(mtx);
    capacity = cap;
    while (capacity != 0 && entries.size() > capacity) {
        entries.erase(insertionOrder.front());
        insertionOrder.pop_front();
        ++stats.evictions;
    }
}

void
CycleProfileCache::setBackend(ProfileStoreBackend *backend)
{
    std::lock_guard<std::mutex> guard(mtx);
    store = backend;
}

ProfileStoreBackend *
CycleProfileCache::backend() const
{
    std::lock_guard<std::mutex> guard(mtx);
    return store;
}

CycleProfileCache &
CycleProfileCache::global()
{
    static CycleProfileCache cache;
    static const bool configured = [] {
        // ODRIPS_PROFILE_CACHE_CAP bounds the global memo (entries);
        // unset or unparsable means unlimited, matching history.
        if (const char *env = std::getenv("ODRIPS_PROFILE_CACHE_CAP")) {
            char *end = nullptr;
            const unsigned long long cap = std::strtoull(env, &end, 10);
            if (end != nullptr && *end == '\0' && end != env)
                cache.setCapacity(static_cast<std::size_t>(cap));
        }
        // Cache counters appear in every bench's stderr telemetry
        // epilogue (stats::printRunTelemetry).
        stats::addReportSection([](std::ostream &os) {
            const CycleProfileCacheStats s = cache.statistics();
            if (s.calls() == 0)
                return;
            const double rate =
                static_cast<double>(s.hits + s.storeHits) /
                static_cast<double>(s.calls());
            os << "profile cache: " << s.hits << " hits, " << s.misses
               << " misses, " << s.storeHits << " store hits, "
               << s.inserts << " inserts, " << s.evictions
               << " evictions (" << cache.entryCount() << " entries, "
               << stats::fmtPercent(rate) << " served from cache)\n";
            if (ProfileStoreBackend *backend = cache.backend())
                backend->reportTo(os);
        });
        return true;
    }();
    (void)configured;
    return cache;
}

bool
CycleProfileCache::enabled()
{
    static const bool on = [] {
        const char *env = std::getenv("ODRIPS_PROFILE_CACHE");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return on;
}

ProfileCacheStatGroup::ProfileCacheStatGroup(
        const CycleProfileCache &observed, stats::StatGroup *owner)
    : stats::StatGroup("profileCache", owner),
      cache(observed),
      hits(*this, "hits", "calls served from the in-memory memo"),
      misses(*this, "misses", "calls that re-measured the profile"),
      storeHits(*this, "storeHits",
                "calls served from the persistent result store"),
      inserts(*this, "inserts", "entries added to the memo"),
      evictions(*this, "evictions",
                "entries dropped by the capacity cap"),
      entries(*this, "entries", "distinct profiles currently cached")
{
    update();
}

void
ProfileCacheStatGroup::update()
{
    const CycleProfileCacheStats s = cache.statistics();
    hits.set(static_cast<double>(s.hits));
    misses.set(static_cast<double>(s.misses));
    storeHits.set(static_cast<double>(s.storeHits));
    inserts.set(static_cast<double>(s.inserts));
    evictions.set(static_cast<double>(s.evictions));
    entries.set(static_cast<double>(cache.entryCount()));
}

} // namespace odrips
