#include "core/profile_cache.hh"

#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>

namespace odrips
{

namespace
{

/**
 * Two-lane byte hasher: lane `lo` is FNV-1a/64, lane `hi` runs the
 * same bytes through a multiply-xorshift mix with a different seed.
 * 128 bits of key make accidental collisions between distinct configs
 * a non-concern for memoisation.
 */
class KeyHasher
{
  public:
    void
    absorbBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            lo = (lo ^ p[i]) * 0x100000001b3ULL;
            hi ^= p[i];
            hi *= 0xff51afd7ed558ccdULL;
            hi ^= hi >> 33;
        }
    }

    void
    absorb(std::uint64_t v)
    {
        absorbBytes(&v, sizeof(v));
    }

    void
    absorb(double v)
    {
        // Hash the bit representation: distinguishes every distinct
        // value (including ±0.0, which never appear as config knobs).
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        absorb(bits);
    }

    void absorb(bool v) { absorb(std::uint64_t{v ? 1u : 0u}); }
    void absorb(unsigned v) { absorb(std::uint64_t{v}); }
    void absorb(Milliwatts v) { absorb(v.watts()); }
    void absorb(Tick v) { absorb(static_cast<std::uint64_t>(v)); }

    template <typename E>
    std::enable_if_t<std::is_enum_v<E>>
    absorb(E v)
    {
        absorb(static_cast<std::uint64_t>(v));
    }

    void
    absorb(const std::string &s)
    {
        absorb(std::uint64_t{s.size()});
        absorbBytes(s.data(), s.size());
    }

    ProfileKey
    key() const
    {
        return ProfileKey{lo, hi};
    }

  private:
    std::uint64_t lo = 0xcbf29ce484222325ULL;
    std::uint64_t hi = 0x9ae16a3b2f90404fULL;
};

void
absorbConfig(KeyHasher &h, const DramConfig &c)
{
    h.absorb(c.dataRateHz);
    h.absorb(c.channels);
    h.absorb(c.busBytes);
    h.absorb(c.capacityBytes);
    h.absorb(c.accessLatencyNs);
    h.absorb(c.selfRefreshEntryNs);
    h.absorb(c.selfRefreshExitNs);
    h.absorb(c.selfRefreshPower);
    h.absorb(c.idlePower);
    h.absorb(c.activePower);
    h.absorb(c.energyPerByte);
    h.absorb(c.ckeDrivePower);
}

void
absorbConfig(KeyHasher &h, const PcmConfig &c)
{
    h.absorb(c.capacityBytes);
    h.absorb(c.readLatencyNs);
    h.absorb(c.writeLatencyNs);
    h.absorb(c.readBandwidth);
    h.absorb(c.writeBandwidth);
    h.absorb(c.idlePower);
    h.absorb(c.standbyPower);
    h.absorb(c.readEnergyPerByte);
    h.absorb(c.writeEnergyPerByte);
    h.absorb(c.enduranceWrites);
    h.absorb(c.trafficReadFraction);
}

void
absorbConfig(KeyHasher &h, const DripsPowerBudget &c)
{
    h.absorb(c.procWakeTimer);
    h.absorb(c.procAonIo);
    h.absorb(c.srSramSa);
    h.absorb(c.srSramCores);
    h.absorb(c.bootSram);
    h.absorb(c.chipsetAon);
    h.absorb(c.chipsetFastClock);
    h.absorb(c.xtal24);
    h.absorb(c.xtal32);
    h.absorb(c.boardOther);
}

void
absorbConfig(KeyHasher &h, const ActivePowerBudget &c)
{
    h.absorb(c.coresGfxBase);
    h.absorb(c.systemAgent);
    h.absorb(c.llc);
    h.absorb(c.pmu);
    h.absorb(c.chipsetActive);
    h.absorb(c.boardActive);
    h.absorb(c.stallPowerFraction);
    h.absorb(c.transitionNominal);
    h.absorb(c.activeMemoryTraffic);
}

void
absorbConfig(KeyHasher &h, const VfCurve &c)
{
    h.absorb(c.vminVolts);
    h.absorb(c.vminCeilingHz);
    h.absorb(c.slopeVoltsPerGHz);
    h.absorb(c.maxFrequencyHz);
}

void
absorbConfig(KeyHasher &h, const FlowTimings &c)
{
    h.absorb(c.baselineEntry);
    h.absorb(c.baselineExit);
    h.absorb(c.vrRampUp);
    h.absorb(c.vrRampDown);
    h.absorb(c.pmuGate);
    h.absorb(c.wakeDetect);
    h.absorb(c.firmwareDecision);
    h.absorb(c.xtalRestart);
    h.absorb(c.fetSwitch);
    h.absorb(c.wakeupEntryFirmware);
    h.absorb(c.wakeupExitFirmware);
    h.absorb(c.aonGateEntryFirmware);
    h.absorb(c.aonGateExitFirmware);
    h.absorb(c.ctxEntryFirmware);
    h.absorb(c.ctxExitFirmware);
    h.absorb(c.bootFsmRestore);
}

void
absorbConfig(KeyHasher &h, const WorkloadConfig &c)
{
    h.absorb(c.idleDwellSeconds);
    h.absorb(c.activeMinSeconds);
    h.absorb(c.activeMaxSeconds);
    h.absorb(c.scalableFraction);
    h.absorb(c.networkWakeMeanSeconds);
    h.absorb(c.coalescingWindowSeconds);
    h.absorb(c.seed);
}

} // namespace

ProfileKey
profileKey(const PlatformConfig &cfg, const TechniqueSet &techniques)
{
    KeyHasher h;

    h.absorb(cfg.name);
    h.absorb(cfg.processorNode);
    h.absorb(cfg.chipsetNode);
    h.absorb(cfg.coreFrequencyHz);
    absorbConfig(h, cfg.vfCurve);
    h.absorb(cfg.llcBytes);
    h.absorb(cfg.llcDirtyFraction);
    h.absorb(cfg.saContextBytes);
    h.absorb(cfg.coresContextBytes);
    h.absorb(cfg.bootContextBytes);
    h.absorb(cfg.xtal24Ppm);
    h.absorb(cfg.xtal32Ppm);
    h.absorb(cfg.timerPrecisionCycles);
    h.absorb(cfg.memoryKind);
    absorbConfig(h, cfg.dram);
    absorbConfig(h, cfg.pcm);
    h.absorb(cfg.sgxRegionBase);
    h.absorb(cfg.sgxRegionSize);
    h.absorb(std::uint64_t{cfg.meeCacheNodes});
    h.absorb(std::uint64_t{cfg.meeCacheAssociativity});
    h.absorb(cfg.contextStorage);
    h.absorb(cfg.emramPessimism);
    h.absorb(cfg.srSramResidualFraction);
    h.absorb(cfg.emramResidualFraction);
    absorbConfig(h, cfg.dripsPower);
    absorbConfig(h, cfg.activePower);
    absorbConfig(h, cfg.timings);
    absorbConfig(h, cfg.workload);
    h.absorb(cfg.pdLowEfficiency);
    h.absorb(cfg.pdHighEfficiency);
    h.absorb(cfg.pdThreshold);
    h.absorb(cfg.gpioPins);
    h.absorb(cfg.pmlCyclesPerWord);
    h.absorb(cfg.pmlProtocolCycles);

    h.absorb(techniques.wakeupOff);
    h.absorb(techniques.aonIoGate);
    h.absorb(techniques.contextOffload);
    h.absorb(techniques.contextStorage);

    return h.key();
}

CyclePowerProfile
CycleProfileCache::getOrMeasure(const PlatformConfig &cfg,
                                const TechniqueSet &techniques)
{
    const ProfileKey key = profileKey(cfg, techniques);
    {
        std::lock_guard<std::mutex> guard(mtx);
        const auto it = entries.find(key);
        if (it != entries.end()) {
            ++stats.hits;
            return it->second;
        }
    }

    const CyclePowerProfile profile =
        measureCycleProfileUncached(cfg, techniques);

    std::lock_guard<std::mutex> guard(mtx);
    ++stats.misses;
    entries.insert_or_assign(key, profile);
    return profile;
}

CycleProfileCacheStats
CycleProfileCache::statistics() const
{
    std::lock_guard<std::mutex> guard(mtx);
    return stats;
}

std::size_t
CycleProfileCache::entryCount() const
{
    std::lock_guard<std::mutex> guard(mtx);
    return entries.size();
}

void
CycleProfileCache::clear()
{
    std::lock_guard<std::mutex> guard(mtx);
    entries.clear();
    stats = CycleProfileCacheStats{};
}

CycleProfileCache &
CycleProfileCache::global()
{
    static CycleProfileCache cache;
    return cache;
}

bool
CycleProfileCache::enabled()
{
    static const bool on = [] {
        const char *env = std::getenv("ODRIPS_PROFILE_CACHE");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return on;
}

} // namespace odrips
