/**
 * @file
 * Connected-standby simulation: runs a StandbyTrace against a Platform
 * with a given TechniqueSet and reports the average power breakdown of
 * Eq. 1 (Sec. 2.3), measured both analytically (exact integration) and
 * optionally with the sampling power analyzer.
 */

#ifndef ODRIPS_CORE_STANDBY_SIMULATOR_HH
#define ODRIPS_CORE_STANDBY_SIMULATOR_HH

#include "flows/standby_flows.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"
#include "platform/platform.hh"
#include "platform/techniques.hh"
#include "workload/standby_workload.hh"

namespace odrips
{

/** Result of a connected-standby simulation. */
struct StandbyResult
{
    /** Eq. 1 average power at the battery, exact integration. */
    double averageBatteryPower = 0.0;
    /** Sampled average (when the analyzer was armed); 0 otherwise. */
    double analyzerAverage = 0.0;

    /** Battery power while resident in the deep idle state. */
    double idleBatteryPower = 0.0;
    /** Battery power during the CPU-bound part of the active window. */
    double activeBatteryPower = 0.0;

    /** Residency fractions (sum to 1). */
    double idleResidency = 0.0;
    double activeResidency = 0.0;
    double transitionResidency = 0.0;

    Tick meanEntryLatency = 0;
    Tick meanExitLatency = 0;

    std::uint64_t cycles = 0;
    Tick simulatedTime = 0;

    /** Every cycle's context survived save/restore bit-exactly. */
    bool contextIntact = true;

    /** Records of the final cycle (context latencies, handovers). */
    CycleRecord lastCycle; // ckpt: skip(per-run result, rebuilt by finishRun)
};

/**
 * Accumulated progress of an in-flight run. run() is beginRun(), one
 * stepCycle() per trace cycle, then finishRun(); keeping the
 * accumulators in this struct (instead of locals of run()) lets a
 * checkpoint capture and resume a run between cycles (longtrace
 * periodic checkpointing, see core/checkpoint.hh).
 */
struct RunProgress
{
    StandbyResult result;
    Tick start = 0;
    Tick idleTime = 0;
    Tick activeTime = 0;
    Tick transitionTime = 0;
    Tick entryTotal = 0;
    Tick exitTotal = 0;
    std::uint64_t cyclesDone = 0;
    bool armAnalyzer = false;
    /** First-cycle power snapshots taken (explicit flags, not a 0.0
     * sentinel: a genuine zero first-cycle power must not be resampled
     * on a later, warmer cycle). */
    bool idlePowerCaptured = false;
    bool activePowerCaptured = false;
};

/** Drives a platform through standby cycles. */
class StandbySimulator
{
  public:
    StandbySimulator(Platform &platform, const TechniqueSet &techniques);

    /**
     * Run the trace. @p arm_analyzer additionally samples the platform
     * channel at the analyzer's 50 us interval (slower; used to
     * validate the exact integration).
     */
    StandbyResult run(const StandbyTrace &trace,
                      bool arm_analyzer = false);

    /**
     * @name Stepwise running
     * run() decomposed so a driver can checkpoint between cycles:
     * beginRun() resets the accounting, each stepCycle() simulates one
     * standby cycle, finishRun() integrates and summarizes. The
     * sequence is bit-identical to run().
     * @{
     */
    RunProgress beginRun(bool arm_analyzer = false);
    void stepCycle(RunProgress &progress, const StandbyCycle &cycle);
    StandbyResult finishRun(RunProgress &progress);
    /** @} */

    StandbyFlows &flows() { return flows_; }
    Platform &platform() { return p; }

    /** Simulation statistics (cycle counts, latency distributions,
     * wake-detect histogram, energy). */
    const stats::StatGroup &statistics() const { return statGroup; }

    /** Mutable statistics access (checkpoint restore). */
    stats::StatGroup &statistics() { return statGroup; }

    /** Reset all statistics. */
    void resetStatistics() { statGroup.resetAll(); }

  private:
    /** Simulate the active window of one cycle (CPU then stall). */
    void runActiveWindow(const StandbyCycle &cycle);

    Platform &p;
    StandbyFlows flows_;

    stats::StatGroup statGroup;
    stats::Scalar cycleCount; // ckpt: via(StatGroup)
    stats::Scalar batteryEnergy; // ckpt: via(StatGroup)
    stats::Distribution entryLatency; // ckpt: via(StatGroup)
    stats::Distribution exitLatency; // ckpt: via(StatGroup)
    stats::Histogram wakeDetect;
    stats::Distribution idleDwell; // ckpt: via(StatGroup)
};

} // namespace odrips

#endif // ODRIPS_CORE_STANDBY_SIMULATOR_HH
