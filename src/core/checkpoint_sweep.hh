/**
 * @file
 * Warm-forked parallel sweeps.
 *
 * Sweep points that share a (PlatformConfig, TechniqueSet) pair used to
 * pay full platform construction plus warm-up per point. With the
 * checkpoint subsystem the warm-up runs ONCE: a single simulator is
 * built and warmed, captured into a Snapshot, and every sweep point
 * evaluates on an independent fork of that snapshot — O(state copy)
 * instead of O(warm-up) per point.
 *
 * Determinism contract: fork equivalence (the checkpoint differential
 * suite) guarantees each fork behaves bit-identically to the warmed
 * original, so the result vector is bit-identical to the unforked path
 * for any worker count. `ODRIPS_CHECKPOINT=0` opts out: every point
 * then builds and warms privately (the historical path).
 */

#ifndef ODRIPS_CORE_CHECKPOINT_SWEEP_HH
#define ODRIPS_CORE_CHECKPOINT_SWEEP_HH

#include <string>

#include "core/checkpoint.hh"
#include "exec/parallel_sweep.hh"

namespace odrips
{

/**
 * Run @p n sweep points, each on a simulator warmed by @p warm —
 * warmed once and forked per point when checkpointing is enabled,
 * warmed per point otherwise.
 *
 * @p warm is invoked as warm(StandbySimulator &) and must leave the
 * simulator quiescent (see Snapshot::capture). @p eval is invoked as
 * eval(StandbySimulator &, const exec::SweepPoint &) and its return
 * type must satisfy the exec::parallelSweep requirements.
 */
template <typename Warm, typename Eval>
auto
warmForkSweep(const std::string &name, const PlatformConfig &cfg,
              const TechniqueSet &techniques, std::size_t n, Warm &&warm,
              Eval &&eval, const exec::ExecPolicy &policy = {})
    -> std::vector<std::invoke_result_t<Eval &, StandbySimulator &,
                                        const exec::SweepPoint &>>
{
    if (!checkpointSweepsEnabled()) {
        return exec::parallelSweep(
            name, n,
            [&](const exec::SweepPoint &point) {
                Platform platform(cfg);
                StandbySimulator sim(platform, techniques);
                warm(sim);
                return eval(sim, point);
            },
            policy);
    }

    Platform platform(cfg);
    StandbySimulator sim(platform, techniques);
    warm(sim);
    const Snapshot snapshot = Snapshot::capture(sim);

    return exec::parallelSweep(
        name, n,
        [&](const exec::SweepPoint &point) {
            ForkedSimulator child = snapshot.fork();
            return eval(*child.simulator, point);
        },
        policy);
}

} // namespace odrips

#endif // ODRIPS_CORE_CHECKPOINT_SWEEP_HH
