/**
 * @file
 * Memory DVFS exploration (the paper's stated future direction).
 *
 * Sec. 8.2 concludes that statically under-clocking DRAM is a bad
 * global strategy and suggests applying dynamic voltage and frequency
 * scaling to main memory instead (citing MemScale-style work). This
 * module evaluates that idea on the connected-standby workload:
 *
 *  - static points: the platform runs the DRAM at one rate always
 *    (Fig. 6(c)'s sweep);
 *  - per-phase oracle: each phase picks its best rate — the idle state
 *    does not care (self-refresh is rate-independent), context
 *    transfers prefer the highest rate (shorter), and the active
 *    window trades interface power against stall-time dilation.
 *
 * Stall dilation model: the memory-bound share of the active window
 * stretches with the bandwidth ratio, CPU-bound work does not:
 *   stall'(r) = stall * (1 + memBoundFraction * (bw_ref / bw(r) - 1)).
 * Frequency switches cost a re-lock pause at SA-rail power.
 */

#ifndef ODRIPS_CORE_MEMORY_DVFS_HH
#define ODRIPS_CORE_MEMORY_DVFS_HH

#include <string>
#include <vector>

#include "core/profile.hh"

namespace odrips
{

/** One evaluated DVFS operating mode. */
struct MemoryDvfsPoint
{
    std::string label;
    /** DRAM data rate during the active window (Hz). */
    double activeRate = 0.0;
    /** DRAM data rate during context transfers (Hz). */
    double transferRate = 0.0;
    /** Eq. 1 average power at the standard workload. */
    double averagePower = 0.0;
    /** Entry + exit latency (includes transfer + switch time). */
    Tick transitionLatency = 0;
    bool dynamic = false;
};

/** Parameters of the exploration. */
struct MemoryDvfsConfig
{
    /** Candidate data rates (defaults: the paper's three points). */
    std::vector<double> rates{1.6e9, 1.067e9, 0.8e9};
    /** Share of the active window's stall time that is memory-
     * bandwidth-bound (the rest is latency/IO-bound and does not
     * dilate). */
    double memBoundFraction = 0.5;
    /** DRAM frequency-switch pause (self-refresh + DLL re-lock). */
    Tick switchLatency = 28 * oneUs;
    /** Rail power burned during a switch pause (nominal watts). */
    double switchPower = 0.35;
    /** Frequency switches per cycle for the dynamic policy (down to
     * the active rate after exit, back up before the transfer). */
    unsigned switchesPerCycle = 2;
};

/**
 * Evaluate static operating points and the per-phase dynamic policy
 * for @p technique on the platform config @p cfg.
 *
 * @return one point per static rate, then the dynamic policy.
 */
std::vector<MemoryDvfsPoint> exploreMemoryDvfs(
    const PlatformConfig &cfg, const TechniqueSet &technique,
    const MemoryDvfsConfig &dvfs = {});

} // namespace odrips

#endif // ODRIPS_CORE_MEMORY_DVFS_HH
