/**
 * @file
 * Energy break-even analysis (paper Sec. 7 / Fig. 6(a) right axis).
 *
 * For each technique the paper sweeps the DRIPS residency from 0.6 ms
 * to 1 s at 0.1 ms granularity and reports the smallest residency at
 * which the technique's connected-standby average power drops below
 * the baseline's. Below the break-even point the technique's extra
 * entry/exit energy outweighs its idle-power savings.
 */

#ifndef ODRIPS_CORE_BREAKEVEN_HH
#define ODRIPS_CORE_BREAKEVEN_HH

#include <vector>

#include "core/profile.hh"
#include "exec/parallel_sweep.hh"

namespace odrips
{

/** Parameters of the residency sweep (defaults = the paper's). */
struct BreakevenSweep
{
    Tick start = secondsToTicks(0.6e-3);
    Tick end = secondsToTicks(1.0);
    Tick step = secondsToTicks(0.1e-3);
    /** Active window held constant across the sweep. */
    Tick activeWindow = 150 * oneMs;
    double scalableFraction = 0.70;
};

/** Result of a break-even analysis. */
struct BreakevenResult
{
    /** Smallest swept dwell where the technique wins; maxTick if it
     * never does within the sweep. */
    Tick breakEvenDwell = maxTick;

    /** Closed-form check: transition-overhead difference divided by
     * idle-power savings. */
    Tick analyticBreakEven = maxTick;

    /** Sampled (dwell, technique avg W, baseline avg W) triples —
     * decimated for reporting. */
    std::vector<std::tuple<Tick, double, double>> curve;

    bool found() const { return breakEvenDwell != maxTick; }
};

/**
 * Sweep the idle dwell and find the break-even point of @p technique
 * against @p baseline.
 *
 * The ~10k sweep points are independent and are sharded across the
 * worker pool per @p policy (default: --jobs / ODRIPS_JOBS /
 * hardware); results are collected in index order, so the outcome is
 * bit-identical to a serial run for any worker count.
 *
 * @param curve_points number of (decimated) sweep samples to retain
 */
BreakevenResult findBreakeven(const CyclePowerProfile &technique,
                              const CyclePowerProfile &baseline,
                              const BreakevenSweep &sweep = {},
                              std::size_t curve_points = 24,
                              const exec::ExecPolicy &policy = {});

} // namespace odrips

#endif // ODRIPS_CORE_BREAKEVEN_HH
