#include "core/memory_dvfs.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/report.hh"

using odrips::stats::fmt;

namespace odrips
{

namespace
{

/** Stall time after bandwidth dilation at rate index vs the reference. */
Tick
dilatedStall(Tick stall, double rate, double ref_rate, double mem_bound)
{
    const double dilation = 1.0 + mem_bound * (ref_rate / rate - 1.0);
    return static_cast<Tick>(static_cast<double>(stall) * dilation);
}

} // namespace

std::vector<MemoryDvfsPoint>
exploreMemoryDvfs(const PlatformConfig &cfg, const TechniqueSet &technique,
                  const MemoryDvfsConfig &dvfs)
{
    ODRIPS_ASSERT(!dvfs.rates.empty(), "no DVFS rates to explore");
    const double ref_rate =
        *std::max_element(dvfs.rates.begin(), dvfs.rates.end());

    // Workload shape (the standard connected-standby point).
    const Tick dwell = secondsToTicks(cfg.workload.idleDwellSeconds);
    const double active_s = 0.5 * (cfg.workload.activeMinSeconds +
                                   cfg.workload.activeMaxSeconds);
    const Tick cpu = secondsToTicks(active_s *
                                    cfg.workload.scalableFraction);
    const Tick stall = secondsToTicks(
        active_s * (1.0 - cfg.workload.scalableFraction));

    // Measure a cycle profile per rate.
    std::vector<CyclePowerProfile> profiles;
    for (double rate : dvfs.rates) {
        PlatformConfig rate_cfg = cfg;
        rate_cfg.dram = rate_cfg.dram.withDataRate(rate);
        profiles.push_back(measureCycleProfile(rate_cfg, technique));
    }

    std::vector<MemoryDvfsPoint> points;

    // Static points.
    for (std::size_t i = 0; i < dvfs.rates.size(); ++i) {
        const double rate = dvfs.rates[i];
        const Tick stall_r =
            dilatedStall(stall, rate, ref_rate, dvfs.memBoundFraction);
        MemoryDvfsPoint p;
        p.label = "static " + fmt(rate / 1e9, 3) + " GT/s";
        p.activeRate = rate;
        p.transferRate = rate;
        p.averagePower =
            averagePowerEq1(profiles[i], dwell, cpu, stall_r);
        p.transitionLatency =
            profiles[i].entryLatency + profiles[i].exitLatency;
        points.push_back(p);
    }

    // Per-phase oracle: transfers at the reference (fastest) rate; the
    // active window at whichever rate minimizes its energy including
    // the stall dilation; switch pauses added per cycle.
    std::size_t ref_index = 0;
    for (std::size_t i = 0; i < dvfs.rates.size(); ++i) {
        if (dvfs.rates[i] == ref_rate)
            ref_index = i;
    }
    const CyclePowerProfile &ref_profile = profiles[ref_index];

    std::size_t best_index = ref_index;
    double best_active_energy = -1.0;
    for (std::size_t i = 0; i < dvfs.rates.size(); ++i) {
        const Tick stall_r = dilatedStall(stall, dvfs.rates[i], ref_rate,
                                          dvfs.memBoundFraction);
        const double energy =
            profiles[i].activePower * ticksToSeconds(cpu) +
            profiles[i].stallPower * ticksToSeconds(stall_r);
        if (best_active_energy < 0 || energy < best_active_energy) {
            best_active_energy = energy;
            best_index = i;
        }
    }

    const bool switches_needed = best_index != ref_index;
    const unsigned switches =
        switches_needed ? dvfs.switchesPerCycle : 0;
    const Tick switch_time =
        static_cast<Tick>(switches) * dvfs.switchLatency;
    const double switch_energy =
        ticksToSeconds(switch_time) *
        (dvfs.switchPower / cfg.pdHighEfficiency);

    const Tick best_stall =
        dilatedStall(stall, dvfs.rates[best_index], ref_rate,
                     dvfs.memBoundFraction);
    const double cycle_energy =
        ref_profile.entryEnergy + ref_profile.exitEnergy +
        ref_profile.idlePower * ticksToSeconds(dwell) +
        best_active_energy + switch_energy;
    const double cycle_seconds = ticksToSeconds(
        dwell + ref_profile.entryLatency + ref_profile.exitLatency +
        cpu + best_stall + switch_time);

    MemoryDvfsPoint dynamic;
    dynamic.label = "dynamic (per-phase oracle)";
    dynamic.activeRate = dvfs.rates[best_index];
    dynamic.transferRate = ref_rate;
    dynamic.averagePower = cycle_energy / cycle_seconds;
    dynamic.transitionLatency = ref_profile.entryLatency +
                                ref_profile.exitLatency + switch_time;
    dynamic.dynamic = true;
    points.push_back(dynamic);

    return points;
}

} // namespace odrips
