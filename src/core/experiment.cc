#include "core/experiment.hh"

namespace odrips
{

double
standardWorkloadAverage(const CyclePowerProfile &profile,
                        const PlatformConfig &cfg)
{
    const Tick dwell = secondsToTicks(cfg.workload.idleDwellSeconds);
    const Tick active = secondsToTicks(
        0.5 * (cfg.workload.activeMinSeconds +
               cfg.workload.activeMaxSeconds));
    return averagePowerEq1(profile, dwell, active,
                           cfg.workload.scalableFraction);
}

TechniqueEvaluation
evaluate(const PlatformConfig &cfg, const TechniqueSet &techniques,
         const CyclePowerProfile &baseline_profile,
         double baseline_average, const exec::ExecPolicy &policy)
{
    TechniqueEvaluation eval;
    eval.label = techniques.label();
    if (cfg.memoryKind == MainMemoryKind::Pcm && techniques.any())
        eval.label += "-PCM";
    eval.profile = measureCycleProfile(cfg, techniques);
    eval.averagePower = standardWorkloadAverage(eval.profile, cfg);
    eval.savingsVsBaseline =
        baseline_average > 0
            ? 1.0 - eval.averagePower / baseline_average
            : 0.0;

    BreakevenSweep sweep;
    sweep.scalableFraction = cfg.workload.scalableFraction;
    eval.breakEven = findBreakeven(eval.profile, baseline_profile, sweep,
                                   24, policy)
                         .breakEvenDwell;
    return eval;
}

std::vector<TechniqueEvaluation>
evaluateFig6aSet(const PlatformConfig &cfg,
                 const exec::ExecPolicy &policy)
{
    const CyclePowerProfile baseline_profile =
        measureCycleProfile(cfg, TechniqueSet::baseline());
    const double baseline_average =
        standardWorkloadAverage(baseline_profile, cfg);

    std::vector<TechniqueEvaluation> out;

    TechniqueEvaluation base;
    base.label = TechniqueSet::baseline().label();
    base.profile = baseline_profile;
    base.averagePower = baseline_average;
    base.savingsVsBaseline = 0.0;
    base.breakEven = 0;
    out.push_back(std::move(base));

    // Each evaluation measures on its own Platform/EventQueue, so the
    // four techniques shard across the pool; the nested break-even
    // sweep inside evaluate() runs inline on its worker.
    const TechniqueSet sets[] = {
        TechniqueSet::wakeupOffOnly(), TechniqueSet::aonIoGated(),
        TechniqueSet::ctxSgxDram(), TechniqueSet::odrips()};
    std::vector<TechniqueEvaluation> evals = exec::parallelSweep(
        "fig6a-techniques", std::size(sets),
        [&](const exec::SweepPoint &point) {
            return evaluate(cfg, sets[point.index], baseline_profile,
                            baseline_average, policy);
        },
        policy);
    for (TechniqueEvaluation &eval : evals)
        out.push_back(std::move(eval));
    return out;
}

} // namespace odrips
