#include "core/breakeven.hh"

#include "sim/logging.hh"

namespace odrips
{

namespace
{

/**
 * Average power over one period-pinned cycle. Wake events (kernel
 * timers) arrive at fixed wall-clock times, so a technique with longer
 * transitions gets correspondingly *less* idle dwell within the same
 * period — it cannot win by stretching the cycle.
 */
double
pinnedAverage(const CyclePowerProfile &p, Tick period, Tick active_cpu,
              Tick active_stall, bool &feasible)
{
    const Tick trans = p.entryLatency + p.exitLatency;
    const Tick dwell = period - trans - active_cpu - active_stall;
    if (dwell < 0) {
        feasible = false;
        return 0.0;
    }
    feasible = true;
    const double energy = p.entryEnergy + p.exitEnergy +
                          p.idlePower * ticksToSeconds(dwell) +
                          p.activePower * ticksToSeconds(active_cpu) +
                          p.stallPower * ticksToSeconds(active_stall);
    return energy / ticksToSeconds(period);
}

} // namespace

BreakevenResult
findBreakeven(const CyclePowerProfile &technique,
              const CyclePowerProfile &baseline,
              const BreakevenSweep &sweep, std::size_t curve_points)
{
    ODRIPS_ASSERT(sweep.step > 0 && sweep.end > sweep.start,
                  "bad break-even sweep");

    BreakevenResult result;

    const Tick active_cpu = static_cast<Tick>(
        static_cast<double>(sweep.activeWindow) * sweep.scalableFraction);
    const Tick active_stall = sweep.activeWindow - active_cpu;
    const Tick base_trans =
        baseline.entryLatency + baseline.exitLatency;

    const std::size_t total_points = static_cast<std::size_t>(
        (sweep.end - sweep.start) / sweep.step + 1);
    const std::size_t stride =
        std::max<std::size_t>(1, total_points / curve_points);

    std::size_t index = 0;
    for (Tick dwell = sweep.start; dwell <= sweep.end;
         dwell += sweep.step, ++index) {
        // The swept quantity is the *baseline's* DRIPS residency; both
        // designs share the wall-clock period it implies.
        const Tick period = dwell + base_trans + sweep.activeWindow;

        bool base_ok = true;
        bool tech_ok = true;
        const double p_base = pinnedAverage(baseline, period, active_cpu,
                                            active_stall, base_ok);
        const double p_tech = pinnedAverage(technique, period, active_cpu,
                                            active_stall, tech_ok);

        if (base_ok && tech_ok && p_tech < p_base &&
            result.breakEvenDwell == maxTick) {
            result.breakEvenDwell = dwell;
        }

        if (index % stride == 0 && base_ok && tech_ok)
            result.curve.emplace_back(dwell, p_tech, p_base);
    }

    // Closed form of the period-pinned equality: with overhead(x) =
    // transition energy above what idling at the technique's idle power
    // for the same time would cost,
    //   dwell* = (overhead_tech - overhead_base) / (P_idle_base -
    //            P_idle_tech)
    const double ref_idle = technique.idlePower;
    const double overhead_tech =
        technique.entryEnergy + technique.exitEnergy -
        ref_idle * ticksToSeconds(technique.entryLatency +
                                  technique.exitLatency);
    const double overhead_base =
        baseline.entryEnergy + baseline.exitEnergy -
        ref_idle * ticksToSeconds(base_trans);
    const double d_power = baseline.idlePower - technique.idlePower;
    const double d_overhead = overhead_tech - overhead_base;
    if (d_power > 0) {
        result.analyticBreakEven =
            d_overhead > 0 ? secondsToTicks(d_overhead / d_power)
                           : Tick{0};
    }

    return result;
}

} // namespace odrips
