#include "core/breakeven.hh"

#include "sim/logging.hh"

namespace odrips
{

namespace
{

/**
 * Average power over one period-pinned cycle. Wake events (kernel
 * timers) arrive at fixed wall-clock times, so a technique with longer
 * transitions gets correspondingly *less* idle dwell within the same
 * period — it cannot win by stretching the cycle.
 */
double
pinnedAverage(const CyclePowerProfile &p, Tick period, Tick active_cpu,
              Tick active_stall, bool &feasible)
{
    const Tick trans = p.entryLatency + p.exitLatency;
    const Tick dwell = period - trans - active_cpu - active_stall;
    if (dwell < 0) {
        feasible = false;
        return 0.0;
    }
    feasible = true;
    const double energy = p.entryEnergy + p.exitEnergy +
                          p.idlePower * ticksToSeconds(dwell) +
                          p.activePower * ticksToSeconds(active_cpu) +
                          p.stallPower * ticksToSeconds(active_stall);
    return energy / ticksToSeconds(period);
}

} // namespace

/** Outcome of one residency point (a pure function of the profiles). */
struct SweepSample
{
    double pBase = 0.0;
    double pTech = 0.0;
    bool feasible = false;
};

BreakevenResult
findBreakeven(const CyclePowerProfile &technique,
              const CyclePowerProfile &baseline,
              const BreakevenSweep &sweep, std::size_t curve_points,
              const exec::ExecPolicy &policy)
{
    ODRIPS_ASSERT(sweep.step > 0 && sweep.end > sweep.start,
                  "bad break-even sweep");

    BreakevenResult result;

    const Tick active_cpu = static_cast<Tick>(
        static_cast<double>(sweep.activeWindow) * sweep.scalableFraction);
    const Tick active_stall = sweep.activeWindow - active_cpu;
    const Tick base_trans =
        baseline.entryLatency + baseline.exitLatency;

    const std::size_t total_points = static_cast<std::size_t>(
        (sweep.end - sweep.start) / sweep.step + 1);
    const std::size_t stride =
        std::max<std::size_t>(1, total_points / curve_points);

    // Phase 1 — evaluate every residency point. The points are
    // independent, so they shard across the pool; the result vector is
    // index-ordered and bit-identical for any worker count.
    const std::vector<SweepSample> samples = exec::parallelSweep(
        "breakeven-sweep", total_points,
        [&](const exec::SweepPoint &point) {
            const Tick dwell =
                sweep.start + static_cast<Tick>(point.index) * sweep.step;
            // The swept quantity is the *baseline's* DRIPS residency;
            // both designs share the wall-clock period it implies.
            const Tick period = dwell + base_trans + sweep.activeWindow;

            SweepSample sample;
            bool base_ok = true;
            bool tech_ok = true;
            sample.pBase = pinnedAverage(baseline, period, active_cpu,
                                         active_stall, base_ok);
            sample.pTech = pinnedAverage(technique, period, active_cpu,
                                         active_stall, tech_ok);
            sample.feasible = base_ok && tech_ok;
            return sample;
        },
        policy);

    // Phase 2 — ordered serial reduction: first winning dwell and the
    // decimated curve, exactly as the historical serial loop produced.
    for (std::size_t index = 0; index < samples.size(); ++index) {
        const SweepSample &s = samples[index];
        const Tick dwell =
            sweep.start + static_cast<Tick>(index) * sweep.step;

        if (s.feasible && s.pTech < s.pBase &&
            result.breakEvenDwell == maxTick) {
            result.breakEvenDwell = dwell;
        }

        if (index % stride == 0 && s.feasible)
            result.curve.emplace_back(dwell, s.pTech, s.pBase);
    }

    // Closed form of the period-pinned equality: with overhead(x) =
    // transition energy above what idling at the technique's idle power
    // for the same time would cost,
    //   dwell* = (overhead_tech - overhead_base) / (P_idle_base -
    //            P_idle_tech)
    const double ref_idle = technique.idlePower;
    const double overhead_tech =
        technique.entryEnergy + technique.exitEnergy -
        ref_idle * ticksToSeconds(technique.entryLatency +
                                  technique.exitLatency);
    const double overhead_base =
        baseline.entryEnergy + baseline.exitEnergy -
        ref_idle * ticksToSeconds(base_trans);
    const double d_power = baseline.idlePower - technique.idlePower;
    const double d_overhead = overhead_tech - overhead_base;
    if (d_power > 0) {
        result.analyticBreakEven =
            d_overhead > 0 ? secondsToTicks(d_overhead / d_power)
                           : Tick{0};
    }

    return result;
}

} // namespace odrips
