/**
 * @file
 * Experiment helpers shared by the benchmark harnesses: evaluate a
 * technique configuration at the paper's standard connected-standby
 * workload and compute savings + break-even against a baseline.
 */

#ifndef ODRIPS_CORE_EXPERIMENT_HH
#define ODRIPS_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/breakeven.hh"
#include "core/profile.hh"

namespace odrips
{

/** One evaluated configuration (a bar of Fig. 6). */
struct TechniqueEvaluation
{
    std::string label;
    CyclePowerProfile profile;
    /** Eq. 1 average power at the standard workload. */
    double averagePower = 0.0;
    /** Fractional savings vs the baseline (positive = better). */
    double savingsVsBaseline = 0.0;
    /** Break-even DRIPS residency vs the baseline. */
    Tick breakEven = maxTick;
};

/** The standard workload point: ~30 s dwell, mean active window. */
double standardWorkloadAverage(const CyclePowerProfile &profile,
                               const PlatformConfig &cfg);

/** Evaluate one technique set against a pre-measured baseline. */
TechniqueEvaluation evaluate(const PlatformConfig &cfg,
                             const TechniqueSet &techniques,
                             const CyclePowerProfile &baseline_profile,
                             double baseline_average,
                             const exec::ExecPolicy &policy = {});

/**
 * The full Fig. 6(a) set: baseline, WAKE-UP-OFF, AON-IO-GATE,
 * CTX-SGX-DRAM, ODRIPS (first entry is the baseline itself).
 *
 * Each non-baseline evaluation runs its own Platform/EventQueue, so
 * the four shard across the worker pool per @p policy; the returned
 * vector is ordered and bit-identical for any worker count.
 */
std::vector<TechniqueEvaluation> evaluateFig6aSet(
    const PlatformConfig &cfg, const exec::ExecPolicy &policy = {});

} // namespace odrips

#endif // ODRIPS_CORE_EXPERIMENT_HH
