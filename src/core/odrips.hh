/**
 * @file
 * Umbrella public header for the ODRIPS connected-standby simulator.
 *
 * Quick start:
 * @code
 *   #include "core/odrips.hh"
 *   using namespace odrips;
 *
 *   PlatformConfig cfg = skylakeConfig();
 *   Platform platform(cfg);
 *   StandbySimulator sim(platform, TechniqueSet::odrips());
 *
 *   StandbyWorkloadGenerator gen(cfg.workload);
 *   StandbyResult r = sim.run(gen.generate(10));
 *   // r.averageBatteryPower, r.idleResidency, ...
 * @endcode
 */

#ifndef ODRIPS_CORE_ODRIPS_HH
#define ODRIPS_CORE_ODRIPS_HH

#include "core/breakeven.hh"
#include "core/checkpoint.hh"
#include "core/checkpoint_sweep.hh"
#include "core/experiment.hh"
#include "core/governor.hh"
#include "core/memory_dvfs.hh"
#include "core/profile.hh"
#include "core/standby_simulator.hh"
#include "flows/standby_flows.hh"
#include "platform/platform.hh"
#include "platform/techniques.hh"
#include "power/breakdown.hh"
#include "stats/report.hh"
#include "workload/standby_workload.hh"

#endif // ODRIPS_CORE_ODRIPS_HH
