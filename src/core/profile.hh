/**
 * @file
 * Cycle power profile: the per-state powers and per-transition energies
 * that feed Equation 1 (Sec. 2.3). Measuring the profile once per
 * technique and then evaluating Eq. 1 analytically is exactly the
 * paper's power-model methodology (Sec. 7) — and it is what makes the
 * 10,000-point break-even residency sweep cheap.
 */

#ifndef ODRIPS_CORE_PROFILE_HH
#define ODRIPS_CORE_PROFILE_HH

#include "platform/config.hh"
#include "platform/techniques.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Measured profile of one standby cycle. */
struct CyclePowerProfile
{
    /** Battery power in the deep idle state. */
    double idlePower = 0.0;
    /** Battery power during the CPU-bound active segment. */
    double activePower = 0.0;
    /** Battery power during the memory-stall active segment. */
    double stallPower = 0.0;

    Tick entryLatency = 0;
    Tick exitLatency = 0;
    /** Battery energy of the whole entry / exit transition. */
    double entryEnergy = 0.0;
    double exitEnergy = 0.0;

    /** Context save/restore latencies (zero without CTX offload). */
    Tick contextSaveLatency = 0;
    Tick contextRestoreLatency = 0;

    bool contextIntact = true;

    /** Energy overhead of one entry+exit pair relative to idling at
     * idlePower for the same duration. */
    double
    transitionOverheadEnergy() const
    {
        const double transition_seconds =
            ticksToSeconds(entryLatency + exitLatency);
        return entryEnergy + exitEnergy -
               idlePower * transition_seconds;
    }
};

/**
 * Profile for (@p cfg, @p techniques), memoised through the global
 * CycleProfileCache (see core/profile_cache.hh): the first call per
 * distinct configuration measures, repeats return the cached result.
 * Set ODRIPS_PROFILE_CACHE=0 to force re-measurement on every call.
 */
CyclePowerProfile measureCycleProfile(const PlatformConfig &cfg,
                                      const TechniqueSet &techniques);

/**
 * Measure the profile by running one full entry/exit cycle on a fresh
 * platform built from @p cfg, bypassing the cache.
 */
CyclePowerProfile measureCycleProfileUncached(
    const PlatformConfig &cfg, const TechniqueSet &techniques);

/**
 * Equation 1: average battery power of a periodic standby cycle with
 * the given idle dwell and active window (CPU + stall split).
 */
double averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                       Tick active_cpu, Tick active_stall);

/** Eq. 1 with the active window split per @p scalable_fraction. */
double averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                       Tick active_total, double scalable_fraction);

} // namespace odrips

#endif // ODRIPS_CORE_PROFILE_HH
