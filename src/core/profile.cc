#include "core/profile.hh"

#include "core/profile_cache.hh"
#include "core/standby_simulator.hh"
#include "platform/platform.hh"

namespace odrips
{

CyclePowerProfile
measureCycleProfile(const PlatformConfig &cfg,
                    const TechniqueSet &techniques)
{
    if (!CycleProfileCache::enabled())
        return measureCycleProfileUncached(cfg, techniques);
    return CycleProfileCache::global().getOrMeasure(cfg, techniques);
}

CyclePowerProfile
measureCycleProfileUncached(const PlatformConfig &cfg,
                            const TechniqueSet &techniques)
{
    Platform platform(cfg);
    StandbyFlows flows(platform, techniques);
    EventQueue &eq = platform.eq;
    EnergyAccountant &acc = platform.accountant;

    CyclePowerProfile profile;

    // Settle at C0 for a moment.
    eq.run(eq.now() + 10 * oneUs);

    // --- entry ---
    acc.reset(eq.now());
    const FlowResult entry = flows.enterIdle();
    acc.integrateTo(eq.now());
    profile.entryLatency = entry.latency();
    profile.entryEnergy = acc.batteryEnergy().joules();
    profile.idlePower = platform.batteryPower().watts();

    // Dwell briefly so the idle level is well-defined in the record.
    eq.run(eq.now() + oneMs);

    // --- exit ---
    acc.reset(eq.now());
    const FlowResult exit = flows.exitIdle();
    acc.integrateTo(eq.now());
    profile.exitLatency = exit.latency();
    profile.exitEnergy = acc.batteryEnergy().joules();
    profile.activePower = platform.batteryPower().watts();

    // Stall-segment power: cores clock-gated.
    platform.processor.coresGfx.setPower(platform.processor.stallPower(),
                                         eq.now());
    profile.stallPower = platform.batteryPower().watts();
    platform.processor.applyActivePower(eq.now());

    const CycleRecord &rec = flows.lastCycle();
    if (rec.contextSave)
        profile.contextSaveLatency = rec.contextSave->latency;
    if (rec.contextRestore)
        profile.contextRestoreLatency = rec.contextRestore->latency;
    profile.contextIntact = rec.contextIntact;

    return profile;
}

double
averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                Tick active_cpu, Tick active_stall)
{
    const double idle_s = ticksToSeconds(idle_dwell);
    const double cpu_s = ticksToSeconds(active_cpu);
    const double stall_s = ticksToSeconds(active_stall);
    const double trans_s =
        ticksToSeconds(profile.entryLatency + profile.exitLatency);

    const double energy = profile.entryEnergy + profile.exitEnergy +
                          profile.idlePower * idle_s +
                          profile.activePower * cpu_s +
                          profile.stallPower * stall_s;
    const double period = idle_s + cpu_s + stall_s + trans_s;
    return period > 0 ? energy / period : 0.0;
}

double
averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                Tick active_total, double scalable_fraction)
{
    const Tick cpu = static_cast<Tick>(
        static_cast<double>(active_total) * scalable_fraction);
    return averagePowerEq1(profile, idle_dwell, cpu, active_total - cpu);
}

} // namespace odrips
