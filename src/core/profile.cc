#include "core/profile.hh"

#include "core/checkpoint.hh"
#include "core/profile_cache.hh"
#include "core/standby_simulator.hh"
#include "platform/platform.hh"

namespace odrips
{

CyclePowerProfile
measureCycleProfile(const PlatformConfig &cfg,
                    const TechniqueSet &techniques)
{
    if (!CycleProfileCache::enabled())
        return measureCycleProfileUncached(cfg, techniques);
    return CycleProfileCache::global().getOrMeasure(cfg, techniques);
}

namespace
{

/** Measure one entry/exit cycle on an already-settled platform. */
CyclePowerProfile
measureSettledCycle(Platform &platform, StandbyFlows &flows)
{
    EventQueue &eq = platform.eq;
    EnergyAccountant &acc = platform.accountant;

    CyclePowerProfile profile;

    // --- entry ---
    acc.reset(eq.now());
    const FlowResult entry = flows.enterIdle();
    acc.integrateTo(eq.now());
    profile.entryLatency = entry.latency();
    profile.entryEnergy = acc.batteryEnergy().joules();
    profile.idlePower = platform.batteryPower().watts();

    // Dwell briefly so the idle level is well-defined in the record.
    eq.run(eq.now() + oneMs);

    // --- exit ---
    acc.reset(eq.now());
    const FlowResult exit = flows.exitIdle();
    acc.integrateTo(eq.now());
    profile.exitLatency = exit.latency();
    profile.exitEnergy = acc.batteryEnergy().joules();
    profile.activePower = platform.batteryPower().watts();

    // Stall-segment power: cores clock-gated.
    platform.processor.coresGfx.setPower(platform.processor.stallPower(),
                                         eq.now());
    profile.stallPower = platform.batteryPower().watts();
    platform.processor.applyActivePower(eq.now());

    const CycleRecord &rec = flows.lastCycle();
    if (rec.contextSave)
        profile.contextSaveLatency = rec.contextSave->latency;
    if (rec.contextRestore)
        profile.contextRestoreLatency = rec.contextRestore->latency;
    profile.contextIntact = rec.contextIntact;

    return profile;
}

} // namespace

CyclePowerProfile
measureCycleProfileUncached(const PlatformConfig &cfg,
                            const TechniqueSet &techniques)
{
    Platform platform(cfg);
    StandbySimulator sim(platform, techniques);

    // Settle at C0 for a moment.
    platform.eq.run(platform.eq.now() + 10 * oneUs);

    if (checkpointSweepsEnabled()) {
        // Measure on a fork of the settled simulator. Fork equivalence
        // (pinned by the checkpoint differential suite) makes this
        // bit-identical to measuring in place, and it keeps the
        // capture/fork machinery exercised on every profile point of
        // every sweep. ODRIPS_CHECKPOINT=0 opts out.
        const Snapshot snapshot = Snapshot::capture(sim);
        ForkedSimulator child = snapshot.fork();
        return measureSettledCycle(*child.platform,
                                   child.simulator->flows());
    }
    return measureSettledCycle(platform, sim.flows());
}

double
averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                Tick active_cpu, Tick active_stall)
{
    const double idle_s = ticksToSeconds(idle_dwell);
    const double cpu_s = ticksToSeconds(active_cpu);
    const double stall_s = ticksToSeconds(active_stall);
    const double trans_s =
        ticksToSeconds(profile.entryLatency + profile.exitLatency);

    const double energy = profile.entryEnergy + profile.exitEnergy +
                          profile.idlePower * idle_s +
                          profile.activePower * cpu_s +
                          profile.stallPower * stall_s;
    const double period = idle_s + cpu_s + stall_s + trans_s;
    return period > 0 ? energy / period : 0.0;
}

double
averagePowerEq1(const CyclePowerProfile &profile, Tick idle_dwell,
                Tick active_total, double scalable_fraction)
{
    const Tick cpu = static_cast<Tick>(
        static_cast<double>(active_total) * scalable_fraction);
    return averagePowerEq1(profile, idle_dwell, cpu, active_total - cpu);
}

} // namespace odrips
