#include "core/standby_simulator.hh"

namespace odrips
{

StandbySimulator::StandbySimulator(Platform &platform,
                                   const TechniqueSet &techniques)
    : p(platform), flows_(platform, techniques),
      statGroup("standby"),
      cycleCount(statGroup, "cycles", "standby cycles simulated"),
      batteryEnergy(statGroup, "battery_energy",
                    "battery energy drawn", "J"),
      entryLatency(statGroup, "entry_latency",
                   "idle-entry flow latency", "s"),
      exitLatency(statGroup, "exit_latency", "idle-exit flow latency",
                  "s"),
      wakeDetect(statGroup, "wake_detect",
                 "wake-event detection latency", 0.0, 40e-6, 40, "s"),
      idleDwell(statGroup, "idle_dwell", "idle-state residency per "
                                         "cycle",
                "s")
{
}

void
StandbySimulator::runActiveWindow(const StandbyCycle &cycle)
{
    // CPU-bound segment at full core power.
    const double core_hz = p.processor.coreFrequencyHz;
    const Tick cpu_time = secondsToTicks(
        static_cast<double>(cycle.cpuCycles) / core_hz);
    p.processor.applyActivePower(p.now());
    p.eq.run(p.now() + cpu_time);

    // Memory/IO-stall segment: cores clock-gated.
    if (cycle.stallTime > 0) {
        p.processor.coresGfx.setPower(p.processor.stallPower(), p.now());
        p.eq.run(p.now() + cycle.stallTime);
        p.processor.applyActivePower(p.now());
    }

    // The active window mutates architectural state: refresh the
    // context so every save/restore moves fresh bytes.
    p.processor.context.touch();
}

RunProgress
StandbySimulator::beginRun(bool arm_analyzer)
{
    RunProgress progress;
    progress.start = p.now();
    progress.armAnalyzer = arm_analyzer;
    p.accountant.reset(progress.start);
    if (arm_analyzer) {
        p.analyzer.clear();
        p.analyzer.arm();
    }
    return progress;
}

void
StandbySimulator::stepCycle(RunProgress &progress, const StandbyCycle &cycle)
{
    const FlowResult entry = flows_.enterIdle();
    progress.entryTotal += entry.latency();
    progress.transitionTime += entry.latency();
    entryLatency.sample(ticksToSeconds(entry.latency()));

    if (!progress.idlePowerCaptured) {
        progress.result.idleBatteryPower =
            flows_.idleBatteryPower().watts();
        progress.idlePowerCaptured = true;
    }

    // Dwell in the idle state until the wake event fires.
    p.eq.run(p.now() + cycle.idleDwell);
    progress.idleTime += cycle.idleDwell;

    const FlowResult exit = flows_.exitIdle(cycle.reason);
    progress.exitTotal += exit.latency();
    progress.transitionTime += exit.latency();
    exitLatency.sample(ticksToSeconds(exit.latency()));
    wakeDetect.sample(
        ticksToSeconds(flows_.lastCycle().wakeDetectLatency));
    idleDwell.sample(ticksToSeconds(cycle.idleDwell));
    ++cycleCount;

    if (!progress.activePowerCaptured) {
        progress.result.activeBatteryPower = p.batteryPower().watts();
        progress.activePowerCaptured = true;
    }

    runActiveWindow(cycle);
    progress.activeTime +=
        cycle.activeDuration(p.processor.coreFrequencyHz);

    progress.result.contextIntact =
        progress.result.contextIntact && flows_.lastCycle().contextIntact;
    ++progress.cyclesDone;
}

StandbyResult
StandbySimulator::finishRun(RunProgress &progress)
{
    ODRIPS_ASSERT(progress.cyclesDone > 0, "finishRun without cycles");

    StandbyResult result = progress.result;
    const Tick end = p.now();
    p.accountant.integrateTo(end);
    if (progress.armAnalyzer) {
        p.analyzer.disarm();
        result.analyzerAverage = p.analyzer.channel(0).average().watts();
    }

    batteryEnergy += p.accountant.batteryEnergy().joules();

    const Tick start = progress.start;
    result.simulatedTime = end - start;
    result.cycles = progress.cyclesDone;
    result.averageBatteryPower =
        p.accountant.batteryEnergy().joules() / ticksToSeconds(end - start);

    const double total = static_cast<double>(end - start);
    result.idleResidency = static_cast<double>(progress.idleTime) / total;
    result.activeResidency =
        static_cast<double>(progress.activeTime) / total;
    result.transitionResidency =
        static_cast<double>(progress.transitionTime) / total;

    result.meanEntryLatency =
        progress.entryTotal / static_cast<Tick>(progress.cyclesDone);
    result.meanExitLatency =
        progress.exitTotal / static_cast<Tick>(progress.cyclesDone);

    result.lastCycle = flows_.lastCycle();
    return result;
}

StandbyResult
StandbySimulator::run(const StandbyTrace &trace, bool arm_analyzer)
{
    ODRIPS_ASSERT(!trace.cycles.empty(), "empty standby trace");

    RunProgress progress = beginRun(arm_analyzer);
    for (const StandbyCycle &cycle : trace.cycles)
        stepCycle(progress, cycle);
    return finishRun(progress);
}

} // namespace odrips
