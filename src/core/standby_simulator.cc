#include "core/standby_simulator.hh"

namespace odrips
{

StandbySimulator::StandbySimulator(Platform &platform,
                                   const TechniqueSet &techniques)
    : p(platform), flows_(platform, techniques),
      statGroup("standby"),
      cycleCount(statGroup, "cycles", "standby cycles simulated"),
      batteryEnergy(statGroup, "battery_energy",
                    "battery energy drawn", "J"),
      entryLatency(statGroup, "entry_latency",
                   "idle-entry flow latency", "s"),
      exitLatency(statGroup, "exit_latency", "idle-exit flow latency",
                  "s"),
      wakeDetect(statGroup, "wake_detect",
                 "wake-event detection latency", 0.0, 40e-6, 40, "s"),
      idleDwell(statGroup, "idle_dwell", "idle-state residency per "
                                         "cycle",
                "s")
{
}

void
StandbySimulator::runActiveWindow(const StandbyCycle &cycle)
{
    // CPU-bound segment at full core power.
    const double core_hz = p.processor.coreFrequencyHz;
    const Tick cpu_time = secondsToTicks(
        static_cast<double>(cycle.cpuCycles) / core_hz);
    p.processor.applyActivePower(p.now());
    p.eq.run(p.now() + cpu_time);

    // Memory/IO-stall segment: cores clock-gated.
    if (cycle.stallTime > 0) {
        p.processor.coresGfx.setPower(p.processor.stallPower(), p.now());
        p.eq.run(p.now() + cycle.stallTime);
        p.processor.applyActivePower(p.now());
    }

    // The active window mutates architectural state: refresh the
    // context so every save/restore moves fresh bytes.
    p.processor.context.touch();
}

StandbyResult
StandbySimulator::run(const StandbyTrace &trace, bool arm_analyzer)
{
    ODRIPS_ASSERT(!trace.cycles.empty(), "empty standby trace");

    StandbyResult result;
    const Tick start = p.now();
    p.accountant.reset(start);
    if (arm_analyzer) {
        p.analyzer.clear();
        p.analyzer.arm();
    }

    Tick idle_time = 0;
    Tick active_time = 0;
    Tick transition_time = 0;
    Tick entry_total = 0;
    Tick exit_total = 0;

    const double core_hz = p.processor.coreFrequencyHz;

    // The reported idle/active battery powers are first-cycle
    // snapshots. Explicit flags, not a 0.0 sentinel: a configuration
    // whose genuine first-cycle power is zero must not be resampled on
    // a later (warmer, different) cycle.
    bool idle_power_captured = false;
    bool active_power_captured = false;

    for (const StandbyCycle &cycle : trace.cycles) {
        const FlowResult entry = flows_.enterIdle();
        entry_total += entry.latency();
        transition_time += entry.latency();
        entryLatency.sample(ticksToSeconds(entry.latency()));

        if (!idle_power_captured) {
            result.idleBatteryPower = flows_.idleBatteryPower().watts();
            idle_power_captured = true;
        }

        // Dwell in the idle state until the wake event fires.
        p.eq.run(p.now() + cycle.idleDwell);
        idle_time += cycle.idleDwell;

        const FlowResult exit = flows_.exitIdle(cycle.reason);
        exit_total += exit.latency();
        transition_time += exit.latency();
        exitLatency.sample(ticksToSeconds(exit.latency()));
        wakeDetect.sample(
            ticksToSeconds(flows_.lastCycle().wakeDetectLatency));
        idleDwell.sample(ticksToSeconds(cycle.idleDwell));
        ++cycleCount;

        if (!active_power_captured) {
            result.activeBatteryPower = p.batteryPower().watts();
            active_power_captured = true;
        }

        runActiveWindow(cycle);
        active_time += cycle.activeDuration(core_hz);

        result.contextIntact =
            result.contextIntact && flows_.lastCycle().contextIntact;
    }

    const Tick end = p.now();
    p.accountant.integrateTo(end);
    if (arm_analyzer) {
        p.analyzer.disarm();
        result.analyzerAverage = p.analyzer.channel(0).average().watts();
    }

    batteryEnergy += p.accountant.batteryEnergy().joules();

    result.simulatedTime = end - start;
    result.cycles = trace.cycles.size();
    result.averageBatteryPower =
        p.accountant.batteryEnergy().joules() / ticksToSeconds(end - start);

    const double total = static_cast<double>(end - start);
    result.idleResidency = static_cast<double>(idle_time) / total;
    result.activeResidency = static_cast<double>(active_time) / total;
    result.transitionResidency =
        static_cast<double>(transition_time) / total;

    result.meanEntryLatency =
        entry_total / static_cast<Tick>(trace.cycles.size());
    result.meanExitLatency =
        exit_total / static_cast<Tick>(trace.cycles.size());

    result.lastCycle = flows_.lastCycle();
    return result;
}

} // namespace odrips
