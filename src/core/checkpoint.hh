/**
 * @file
 * Full-simulator checkpoint/fork.
 *
 * A Snapshot captures every piece of mutable simulation state of a
 * (Platform, StandbyFlows/StandbySimulator) pair — event-queue clock
 * and pending events, RNG streams, power/energy/analyzer state, timer
 * values, IO levels, memory and SRAM contents, MEE key/counter/cache
 * state, context bytes with their dirty-line maps, flow records, and
 * statistics counters — into a sectioned, CRC-protected image (see
 * sim/checkpoint/snapshot_image.hh).
 *
 * Three uses:
 *  - restoreInto(): rewind a live simulator to the captured state;
 *  - fork(): build an independent simulator (own Platform) continuing
 *    from the captured state — O(state) instead of O(warmup), which is
 *    what makes warm-forked sweeps cheap;
 *  - writeFile()/readFile(): persist across processes (longtrace
 *    periodic checkpointing); the image embeds the ProfileKey content
 *    hash of (config, techniques) and readFile refuses a mismatch.
 *
 * Determinism contract: Platform construction is a pure function of
 * PlatformConfig, so a fork (fresh construction + restore) and the
 * original simulator produce bit-identical event sequences, RNG draws
 * and statistics from the capture point on. The differential test
 * suite (tests/core/checkpoint_equivalence_test.cc) pins this.
 */

#ifndef ODRIPS_CORE_CHECKPOINT_HH
#define ODRIPS_CORE_CHECKPOINT_HH

#include <memory>
#include <string>

#include "core/standby_simulator.hh"
#include "sim/checkpoint/snapshot_image.hh"

namespace odrips
{

/** A forked, independent simulator (owns its platform). */
struct ForkedSimulator
{
    std::unique_ptr<Platform> platform;
    std::unique_ptr<StandbySimulator> simulator; // ckpt: skip(fork product; state is the restored platform)
};

/** A captured simulator state (see file comment). */
class Snapshot
{
  public:
    /**
     * Capture the full state of @p sim. The simulator must be quiescent
     * between event-loop runs (flows execute synchronously, so any
     * point between StandbySimulator cycles qualifies); the only
     * pending event may be the power analyzer's sampling event, which
     * is serialized with it. Capture does not perturb the simulator.
     */
    static Snapshot capture(StandbySimulator &sim);

    /** Capture mid-run: additionally records @p progress so the run
     * can resume with stepCycle()/finishRun() after a restore. */
    static Snapshot capture(StandbySimulator &sim,
                            const RunProgress &progress);

    /**
     * Restore this snapshot into @p sim, which must have been built
     * from the same configuration and technique set (same platform
     * topology; violations surface as ckpt::SnapshotError). The
     * simulator may be ahead of or behind the captured tick.
     */
    void restoreInto(StandbySimulator &sim) const;

    /** Restore including the in-flight run progress; throws
     * ckpt::SnapshotError when the snapshot has no run section. */
    void restoreInto(StandbySimulator &sim, RunProgress &progress) const;

    /** True when this snapshot carries RunProgress. */
    bool hasRunProgress() const;

    /**
     * Construct a fresh platform + simulator from the captured
     * configuration and restore this snapshot into it. Children are
     * fully independent of the parent and of each other.
     */
    ForkedSimulator fork() const;

    const PlatformConfig &config() const { return cfg; }
    const TechniqueSet &techniques() const { return tech; }

    /** Serialized image (schema v1, per-section CRC). */
    const ckpt::SnapshotImage &image() const { return img; }

    /** Persist to @p path. */
    void writeFile(const std::string &path) const;

    /**
     * Load a snapshot written by writeFile(). @p cfg and @p techniques
     * must hash to the embedded config tag (the snapshot stores state,
     * not configuration); throws ckpt::SnapshotError on any mismatch
     * or corruption.
     */
    static Snapshot readFile(const std::string &path,
                             const PlatformConfig &cfg,
                             const TechniqueSet &techniques);

    /** Rebuild a snapshot from a serialized image (tag-checked). */
    static Snapshot fromImage(ckpt::SnapshotImage image,
                              const PlatformConfig &cfg,
                              const TechniqueSet &techniques);

  private:
    Snapshot(ckpt::SnapshotImage image, const PlatformConfig &config,
             const TechniqueSet &techniques)
        : cfg(config), tech(techniques), img(std::move(image))
    {
    }

    PlatformConfig cfg;
    TechniqueSet tech;
    ckpt::SnapshotImage img;
};

} // namespace odrips

#endif // ODRIPS_CORE_CHECKPOINT_HH
