#include "core/governor.hh"

#include "sim/logging.hh"

namespace odrips
{

IdleGovernor::IdleGovernor(const CStateTable &state_table,
                           const CyclePowerProfile &drips_profile,
                           Tick wake_ltr)
    : table(state_table), drips(drips_profile), ltr(wake_ltr)
{
    const CState &deepest = table.deepest();
    ODRIPS_ASSERT(deepest.exitLatency > 0, "deepest state needs latency");

    const double drips_trans_energy = drips.entryEnergy + drips.exitEnergy;
    const Tick drips_trans_latency =
        drips.entryLatency + drips.exitLatency;

    // Derive shallow-state models: power from the table's relative
    // factors, transition energy proportional to transition latency
    // (both are dominated by the same VR ramp physics).
    for (const CState &s : table.states()) {
        if (s.index == 0)
            continue;
        DerivedStateModel m;
        m.name = s.name;
        m.index = s.index;
        m.idlePower = drips.idlePower * s.powerRelativeToDrips;
        if (s.isDrips) {
            m.entryLatency = drips.entryLatency;
            m.exitLatency = drips.exitLatency;
            m.transitionEnergy = drips_trans_energy;
        } else {
            m.entryLatency = s.entryLatency;
            m.exitLatency = s.exitLatency;
            m.transitionEnergy =
                drips_trans_energy *
                static_cast<double>(s.entryLatency + s.exitLatency) /
                static_cast<double>(drips_trans_latency);
        }
        models.push_back(m);
    }

    // Break-even of each state against the shallowest idle state.
    const DerivedStateModel &shallow = models.front();
    for (DerivedStateModel &m : models) {
        const double d_power = shallow.idlePower - m.idlePower;
        const double d_overhead =
            (m.transitionEnergy -
             m.idlePower * ticksToSeconds(m.entryLatency +
                                          m.exitLatency)) -
            (shallow.transitionEnergy -
             m.idlePower * ticksToSeconds(shallow.entryLatency +
                                          shallow.exitLatency));
        m.breakEvenVsShallowest =
            d_power > 0 && d_overhead > 0
                ? secondsToTicks(d_overhead / d_power)
                : 0;
    }
}

const DerivedStateModel &
IdleGovernor::modelFor(const CState &state) const
{
    for (const DerivedStateModel &m : models) {
        if (m.index == state.index)
            return m;
    }
    panic("no derived model for state ", state.name);
}

GovernorDecision
IdleGovernor::decide(Tick tnte) const
{
    GovernorDecision d;
    d.ltr = ltr;
    d.tnte = tnte;
    d.state = &table.select(ltr, tnte);
    return d;
}

double
IdleGovernor::idleEnergy(const DerivedStateModel &state, Tick dwell) const
{
    // The transitions eat into the period; residency is what remains.
    const Tick resident =
        std::max<Tick>(0, dwell - state.entryLatency - state.exitLatency);
    return state.transitionEnergy +
           state.idlePower * ticksToSeconds(resident);
}

GovernorDecision
IdleGovernor::decideOracle(Tick dwell) const
{
    GovernorDecision d;
    d.ltr = ltr;
    d.tnte = dwell;

    const DerivedStateModel *best = &models.front();
    double best_energy = idleEnergy(*best, dwell);
    for (const DerivedStateModel &m : models) {
        if (m.exitLatency > ltr)
            continue;
        if (m.entryLatency + m.exitLatency > dwell)
            continue;
        const double energy = idleEnergy(m, dwell);
        if (energy < best_energy) {
            best = &m;
            best_energy = energy;
        }
    }
    d.state = &table.byIndex(best->index);
    return d;
}

GovernedResult
IdleGovernor::evaluate(const std::vector<Tick> &dwells, Tick active,
                       bool oracle, int force_state) const
{
    ODRIPS_ASSERT(!dwells.empty(), "no idle periods to evaluate");

    GovernedResult result;
    double total_energy = 0.0;
    double total_seconds = 0.0;
    std::map<std::string, Tick> residency_ticks;
    Tick idle_ticks = 0;

    for (Tick dwell : dwells) {
        GovernorDecision d;
        if (force_state >= 0) {
            d.state = &table.byIndex(force_state);
            d.tnte = dwell;
            d.ltr = ltr;
        } else if (oracle) {
            d = decideOracle(dwell);
        } else {
            d = decide(dwell);
        }
        const DerivedStateModel &m = modelFor(*d.state);
        result.decisions.push_back(d);

        total_energy += idleEnergy(m, dwell);
        total_energy += drips.activePower * ticksToSeconds(active);
        total_seconds += ticksToSeconds(dwell + active);

        residency_ticks[m.name] += dwell;
        idle_ticks += dwell;
    }

    result.averagePower =
        total_seconds > 0 ? total_energy / total_seconds : 0.0;
    for (const auto &[name, ticks] : residency_ticks) {
        result.stateResidency[name] =
            static_cast<double>(ticks) / static_cast<double>(idle_ticks);
    }
    return result;
}

} // namespace odrips
