#include "core/checkpoint.hh"

#include <array>
#include <utility>

#include "core/profile_cache.hh"

namespace odrips
{

namespace
{

// ---------------------------------------------------------------- clock

void
saveClock(ckpt::Writer &w, Platform &p)
{
    w.i64(p.eq.now());
    w.u64(p.eq.sequenceCounter());
    w.u64(p.eq.executedEvents());
    w.b(p.board.xtal24.enabled());
    w.b(p.board.xtal32.enabled());
    w.b(p.chipset.fastClock.gated());
    w.b(p.chipset.slowClock.gated());
    w.b(p.processor.clock.gated());
}

void
loadClock(ckpt::Reader &r, Platform &p)
{
    const Tick now = r.i64();
    const std::uint64_t sequence = r.u64();
    const std::uint64_t executed = r.u64();
    p.eq.restoreClock(now, sequence, executed);

    r.b() ? p.board.xtal24.enable() : p.board.xtal24.disable();
    r.b() ? p.board.xtal32.enable() : p.board.xtal32.disable();
    r.b() ? p.chipset.fastClock.gate() : p.chipset.fastClock.ungate();
    r.b() ? p.chipset.slowClock.gate() : p.chipset.slowClock.ungate();
    r.b() ? p.processor.clock.gate() : p.processor.clock.ungate();
}

// ---------------------------------------------------------------- power

void
savePower(ckpt::Writer &w, Platform &p)
{
    const auto &comps = p.pm.components();
    w.u32(static_cast<std::uint32_t>(comps.size()));
    for (std::size_t i = 0; i < comps.size(); ++i) {
        Milliwatts level;
        Millijoules consumed;
        Tick last = 0;
        p.pm.componentState(i, level, consumed, last);
        w.f64(level.watts());
        w.f64(consumed.joules());
        w.i64(last);
    }
    // The running total, not a recomputed sum: it accumulates
    // incrementally and its rounding drift is part of the state.
    w.f64(p.pm.totalPower().watts());

    w.f64(p.accountant.lastLoadLevel().watts());
    w.f64(p.accountant.batteryEnergy().joules());
    w.f64(p.accountant.loadEnergy().joules());
    w.i64(p.accountant.windowEnd());
    w.i64(p.accountant.windowStart());

    p.analyzer.saveState(w);
}

void
loadPower(ckpt::Reader &r, Platform &p)
{
    const std::uint32_t count = r.u32();
    if (count != p.pm.components().size())
        throw ckpt::SnapshotError("power component count mismatch");
    for (std::uint32_t i = 0; i < count; ++i) {
        const Milliwatts level = Milliwatts::fromWatts(r.f64());
        const Millijoules consumed = Millijoules::fromJoules(r.f64());
        const Tick last = r.i64();
        p.pm.restoreComponentState(i, level, consumed, last);
    }
    p.pm.restoreTotal(Milliwatts::fromWatts(r.f64()));

    const Milliwatts lastLoad = Milliwatts::fromWatts(r.f64());
    const Millijoules battery = Millijoules::fromJoules(r.f64());
    const Millijoules load = Millijoules::fromJoules(r.f64());
    const Tick lastTick = r.i64();
    const Tick startTick = r.i64();
    p.accountant.restoreState(lastLoad, battery, load, lastTick,
                              startTick);

    p.analyzer.loadState(r);
}

// --------------------------------------------------------------- timing

void
saveTiming(ckpt::Writer &w, Platform &p)
{
    w.u64(p.processor.tsc.baseValueState());
    w.i64(p.processor.tsc.baseTickState());
    w.b(p.processor.tsc.running());
    p.chipset.wakeTimer.saveState(w);
}

void
loadTiming(ckpt::Reader &r, Platform &p)
{
    const std::uint64_t base = r.u64();
    const Tick tick = r.i64();
    const bool running = r.b();
    p.processor.tsc.restoreState(base, tick, running);
    p.chipset.wakeTimer.loadState(r);
}

// ------------------------------------------------------------------- io

void
saveIo(ckpt::Writer &w, Platform &p)
{
    w.b(p.pml.linkRaised());
    w.u64(p.pml.messagesSent());

    w.u32(p.chipset.gpios.pinCount());
    for (unsigned pin = 0; pin < p.chipset.gpios.pinCount(); ++pin)
        w.b(p.chipset.gpios.rawLevel(pin));

    w.b(p.processor.aonIos.powered());
}

void
loadIo(ckpt::Reader &r, Platform &p)
{
    const bool linkUp = r.b();
    const std::uint64_t messages = r.u64();
    p.pml.restoreState(linkUp, messages);

    if (r.u32() != p.chipset.gpios.pinCount())
        throw ckpt::SnapshotError("GPIO pin count mismatch");
    for (unsigned pin = 0; pin < p.chipset.gpios.pinCount(); ++pin)
        p.chipset.gpios.restoreLevel(pin, r.b());

    p.processor.aonIos.restorePoweredFlag(r.b());
}

// --------------------------------------------------------------- memory

void
saveMemory(ckpt::Writer &w, Platform &p)
{
    w.u8(static_cast<std::uint8_t>(p.cfg.memoryKind));
    if (p.cfg.memoryKind == MainMemoryKind::Ddr3l)
        static_cast<const Dram &>(*p.memory).saveState(w);
    else
        static_cast<const Pcm &>(*p.memory).saveState(w);

    p.emram->saveState(w);
    p.memoryController->saveState(w);
    p.processor.saSram.saveState(w);
    p.processor.coresSram.saveState(w);
    p.processor.bootSram.saveState(w);
}

void
loadMemory(ckpt::Reader &r, Platform &p)
{
    if (r.u8() != static_cast<std::uint8_t>(p.cfg.memoryKind))
        throw ckpt::SnapshotError("main-memory kind mismatch");
    if (p.cfg.memoryKind == MainMemoryKind::Ddr3l)
        static_cast<Dram &>(*p.memory).loadState(r);
    else
        static_cast<Pcm &>(*p.memory).loadState(r);

    p.emram->loadState(r);
    p.memoryController->loadState(r);
    p.processor.saSram.loadState(r);
    p.processor.coresSram.loadState(r);
    p.processor.bootSram.loadState(r);
}

// -------------------------------------------------------------- context

void
saveRegion(ckpt::Writer &w, const ContextRegion &region)
{
    w.u64(region.bytes.size());
    w.bytes(region.bytes.data(), region.bytes.size());

    const auto runs = region.dirty.runs();
    w.u32(static_cast<std::uint32_t>(runs.size()));
    for (const DirtyLineMap::Run &run : runs) {
        w.u64(run.firstLine);
        w.u64(run.lineCount);
    }
}

void
loadRegion(ckpt::Reader &r, ContextRegion &region)
{
    if (r.u64() != region.bytes.size())
        throw ckpt::SnapshotError("context region size mismatch");
    r.bytes(region.bytes.data(), region.bytes.size());

    region.dirty.clear();
    const std::uint32_t runCount = r.u32();
    for (std::uint32_t i = 0; i < runCount; ++i) {
        const std::uint64_t first = r.u64();
        const std::uint64_t count = r.u64();
        if (count == 0 || first + count > region.dirty.lines())
            throw ckpt::SnapshotError("dirty run out of range");
        for (std::uint64_t line = first; line < first + count; ++line)
            region.dirty.markLine(line);
    }
}

void
saveContext(ckpt::Writer &w, Platform &p)
{
    const auto words = p.processor.context.mutationRng().stateWords();
    for (std::uint64_t word : words)
        w.u64(word);
    saveRegion(w, p.processor.context.sa());
    saveRegion(w, p.processor.context.cores());
    saveRegion(w, p.processor.context.boot());
}

void
loadContext(ckpt::Reader &r, Platform &p)
{
    std::array<std::uint64_t, 4> words;
    for (std::uint64_t &word : words)
        word = r.u64();
    p.processor.context.mutationRng().setStateWords(words);
    loadRegion(r, p.processor.context.sa());
    loadRegion(r, p.processor.context.cores());
    loadRegion(r, p.processor.context.boot());
}

// ---------------------------------------------------------------- stats

void
saveStatGroup(ckpt::Writer &w, const stats::StatGroup &group)
{
    w.u32(static_cast<std::uint32_t>(group.statistics().size()));
    for (const stats::Stat *stat : group.statistics()) {
        const auto words = stat->packState();
        w.u32(static_cast<std::uint32_t>(words.size()));
        for (std::uint64_t word : words)
            w.u64(word);
    }
    w.u32(static_cast<std::uint32_t>(group.children().size()));
    for (const stats::StatGroup *child : group.children())
        saveStatGroup(w, *child);
}

void
loadStatGroup(ckpt::Reader &r, const stats::StatGroup &group)
{
    if (r.u32() != group.statistics().size())
        throw ckpt::SnapshotError("statistics count mismatch");
    for (stats::Stat *stat : group.statistics()) {
        const std::uint32_t count = r.u32();
        std::vector<std::uint64_t> words(count);
        for (std::uint64_t &word : words)
            word = r.u64();
        if (!stat->unpackState(words)) {
            throw ckpt::SnapshotError("statistic '" + stat->name() +
                                      "' rejected snapshot state");
        }
    }
    if (r.u32() != group.children().size())
        throw ckpt::SnapshotError("statistics group count mismatch");
    for (const stats::StatGroup *child : group.children())
        loadStatGroup(r, *child);
}

// ------------------------------------------------------------------ run

void
saveRun(ckpt::Writer &w, const RunProgress &progress)
{
    const StandbyResult &res = progress.result;
    w.f64(res.averageBatteryPower);
    w.f64(res.analyzerAverage);
    w.f64(res.idleBatteryPower);
    w.f64(res.activeBatteryPower);
    w.f64(res.idleResidency);
    w.f64(res.activeResidency);
    w.f64(res.transitionResidency);
    w.i64(res.meanEntryLatency);
    w.i64(res.meanExitLatency);
    w.u64(res.cycles);
    w.i64(res.simulatedTime);
    w.b(res.contextIntact);

    w.i64(progress.start);
    w.i64(progress.idleTime);
    w.i64(progress.activeTime);
    w.i64(progress.transitionTime);
    w.i64(progress.entryTotal);
    w.i64(progress.exitTotal);
    w.u64(progress.cyclesDone);
    w.b(progress.armAnalyzer);
    w.b(progress.idlePowerCaptured);
    w.b(progress.activePowerCaptured);
}

RunProgress
loadRun(ckpt::Reader &r)
{
    RunProgress progress;
    StandbyResult &res = progress.result;
    res.averageBatteryPower = r.f64();
    res.analyzerAverage = r.f64();
    res.idleBatteryPower = r.f64();
    res.activeBatteryPower = r.f64();
    res.idleResidency = r.f64();
    res.activeResidency = r.f64();
    res.transitionResidency = r.f64();
    res.meanEntryLatency = r.i64();
    res.meanExitLatency = r.i64();
    res.cycles = r.u64();
    res.simulatedTime = r.i64();
    res.contextIntact = r.b();

    progress.start = r.i64();
    progress.idleTime = r.i64();
    progress.activeTime = r.i64();
    progress.transitionTime = r.i64();
    progress.entryTotal = r.i64();
    progress.exitTotal = r.i64();
    progress.cyclesDone = r.u64();
    progress.armAnalyzer = r.b();
    progress.idlePowerCaptured = r.b();
    progress.activePowerCaptured = r.b();
    return progress;
}

constexpr const char *runSection = "run";

ckpt::SnapshotImage
captureImage(StandbySimulator &sim, const RunProgress *progress)
{
    Platform &p = sim.platform();

    ckpt::SnapshotImage image;
    const ProfileKey key = profileKey(p.cfg, sim.flows().techniques());
    image.setConfigTag({key.lo, key.hi});

    const auto section = [&image](const char *name, auto &&fill) {
        ckpt::Writer w;
        fill(w);
        image.addSection(name, w.take());
    };

    section("clock", [&](ckpt::Writer &w) { saveClock(w, p); });
    section("power", [&](ckpt::Writer &w) { savePower(w, p); });
    section("timing", [&](ckpt::Writer &w) { saveTiming(w, p); });
    section("io", [&](ckpt::Writer &w) { saveIo(w, p); });
    section("memory", [&](ckpt::Writer &w) { saveMemory(w, p); });
    section("mee", [&](ckpt::Writer &w) { p.mee->saveState(w); });
    section("context", [&](ckpt::Writer &w) { saveContext(w, p); });
    section("flows",
            [&](ckpt::Writer &w) { sim.flows().saveState(w); });
    section("stats", [&](ckpt::Writer &w) {
        saveStatGroup(w, sim.statistics());
    });
    if (progress != nullptr) {
        section(runSection,
                [&](ckpt::Writer &w) { saveRun(w, *progress); });
    }
    return image;
}

/** Run one section's loader over its payload, demanding exact length. */
template <typename Load>
void
loadSection(const ckpt::SnapshotImage &image, const char *name,
            Load &&load)
{
    const std::vector<std::uint8_t> &payload = image.section(name);
    ckpt::Reader r(payload.data(), payload.size());
    load(r);
    r.expectEnd(name);
}

} // namespace

Snapshot
Snapshot::capture(StandbySimulator &sim)
{
    return Snapshot(captureImage(sim, nullptr), sim.platform().cfg,
                    sim.flows().techniques());
}

Snapshot
Snapshot::capture(StandbySimulator &sim, const RunProgress &progress)
{
    return Snapshot(captureImage(sim, &progress), sim.platform().cfg,
                    sim.flows().techniques());
}

void
Snapshot::restoreInto(StandbySimulator &sim) const
{
    Platform &p = sim.platform();

    const ProfileKey key = profileKey(p.cfg, sim.flows().techniques());
    const ckpt::SnapshotImage::ConfigTag expected{key.lo, key.hi};
    if (!(img.configTag() == expected))
        throw ckpt::SnapshotError(
            "snapshot was captured for a different configuration");

    // Empty the event heap first: the clock restore requires it, and
    // the analyzer's sampling event (the only persistent event) is
    // re-established by the power section at its captured slot.
    p.analyzer.disarm();

    loadSection(img, "clock", [&](ckpt::Reader &r) { loadClock(r, p); });
    loadSection(img, "power", [&](ckpt::Reader &r) { loadPower(r, p); });
    loadSection(img, "timing",
                [&](ckpt::Reader &r) { loadTiming(r, p); });
    loadSection(img, "io", [&](ckpt::Reader &r) { loadIo(r, p); });
    loadSection(img, "memory",
                [&](ckpt::Reader &r) { loadMemory(r, p); });
    loadSection(img, "mee",
                [&](ckpt::Reader &r) { p.mee->loadState(r); });
    loadSection(img, "context",
                [&](ckpt::Reader &r) { loadContext(r, p); });
    loadSection(img, "flows",
                [&](ckpt::Reader &r) { sim.flows().loadState(r); });
    loadSection(img, "stats", [&](ckpt::Reader &r) {
        loadStatGroup(r, sim.statistics());
    });
}

void
Snapshot::restoreInto(StandbySimulator &sim, RunProgress &progress) const
{
    if (!hasRunProgress())
        throw ckpt::SnapshotError("snapshot has no run-progress section");
    restoreInto(sim);
    loadSection(img, runSection,
                [&](ckpt::Reader &r) { progress = loadRun(r); });
}

bool
Snapshot::hasRunProgress() const
{
    return img.hasSection(runSection);
}

ForkedSimulator
Snapshot::fork() const
{
    ForkedSimulator child;
    child.platform = std::make_unique<Platform>(cfg);
    child.simulator =
        std::make_unique<StandbySimulator>(*child.platform, tech);
    restoreInto(*child.simulator);
    return child;
}

void
Snapshot::writeFile(const std::string &path) const
{
    img.writeFile(path);
}

Snapshot
Snapshot::fromImage(ckpt::SnapshotImage image, const PlatformConfig &cfg,
                    const TechniqueSet &techniques)
{
    const ProfileKey key = profileKey(cfg, techniques);
    const ckpt::SnapshotImage::ConfigTag expected{key.lo, key.hi};
    if (!(image.configTag() == expected))
        throw ckpt::SnapshotError(
            "snapshot was captured for a different configuration");
    return Snapshot(std::move(image), cfg, techniques);
}

Snapshot
Snapshot::readFile(const std::string &path, const PlatformConfig &cfg,
                   const TechniqueSet &techniques)
{
    return fromImage(ckpt::SnapshotImage::readFile(path), cfg,
                     techniques);
}

} // namespace odrips
