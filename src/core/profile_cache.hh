/**
 * @file
 * Memoised cycle-profile measurements.
 *
 * measureCycleProfile() builds a whole Platform, runs an entry/exit
 * cycle, and throws the platform away — and the break-even sweeps and
 * benches call it with the *same* (PlatformConfig, TechniqueSet) pair
 * over and over. The profile is a pure function of that pair (the
 * platform is constructed fresh inside the measurement and every
 * stochastic input is seeded from the config), so the result can be
 * memoised by a content hash of all the configuration fields.
 *
 * The cache is process-global and thread-safe; parallel sweeps hit it
 * from worker threads. Set ODRIPS_PROFILE_CACHE=0 to bypass it (every
 * call then re-measures, the historical behaviour).
 */

#ifndef ODRIPS_CORE_PROFILE_CACHE_HH
#define ODRIPS_CORE_PROFILE_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>

#include "core/profile.hh"

namespace odrips
{

/** 128-bit content hash of a (PlatformConfig, TechniqueSet) pair. */
struct ProfileKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const ProfileKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }

    bool
    operator<(const ProfileKey &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/**
 * Hash every field of the configuration pair (including the nested
 * power budgets, flow timings, workload and memory configs) into a
 * ProfileKey. Two configs that differ in any field that can influence
 * the measured profile hash to different keys.
 */
ProfileKey profileKey(const PlatformConfig &cfg,
                      const TechniqueSet &techniques);

/** Cache counters (monotonic; misses count actual re-measurements). */
struct CycleProfileCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** Thread-safe memo of measureCycleProfile results. */
class CycleProfileCache
{
  public:
    /**
     * Return the cached profile for (@p cfg, @p techniques), measuring
     * it on a miss. Concurrent misses on the same key may both measure
     * (the results are identical; last insert wins) — the lock is not
     * held across the measurement so parallel sweeps don't serialise.
     */
    CyclePowerProfile getOrMeasure(const PlatformConfig &cfg,
                                   const TechniqueSet &techniques);

    CycleProfileCacheStats statistics() const;

    /** Number of distinct cached profiles. */
    std::size_t entryCount() const;

    /** Drop all entries and reset the counters. */
    void clear();

    /** The process-global instance used by measureCycleProfile(). */
    static CycleProfileCache &global();

    /**
     * False when the ODRIPS_PROFILE_CACHE environment variable is "0"
     * (evaluated once per process).
     */
    static bool enabled();

  private:
    mutable std::mutex mtx;
    std::map<ProfileKey, CyclePowerProfile> entries;
    CycleProfileCacheStats stats;
};

} // namespace odrips

#endif // ODRIPS_CORE_PROFILE_CACHE_HH
