/**
 * @file
 * Memoised cycle-profile measurements.
 *
 * measureCycleProfile() builds a whole Platform, runs an entry/exit
 * cycle, and throws the platform away — and the break-even sweeps and
 * benches call it with the *same* (PlatformConfig, TechniqueSet) pair
 * over and over. The profile is a pure function of that pair (the
 * platform is constructed fresh inside the measurement and every
 * stochastic input is seeded from the config), so the result can be
 * memoised by a content hash of all the configuration fields.
 *
 * The cache is process-global and thread-safe; parallel sweeps hit it
 * from worker threads. Set ODRIPS_PROFILE_CACHE=0 to bypass it (every
 * call then re-measures, the historical behaviour).
 *
 * Two extensions make the memo servable beyond one process:
 *  - a ProfileStoreBackend (implemented by store::ResultStore, see
 *    src/store/) is consulted between the in-memory memo and a fresh
 *    measurement, so results persist and are shared across processes;
 *  - an optional entry cap (ODRIPS_PROFILE_CACHE_CAP / setCapacity)
 *    bounds the in-memory footprint with FIFO eviction — evicted keys
 *    fall back to the backend, then to re-measurement.
 */

#ifndef ODRIPS_CORE_PROFILE_CACHE_HH
#define ODRIPS_CORE_PROFILE_CACHE_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>

#include "core/profile.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace odrips
{

/** 128-bit content hash of a (PlatformConfig, TechniqueSet) pair. */
struct ProfileKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const ProfileKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }

    bool
    operator<(const ProfileKey &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/**
 * Hash every field of the configuration pair (including the nested
 * power budgets, flow timings, workload and memory configs) into a
 * ProfileKey. Two configs that differ in any field that can influence
 * the measured profile hash to different keys.
 */
ProfileKey profileKey(const PlatformConfig &cfg,
                      const TechniqueSet &techniques);

/**
 * A persistence layer behind the in-memory memo. Implementations must
 * be thread-safe: the cache calls them outside its own lock so a slow
 * disk never serialises parallel sweeps.
 *
 * Declared here (not in src/store/) so the core layer stays below the
 * store layer in the include DAG: core owns the seam, src/store/ plugs
 * the persistent ResultStore into it.
 */
class ProfileStoreBackend
{
  public:
    virtual ~ProfileStoreBackend() = default;

    /** Fetch @p key into @p out; false on a miss. */
    virtual bool fetch(const ProfileKey &key, CyclePowerProfile &out) = 0;

    /** Persist a freshly measured result (best effort). */
    virtual void persist(const ProfileKey &key, const PlatformConfig &cfg,
                         const TechniqueSet &techniques,
                         const CyclePowerProfile &profile) = 0;

    /** Append backend telemetry to a run report (default: nothing). */
    virtual void
    reportTo(std::ostream &os)
    {
        (void)os;
    }
};

/** Cache counters (monotonic; misses count actual re-measurements). */
struct CycleProfileCacheStats
{
    /** Served from the in-memory memo. */
    std::uint64_t hits = 0;
    /** Actually re-measured (memo and backend both missed). */
    std::uint64_t misses = 0;
    /** Served from the persistent backend (a memory miss that did not
     * have to re-measure). */
    std::uint64_t storeHits = 0;
    /** Entries added to the in-memory memo. */
    std::uint64_t inserts = 0;
    /** Entries dropped by the capacity cap (FIFO order). */
    std::uint64_t evictions = 0;

    std::uint64_t
    calls() const
    {
        return hits + storeHits + misses;
    }
};

/** Thread-safe memo of measureCycleProfile results. */
class CycleProfileCache
{
  public:
    /**
     * Return the cached profile for (@p cfg, @p techniques), measuring
     * it on a miss. Concurrent misses on the same key may both measure
     * (the results are identical; last insert wins) — the lock is not
     * held across the measurement (or the backend I/O) so parallel
     * sweeps don't serialise.
     */
    CyclePowerProfile getOrMeasure(const PlatformConfig &cfg,
                                   const TechniqueSet &techniques);

    CycleProfileCacheStats statistics() const;

    /** Number of distinct cached profiles. */
    std::size_t entryCount() const;

    /** Drop all entries and reset the counters. */
    void clear();

    /**
     * Bound the in-memory memo to @p entries (0 = unlimited, the
     * default). When full, the oldest-inserted entry is evicted.
     */
    void setCapacity(std::size_t entries);

    /**
     * Attach (or with nullptr detach) the persistence layer. Not
     * owned; the backend must outlive its attachment.
     */
    void setBackend(ProfileStoreBackend *backend);

    ProfileStoreBackend *backend() const;

    /** The process-global instance used by measureCycleProfile(). */
    static CycleProfileCache &global();

    /**
     * False when the ODRIPS_PROFILE_CACHE environment variable is "0"
     * (evaluated once per process).
     */
    static bool enabled();

  private:
    void insertLocked(const ProfileKey &key,
                      const CyclePowerProfile &profile);

    mutable std::mutex mtx;
    std::map<ProfileKey, CyclePowerProfile> entries;
    std::deque<ProfileKey> insertionOrder;
    std::size_t capacity = 0;
    ProfileStoreBackend *store = nullptr;
    CycleProfileCacheStats stats;
};

/**
 * stats::StatGroup view of a cache's counters, for reports that dump
 * stat hierarchies. update() refreshes the scalars from the cache;
 * call it right before dumping.
 */
class ProfileCacheStatGroup : public stats::StatGroup
{
  public:
    explicit ProfileCacheStatGroup(const CycleProfileCache &observed,
                                   stats::StatGroup *owner = nullptr);

    /** Copy the cache's current counters into the scalars. */
    void update();

  private:
    const CycleProfileCache &cache; // ckpt: skip(report-only view)
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar storeHits;
    stats::Scalar inserts;
    stats::Scalar evictions;
    stats::Scalar entries;
};

} // namespace odrips

#endif // ODRIPS_CORE_PROFILE_CACHE_HH
