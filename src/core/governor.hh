/**
 * @file
 * PMU idle-state governor (paper Sec. 2.2).
 *
 * Before entering an idle state the PMU looks at *latency tolerance
 * reporting* (LTR) from the devices and the *time to next timer event*
 * (TNTE) and picks the deepest C-state whose exit latency fits both.
 * DRIPS only pays off when the expected dwell clears its energy
 * break-even, so short idle periods land in shallower states.
 *
 * The governor evaluates a trace of idle dwells analytically against a
 * measured DRIPS cycle profile: shallower states are derived from the
 * C-state table's relative powers and latencies. This reproduces *why*
 * connected standby needs long dwells — and what selecting states
 * naively (always-DRIPS) costs on bursty workloads.
 */

#ifndef ODRIPS_CORE_GOVERNOR_HH
#define ODRIPS_CORE_GOVERNOR_HH

#include <map>
#include <string>
#include <vector>

#include "core/profile.hh"
#include "platform/cstate.hh"

namespace odrips
{

/** One governor decision. */
struct GovernorDecision
{
    const CState *state = nullptr;
    Tick ltr = 0;
    Tick tnte = 0;
};

/** Per-state model derived from the DRIPS profile + C-state table. */
struct DerivedStateModel
{
    std::string name;
    int index = 0;
    double idlePower = 0.0;      ///< battery watts while resident
    Tick entryLatency = 0;
    Tick exitLatency = 0;
    double transitionEnergy = 0.0; ///< battery joules per entry+exit
    Tick breakEvenVsShallowest = 0;
};

/** Result of a governed standby evaluation. */
struct GovernedResult
{
    double averagePower = 0.0;
    /** Residency fraction per state name (idle time only). */
    std::map<std::string, double> stateResidency;
    /** Decisions taken, one per idle period. */
    std::vector<GovernorDecision> decisions;
};

/** The governor. */
class IdleGovernor
{
  public:
    /**
     * @param table         the platform's C-state table
     * @param drips_profile measured cycle profile of the deepest state
     * @param ltr           current device latency tolerance
     */
    IdleGovernor(const CStateTable &table,
                 const CyclePowerProfile &drips_profile,
                 Tick ltr = 3 * oneMs);

    /** The derived per-state models (ordered shallow to deep). */
    const std::vector<DerivedStateModel> &states() const
    {
        return models;
    }

    /** Choose a state for an idle period with the given TNTE. */
    GovernorDecision decide(Tick tnte) const;

    /**
     * Choose the state that minimizes *energy* for a known dwell
     * (oracle policy): latency-feasible and past its break-even.
     */
    GovernorDecision decideOracle(Tick dwell) const;

    /** Energy of one idle period of @p dwell spent in @p state. */
    double idleEnergy(const DerivedStateModel &state, Tick dwell) const;

    /**
     * Evaluate a sequence of idle dwells with a policy.
     *
     * @param dwells       idle-period lengths
     * @param active       active window between idle periods
     * @param oracle       use the energy-oracle policy instead of the
     *                     LTR/TNTE rule
     * @param force_state  if >= 0, always use the state with this
     *                     index (e.g. always-DRIPS)
     */
    GovernedResult evaluate(const std::vector<Tick> &dwells, Tick active,
                            bool oracle = false,
                            int force_state = -1) const;

    const DerivedStateModel &modelFor(const CState &state) const;

  private:
    const CStateTable &table;
    CyclePowerProfile drips;
    Tick ltr;
    std::vector<DerivedStateModel> models;
};

} // namespace odrips

#endif // ODRIPS_CORE_GOVERNOR_HH
