#include "mem/memory_controller.hh"

#include "sim/logging.hh"

namespace odrips
{

MemoryController::MemoryController(std::string name, MainMemory &memory,
                                   SecureMemoryPath *secure_path)
    : Named(std::move(name)), mem(memory), securePath(secure_path)
{
}

void
MemoryController::setProtectedRange(const RangeRegister &range)
{
    ODRIPS_ASSERT(range.base + range.size <= mem.capacityBytes(),
                  name(), ": protected range beyond memory capacity");
    rangeReg = range;
}

void
MemoryController::checkAccess(std::uint64_t addr, std::uint64_t len) const
{
    ODRIPS_ASSERT(on, name(), ": access while power-gated");
    ODRIPS_ASSERT(len > 0, name(), ": zero-length access");
    ODRIPS_ASSERT(addr + len <= mem.capacityBytes(),
                  name(), ": access beyond memory capacity");
    // An access must be entirely inside or entirely outside the
    // protected range; straddling accesses indicate a firmware bug.
    if (rangeReg.size > 0 && rangeReg.overlaps(addr, len)) {
        ODRIPS_ASSERT(rangeReg.contains(addr, len),
                      name(), ": access straddles the protected range");
    }
}

RoutedAccess
MemoryController::write(std::uint64_t addr, const std::uint8_t *data,
                        std::uint64_t len, Tick now)
{
    checkAccess(addr, len);
    RoutedAccess out;
    if (rangeReg.size > 0 && rangeReg.contains(addr, len)) {
        ODRIPS_ASSERT(securePath, name(),
                      ": protected write with no MEE attached");
        out.secure = true;
        ++secureCount;
        out.result = securePath->secureWrite(addr, data, len, now);
    } else {
        ++directCount;
        out.result = mem.write(addr, data, len, now);
    }
    return out;
}

RoutedAccess
MemoryController::read(std::uint64_t addr, std::uint8_t *data,
                       std::uint64_t len, Tick now)
{
    checkAccess(addr, len);
    RoutedAccess out;
    if (rangeReg.size > 0 && rangeReg.contains(addr, len)) {
        ODRIPS_ASSERT(securePath, name(),
                      ": protected read with no MEE attached");
        out.secure = true;
        ++secureCount;
        out.result = securePath->secureRead(addr, data, len, now,
                                            out.authentic);
    } else {
        ++directCount;
        out.result = mem.read(addr, data, len, now);
    }
    return out;
}

} // namespace odrips
