/**
 * @file
 * Memory controller with protected-range routing.
 *
 * Implements the paper's "Context/SGX range register" (Sec. 6.2): a
 * range register inside the memory controller decides whether an access
 * targets the protected region; protected accesses are redirected to the
 * memory encryption engine (MEE) before reaching DRAM.
 *
 * The controller itself is power-gated in DRIPS; its (small)
 * configuration is part of the Boot SRAM context and it must be
 * restored before any exit-flow DRAM access (enforced with a powered
 * flag).
 */

#ifndef ODRIPS_MEM_MEMORY_CONTROLLER_HH
#define ODRIPS_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "mem/main_memory.hh"
#include "sim/checkpoint/serializer.hh"
#include "sim/named.hh"

namespace odrips
{

/** Interface implemented by the MEE: an authenticated-encryption path
 * to main memory. */
class SecureMemoryPath
{
  public:
    virtual ~SecureMemoryPath() = default;

    virtual MemAccessResult secureWrite(std::uint64_t addr,
                                        const std::uint8_t *data,
                                        std::uint64_t len, Tick now) = 0;

    /**
     * @return access result; sets @p authentic to false when the
     * integrity check fails (tampered memory).
     */
    virtual MemAccessResult secureRead(std::uint64_t addr,
                                       std::uint8_t *data,
                                       std::uint64_t len, Tick now,
                                       bool &authentic) = 0;
};

/** A protected physical range (the Context/SGX range register). */
struct RangeRegister
{
    std::uint64_t base = 0;
    std::uint64_t size = 0;

    bool
    contains(std::uint64_t addr, std::uint64_t len) const
    {
        return addr >= base && addr + len <= base + size;
    }

    bool
    overlaps(std::uint64_t addr, std::uint64_t len) const
    {
        return addr < base + size && addr + len > base;
    }
};

/** Outcome of a routed memory access. */
struct RoutedAccess
{
    MemAccessResult result;
    bool secure = false;
    bool authentic = true;
};

/** The memory controller. */
class MemoryController : public Named
{
  public:
    MemoryController(std::string name, MainMemory &memory,
                     SecureMemoryPath *secure_path = nullptr);

    /** Program the protected range register (PMU firmware does this
     * before triggering the context FSMs). */
    void setProtectedRange(const RangeRegister &range);
    const RangeRegister &protectedRange() const { return rangeReg; }

    /** Attach/replace the secure path (MEE). */
    void setSecurePath(SecureMemoryPath *path) { securePath = path; }

    bool powered() const { return on; }

    /** Power-gate / restore the controller (Boot FSM). */
    void setPowered(bool powered) { on = powered; }

    /** Routed write: secure if the range register matches. */
    RoutedAccess write(std::uint64_t addr, const std::uint8_t *data,
                       std::uint64_t len, Tick now);

    /** Routed read. */
    RoutedAccess read(std::uint64_t addr, std::uint8_t *data,
                      std::uint64_t len, Tick now);

    MainMemory &memory() const { return mem; }

    std::uint64_t secureAccesses() const { return secureCount; }
    std::uint64_t directAccesses() const { return directCount; }

    /** @name Checkpoint support @{ */
    void
    saveState(ckpt::Writer &w) const
    {
        w.u64(rangeReg.base);
        w.u64(rangeReg.size);
        w.b(on);
        w.u64(secureCount);
        w.u64(directCount);
    }

    void
    loadState(ckpt::Reader &r)
    {
        rangeReg.base = r.u64();
        rangeReg.size = r.u64();
        on = r.b();
        secureCount = r.u64();
        directCount = r.u64();
    }
    /** @} */

  private:
    void checkAccess(std::uint64_t addr, std::uint64_t len) const;

    MainMemory &mem;
    SecureMemoryPath *securePath; // ckpt: skip(wiring pointer, rebound at construction)
    RangeRegister rangeReg;
    bool on = true;
    std::uint64_t secureCount = 0;
    std::uint64_t directCount = 0;
};

} // namespace odrips

#endif // ODRIPS_MEM_MEMORY_CONTROLLER_HH
