/**
 * @file
 * Abstract main-memory device: the interface shared by the DDR3L DRAM
 * model and the PCM model so the context-transfer path and the platform
 * are agnostic to the memory technology (Sec. 8.3 swaps them).
 */

#ifndef ODRIPS_MEM_MAIN_MEMORY_HH
#define ODRIPS_MEM_MAIN_MEMORY_HH

#include <cstdint>

#include "mem/backing_store.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Timing outcome of a memory access. */
struct MemAccessResult
{
    Tick latency = 0;
    std::uint64_t bytes = 0;
};

/** Retention behaviour of a main memory technology. */
enum class RetentionKind
{
    SelfRefresh, ///< volatile; data retained only via self-refresh (DRAM)
    NonVolatile, ///< data retained with power removed (PCM)
};

/** Byte-addressable main memory with timing, energy, and retention. */
class MainMemory : public Named
{
  public:
    using Named::Named;

    /** Backing bytes (shared by functional and timing paths). */
    virtual BackingStore &store() = 0;
    virtual const BackingStore &store() const = 0;

    /** Functional + timed read. */
    virtual MemAccessResult read(std::uint64_t addr, std::uint8_t *data,
                                 std::uint64_t len, Tick now) = 0;

    /** Functional + timed write. */
    virtual MemAccessResult write(std::uint64_t addr,
                                  const std::uint8_t *data,
                                  std::uint64_t len, Tick now) = 0;

    /** Retention technology of this memory. */
    virtual RetentionKind retentionKind() const = 0;

    /**
     * Enter the retention state (self-refresh for DRAM; full power-off
     * for a non-volatile memory). @return transition latency.
     */
    virtual Tick enterRetention(Tick now) = 0;

    /** Leave the retention state. @return transition latency. */
    virtual Tick exitRetention(Tick now) = 0;

    virtual bool inRetention() const = 0;

    /**
     * Set the sustained traffic level while the platform is active;
     * the device adds the corresponding access power on top of its
     * idle power (technology-dependent energy per byte). Cleared on
     * retention entry.
     */
    virtual void setActiveTraffic(double bytes_per_sec, Tick now) = 0;

    /** Peak sequential bandwidth in bytes/second. */
    virtual double peakBandwidth() const = 0;

    /** Capacity in bytes. */
    virtual std::uint64_t capacityBytes() const = 0;
};

} // namespace odrips

#endif // ODRIPS_MEM_MAIN_MEMORY_HH
