/**
 * @file
 * DDR3L DRAM model (paper Table 1: DDR3L-1.6GHz, non-ECC, dual channel,
 * 8 GB).
 *
 * Models: access timing (fixed access latency plus bandwidth-limited
 * streaming), self-refresh entry/exit with the CKE handshake, frequency
 * scaling (Fig. 6(c) runs 1.6 / 1.067 / 0.8 GHz), and per-state power.
 * The CKE driver is accounted separately because in ODRIPS-PCM the paper
 * credits the removal of CKE drive power to the processor.
 */

#ifndef ODRIPS_MEM_DRAM_HH
#define ODRIPS_MEM_DRAM_HH

#include <cstdint>

#include "mem/main_memory.hh"
#include "power/component.hh"
#include "sim/checkpoint/serializer.hh"
#include "sim/logging.hh"

namespace odrips
{

/** Configuration of the DDR3L device. */
struct DramConfig
{
    /** Data rate in transfers/second (paper: "DDR3L-1.6GHz"). */
    double dataRateHz = 1.6e9;
    /** Number of channels (Table 1: dual-channel). */
    unsigned channels = 2;
    /** Bus width per channel in bytes (64-bit). */
    unsigned busBytes = 8;
    /** Total capacity in bytes (Table 1: 8 GB). */
    std::uint64_t capacityBytes = 8ULL << 30;

    /** First-access latency (row activate + CAS), nanoseconds. */
    double accessLatencyNs = 50.0;
    /** Self-refresh entry latency (CKE low + tCKESR), nanoseconds. */
    double selfRefreshEntryNs = 200.0;
    /** Self-refresh exit latency (tXS + DLL relock), nanoseconds. */
    double selfRefreshExitNs = 800.0;

    /** Nominal self-refresh power for the whole array. */
    Milliwatts selfRefreshPower = Milliwatts::fromWatts(7.0e-3);
    /** Nominal idle (powered, CKE high, no traffic) power. */
    Milliwatts idlePower = Milliwatts::fromWatts(55.0e-3);
    /** Additional power while streaming at full bandwidth. */
    Milliwatts activePower = Milliwatts::fromWatts(145.0e-3);
    /** Access energy per byte transferred, joules. */
    double energyPerByte = 25.0e-12;
    /** Processor-side CKE drive power while self-refresh is held. */
    Milliwatts ckeDrivePower = Milliwatts::fromWatts(1.4e-3);

    /** Effective peak bandwidth in bytes/second. */
    double
    peakBandwidth() const
    {
        return dataRateHz * busBytes * channels;
    }

    /** Return a copy clocked at a different data rate; idle/active
     * power scale with frequency (I/O and DLL power), self-refresh
     * power does not (refresh is temperature-driven). */
    DramConfig withDataRate(double new_rate) const;
};

/** The DDR3L device. */
class Dram : public MainMemory
{
  public:
    /**
     * @param name       instance name
     * @param config     device configuration
     * @param array_comp power component for the DRAM array/IO power
     * @param cke_comp   power component for the processor-side CKE
     *                   drive (active while self-refresh is maintained);
     *                   may be nullptr
     */
    Dram(std::string name, const DramConfig &config,
         PowerComponent *array_comp = nullptr,
         PowerComponent *cke_comp = nullptr);

    BackingStore &store() override { return bytes; }
    const BackingStore &store() const override { return bytes; }

    MemAccessResult read(std::uint64_t addr, std::uint8_t *data,
                         std::uint64_t len, Tick now) override;
    MemAccessResult write(std::uint64_t addr, const std::uint8_t *data,
                          std::uint64_t len, Tick now) override;

    RetentionKind
    retentionKind() const override
    {
        return RetentionKind::SelfRefresh;
    }

    Tick enterRetention(Tick now) override;
    Tick exitRetention(Tick now) override;
    bool inRetention() const override { return selfRefreshing; }

    void setActiveTraffic(double bytes_per_sec, Tick now) override;

    double peakBandwidth() const override { return cfg.peakBandwidth(); }
    std::uint64_t capacityBytes() const override
    {
        return cfg.capacityBytes;
    }

    const DramConfig &config() const { return cfg; }

    /** Total bytes transferred (reads + writes). */
    std::uint64_t bytesTransferred() const { return transferred; }

    /** Accumulated access energy. */
    Millijoules accessEnergy() const { return accessTotal; }

    /**
     * @name Checkpoint support
     * Device state plus backing-store contents; the power components'
     * levels are restored separately through the PowerModel.
     * @{
     */
    void
    saveState(ckpt::Writer &w) const
    {
        w.b(selfRefreshing);
        w.f64(trafficPower.watts());
        w.u64(transferred);
        w.f64(accessTotal.joules());
        bytes.saveState(w);
    }

    void
    loadState(ckpt::Reader &r)
    {
        selfRefreshing = r.b();
        trafficPower = Milliwatts::fromWatts(r.f64());
        transferred = r.u64();
        accessTotal = Millijoules::fromJoules(r.f64());
        bytes.loadState(r);
    }
    /** @} */

  private:
    MemAccessResult access(std::uint64_t addr, std::uint64_t len,
                           Tick now);
    void updatePower(Tick now);

    DramConfig cfg;
    BackingStore bytes;
    PowerComponent *arrayComp; // ckpt: via(PowerModel)
    PowerComponent *ckeComp; // ckpt: via(PowerModel)
    bool selfRefreshing = false;
    Milliwatts trafficPower;
    std::uint64_t transferred = 0;
    Millijoules accessTotal;
};

} // namespace odrips

#endif // ODRIPS_MEM_DRAM_HH
