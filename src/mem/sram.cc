#include "mem/sram.hh"

#include <algorithm>
#include <cstring>

namespace odrips
{

Sram::Sram(std::string name, const SramConfig &config,
           PowerComponent *power_comp)
    : Named(std::move(name)), cfg(config), data_(config.capacityBytes, 0),
      comp(power_comp)
{
    if (comp)
        comp->setPower(leakagePower(state_), 0);
}

Milliwatts
Sram::leakagePower(SramState state) const
{
    double per_byte = cfg.hpRetentionLeakPerByte;
    if (cfg.process == SramProcess::LowPower)
        per_byte /= cfg.processLeakRatio;

    const Milliwatts retention = Milliwatts::fromWatts(
        per_byte * static_cast<double>(cfg.capacityBytes));
    switch (state) {
      case SramState::Off:
        return Milliwatts::zero();
      case SramState::Retention:
        return retention;
      case SramState::Active:
        return retention * cfg.activeLeakMultiplier;
    }
    return Milliwatts::zero();
}

void
Sram::setState(SramState new_state, Tick now)
{
    if (new_state == state_)
        return;
    if (new_state == SramState::Off) {
        // Power removed: SRAM is volatile.
        std::fill(data_.begin(), data_.end(), 0);
    }
    state_ = new_state;
    if (comp)
        comp->setPower(leakagePower(state_), now);
}

Tick
Sram::accessLatency(std::uint64_t len) const
{
    const double stream =
        static_cast<double>(len) / cfg.streamBandwidth;
    return secondsToTicks(cfg.accessLatencyNs * 1e-9 + stream);
}

Tick
Sram::read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len)
{
    ODRIPS_ASSERT(state_ == SramState::Active,
                  name(), ": read while not active");
    ODRIPS_ASSERT(addr + len <= data_.size(), name(), ": read out of range");
    std::memcpy(data, data_.data() + addr, len);
    accessTotal += Millijoules::fromJoules(
        cfg.energyPerByte * static_cast<double>(len));
    return accessLatency(len);
}

Tick
Sram::write(std::uint64_t addr, const std::uint8_t *data, std::uint64_t len)
{
    ODRIPS_ASSERT(state_ == SramState::Active,
                  name(), ": write while not active");
    ODRIPS_ASSERT(addr + len <= data_.size(),
                  name(), ": write out of range");
    std::memcpy(data_.data() + addr, data, len);
    accessTotal += Millijoules::fromJoules(
        cfg.energyPerByte * static_cast<double>(len));
    return accessLatency(len);
}

} // namespace odrips
