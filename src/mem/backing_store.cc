#include "mem/backing_store.hh"

namespace odrips
{

BackingStore::Page &
BackingStore::pageFor(std::uint64_t addr)
{
    const std::uint64_t pn = addr / pageBytes;
    auto it = pages.find(pn);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(pn, std::move(page)).first;
    }
    return *it->second;
}

const BackingStore::Page *
BackingStore::pageForRead(std::uint64_t addr) const
{
    const auto it = pages.find(addr / pageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

void
BackingStore::write(std::uint64_t addr, const std::uint8_t *data,
                    std::uint64_t len)
{
    ODRIPS_ASSERT(addr + len <= capacity, "write beyond memory capacity");
    while (len > 0) {
        Page &page = pageFor(addr);
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        std::memcpy(page.data() + offset, data, chunk);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
BackingStore::read(std::uint64_t addr, std::uint8_t *data,
                   std::uint64_t len) const
{
    ODRIPS_ASSERT(addr + len <= capacity, "read beyond memory capacity");
    while (len > 0) {
        const Page *page = pageForRead(addr);
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (page)
            std::memcpy(data, page->data() + offset, chunk);
        else
            std::memset(data, 0, chunk);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
BackingStore::flipBit(std::uint64_t addr, unsigned bit)
{
    ODRIPS_ASSERT(bit < 8, "bit index out of range");
    Page &page = pageFor(addr);
    page[addr % pageBytes] ^= static_cast<std::uint8_t>(1u << bit);
}

} // namespace odrips
