#include "mem/backing_store.hh"

#include <algorithm>

namespace odrips
{

BackingStore::Page &
BackingStore::pageFor(std::uint64_t addr)
{
    const std::uint64_t pn = addr / pageBytes;
    auto it = pages.find(pn);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(pn, std::move(page)).first;
    }
    return *it->second;
}

const BackingStore::Page *
BackingStore::pageForRead(std::uint64_t addr) const
{
    const auto it = pages.find(addr / pageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

void
BackingStore::write(std::uint64_t addr, const std::uint8_t *data,
                    std::uint64_t len)
{
    ODRIPS_ASSERT(addr + len <= capacity, "write beyond memory capacity");
    while (len > 0) {
        Page &page = pageFor(addr);
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        std::memcpy(page.data() + offset, data, chunk);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
BackingStore::read(std::uint64_t addr, std::uint8_t *data,
                   std::uint64_t len) const
{
    ODRIPS_ASSERT(addr + len <= capacity, "read beyond memory capacity");
    while (len > 0) {
        const Page *page = pageForRead(addr);
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (page)
            std::memcpy(data, page->data() + offset, chunk);
        else
            std::memset(data, 0, chunk);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
BackingStore::flipBit(std::uint64_t addr, unsigned bit)
{
    ODRIPS_ASSERT(bit < 8, "bit index out of range");
    Page &page = pageFor(addr);
    page[addr % pageBytes] ^= static_cast<std::uint8_t>(1u << bit);
}

void
BackingStore::saveState(ckpt::Writer &w) const
{
    w.u64(capacity);
    std::vector<std::uint64_t> pageNumbers;
    pageNumbers.reserve(pages.size());
    // odrips-lint: allow(unordered-iter) — keys are sorted below.
    for (const auto &entry : pages)
        pageNumbers.push_back(entry.first);
    std::sort(pageNumbers.begin(), pageNumbers.end());
    w.u64(pageNumbers.size());
    for (const std::uint64_t pn : pageNumbers) {
        w.u64(pn);
        w.bytes(pages.at(pn)->data(), pageBytes);
    }
}

void
BackingStore::loadState(ckpt::Reader &r)
{
    if (r.u64() != capacity)
        throw ckpt::SnapshotError("backing-store capacity mismatch");
    pages.clear();
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pn = r.u64();
        if (pn > (capacity - 1) / pageBytes)
            throw ckpt::SnapshotError("backing-store page out of range");
        auto page = std::make_unique<Page>();
        r.bytes(page->data(), pageBytes);
        pages[pn] = std::move(page);
    }
}

} // namespace odrips
