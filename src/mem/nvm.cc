#include "mem/nvm.hh"

#include <algorithm>
#include <cstring>

namespace odrips
{

Pcm::Pcm(std::string name, const PcmConfig &config,
         PowerComponent *power_comp)
    : MainMemory(std::move(name)), cfg(config), bytes(config.capacityBytes),
      comp(power_comp)
{
    updatePower(0);
}

void
Pcm::updatePower(Tick now)
{
    if (comp) {
        comp->setPower(standby ? cfg.standbyPower
                               : cfg.idlePower + trafficPower,
                       now);
    }
}

void
Pcm::setActiveTraffic(double bytes_per_sec, Tick now)
{
    ODRIPS_ASSERT(bytes_per_sec >= 0, name(), ": negative traffic");
    const double energy_per_byte =
        cfg.trafficReadFraction * cfg.readEnergyPerByte +
        (1.0 - cfg.trafficReadFraction) * cfg.writeEnergyPerByte;
    trafficPower = Milliwatts::fromWatts(energy_per_byte * bytes_per_sec);
    updatePower(now);
}

MemAccessResult
Pcm::read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len,
          Tick now)
{
    (void)now;
    ODRIPS_ASSERT(!standby, name(), ": read while in standby");
    MemAccessResult r;
    r.bytes = len;
    r.latency = secondsToTicks(
        cfg.readLatencyNs * 1e-9 +
        static_cast<double>(len) / cfg.readBandwidth);
    accessTotal += Millijoules::fromJoules(
        cfg.readEnergyPerByte * static_cast<double>(len));
    bytes.read(addr, data, len);
    return r;
}

MemAccessResult
Pcm::write(std::uint64_t addr, const std::uint8_t *data, std::uint64_t len,
           Tick now)
{
    (void)now;
    ODRIPS_ASSERT(!standby, name(), ": write while in standby");
    MemAccessResult r;
    r.bytes = len;
    r.latency = secondsToTicks(
        cfg.writeLatencyNs * 1e-9 +
        static_cast<double>(len) / cfg.writeBandwidth);
    accessTotal += Millijoules::fromJoules(
        cfg.writeEnergyPerByte * static_cast<double>(len));
    bytes.write(addr, data, len);

    // Endurance tracking per 64 B line.
    for (std::uint64_t line = addr / lineBytes;
         line <= (addr + len - 1) / lineBytes; ++line) {
        const std::uint64_t count = ++lineWrites[line];
        maxWrites = std::max(maxWrites, count);
    }
    return r;
}

Tick
Pcm::enterRetention(Tick now)
{
    ODRIPS_ASSERT(!standby, name(), ": already in standby");
    standby = true;
    trafficPower = Milliwatts::zero();
    // Powering down PCM banks is fast: no refresh state to set up.
    const Tick latency = secondsToTicks(50e-9);
    updatePower(now + latency);
    return latency;
}

Tick
Pcm::exitRetention(Tick now)
{
    ODRIPS_ASSERT(standby, name(), ": not in standby");
    standby = false;
    const Tick latency = secondsToTicks(200e-9);
    updatePower(now + latency);
    return latency;
}

Emram::Emram(std::string name, const EmramConfig &config,
             PowerComponent *power_comp)
    : Named(std::move(name)), cfg(config), data_(config.capacityBytes, 0),
      comp(power_comp)
{
    if (comp)
        comp->setPower(Milliwatts::zero(), 0);
}

void
Emram::setPowered(bool powered, Tick now)
{
    if (powered == on)
        return;
    on = powered;
    // Contents persist either way: that is the point of MRAM.
    if (comp)
        comp->setPower(on ? cfg.activePower : Milliwatts::zero(), now);
}

Tick
Emram::accessLatency(std::uint64_t len, bool is_write) const
{
    const double factor = is_write ? cfg.pessimism : 1.0;
    const double stream = static_cast<double>(len) / cfg.streamBandwidth;
    return secondsToTicks(
        (cfg.accessLatencyNs * 1e-9 + stream) * factor);
}

Tick
Emram::read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len)
{
    ODRIPS_ASSERT(on, name(), ": read while powered off");
    ODRIPS_ASSERT(addr + len <= data_.size(), name(), ": read out of range");
    std::memcpy(data, data_.data() + addr, len);
    accessTotal += Millijoules::fromJoules(
        cfg.energyPerByte * static_cast<double>(len));
    return accessLatency(len, false);
}

Tick
Emram::write(std::uint64_t addr, const std::uint8_t *data,
             std::uint64_t len)
{
    ODRIPS_ASSERT(on, name(), ": write while powered off");
    ODRIPS_ASSERT(addr + len <= data_.size(),
                  name(), ": write out of range");
    std::memcpy(data_.data() + addr, data, len);
    accessTotal += Millijoules::fromJoules(
        cfg.energyPerByte * cfg.pessimism * static_cast<double>(len));
    ++writes;
    return accessLatency(len, true);
}

} // namespace odrips
