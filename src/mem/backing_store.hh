/**
 * @file
 * Sparse byte-addressable backing store shared by all memory models.
 *
 * Capacity can be many gigabytes while only touched pages allocate
 * storage. Holding real bytes (rather than modelling timing only) lets
 * the security tests corrupt DRAM contents and watch the memory
 * encryption engine detect it.
 */

#ifndef ODRIPS_MEM_BACKING_STORE_HH
#define ODRIPS_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/checkpoint/serializer.hh"
#include "sim/logging.hh"

namespace odrips
{

/** Sparse, page-granular byte store. */
class BackingStore
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    explicit BackingStore(std::uint64_t capacity_bytes)
        : capacity(capacity_bytes)
    {}

    std::uint64_t capacityBytes() const { return capacity; }

    /** Write @p len bytes at @p addr. */
    void write(std::uint64_t addr, const std::uint8_t *data,
               std::uint64_t len);

    /** Read @p len bytes at @p addr; untouched bytes read as zero. */
    void read(std::uint64_t addr, std::uint8_t *data,
              std::uint64_t len) const;

    /** Convenience overloads for vectors. */
    void
    write(std::uint64_t addr, const std::vector<std::uint8_t> &data)
    {
        write(addr, data.data(), data.size());
    }

    std::vector<std::uint8_t>
    read(std::uint64_t addr, std::uint64_t len) const
    {
        std::vector<std::uint8_t> out(len);
        read(addr, out.data(), len);
        return out;
    }

    /** Number of pages currently materialized. */
    std::size_t touchedPages() const { return pages.size(); }

    /** Drop all contents (e.g. power loss on a volatile memory). */
    void clear() { pages.clear(); }

    /** Flip a single bit — fault injection for security tests. */
    void flipBit(std::uint64_t addr, unsigned bit);

    /**
     * @name Checkpoint support
     * Pages are written in ascending page order so the image is
     * deterministic regardless of hash-map iteration order.
     * @{
     */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);
    /** @} */

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page &pageFor(std::uint64_t addr);
    const Page *pageForRead(std::uint64_t addr) const;

    std::uint64_t capacity;
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace odrips

#endif // ODRIPS_MEM_BACKING_STORE_HH
