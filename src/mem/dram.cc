#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

namespace odrips
{

DramConfig
DramConfig::withDataRate(double new_rate) const
{
    ODRIPS_ASSERT(new_rate > 0, "DRAM data rate must be positive");
    DramConfig c = *this;
    const double ratio = new_rate / dataRateHz;
    c.dataRateHz = new_rate;
    // IO/DLL power tracks frequency; self-refresh power does not.
    c.idlePower = idlePower * (0.4 + 0.6 * ratio);
    c.activePower = activePower * ratio;
    return c;
}

Dram::Dram(std::string name, const DramConfig &config,
           PowerComponent *array_comp, PowerComponent *cke_comp)
    : MainMemory(std::move(name)), cfg(config), bytes(config.capacityBytes),
      arrayComp(array_comp), ckeComp(cke_comp)
{
    updatePower(0);
}

void
Dram::updatePower(Tick now)
{
    if (arrayComp) {
        arrayComp->setPower(selfRefreshing
                                ? cfg.selfRefreshPower
                                : cfg.idlePower + trafficPower,
                            now);
    }
    if (ckeComp) {
        ckeComp->setPower(selfRefreshing ? cfg.ckeDrivePower
                                         : Milliwatts::zero(),
                          now);
    }
}

void
Dram::setActiveTraffic(double bytes_per_sec, Tick now)
{
    ODRIPS_ASSERT(bytes_per_sec >= 0, name(), ": negative traffic");
    trafficPower =
        std::min(Milliwatts::fromWatts(cfg.energyPerByte * bytes_per_sec),
                 cfg.activePower);
    updatePower(now);
}

MemAccessResult
Dram::access(std::uint64_t addr, std::uint64_t len, Tick now)
{
    (void)addr;
    (void)now;
    ODRIPS_ASSERT(!selfRefreshing,
                  name(), ": access while in self-refresh");
    MemAccessResult r;
    r.bytes = len;
    const double stream_seconds =
        static_cast<double>(len) / cfg.peakBandwidth();
    r.latency = secondsToTicks(cfg.accessLatencyNs * 1e-9 + stream_seconds);
    transferred += len;
    accessTotal += Millijoules::fromJoules(
        cfg.energyPerByte * static_cast<double>(len));
    return r;
}

MemAccessResult
Dram::read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len,
           Tick now)
{
    MemAccessResult r = access(addr, len, now);
    bytes.read(addr, data, len);
    return r;
}

MemAccessResult
Dram::write(std::uint64_t addr, const std::uint8_t *data,
            std::uint64_t len, Tick now)
{
    MemAccessResult r = access(addr, len, now);
    bytes.write(addr, data, len);
    return r;
}

Tick
Dram::enterRetention(Tick now)
{
    ODRIPS_ASSERT(!selfRefreshing, name(), ": already in self-refresh");
    selfRefreshing = true;
    trafficPower = Milliwatts::zero();
    const Tick latency = secondsToTicks(cfg.selfRefreshEntryNs * 1e-9);
    updatePower(now + latency);
    return latency;
}

Tick
Dram::exitRetention(Tick now)
{
    ODRIPS_ASSERT(selfRefreshing, name(), ": not in self-refresh");
    selfRefreshing = false;
    const Tick latency = secondsToTicks(cfg.selfRefreshExitNs * 1e-9);
    updatePower(now + latency);
    return latency;
}

} // namespace odrips
