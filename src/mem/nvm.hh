/**
 * @file
 * Emerging non-volatile memory models (paper Sec. 8.3).
 *
 *  - Pcm: phase-change memory used *as main memory* in place of DRAM
 *    (ODRIPS-PCM). Non-volatility removes self-refresh and the CKE
 *    drive, at the cost of slower, more energetic accesses and finite
 *    write endurance.
 *  - Emram: embedded MRAM replacing the on-chip save/restore SRAMs
 *    (ODRIPS-MRAM). The paper assumes an *optimistic* design with
 *    SRAM-comparable endurance, power and performance; the model keeps
 *    a pessimism knob so the assumption can be relaxed.
 */

#ifndef ODRIPS_MEM_NVM_HH
#define ODRIPS_MEM_NVM_HH

#include <algorithm>
#include <cstdint>

#include "mem/main_memory.hh"
#include "mem/sram.hh"
#include "power/component.hh"
#include "sim/checkpoint/serializer.hh"

namespace odrips
{

/** PCM device configuration. */
struct PcmConfig
{
    std::uint64_t capacityBytes = 8ULL << 30;

    /** Read array latency, nanoseconds (slower than DRAM). */
    double readLatencyNs = 150.0;
    /** Write (SET/RESET pulse) latency, nanoseconds. */
    double writeLatencyNs = 500.0;

    /** Peak read bandwidth, bytes/s. */
    double readBandwidth = 12.8e9;
    /** Peak write bandwidth, bytes/s (write-limited). */
    double writeBandwidth = 3.2e9;

    /** Idle (powered) power. */
    Milliwatts idlePower = Milliwatts::fromWatts(40.0e-3);
    /** Standby power with banks powered down — no refresh needed. */
    Milliwatts standbyPower = Milliwatts::zero();

    /** Read energy per byte, joules. */
    double readEnergyPerByte = 50.0e-12;
    /** Write energy per byte, joules (RESET pulses are costly). */
    double writeEnergyPerByte = 400.0e-12;

    /** Rated write endurance per cell (typ. 1e8 for PCM). */
    std::uint64_t enduranceWrites = 100000000ULL;

    /** Fraction of active-traffic bytes that are reads (the rest are
     * costly RESET/SET writes). */
    double trafficReadFraction = 0.8;
};

/** Phase-change main memory. */
class Pcm : public MainMemory
{
  public:
    Pcm(std::string name, const PcmConfig &config,
        PowerComponent *comp = nullptr);

    BackingStore &store() override { return bytes; }
    const BackingStore &store() const override { return bytes; }

    MemAccessResult read(std::uint64_t addr, std::uint8_t *data,
                         std::uint64_t len, Tick now) override;
    MemAccessResult write(std::uint64_t addr, const std::uint8_t *data,
                          std::uint64_t len, Tick now) override;

    RetentionKind
    retentionKind() const override
    {
        return RetentionKind::NonVolatile;
    }

    Tick enterRetention(Tick now) override;
    Tick exitRetention(Tick now) override;
    bool inRetention() const override { return standby; }

    void setActiveTraffic(double bytes_per_sec, Tick now) override;

    double peakBandwidth() const override { return cfg.readBandwidth; }
    std::uint64_t capacityBytes() const override
    {
        return cfg.capacityBytes;
    }

    const PcmConfig &config() const { return cfg; }

    /** Max per-line write count observed (endurance tracking). */
    std::uint64_t maxLineWrites() const { return maxWrites; }

    /** Fraction of rated endurance consumed by the hottest line. */
    double
    enduranceConsumed() const
    {
        return static_cast<double>(maxWrites) /
               static_cast<double>(cfg.enduranceWrites);
    }

    /** Accumulated access energy. */
    Millijoules accessEnergy() const { return accessTotal; }

    /**
     * @name Checkpoint support
     * Per-line write counts serialize in ascending line order so the
     * image is independent of hash-map iteration order.
     * @{
     */
    void
    saveState(ckpt::Writer &w) const
    {
        w.b(standby);
        w.f64(trafficPower.watts());
        w.f64(accessTotal.joules());
        w.u64(maxWrites);
        std::vector<std::uint64_t> lineIds;
        lineIds.reserve(lineWrites.size());
        // odrips-lint: allow(unordered-iter) — keys are sorted below.
        for (const auto &entry : lineWrites)
            lineIds.push_back(entry.first);
        std::sort(lineIds.begin(), lineIds.end());
        w.u64(lineIds.size());
        for (const std::uint64_t line : lineIds) {
            w.u64(line);
            w.u64(lineWrites.at(line));
        }
        bytes.saveState(w);
    }

    void
    loadState(ckpt::Reader &r)
    {
        standby = r.b();
        trafficPower = Milliwatts::fromWatts(r.f64());
        accessTotal = Millijoules::fromJoules(r.f64());
        maxWrites = r.u64();
        lineWrites.clear();
        const std::uint64_t count = r.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t line = r.u64();
            lineWrites[line] = r.u64();
        }
        bytes.loadState(r);
    }
    /** @} */

  private:
    static constexpr std::uint64_t lineBytes = 64;

    void updatePower(Tick now);

    PcmConfig cfg;
    BackingStore bytes;
    PowerComponent *comp; // ckpt: via(PowerModel)
    bool standby = false;
    Milliwatts trafficPower;
    Millijoules accessTotal;
    std::uint64_t maxWrites = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> lineWrites;
};

/** Optimism setting for the eMRAM model. */
struct EmramConfig // ckpt: derived
{
    std::uint64_t capacityBytes = 0;

    /**
     * Paper assumption: optimistic eMRAM matches SRAM power and
     * performance. Pessimism > 1 scales write latency/energy up to
     * explore less optimistic designs.
     */
    double pessimism = 1.0;

    /** SRAM-equivalent access parameters (matched when optimistic). */
    double accessLatencyNs = 2.0;
    double energyPerByte = 0.8e-12;
    double streamBandwidth = 64.0e9;

    /** Active leakage (only while accessible); retention costs zero. */
    Milliwatts activePower = Milliwatts::fromWatts(1.0e-3);

    /** Rated endurance (optimistic assumption: effectively unlimited). */
    std::uint64_t enduranceWrites = 1000000000000ULL;
};

/**
 * Embedded MRAM macro for context storage: like an Sram but contents
 * survive power-off and the off-state power is exactly zero.
 */
class Emram : public Named
{
  public:
    Emram(std::string name, const EmramConfig &config,
          PowerComponent *comp = nullptr);

    const EmramConfig &config() const { return cfg; }
    std::uint64_t capacityBytes() const { return cfg.capacityBytes; }

    bool poweredOn() const { return on; }

    /** Power the macro on/off; contents persist across power-off. */
    void setPowered(bool powered, Tick now);

    Tick read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len);
    Tick write(std::uint64_t addr, const std::uint8_t *data,
               std::uint64_t len);

    std::uint64_t totalWrites() const { return writes; }
    Millijoules accessEnergy() const { return accessTotal; }

    /** @name Checkpoint support @{ */
    void
    saveState(ckpt::Writer &w) const
    {
        w.b(on);
        w.u64(writes);
        w.f64(accessTotal.joules());
        w.u64(data_.size());
        w.bytes(data_.data(), data_.size());
    }

    void
    loadState(ckpt::Reader &r)
    {
        on = r.b();
        writes = r.u64();
        accessTotal = Millijoules::fromJoules(r.f64());
        if (r.u64() != data_.size())
            throw ckpt::SnapshotError("eMRAM size mismatch");
        r.bytes(data_.data(), data_.size());
    }
    /** @} */

  private:
    Tick accessLatency(std::uint64_t len, bool is_write) const;

    EmramConfig cfg;
    std::vector<std::uint8_t> data_;
    PowerComponent *comp; // ckpt: via(PowerModel)
    bool on = false;
    std::uint64_t writes = 0;
    Millijoules accessTotal;
};

} // namespace odrips

#endif // ODRIPS_MEM_NVM_HH
