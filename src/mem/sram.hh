/**
 * @file
 * On-chip SRAM model with retention-voltage leakage.
 *
 * The paper's Observation 3 rests on two measured facts we encode here:
 * (1) an SRAM fabricated in the processor's high-performance process
 * leaks ~5x more than an equal-capacity SRAM in the chipset's low-power
 * process, even at the minimum retention voltage; (2) retention voltage
 * is already the floor — the only way to save more is to power off,
 * losing contents.
 */

#ifndef ODRIPS_MEM_SRAM_HH
#define ODRIPS_MEM_SRAM_HH

#include <cstdint>
#include <vector>

#include "power/component.hh"
#include "sim/checkpoint/serializer.hh"
#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Process flavour an SRAM is fabricated in. */
enum class SramProcess
{
    HighPerformance, ///< processor die: fast, leaky
    LowPower,        ///< chipset die: ~5x less leakage at Vmin
};

/** Power state of an SRAM macro. */
enum class SramState
{
    Off,       ///< power removed, contents lost
    Retention, ///< minimum retention voltage, contents kept
    Active,    ///< full voltage, accessible
};

/** SRAM electrical parameters. */
struct SramConfig // ckpt: derived
{
    std::uint64_t capacityBytes = 0;
    SramProcess process = SramProcess::HighPerformance;

    /**
     * Retention leakage per byte for the high-performance process.
     * Calibrated so 200 KB of processor S/R SRAM leaks ~5.4 mW
     * (9% of the 60 mW platform, per Fig. 1(b) and Observation 3).
     */
    double hpRetentionLeakPerByte = 5.4e-3 / (200.0 * 1024.0);

    /** LowPower process leaks 5x less (measured in the paper). */
    double processLeakRatio = 5.0;

    /** Active leakage is higher than retention leakage. */
    double activeLeakMultiplier = 2.5;

    /** Access energy per byte, joules. */
    double energyPerByte = 0.8e-12;

    /** Fixed access latency, nanoseconds. */
    double accessLatencyNs = 2.0;

    /** Streaming bandwidth for save/restore FSM bursts, bytes/s. */
    double streamBandwidth = 64.0e9;
};

/** A retention-capable on-chip SRAM macro holding real bytes. */
class Sram : public Named
{
  public:
    Sram(std::string name, const SramConfig &config,
         PowerComponent *comp = nullptr);

    const SramConfig &config() const { return cfg; }
    std::uint64_t capacityBytes() const { return cfg.capacityBytes; }

    SramState state() const { return state_; }

    /** Change power state; powering Off clears the contents. */
    void setState(SramState new_state, Tick now);

    /** Leakage power in the given state. */
    Milliwatts leakagePower(SramState state) const;

    /** Functional + timed read (requires Active state). */
    Tick read(std::uint64_t addr, std::uint8_t *data, std::uint64_t len);

    /** Functional + timed write (requires Active state). */
    Tick write(std::uint64_t addr, const std::uint8_t *data,
               std::uint64_t len);

    /** Raw contents access for test inspection. */
    const std::vector<std::uint8_t> &contents() const { return data_; }

    /** Accumulated access energy. */
    Millijoules accessEnergy() const { return accessTotal; }

    /**
     * @name Checkpoint support
     * Restores the raw fields directly (no setState(): the component
     * power level is restored through the PowerModel, and Off-state
     * content clearing already happened before the snapshot was taken).
     * @{
     */
    void
    saveState(ckpt::Writer &w) const
    {
        w.u8(static_cast<std::uint8_t>(state_));
        w.f64(accessTotal.joules());
        w.u64(data_.size());
        w.bytes(data_.data(), data_.size());
    }

    void
    loadState(ckpt::Reader &r)
    {
        const std::uint8_t s = r.u8();
        if (s > static_cast<std::uint8_t>(SramState::Active))
            throw ckpt::SnapshotError("SRAM state out of range");
        state_ = static_cast<SramState>(s);
        accessTotal = Millijoules::fromJoules(r.f64());
        if (r.u64() != data_.size())
            throw ckpt::SnapshotError("SRAM size mismatch");
        r.bytes(data_.data(), data_.size());
    }
    /** @} */

  private:
    Tick accessLatency(std::uint64_t len) const;

    SramConfig cfg;
    std::vector<std::uint8_t> data_;
    PowerComponent *comp; // ckpt: via(PowerModel)
    SramState state_ = SramState::Active;
    Millijoules accessTotal;
};

} // namespace odrips

#endif // ODRIPS_MEM_SRAM_HH
