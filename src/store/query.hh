/**
 * @file
 * Batched what-if query schema.
 *
 * A query is one JSON-lines object naming a technique set and any
 * subset of platform knobs to override on top of skylakeConfig():
 *
 *     {"id":"q1","technique":"odrips","core_freq_ghz":1.0,
 *      "idle_dwell_s":10,"memory":"pcm"}
 *
 * parseQuery() rejects unknown fields loudly (a typoed knob must not
 * silently evaluate the default platform), resolveQuery() produces the
 * concrete (PlatformConfig, TechniqueSet) pair — i.e. the ProfileKey —
 * and resultLine() renders the answer as one deterministic JSON line.
 *
 * Determinism contract: resultLine() depends only on the query and its
 * CyclePowerProfile. Whether the profile came from the in-process
 * memo, the persistent store, or a fresh simulation is *not* part of
 * the line (it goes to the stderr telemetry instead), which is what
 * lets the check.sh store gate diff hot vs cold stdout bytewise.
 */

#ifndef ODRIPS_STORE_QUERY_HH
#define ODRIPS_STORE_QUERY_HH

#include <string>
#include <vector>

#include "core/profile.hh"
#include "core/profile_cache.hh"
#include "store/json_mini.hh"

namespace odrips::store
{

/** One parsed what-if query (overrides only; nothing resolved yet). */
struct QuerySpec
{
    std::string id;
    std::string technique = "odrips";

    /** Field is present <=> the knob is overridden. */
    struct Knob
    {
        bool set = false;
        double value = 0.0;
    };

    Knob coreFreqGhz;
    Knob idleDwellS;
    Knob activeMinMs;
    Knob activeMaxMs;
    Knob scalableFraction;
    Knob networkWakeS;
    Knob coalescingMs;
    Knob emramPessimism;
    Knob llcDirtyFraction;
    Knob seed;

    bool memorySet = false;
    MainMemoryKind memory = MainMemoryKind::Ddr3l;
    bool contextStorageSet = false;
    ContextStorage contextStorage = ContextStorage::Dram;
};

/** A query resolved to its concrete configuration pair and key. */
struct ResolvedQuery
{
    QuerySpec spec;
    PlatformConfig cfg;
    TechniqueSet techniques;
    ProfileKey key;
};

/**
 * Parse one JSON-lines query. @p default_id names the query when the
 * line carries no "id". Throws JsonError on malformed JSON, unknown
 * fields, or out-of-domain values.
 */
QuerySpec parseQuery(const std::string &line,
                     const std::string &default_id);

/** Apply @p spec on top of skylakeConfig() and compute the key. */
ResolvedQuery resolveQuery(const QuerySpec &spec);

/** Names accepted by the "technique" field. */
std::vector<std::string> techniqueNames();

/** Render @p key as 32 lowercase hex digits (hi then lo). */
std::string keyHex(const ProfileKey &key);

/**
 * One deterministic JSON result line for @p q evaluated to
 * @p profile: id, key, the profile fields, and the Eq. 1 average
 * power at the query's own workload point.
 */
std::string resultLine(const ResolvedQuery &q,
                       const CyclePowerProfile &profile);

} // namespace odrips::store

#endif // ODRIPS_STORE_QUERY_HH
