/**
 * @file
 * Minimal JSON support for the batched query front end.
 *
 * The query engine speaks JSON lines: one flat object per query in,
 * one flat object per result out. This header provides exactly that
 * much JSON — parse one value (objects, arrays, strings, numbers,
 * bools, null; nested values allowed) and emit objects with
 * deterministic, bit-exact number formatting — with no dependency the
 * container doesn't already have.
 *
 * Number emission uses %.17g: 17 significant digits round-trip every
 * IEEE-754 double exactly, which is what lets the check.sh store gate
 * demand byte-identical stdout between served-from-store and
 * freshly-simulated batches.
 */

#ifndef ODRIPS_STORE_JSON_MINI_HH
#define ODRIPS_STORE_JSON_MINI_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace odrips::store
{

/** Raised on malformed JSON input. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Ordered key list (keys) + map for lookup, so iteration order is
     * the input order and duplicate keys are an error. */
    std::vector<std::string> keys;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member or nullptr. */
    const JsonValue *
    find(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }

    double asNumber(const std::string &what) const;
    bool asBool(const std::string &what) const;
    const std::string &asString(const std::string &what) const;
};

/** Parse exactly one JSON value from @p text (trailing junk throws). */
JsonValue parseJson(const std::string &text);

/** Escape and quote @p s as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/** Format @p v with round-trip-exact precision ("%.17g"). */
std::string jsonNumber(double v);

/**
 * Incremental writer for one flat JSON object, preserving field order:
 *     JsonObjectWriter w;
 *     w.field("id", "q1"); w.field("avg_power_w", 0.061);
 *     line = w.done();
 */
class JsonObjectWriter
{
  public:
    void field(const std::string &key, const std::string &value);
    void fieldRaw(const std::string &key, const std::string &raw);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);
    void field(const std::string &key, std::uint64_t value);

    /** Close the object and return it. */
    std::string done();

  private:
    std::string out = "{";
    bool first = true;
};

} // namespace odrips::store

#endif // ODRIPS_STORE_JSON_MINI_HH
