/**
 * @file
 * Bridge from the core profile-cache seam to the persistent store.
 *
 * core::CycleProfileCache knows only the abstract ProfileStoreBackend
 * interface (core must not include store headers — the store layer
 * sits above core in the include DAG). This header provides the
 * concrete backend over a ResultStore plus the one-call wiring helper
 * the binaries use:
 *
 *     store::attachGlobalStoreFromEnv();   // honours ODRIPS_STORE=dir
 *
 * or, for explicit control (the query engine):
 *
 *     store::StoreProfileBackend backend(myStore);
 *     CycleProfileCache::global().setBackend(&backend);
 */

#ifndef ODRIPS_STORE_PROFILE_STORE_HH
#define ODRIPS_STORE_PROFILE_STORE_HH

#include <memory>
#include <string>

#include "core/profile_cache.hh"
#include "store/result_store.hh"

namespace odrips::store
{

/** ProfileStoreBackend over a ResultStore (not owned). */
class StoreProfileBackend : public ProfileStoreBackend
{
  public:
    explicit StoreProfileBackend(ResultStore &store) : store_(store) {}

    bool fetch(const ProfileKey &key, CyclePowerProfile &out) override;

    void persist(const ProfileKey &key, const PlatformConfig &cfg,
                 const TechniqueSet &techniques,
                 const CyclePowerProfile &profile) override;

    void reportTo(std::ostream &os) override;

    ResultStore &resultStore() { return store_; }

  private:
    ResultStore &store_;
};

/**
 * When ODRIPS_STORE names a directory, open (creating if needed) a
 * ReadWrite ResultStore there, attach it behind the global
 * CycleProfileCache, and return the owning handle — every subsequent
 * measureCycleProfile() miss is then served from or persisted to disk.
 * Returns nullptr (and attaches nothing) when the variable is unset or
 * empty; warns and returns nullptr when the store cannot be opened (a
 * broken store directory must not take the simulation down).
 *
 * The caller keeps the handle alive for as long as the cache may be
 * used; letting it die detaches the backend first.
 */
class AttachedStore;
std::unique_ptr<AttachedStore> attachGlobalStoreFromEnv();

/** An opened store wired behind the global cache (RAII detach). */
class AttachedStore
{
  public:
    AttachedStore(const std::string &dir, ResultStore::Mode mode);
    ~AttachedStore();

    AttachedStore(const AttachedStore &) = delete;
    AttachedStore &operator=(const AttachedStore &) = delete;

    ResultStore &resultStore() { return store_; }

  private:
    ResultStore store_;
    StoreProfileBackend backend_;
};

} // namespace odrips::store

#endif // ODRIPS_STORE_PROFILE_STORE_HH
