#include "store/json_mini.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace odrips::store
{

double
JsonValue::asNumber(const std::string &what) const
{
    if (kind != Kind::Number)
        throw JsonError(what + ": expected a number");
    return number;
}

bool
JsonValue::asBool(const std::string &what) const
{
    if (kind != Kind::Bool)
        throw JsonError(what + ": expected a boolean");
    return boolean;
}

const std::string &
JsonValue::asString(const std::string &what) const
{
    if (kind != Kind::String)
        throw JsonError(what + ": expected a string");
    return string;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            throw JsonError("trailing characters after JSON value");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            throw JsonError("unexpected end of JSON input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw JsonError(std::string("expected '") + c + "' in JSON");
        ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        const char c = peek();
        switch (c) {
        case '{':
            return objectValue();
        case '[':
            return arrayValue();
        case '"':
            return stringValue();
        case 't':
        case 'f':
            return boolValue();
        case 'n':
            literal("null");
            return JsonValue{};
        default:
            return numberValue();
        }
    }

    void
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (s.compare(pos, len, word) != 0)
            throw JsonError(std::string("malformed JSON literal, "
                                        "expected ") + word);
        pos += len;
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (s[pos] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                std::strchr("+-.eE", s[pos]) != nullptr))
            ++pos;
        if (pos == start)
            throw JsonError("malformed JSON number");
        const std::string token = s.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            throw JsonError("malformed JSON number: " + token);
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return out;
    }

    JsonValue
    stringValue()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            if (pos >= s.size())
                throw JsonError("unterminated JSON string");
            const char c = s[pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos >= s.size())
                    throw JsonError("unterminated JSON escape");
                const char e = s[pos++];
                switch (e) {
                case '"': v.string += '"'; break;
                case '\\': v.string += '\\'; break;
                case '/': v.string += '/'; break;
                case 'b': v.string += '\b'; break;
                case 'f': v.string += '\f'; break;
                case 'n': v.string += '\n'; break;
                case 'r': v.string += '\r'; break;
                case 't': v.string += '\t'; break;
                case 'u': {
                    // Basic-multilingual-plane escapes only; enough
                    // for the ASCII identifiers queries actually use.
                    if (pos + 4 > s.size())
                        throw JsonError("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            throw JsonError("bad \\u escape digit");
                    }
                    // UTF-8 encode.
                    if (code < 0x80) {
                        v.string += static_cast<char>(code);
                    } else if (code < 0x800) {
                        v.string +=
                            static_cast<char>(0xc0 | (code >> 6));
                        v.string +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        v.string +=
                            static_cast<char>(0xe0 | (code >> 12));
                        v.string += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        v.string +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default:
                    throw JsonError("unknown JSON escape");
                }
            } else {
                v.string += c;
            }
        }
        return v;
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consume(']'))
            return v;
        while (true) {
            v.array.push_back(value());
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consume('}'))
            return v;
        while (true) {
            const JsonValue key = stringValue();
            expect(':');
            if (v.object.count(key.string) != 0)
                throw JsonError("duplicate JSON object key: " +
                                key.string);
            v.keys.push_back(key.string);
            v.object.emplace(key.string, value());
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonObjectWriter::fieldRaw(const std::string &key, const std::string &raw)
{
    if (!first)
        out += ',';
    first = false;
    out += jsonQuote(key);
    out += ':';
    out += raw;
}

void
JsonObjectWriter::field(const std::string &key, const std::string &value)
{
    fieldRaw(key, jsonQuote(value));
}

void
JsonObjectWriter::field(const std::string &key, double value)
{
    fieldRaw(key, jsonNumber(value));
}

void
JsonObjectWriter::field(const std::string &key, bool value)
{
    fieldRaw(key, value ? "true" : "false");
}

void
JsonObjectWriter::field(const std::string &key, std::uint64_t value)
{
    fieldRaw(key, std::to_string(value));
}

std::string
JsonObjectWriter::done()
{
    out += '}';
    return out;
}

} // namespace odrips::store
