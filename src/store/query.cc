#include "store/query.hh"

#include <cstdio>

#include "core/experiment.hh"
#include "store/result_schema.hh"

namespace odrips::store
{

namespace
{

TechniqueSet
techniqueByName(const std::string &name, PlatformConfig &cfg)
{
    if (name == "baseline")
        return TechniqueSet::baseline();
    if (name == "wakeup-off")
        return TechniqueSet::wakeupOffOnly();
    if (name == "aon-io-gate")
        return TechniqueSet::aonIoGated();
    if (name == "ctx-sgx-dram")
        return TechniqueSet::ctxSgxDram();
    if (name == "odrips")
        return TechniqueSet::odrips();
    if (name == "odrips-mram")
        return TechniqueSet::odripsMram();
    if (name == "odrips-pcm") {
        cfg.memoryKind = MainMemoryKind::Pcm;
        return TechniqueSet::odripsPcm();
    }
    throw JsonError("unknown technique \"" + name + "\" (expected one "
                    "of: baseline, wakeup-off, aon-io-gate, "
                    "ctx-sgx-dram, odrips, odrips-mram, odrips-pcm)");
}

void
setKnob(QuerySpec::Knob &knob, const JsonValue &v, const char *name)
{
    knob.set = true;
    knob.value = v.asNumber(name);
}

} // namespace

std::vector<std::string>
techniqueNames()
{
    return {"baseline", "wakeup-off", "aon-io-gate", "ctx-sgx-dram",
            "odrips", "odrips-mram", "odrips-pcm"};
}

QuerySpec
parseQuery(const std::string &line, const std::string &default_id)
{
    const JsonValue v = parseJson(line);
    if (!v.isObject())
        throw JsonError("query line is not a JSON object");

    QuerySpec spec;
    spec.id = default_id;
    for (const std::string &key : v.keys) {
        const JsonValue &field = *v.find(key);
        if (key == "id") {
            spec.id = field.asString("id");
        } else if (key == "technique") {
            spec.technique = field.asString("technique");
        } else if (key == "core_freq_ghz") {
            setKnob(spec.coreFreqGhz, field, "core_freq_ghz");
        } else if (key == "idle_dwell_s") {
            setKnob(spec.idleDwellS, field, "idle_dwell_s");
        } else if (key == "active_min_ms") {
            setKnob(spec.activeMinMs, field, "active_min_ms");
        } else if (key == "active_max_ms") {
            setKnob(spec.activeMaxMs, field, "active_max_ms");
        } else if (key == "scalable_fraction") {
            setKnob(spec.scalableFraction, field, "scalable_fraction");
        } else if (key == "network_wake_s") {
            setKnob(spec.networkWakeS, field, "network_wake_s");
        } else if (key == "coalescing_ms") {
            setKnob(spec.coalescingMs, field, "coalescing_ms");
        } else if (key == "emram_pessimism") {
            setKnob(spec.emramPessimism, field, "emram_pessimism");
        } else if (key == "llc_dirty_fraction") {
            setKnob(spec.llcDirtyFraction, field, "llc_dirty_fraction");
        } else if (key == "seed") {
            setKnob(spec.seed, field, "seed");
        } else if (key == "memory") {
            const std::string &kind = field.asString("memory");
            spec.memorySet = true;
            if (kind == "ddr3l")
                spec.memory = MainMemoryKind::Ddr3l;
            else if (kind == "pcm")
                spec.memory = MainMemoryKind::Pcm;
            else
                throw JsonError("unknown memory kind \"" + kind +
                                "\" (expected ddr3l or pcm)");
        } else if (key == "context_storage") {
            const std::string &kind = field.asString("context_storage");
            spec.contextStorageSet = true;
            if (kind == "sr-sram")
                spec.contextStorage = ContextStorage::SrSram;
            else if (kind == "dram")
                spec.contextStorage = ContextStorage::Dram;
            else if (kind == "emram")
                spec.contextStorage = ContextStorage::Emram;
            else
                throw JsonError("unknown context storage \"" + kind +
                                "\" (expected sr-sram, dram, or emram)");
        } else {
            // Fail loudly: a typoed knob silently evaluating the
            // default platform is the worst failure mode an oracle
            // can have.
            throw JsonError("unknown query field \"" + key + "\"");
        }
    }
    return spec;
}

ResolvedQuery
resolveQuery(const QuerySpec &spec)
{
    ResolvedQuery q;
    q.spec = spec;
    q.cfg = skylakeConfig();
    q.techniques = techniqueByName(spec.technique, q.cfg);

    if (spec.coreFreqGhz.set)
        q.cfg.coreFrequencyHz = spec.coreFreqGhz.value * 1e9;
    if (spec.idleDwellS.set)
        q.cfg.workload.idleDwellSeconds = spec.idleDwellS.value;
    if (spec.activeMinMs.set)
        q.cfg.workload.activeMinSeconds = spec.activeMinMs.value * 1e-3;
    if (spec.activeMaxMs.set)
        q.cfg.workload.activeMaxSeconds = spec.activeMaxMs.value * 1e-3;
    if (spec.scalableFraction.set)
        q.cfg.workload.scalableFraction = spec.scalableFraction.value;
    if (spec.networkWakeS.set)
        q.cfg.workload.networkWakeMeanSeconds = spec.networkWakeS.value;
    if (spec.coalescingMs.set)
        q.cfg.workload.coalescingWindowSeconds =
            spec.coalescingMs.value * 1e-3;
    if (spec.emramPessimism.set)
        q.cfg.emramPessimism = spec.emramPessimism.value;
    if (spec.llcDirtyFraction.set)
        q.cfg.llcDirtyFraction = spec.llcDirtyFraction.value;
    if (spec.seed.set)
        q.cfg.workload.seed =
            static_cast<std::uint64_t>(spec.seed.value);
    if (spec.memorySet)
        q.cfg.memoryKind = spec.memory;
    if (spec.contextStorageSet) {
        q.cfg.contextStorage = spec.contextStorage;
        if (q.techniques.contextOffload)
            q.techniques.contextStorage = spec.contextStorage;
    }

    q.techniques.validate();
    q.key = profileKey(q.cfg, q.techniques);
    return q;
}

std::string
keyHex(const ProfileKey &key)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(key.hi),
                  static_cast<unsigned long long>(key.lo));
    return buf;
}

std::string
resultLine(const ResolvedQuery &q, const CyclePowerProfile &profile)
{
    const StoredResult derived = makeStoredResult(profile, q.cfg);

    JsonObjectWriter w;
    w.field("id", q.spec.id);
    w.field("key", keyHex(q.key));
    w.field("technique", q.spec.technique);
    w.field("idle_power_w", profile.idlePower);
    w.field("active_power_w", profile.activePower);
    w.field("stall_power_w", profile.stallPower);
    w.field("entry_latency_s", ticksToSeconds(profile.entryLatency));
    w.field("exit_latency_s", ticksToSeconds(profile.exitLatency));
    w.field("entry_energy_j", profile.entryEnergy);
    w.field("exit_energy_j", profile.exitEnergy);
    w.field("context_save_s",
            ticksToSeconds(profile.contextSaveLatency));
    w.field("context_restore_s",
            ticksToSeconds(profile.contextRestoreLatency));
    w.field("context_intact", profile.contextIntact);
    w.field("avg_power_w", derived.averagePower);
    w.field("transition_overhead_j", derived.transitionOverheadEnergy);
    return w.done();
}

} // namespace odrips::store
