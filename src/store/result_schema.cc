#include "store/result_schema.hh"

#include "core/experiment.hh"

namespace odrips::store
{

StoredResult
makeStoredResult(const CyclePowerProfile &profile,
                 const PlatformConfig &cfg)
{
    StoredResult result;
    result.profile = profile;
    result.averagePower = standardWorkloadAverage(profile, cfg);
    result.transitionOverheadEnergy = profile.transitionOverheadEnergy();
    return result;
}

void
encodeResult(ckpt::Writer &w, const StoredResult &result)
{
    const CyclePowerProfile &p = result.profile;
    w.u32(kResultSchemaVersion);
    w.f64(p.idlePower);
    w.f64(p.activePower);
    w.f64(p.stallPower);
    w.i64(p.entryLatency);
    w.i64(p.exitLatency);
    w.f64(p.entryEnergy);
    w.f64(p.exitEnergy);
    w.i64(p.contextSaveLatency);
    w.i64(p.contextRestoreLatency);
    w.b(p.contextIntact);
    w.f64(result.averagePower);
    w.f64(result.transitionOverheadEnergy);
}

StoredResult
decodeResult(const std::uint8_t *data, std::size_t size)
{
    ckpt::Reader r(data, size);
    const std::uint32_t version = r.u32();
    if (version != kResultSchemaVersion)
        throw ckpt::SnapshotError("unsupported stored-result schema "
                                  "version " + std::to_string(version));
    StoredResult result;
    CyclePowerProfile &p = result.profile;
    p.idlePower = r.f64();
    p.activePower = r.f64();
    p.stallPower = r.f64();
    p.entryLatency = r.i64();
    p.exitLatency = r.i64();
    p.entryEnergy = r.f64();
    p.exitEnergy = r.f64();
    p.contextSaveLatency = r.i64();
    p.contextRestoreLatency = r.i64();
    p.contextIntact = r.b();
    result.averagePower = r.f64();
    result.transitionOverheadEnergy = r.f64();
    r.expectEnd("stored-result");
    return result;
}

} // namespace odrips::store
